package main

import (
	"context"
	"strings"
	"testing"
)

func TestDemoReproducesAppendixA2(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-demo"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"0.99997500015",
		"0.00002499937",
		"4.8e-10",
		"9.6e-10",
		"0.99999040004",
		"YES",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExplicitNodes(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-nodes", "4e-4", "-k", "2", "-period", "360", "-gamma", "1e-5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3, middle h-version with k=2 meets the goal.
	if !strings.Contains(sb.String(), "YES") {
		t.Errorf("Fig. 3 N1^2 with k=2 should meet the goal:\n%s", sb.String())
	}
	sb.Reset()
	err = run(context.Background(), []string{"-nodes", "4e-4", "-k", "1", "-period", "360", "-gamma", "1e-5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NO") {
		t.Errorf("k=1 should miss the goal:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{}, &sb); err == nil {
		t.Error("want error without -nodes")
	}
	if err := run(context.Background(), []string{"-nodes", "zzz"}, &sb); err == nil {
		t.Error("want error for bad probability")
	}
	if err := run(context.Background(), []string{"-nodes", "0.1", "-k", "1,2"}, &sb); err == nil {
		t.Error("want error for k count mismatch")
	}
	if err := run(context.Background(), []string{"-nodes", "0.1", "-k", "x"}, &sb); err == nil {
		t.Error("want error for non-integer k")
	}
	if err := run(context.Background(), []string{"-nodes", "2.0"}, &sb); err == nil {
		t.Error("want error for probability > 1")
	}
}
