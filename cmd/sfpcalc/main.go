// Command sfpcalc is a calculator for the paper's system failure
// probability analysis (Appendix A). Given per-node process failure
// probabilities and re-execution counts, it prints Pr(0), Pr(f),
// Pr(f > k), the system failure probability and the reliability over the
// time unit, with the paper's pessimistic 1e-11 rounding.
//
// Usage:
//
//	sfpcalc -nodes "1.2e-5,1.3e-5;1.2e-5,1.3e-5" -k "1,1" -period 360
//	sfpcalc -demo     # reproduces the Appendix A.2 computation example
//
// Node probability lists are separated by ';', probabilities within a
// node by ','.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/runctl"
	"repro/internal/sfp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sfpcalc:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sfpcalc", flag.ContinueOnError)
	nodesArg := fs.String("nodes", "", "per-node process failure probabilities, e.g. \"1e-5,2e-5;3e-5\"")
	ksArg := fs.String("k", "", "per-node re-execution counts, e.g. \"1,1\"")
	period := fs.Float64("period", 360, "application period T in ms")
	tau := fs.Float64("tau", 3.6e6, "reliability time unit τ in ms")
	gamma := fs.Float64("gamma", 1e-5, "reliability goal γ (ρ = 1 − γ)")
	maxK := fs.Int("maxk", sfp.DefaultMaxK, "maximum re-executions to tabulate")
	demo := fs.Bool("demo", false, "run the Appendix A.2 example (Fig. 4a architecture)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cerr := runctl.Err(ctx); cerr != nil {
		return cerr
	}

	if *demo {
		*nodesArg = "1.2e-5,1.3e-5;1.2e-5,1.3e-5"
		*ksArg = "1,1"
		*period = 360
		*gamma = 1e-5
		fmt.Fprintln(w, "Appendix A.2 example: Fig. 4a architecture (N1^2 with P1,P2; N2^2 with P3,P4)")
	}
	if *nodesArg == "" {
		return fmt.Errorf("-nodes is required (or use -demo)")
	}

	var nodeProbs [][]float64
	for _, group := range strings.Split(*nodesArg, ";") {
		var ps []float64
		for _, tok := range strings.Split(group, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			p, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("bad probability %q: %v", tok, err)
			}
			ps = append(ps, p)
		}
		nodeProbs = append(nodeProbs, ps)
	}
	ks := make([]int, len(nodeProbs))
	if *ksArg != "" {
		toks := strings.Split(*ksArg, ",")
		if len(toks) != len(nodeProbs) {
			return fmt.Errorf("%d re-execution counts for %d nodes", len(toks), len(nodeProbs))
		}
		for i, tok := range toks {
			k, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad k %q: %v", tok, err)
			}
			ks[i] = k
		}
	}

	analysis, err := sfp.NewAnalysis(nodeProbs, *period, *maxK)
	if err != nil {
		return err
	}
	fails := make([]float64, len(analysis.Nodes))
	for j, n := range analysis.Nodes {
		fmt.Fprintf(w, "node %d (%d processes, k=%d):\n", j+1, len(nodeProbs[j]), ks[j])
		fmt.Fprintf(w, "  Pr(0)      = %.11f\n", n.PrZero())
		for f := 1; f <= ks[j] && f <= *maxK; f++ {
			pf, err := n.PrExactly(f)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  Pr(%d)      = %.11f\n", f, pf)
		}
		fails[j] = n.FailureProb(ks[j])
		fmt.Fprintf(w, "  Pr(f>%d)    = %.6g\n", ks[j], fails[j])
	}
	union := sfp.SystemFailureProb(fails)
	rel := sfp.Reliability(union, *period, *tau)
	fmt.Fprintf(w, "system failure probability per iteration: %.6g\n", union)
	fmt.Fprintf(w, "iterations per time unit (tau/T): %.0f\n", *tau / *period)
	fmt.Fprintf(w, "system reliability over tau: %.11f\n", rel)
	goal := sfp.Goal{Gamma: *gamma, Tau: *tau}
	if rel >= goal.Rho() {
		fmt.Fprintf(w, "meets reliability goal rho = 1 - %g: YES\n", *gamma)
	} else {
		fmt.Fprintf(w, "meets reliability goal rho = 1 - %g: NO\n", *gamma)
	}
	return nil
}
