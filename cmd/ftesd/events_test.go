package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// TestDaemonEventJournalReplay: the daemon's durable event journal
// replays identically after a restart — the reopened log serves the same
// events, and the restarted daemon appends after them.
func TestDaemonEventJournalReplay(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.jsonl")
	events1, err := obs.OpenEventLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := obs.NewRegistry()
	sched1, err := jobs.New(jobs.Options{Workers: 1, Dir: filepath.Join(dir, "state"), Metrics: reg1, Events: events1})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(newDaemon(sched1, reg1, nil, 0, events1, nil))
	_, sr := postJSON(t, srv1.URL+"/jobs", tinyFigBody)
	if st := pollDone(t, srv1.URL, sr.ID); st.State != jobs.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	types := map[string]bool{}
	for _, ev := range events1.Events(0) {
		if ev.Job == sr.ID {
			types[ev.Type] = true
		}
	}
	for _, want := range []string{"job.submitted", "job.started", "job.done"} {
		if !types[want] {
			t.Errorf("event log lacks %s for job %s", want, sr.ID)
		}
	}
	before, err := json.Marshal(events1.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := sched1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := events1.Close(); err != nil {
		t.Fatal(err)
	}

	events2, err := obs.OpenEventLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer events2.Close()
	after, err := json.Marshal(events2.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("replayed event journal differs:\n%s\nwant:\n%s", after, before)
	}
	// The restarted daemon keeps appending past the replayed history.
	seqBefore := events2.Seq()
	events2.Emit("daemon.up", "", nil)
	if events2.Seq() != seqBefore+1 {
		t.Errorf("seq after replayed append = %d, want %d", events2.Seq(), seqBefore+1)
	}
}

// readSSEUntil reads SSE frames off the stream until an event of type
// want (matched against the data payload's "type") arrives, returning
// the types seen in order.
func readSSEUntil(t *testing.T, body *bufio.Reader, want string, deadline time.Duration) []string {
	t.Helper()
	var seen []string
	done := make(chan struct{})
	timer := time.AfterFunc(deadline, func() { close(done) })
	defer timer.Stop()
	for {
		select {
		case <-done:
			t.Fatalf("no %s event within %v; saw %v", want, deadline, seen)
		default:
		}
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early (saw %v): %v", seen, err)
		}
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var ev obs.LogEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data:")), &ev); err != nil {
			continue // progress frames and heartbeats are not LogEvents
		}
		if ev.Type == "" {
			continue
		}
		seen = append(seen, ev.Type)
		if ev.Type == want {
			return seen
		}
	}
}

// TestDaemonEventsSSE: the daemon streams lifecycle events over /events
// in submission order, the per-job endpoint filters to one job, and
// /timeseries serves the sampler's history.
func TestDaemonEventsSSE(t *testing.T) {
	events := obs.NewEventLog()
	defer events.Close()
	reg := obs.NewRegistry()
	sampler := obs.NewSampler(reg, 10*time.Millisecond, 0)
	sampler.Start()
	defer sampler.Stop()
	sched, err := jobs.New(jobs.Options{Workers: 1, Metrics: reg, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newDaemon(sched, reg, nil, 0, events, sampler))
	t.Cleanup(func() {
		srv.Close()
		sched.Close(context.Background())
	})

	_, sr := postJSON(t, srv.URL+"/jobs", tinyFigBody)
	if st := pollDone(t, srv.URL, sr.ID); st.State != jobs.StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	// Replay from the beginning over SSE: the job's lifecycle arrives in
	// order on both the fleet stream and the job-scoped one.
	for _, url := range []string{srv.URL + "/events?since=0", srv.URL + "/jobs/" + sr.ID + "/events?since=0"} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		req, _ := http.NewRequestWithContext(ctx, "GET", url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
			t.Errorf("%s Content-Type = %q", url, ct)
		}
		seen := readSSEUntil(t, bufio.NewReader(resp.Body), "job.done", 20*time.Second)
		resp.Body.Close()
		cancel()
		idx := func(typ string) int {
			for i, s := range seen {
				if s == typ {
					return i
				}
			}
			return -1
		}
		sub, started, done := idx("job.submitted"), idx("job.started"), idx("job.done")
		if sub == -1 || started == -1 || done == -1 || !(sub < started && started < done) {
			t.Errorf("%s: lifecycle out of order: %v", url, seen)
		}
	}

	// The sampler has been ticking throughout; /timeseries serves ≥ 2
	// samples of the scheduler counters.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, data := get(t, srv.URL+"/timeseries")
		var ts obs.TimeSeries
		if err := json.Unmarshal(data, &ts); err != nil {
			t.Fatalf("/timeseries: %v: %s", err, data)
		}
		if len(ts.Samples) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/timeseries stuck at %d samples", len(ts.Samples))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
