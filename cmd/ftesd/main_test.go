package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/specio"
	"repro/internal/taskgen"
)

// newTestServer stands up an in-process daemon over a fresh scheduler.
func newTestServer(t *testing.T, o jobs.Options) (*httptest.Server, *jobs.Scheduler) {
	t.Helper()
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		o.Metrics = reg
	}
	sched, err := jobs.New(o)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newDaemon(sched, reg, nil, 0, o.Events, nil))
	t.Cleanup(func() {
		srv.Close()
		sched.Close(context.Background())
	})
	return srv, sched
}

func postJSON(t *testing.T, url, body string) (int, submitResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("submit response %q: %v", data, err)
		}
	}
	return resp.StatusCode, sr
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// pollDone polls a job's status until it reaches a terminal state.
func pollDone(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, data := get(t, base+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d: %s", id, code, data)
		}
		var st jobs.Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case jobs.StateDone, jobs.StateFailed, jobs.StateCanceled, jobs.StateInterrupted:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const tinyFigBody = `{"kind":"figure","fig":"6a","apps":2,"procs":[20],"seed":3}`

// TestSubmitFigure: a figure job submitted over HTTP produces the
// rendered table artifact, per-job introspection serves that run's own
// counters, and the daemon-level metrics expose the scheduler's queue.
func TestSubmitFigure(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{Workers: 1})

	code, sr := postJSON(t, srv.URL+"/jobs", tinyFigBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	if sr.Dedup {
		t.Error("first submission reported dedup")
	}
	st := pollDone(t, srv.URL, sr.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}

	code, table := get(t, srv.URL+"/jobs/"+sr.ID+"/artifacts/table.txt")
	if code != http.StatusOK || !bytes.Contains(table, []byte("Fig. 6a")) {
		t.Errorf("artifact (%d):\n%s", code, table)
	}

	code, prom := get(t, srv.URL+"/jobs/"+sr.ID+"/metrics")
	if code != http.StatusOK || !bytes.Contains(prom, []byte("core_archs_explored_total")) {
		t.Errorf("per-job metrics (%d) missing core counters:\n%.400s", code, prom)
	}
	code, prom = get(t, srv.URL+"/metrics")
	if code != http.StatusOK ||
		!bytes.Contains(prom, []byte("jobs_completed_total")) ||
		!bytes.Contains(prom, []byte("jobs_queue_depth")) {
		t.Errorf("daemon metrics (%d) missing scheduler instruments:\n%.400s", code, prom)
	}

	code, listing := get(t, srv.URL+"/jobs")
	if code != http.StatusOK || !bytes.Contains(listing, []byte(sr.ID)) {
		t.Errorf("GET /jobs (%d):\n%s", code, listing)
	}
}

// TestDedup: the same envelope twice returns the same id, flagged dedup.
func TestDedup(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{Workers: 1})
	_, first := postJSON(t, srv.URL+"/jobs", tinyFigBody)
	_, second := postJSON(t, srv.URL+"/jobs", tinyFigBody)
	if first.ID != second.ID {
		t.Errorf("ids differ: %s vs %s", first.ID, second.ID)
	}
	if !second.Dedup {
		t.Error("second submission not flagged dedup")
	}
}

// TestBareSpecioDesign: POSTing a bare specio problem document (no
// envelope) runs it as a design job with text and JSON result artifacts.
func TestBareSpecioDesign(t *testing.T) {
	inst, err := taskgen.Generate(taskgen.DefaultConfig(3, 10, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := specio.Write(&doc, &specio.Spec{Application: inst.App, Platform: inst.Platform,
		Gamma: inst.Goal.Gamma, TauMs: inst.Goal.Tau}); err != nil {
		t.Fatal(err)
	}

	srv, _ := newTestServer(t, jobs.Options{Workers: 1})
	code, sr := postJSON(t, srv.URL+"/jobs", doc.String())
	if code != http.StatusAccepted {
		t.Fatalf("POST bare specio = %d", code)
	}
	st := pollDone(t, srv.URL, sr.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	_, text := get(t, srv.URL+"/jobs/"+sr.ID+"/artifacts/result.txt")
	if !bytes.Contains(text, []byte("strategy:    OPT")) {
		t.Errorf("result.txt:\n%s", text)
	}
	_, js := get(t, srv.URL+"/jobs/"+sr.ID+"/artifacts/result.json")
	var rec map[string]any
	if err := json.Unmarshal(js, &rec); err != nil {
		t.Fatalf("result.json not JSON: %v\n%s", err, js)
	}
	if _, ok := rec["feasible"]; !ok {
		t.Errorf("result.json has no feasible field:\n%s", js)
	}
}

// TestCancel: DELETE cancels a job cooperatively; its terminal state is
// canceled and further artifacts reads say so.
func TestCancel(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{Workers: 1})
	// A deliberately heavy sweep so the cancel lands while work remains.
	_, sr := postJSON(t, srv.URL+"/jobs", `{"kind":"figure","fig":"6b","apps":6,"procs":[20,40],"seed":1}`)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	st := pollDone(t, srv.URL, sr.ID)
	if st.State != jobs.StateCanceled {
		t.Errorf("state after DELETE = %s, want canceled", st.State)
	}
}

// TestSubmitErrors: malformed bodies and unknown jobs get 4xx JSON errors.
func TestSubmitErrors(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{Workers: 1})
	for _, body := range []string{
		"not json",
		`{"fig":"6a"}`,                       // neither envelope nor specio
		`{"kind":"figure","fig":"6z"}`,       // unknown figure
		`{"kind":"design"}`,                  // no document
		`{"kind":"figure","fig":"6a","x":1}`, // unknown envelope field
	} {
		code, _ := postJSON(t, srv.URL+"/jobs", body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400", body, code)
		}
	}
	if code, _ := get(t, srv.URL+"/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/jobs/nope/artifacts/table.txt"); code != http.StatusNotFound {
		t.Errorf("GET unknown artifact = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("GET /healthz = %d", code)
	}
}

// TestRestartResume: a daemon torn down mid-job comes back over the same
// state directory, resumes the in-flight job, and serves an artifact
// byte-identical to an uninterrupted run's.
func TestRestartResume(t *testing.T) {
	// Clean reference artifact.
	cleanSrv, _ := newTestServer(t, jobs.Options{Workers: 1})
	_, cr := postJSON(t, cleanSrv.URL+"/jobs", tinyFigBody)
	if st := pollDone(t, cleanSrv.URL, cr.ID); st.State != jobs.StateDone {
		t.Fatalf("clean run: %s (%s)", st.State, st.Error)
	}
	_, want := get(t, cleanSrv.URL+"/jobs/"+cr.ID+"/artifacts/table.txt")

	dir := t.TempDir()
	reg1 := obs.NewRegistry()
	sched1, err := jobs.New(jobs.Options{Workers: 1, Dir: dir, Metrics: reg1})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(newDaemon(sched1, reg1, nil, 0, nil, nil))
	_, sr := postJSON(t, srv1.URL+"/jobs", tinyFigBody)
	// "Crash": tear the daemon down while the job runs. Close cancels the
	// run cooperatively; the completion is never journaled, so the job is
	// still in-flight on the next start.
	srv1.Close()
	if err := sched1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv2, sched2 := newTestServer(t, jobs.Options{Workers: 1, Dir: dir})
	if sched2.Resumed() != 1 {
		// The job may have finished before Close landed; then there is
		// nothing to resume and the journaled result must still match.
		code, data := get(t, srv2.URL+"/jobs/"+sr.ID)
		if code != http.StatusOK {
			t.Fatalf("job lost across restart: %d %s", code, data)
		}
	}
	st := pollDone(t, srv2.URL, sr.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("resumed job: %s (%s)", st.State, st.Error)
	}
	_, got := get(t, srv2.URL+"/jobs/"+sr.ID+"/artifacts/table.txt")
	if !bytes.Equal(got, want) {
		t.Errorf("resumed artifact differs from clean run:\n%s\nwant:\n%s", got, want)
	}
}

// TestEnvelopeTimeout: a submission's timeout_ms bounds the run; the
// expired job reports failed with a deadline error.
func TestEnvelopeTimeout(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Options{Workers: 1})
	_, sr := postJSON(t, srv.URL+"/jobs", `{"kind":"figure","fig":"6b","apps":6,"procs":[20,40],"timeout_ms":1}`)
	st := pollDone(t, srv.URL, sr.ID)
	if st.State != jobs.StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Errorf("state = %s, err = %q; want failed with deadline error", st.State, st.Error)
	}
}

// pollSweepDone polls a sweep's aggregate status until it leaves running.
func pollSweepDone(t *testing.T, base, id string) sweepInfo {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, data := get(t, base+"/sweeps/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /sweeps/%s = %d: %s", id, code, data)
		}
		var info sweepInfo
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatal(err)
		}
		if info.State != jobs.StateRunning {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck running: %+v", id, info)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardedSweep: a figure submitted with "shards":2 on a durable daemon
// fans out, merges, and serves a table byte-identical to the unsharded
// job's; resubmitting the sweep joins it.
func TestShardedSweep(t *testing.T) {
	cleanSrv, _ := newTestServer(t, jobs.Options{Workers: 1})
	_, cr := postJSON(t, cleanSrv.URL+"/jobs", tinyFigBody)
	if st := pollDone(t, cleanSrv.URL, cr.ID); st.State != jobs.StateDone {
		t.Fatalf("clean run: %s (%s)", st.State, st.Error)
	}
	_, want := get(t, cleanSrv.URL+"/jobs/"+cr.ID+"/artifacts/table.txt")

	srv, _ := newTestServer(t, jobs.Options{Workers: 2, Dir: t.TempDir()})
	body := `{"kind":"figure","fig":"6a","apps":2,"procs":[20],"seed":3,"shards":2}`
	code, sr := postJSON(t, srv.URL+"/jobs", body)
	if code != http.StatusAccepted || sr.Shards != 2 {
		t.Fatalf("POST sharded = %d, shards = %d", code, sr.Shards)
	}
	info := pollSweepDone(t, srv.URL, sr.ID)
	if info.State != jobs.StateDone {
		t.Fatalf("sweep state = %s (%s)", info.State, info.Error)
	}
	if info.Shards != 2 || len(info.Jobs) != 2 || info.Fig != "6a" {
		t.Errorf("sweep info = %+v", info)
	}
	for _, st := range info.Jobs {
		if st.State != jobs.StateDone {
			t.Errorf("shard job %s state = %s", st.ID, st.State)
		}
	}

	code, got := get(t, srv.URL+"/sweeps/"+sr.ID+"/artifacts/table.txt")
	if code != http.StatusOK {
		t.Fatalf("sweep artifact = %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sharded sweep table differs from unsharded job:\n%s\nwant:\n%s", got, want)
	}

	code, listing := get(t, srv.URL+"/sweeps")
	if code != http.StatusOK || !bytes.Contains(listing, []byte(sr.ID)) {
		t.Errorf("GET /sweeps (%d):\n%s", code, listing)
	}

	code, again := postJSON(t, srv.URL+"/jobs", body)
	if code != http.StatusAccepted || !again.Dedup || again.ID != sr.ID {
		t.Errorf("resubmitted sweep: code=%d dedup=%v id=%s (want dedup join of %s)",
			code, again.Dedup, again.ID, sr.ID)
	}
}

// TestShardedSweepErrors: sweep submissions that cannot work are 400s with
// the reason, and unknown sweeps are 404s.
func TestShardedSweepErrors(t *testing.T) {
	mem, _ := newTestServer(t, jobs.Options{Workers: 1})
	code, _ := postJSON(t, mem.URL+"/jobs", `{"kind":"figure","fig":"6a","shards":2}`)
	if code != http.StatusBadRequest {
		t.Errorf("sharded sweep on a stateless daemon = %d, want 400", code)
	}

	srv, _ := newTestServer(t, jobs.Options{Workers: 1, Dir: t.TempDir()})
	code, _ = postJSON(t, srv.URL+"/jobs", `{"kind":"figure","fig":"cc","shards":2}`)
	if code != http.StatusBadRequest {
		t.Errorf("non-shardable sharded figure = %d, want 400", code)
	}
	if code, _ := get(t, srv.URL+"/sweeps/nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown sweep = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/sweeps/nope/artifacts/table.txt"); code != http.StatusNotFound {
		t.Errorf("GET unknown sweep artifact = %d, want 404", code)
	}
}
