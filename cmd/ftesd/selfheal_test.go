package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/retry"
)

// TestDrainingRefusesSubmissions: once the drain flag flips, POST /jobs
// answers 503 with a Retry-After derived from the drain bound, while
// reads (status, health) keep working so watchers can follow the drain.
func TestDrainingRefusesSubmissions(t *testing.T) {
	srv, sched := newTestServer(t, jobs.Options{Workers: 1})
	_, sr := postJSON(t, srv.URL+"/jobs", tinyFigBody)
	pollDone(t, srv.URL, sr.ID)

	// Reach into the daemon exactly like the signal handler does.
	d, ok := srv.Config.Handler.(*daemon)
	if !ok {
		t.Fatalf("test server handler is %T, want *daemon", srv.Config.Handler)
	}
	d.drainBound = 25 * time.Second
	d.draining.Store(true)

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(tinyFigBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra != 25 {
		t.Errorf("Retry-After = %q, want 25", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("503 body carries no error: %v %q", err, body.Error)
	}

	// Reads stay available during the drain.
	if code, _ := get(t, srv.URL+"/jobs/"+sr.ID); code != http.StatusOK {
		t.Errorf("GET status while draining = %d", code)
	}
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("GET /healthz while draining = %d", code)
	}
	_ = sched
}

// pollState polls until the job reaches the given state.
func pollState(t *testing.T, base, id, want string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, data := get(t, base+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d: %s", id, code, data)
		}
		var st jobs.Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s, want %s", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQuarantineAndRetryEndpoint: a poisoned design document quarantines
// (permanent error, no budget burned), the status reports the attempt
// history, job.quarantined lands in the event log, POST /jobs/{id}/retry
// un-quarantines it, and retry of anything else is 404/409.
func TestQuarantineAndRetryEndpoint(t *testing.T) {
	events := obs.NewEventLog()
	srv, _ := newTestServer(t, jobs.Options{
		Workers: 1,
		Events:  events,
		Retry:   &retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})

	code, sr := postJSON(t, srv.URL+"/jobs", `{"kind":"design","spec":"this is not a specio document"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST poisoned design = %d", code)
	}
	st := pollState(t, srv.URL, sr.ID, jobs.StateQuarantined)
	if st.Attempts != 1 {
		t.Errorf("poisoned job attempts = %d, want 1 (permanent errors burn no budget)", st.Attempts)
	}
	if st.Error == "" {
		t.Error("quarantined status carries no error")
	}
	quarantined := false
	for _, ev := range events.Events(0) {
		if ev.Type == "job.quarantined" && ev.Job == sr.ID {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("no job.quarantined event in the log")
	}

	// Retry of a quarantined job is accepted and runs it again (to the
	// same quarantine — the document is still poison — with history kept).
	resp, err := http.Post(srv.URL+"/jobs/"+sr.ID+"/retry", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST retry = %d, want 200", resp.StatusCode)
	}
	st = pollState(t, srv.URL, sr.ID, jobs.StateQuarantined)
	if st.Attempts != 2 {
		t.Errorf("attempts after retry = %d, want 2 (monotonic)", st.Attempts)
	}

	// Unknown id → 404; a job not in quarantine → 409.
	resp, err = http.Post(srv.URL+"/jobs/nope/retry", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("retry unknown job = %d, want 404", resp.StatusCode)
	}
	_, ok := postJSON(t, srv.URL+"/jobs", tinyFigBody)
	pollDone(t, srv.URL, ok.ID)
	resp, err = http.Post(srv.URL+"/jobs/"+ok.ID+"/retry", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("retry of a done job = %d, want 409", resp.StatusCode)
	}
}
