// Command ftesd is the design-as-a-service daemon: the same fault-tolerant
// design explorations cmd/paperbench and cmd/ftopt run from flags, exposed
// as a multi-tenant HTTP/JSON job API backed by internal/jobs.
//
// Usage:
//
//	ftesd -addr :8080 -workers 4 -state /var/lib/ftesd
//
// API:
//
//	POST   /jobs                     submit a job; body is either a job
//	                                 envelope (see below) or a bare specio
//	                                 problem document (a design job)
//	GET    /jobs                     list all jobs
//	GET    /jobs/{id}                one job's status
//	GET    /jobs/{id}/artifacts/{name}   a finished job's artifact bytes
//	DELETE /jobs/{id}                cooperatively cancel a job
//	POST   /jobs/{id}/retry          un-quarantine a job (re-opens its
//	                                 retry budget; see -retry)
//	GET    /jobs/{id}/metrics        per-job introspection (obshttp):
//	       /jobs/{id}/progress       Prometheus metrics, progress JSON,
//	       /jobs/{id}/trace          Chrome trace snapshot
//	       /jobs/{id}/events         this job's lifecycle events (SSE)
//	GET    /events                   fleet-wide lifecycle event stream
//	                                 (server-sent events; ?since=0 replays
//	                                 the journal, durable across restarts
//	                                 with -state)
//	GET    /timeseries               sampled counter/gauge history
//	GET    /metrics /healthz ...     daemon-level introspection (scheduler
//	                                 queue depth, completions, pprof)
//
// The job envelope selects the run:
//
//	{"kind":"figure","fig":"cc"}                          a paperbench figure
//	{"kind":"figure","fig":"6a","apps":10,"procs":[20,40],"seed":1}
//	{"kind":"design","spec":{...specio...},"strategy":"OPT","max_cost":20}
//	{"tenant":"alice","priority":5,"timeout_ms":60000, ...}
//
// Jobs are content-addressed: submitting an identical spec twice returns
// the same job id and shares one underlying run ("dedup":true in the
// response). Figure artifacts are byte-identical to the tables paperbench
// prints for the same parameters — both binaries run the same
// internal/jobs code path.
//
// With -state DIR the daemon is durable: kill -9 mid-job, restart, and
// every in-flight job resumes from its journals with byte-identical
// artifacts. Tenancy is fair-share: tenants take round-robin turns, so
// one tenant's backlog cannot starve another's; within a tenant, higher
// priority runs first.
//
// With -retry N the daemon self-heals: a job failing with a retryable
// error (ENOSPC, torn writes, a journal still held by a dying worker) is
// re-enqueued with exponential backoff up to N attempts, then quarantined
// — held, with its attempt history, until POST /jobs/{id}/retry re-opens
// the budget. Attempt counts are journaled, so restarts never reset them.
//
// While draining (after the first SIGINT/SIGTERM), submissions are
// refused with 503 and a Retry-After header naming the drain bound, so
// clients know when to try the restarted daemon.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/evalcache"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/retry"
	"repro/internal/runctl"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ftesd:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ftesd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
	workers := fs.Int("workers", 1, "jobs run concurrently")
	state := fs.String("state", "", "durable state directory: submissions, completions and per-job rows are journaled here and in-flight jobs resume after a crash (empty = in-memory only)")
	drain := fs.Duration("drain", obshttp.DefaultDrainTimeout, "graceful-shutdown bound: how long in-flight HTTP requests and running jobs get to finish after SIGINT/SIGTERM")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job deadline when a submission does not set timeout_ms (0 = none)")
	logFormat := fs.String("log", "text", "structured log format on stderr: text, json or off")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	evalCacheDir := fs.String("eval-cache", "", "warm-start directory for the disk-backed evaluation cache shared by all jobs: repeated and resubmitted workloads skip recomputation (results are identical either way)")
	sample := fs.Duration("sample", time.Second, "interval of the /timeseries metrics sampler")
	retryN := fs.Int("retry", 0, "self-healing attempt budget: jobs failing with retryable errors re-enqueue with backoff up to N attempts, then quarantine until POST /jobs/{id}/retry (0 or 1 = every failure is terminal)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lg, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	var ec *evalcache.Cache
	if *evalCacheDir != "" {
		if ec, err = evalcache.Open(*evalCacheDir); err != nil {
			return err
		}
	}
	// The lifecycle event journal shares the daemon's durability story:
	// with -state it is an append-only CRC-framed file that replays on
	// restart, so /events?since=0 shows the fleet's history across
	// crashes; without -state it lives in memory like everything else.
	var events *obs.EventLog
	if *state != "" {
		// The event journal opens before the scheduler (which would
		// otherwise create the state dir), so create it here.
		if err := os.MkdirAll(*state, 0o755); err != nil {
			return err
		}
		if events, err = obs.OpenEventLog(filepath.Join(*state, "events.jsonl")); err != nil {
			return err
		}
	} else {
		events = obs.NewEventLog()
	}
	defer events.Close()
	var pol *retry.Policy
	if *retryN > 1 {
		pol = &retry.Policy{MaxAttempts: *retryN}
	}
	sched, err := jobs.New(jobs.Options{Workers: *workers, Dir: *state, Metrics: reg, Log: lg, EvalCache: ec, Events: events, Retry: pol})
	if err != nil {
		return err
	}
	if n := sched.Resumed(); n > 0 {
		fmt.Fprintf(stderr, "ftesd: resumed %d in-flight job(s) from %s\n", n, *state)
	}
	sampler := obs.NewSampler(reg, *sample, 0)
	sampler.Start()
	defer sampler.Stop()

	d := newDaemon(sched, reg, lg, *jobTimeout, events, sampler)
	d.drainBound = *drain
	srv, err := obshttp.ServeHandler(*addr, d, obshttp.Options{DrainTimeout: *drain})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ftesd: serving on %s\n", srv.URL())
	lg.Info("ftesd up", "addr", srv.Addr(), "workers", *workers, "state", *state)
	events.Emit("daemon.up", "", map[string]any{"addr": srv.Addr(), "workers": *workers})

	// Two-stage shutdown: the first signal drains HTTP and cancels running
	// jobs (they stay journaled as interrupted, to resume on next start);
	// a second signal exits immediately.
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	// Refuse new submissions (503 + Retry-After) before draining starts,
	// so nothing slips into the queue while running jobs wind down.
	d.draining.Store(true)
	fmt.Fprintf(stderr, "ftesd: shutdown — draining for up to %v (signal again to exit now)\n", *drain)
	go func() {
		<-ch
		fmt.Fprintln(stderr, "ftesd: second signal — exiting immediately")
		os.Exit(130)
	}()
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(stderr, "ftesd: http drain:", err)
	}
	closeCtx, cancel := contextWithTimeout(*drain)
	defer cancel()
	if err := sched.Close(closeCtx); err != nil {
		return err
	}
	events.Emit("daemon.down", "", nil)
	lg.Info("ftesd down")
	return nil
}

// daemon is the HTTP surface over one scheduler; split from run so tests
// drive it in-process through httptest.
type daemon struct {
	sched      *jobs.Scheduler
	reg        *obs.Registry
	lg         *obs.Logger
	jobTimeout time.Duration
	events     *obs.EventLog
	sampler    *obs.Sampler
	mux        *http.ServeMux

	// draining flips on the first shutdown signal: submissions are then
	// refused with 503 + Retry-After (drainBound, rounded up to seconds)
	// instead of being accepted by a scheduler about to close.
	draining   atomic.Bool
	drainBound time.Duration

	mu     sync.Mutex
	sweeps map[string]*jobs.ShardedHandle
}

func newDaemon(sched *jobs.Scheduler, reg *obs.Registry, lg *obs.Logger, jobTimeout time.Duration, events *obs.EventLog, sampler *obs.Sampler) *daemon {
	d := &daemon{sched: sched, reg: reg, lg: lg, jobTimeout: jobTimeout,
		events: events, sampler: sampler, mux: http.NewServeMux(),
		sweeps: make(map[string]*jobs.ShardedHandle)}
	d.mux.HandleFunc("POST /jobs", d.submit)
	d.mux.HandleFunc("GET /jobs", d.list)
	d.mux.HandleFunc("GET /jobs/{id}", d.status)
	d.mux.HandleFunc("DELETE /jobs/{id}", d.cancel)
	d.mux.HandleFunc("POST /jobs/{id}/retry", d.retryJob)
	d.mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", d.artifact)
	d.mux.HandleFunc("GET /jobs/{id}/{introspect...}", d.introspect)
	d.mux.HandleFunc("GET /sweeps", d.listSweeps)
	d.mux.HandleFunc("GET /sweeps/{id}", d.sweepStatus)
	d.mux.HandleFunc("GET /sweeps/{id}/artifacts/{name}", d.sweepArtifact)
	// Everything else — /metrics, /events, /timeseries, /healthz,
	// /debug/pprof, the index — is daemon-level introspection: the
	// scheduler's own instruments (queue depth, queue wait, completions),
	// the fleet-wide lifecycle event stream and the sampled counter
	// history.
	d.mux.Handle("/", obshttp.Handler(obshttp.Options{Registry: reg, Events: events, Sampler: sampler}))
	return d
}

func (d *daemon) ServeHTTP(w http.ResponseWriter, r *http.Request) { d.mux.ServeHTTP(w, r) }

// submitRequest is the job envelope. A body that is not an envelope but a
// bare specio problem document (it has an Application field and no kind)
// is accepted as {"kind":"design","spec":<body>}.
type submitRequest struct {
	Kind string `json:"kind"`

	// Figure jobs.
	Fig          string  `json:"fig,omitempty"`
	Apps         int     `json:"apps,omitempty"`
	Procs        []int   `json:"procs,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	RunWorkers   int     `json:"run_workers,omitempty"`
	AppTimeoutMs float64 `json:"app_timeout_ms,omitempty"`
	Markdown     bool    `json:"markdown,omitempty"`
	// Shards > 1 fans the figure out as a sharded sweep: one job per
	// shard, merged into the final table when the last worker finishes.
	// Needs -state (the shard directory lives there) and a shardable
	// figure (6a, 6b, 6c, 6d, runtime). Track it under /sweeps/{id}.
	Shards int `json:"shards,omitempty"`

	// Design jobs.
	Spec     json.RawMessage `json:"spec,omitempty"`
	Strategy string          `json:"strategy,omitempty"`
	MaxCost  float64         `json:"max_cost,omitempty"`
	Slack    string          `json:"slack,omitempty"`

	// Scheduling (not part of the job's content-addressed identity).
	Tenant    string  `json:"tenant,omitempty"`
	Priority  int     `json:"priority,omitempty"`
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// submitResponse acknowledges an accepted submission.
type submitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Dedup reports that this submission joined an already-known job with
	// the same content fingerprint instead of enqueuing a new run.
	Dedup bool `json:"dedup"`
	// Shards is set for sharded sweeps; the ID then names the sweep
	// (GET /sweeps/{id}), not an individual job.
	Shards int `json:"shards,omitempty"`
}

func (d *daemon) submit(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() {
		d.unavailable(w, errors.New("draining: daemon is shutting down, resubmit after restart"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	req, err := parseSubmit(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec := jobs.Spec{
		Kind: req.Kind,
		Fig:  req.Fig, Apps: req.Apps, Procs: req.Procs, Seed: req.Seed,
		Workers: req.Workers, RunWorkers: req.RunWorkers,
		AppTimeout: time.Duration(req.AppTimeoutMs * float64(time.Millisecond)),
		Markdown:   req.Markdown,
		Design:     req.Spec, Strategy: req.Strategy, MaxCost: req.MaxCost, Slack: req.Slack,
	}
	if spec.Kind == jobs.KindFigure && spec.Fig != "cc" {
		// The paperbench defaults, so {"kind":"figure","fig":"6a"} just works.
		if spec.Apps == 0 {
			spec.Apps = 10
		}
		if len(spec.Procs) == 0 {
			spec.Procs = []int{20, 40}
		}
		if spec.Seed == 0 {
			spec.Seed = 1
		}
	}
	timeout := d.jobTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs * float64(time.Millisecond))
	}
	so := jobs.SubmitOptions{
		Tenant:   req.Tenant,
		Priority: req.Priority,
		Timeout:  timeout,
	}
	if req.Shards > 1 {
		d.submitSharded(w, spec, req.Shards, so)
		return
	}
	h, err := d.sched.Submit(spec, so)
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			d.unavailable(w, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st := h.Status()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: h.ID(), State: st.State, Dedup: st.Submits > 1})
}

// unavailable refuses a request with 503 and a Retry-After header: the
// daemon is draining (or its scheduler already closed), and the drain
// bound is an honest estimate of when a restarted daemon will listen.
func (d *daemon) unavailable(w http.ResponseWriter, err error) {
	secs := int((d.drainBound + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// retryJob un-quarantines one job: its spec re-enqueues with a fresh
// retry-budget window (the attempt history stays monotonic).
func (d *daemon) retryJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h, err := d.sched.Retry(id)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrClosed):
			d.unavailable(w, err)
		default:
			code := http.StatusConflict
			if _, ok := d.sched.Get(id); !ok {
				code = http.StatusNotFound
			}
			httpError(w, code, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, h.Status())
}

// submitSharded fans a figure sweep out over N shard jobs and tracks the
// coordinator under /sweeps/{id}. Resubmitting the same sweep while it is
// live (or after it succeeded) joins it instead of double-fanning; a
// failed sweep is replaced and runs again, with each shard resuming from
// its journal.
func (d *daemon) submitSharded(w http.ResponseWriter, spec jobs.Spec, shards int, so jobs.SubmitOptions) {
	id, err := spec.Fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	d.mu.Lock()
	if h, ok := d.sweeps[id]; ok {
		failed := false
		select {
		case <-h.Done():
			_, werr := h.Wait(nil)
			failed = werr != nil
		default:
		}
		if !failed {
			d.mu.Unlock()
			writeJSON(w, http.StatusAccepted, submitResponse{
				ID: id, State: sweepState(h), Dedup: true, Shards: len(h.Shards())})
			return
		}
		delete(d.sweeps, id)
	}
	d.mu.Unlock()
	h, err := d.sched.SubmitSharded(spec, shards, so)
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			d.unavailable(w, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	d.mu.Lock()
	d.sweeps[id] = h
	d.mu.Unlock()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: sweepState(h), Shards: shards})
}

// sweepState is the coordinator's aggregate state: running until every
// worker finished and the merge produced the table.
func sweepState(h *jobs.ShardedHandle) string {
	select {
	case <-h.Done():
		if _, err := h.Wait(nil); err != nil {
			return jobs.StateFailed
		}
		return jobs.StateDone
	default:
		return jobs.StateRunning
	}
}

// sweepInfo is the aggregate status served at /sweeps/{id}: the sweep's
// own state plus every shard job's status, so an operator sees at a
// glance which slices are queued, running or done.
type sweepInfo struct {
	ID        string        `json:"id"`
	Fig       string        `json:"fig"`
	Shards    int           `json:"shards"`
	State     string        `json:"state"`
	Error     string        `json:"error,omitempty"`
	Dir       string        `json:"dir"`
	Jobs      []jobs.Status `json:"jobs"`
	Artifacts []string      `json:"artifacts,omitempty"`
}

func (d *daemon) sweepInfo(h *jobs.ShardedHandle) sweepInfo {
	shards := h.Shards()
	info := sweepInfo{
		ID: h.ID(), Shards: len(shards), State: sweepState(h), Dir: h.Dir(),
	}
	for _, sh := range shards {
		st := sh.Status()
		info.Fig = st.Fig
		info.Jobs = append(info.Jobs, st)
	}
	if info.State != jobs.StateRunning {
		art, err := h.Wait(nil)
		if err != nil {
			info.Error = err.Error()
		}
		for name := range art {
			info.Artifacts = append(info.Artifacts, name)
		}
		sort.Strings(info.Artifacts)
	}
	return info
}

func (d *daemon) getSweep(id string) (*jobs.ShardedHandle, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.sweeps[id]
	return h, ok
}

func (d *daemon) listSweeps(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	handles := make([]*jobs.ShardedHandle, 0, len(d.sweeps))
	for _, h := range d.sweeps {
		handles = append(handles, h)
	}
	d.mu.Unlock()
	sort.Slice(handles, func(a, b int) bool { return handles[a].ID() < handles[b].ID() })
	out := struct {
		Sweeps []sweepInfo `json:"sweeps"`
	}{Sweeps: []sweepInfo{}}
	for _, h := range handles {
		out.Sweeps = append(out.Sweeps, d.sweepInfo(h))
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *daemon) sweepStatus(w http.ResponseWriter, r *http.Request) {
	h, ok := d.getSweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no sweep %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, d.sweepInfo(h))
}

func (d *daemon) sweepArtifact(w http.ResponseWriter, r *http.Request) {
	h, ok := d.getSweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no sweep %s", r.PathValue("id")))
		return
	}
	select {
	case <-h.Done():
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("sweep %s is running; the merged table appears when every shard finishes", h.ID()))
		return
	}
	art, err := h.Wait(nil)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	name := r.PathValue("name")
	data, ok := art[name]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("sweep %s has no artifact %q", h.ID(), name))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(data) //nolint:errcheck — client gone is client's problem
}

// parseSubmit decodes a job envelope, falling back to treating the whole
// body as a bare specio document when it looks like one.
func parseSubmit(body []byte) (*submitRequest, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if _, isEnvelope := probe["kind"]; !isEnvelope {
		if _, isSpec := probe["Application"]; isSpec {
			return &submitRequest{Kind: jobs.KindDesign, Spec: body}, nil
		}
		return nil, fmt.Errorf("body is neither a job envelope (no \"kind\") nor a specio document (no \"Application\")")
	}
	var req submitRequest
	dec := json.NewDecoder(bytesReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid job envelope: %w", err)
	}
	return &req, nil
}

func (d *daemon) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobs.Status `json:"jobs"`
	}{d.sched.List()})
}

func (d *daemon) status(w http.ResponseWriter, r *http.Request) {
	h, ok := d.sched.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, h.Status())
}

func (d *daemon) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h, ok := d.sched.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	if !d.sched.Cancel(id) {
		// Already finished: cancellation is a no-op, report current state.
		writeJSON(w, http.StatusConflict, h.Status())
		return
	}
	// Cooperative: the job stops at its next row boundary; a queued job is
	// already final by the time Cancel returns.
	writeJSON(w, http.StatusOK, h.Status())
}

func (d *daemon) artifact(w http.ResponseWriter, r *http.Request) {
	h, ok := d.sched.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
		return
	}
	select {
	case <-h.Done():
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; artifacts appear when it finishes", h.ID(), h.Status().State))
		return
	}
	art, _ := h.Wait(nil)
	name := r.PathValue("name")
	data, ok := art[name]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("job %s has no artifact %q", h.ID(), name))
		return
	}
	if len(data) > 4 && string(data[:1]) == "{" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(data) //nolint:errcheck — client gone is client's problem
}

// introspect mounts the standard obshttp endpoints over one job's own
// instruments: /jobs/{id}/metrics, /jobs/{id}/progress, /jobs/{id}/trace
// (plus /healthz and /debug) scoped to exactly that run.
func (d *daemon) introspect(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h, ok := d.sched.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	inst := h.Job().Instruments()
	// The job's own event stream: the daemon log filtered down to this id
	// (EventJob), alongside its private metrics/progress/trace.
	sub := obshttp.Handler(obshttp.Options{Registry: inst.Metrics, Progress: inst.Progress, Tracer: inst.Tracer,
		Events: d.events, EventJob: id})
	http.StripPrefix("/jobs/"+id, sub).ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// newLogger builds the stderr structured logger selected by -log and
// -log-level ("off" disables logging).
func newLogger(stderr io.Writer, format, level string) (*obs.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	switch format {
	case "off", "":
		return nil, nil
	case "text":
		return obs.NewTextLogger(stderr, lvl), nil
	case "json":
		return obs.NewJSONLogger(stderr, lvl), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text, json or off)", format)
	}
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func httpError(w http.ResponseWriter, code int, err error) {
	// Canceled-job lookups read naturally as conflicts, not server faults.
	if errors.Is(err, runctl.ErrCanceled) {
		code = http.StatusConflict
	}
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
