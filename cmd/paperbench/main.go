// Command paperbench regenerates the experimental evaluation of the paper
// (Section 7): the acceptance-rate figures 6a–6d, the cruise-controller
// case study, and the ablation studies of this reproduction.
//
// Usage:
//
//	paperbench -fig 6a            # one figure
//	paperbench -fig all           # everything
//	paperbench -fig 6b -apps 150  # full paper scale (slow)
//	paperbench -fig cc -md        # Markdown tables
//	paperbench -fig 6a -cpuprofile cpu.pprof  # profile the run
//	paperbench -fig cc -run-workers 4         # parallelize inside each run
//	paperbench -fig 6b -serve :8080 -progress # watch a long sweep live
//	paperbench -fig cc -log json              # structured logs on stderr
//	paperbench -fig cc -bench-json bench.json # machine-readable record
//
// Figures: 6a–6d (the paper's acceptance sweeps), cc (cruise controller),
// policies (re-execution vs checkpointing vs replication), simulation
// (execution replay vs static bounds), runtime (MIN/MAX/OPT wall-clock
// with the evaluation-engine counters), ablation (slack sharing, tabu
// mapping, gradient guidance).
//
// Orchestration lives in internal/jobs: each figure is submitted as one
// Job to a single-worker scheduler and its rendered table comes back as
// the job's artifact, so paperbench and cmd/ftesd (the daemon form of the
// same runs) produce byte-identical tables from one code path.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// figures, for `go tool pprof`.
//
// Live introspection: -serve ADDR exposes /metrics (Prometheus text
// exposition), /progress (JSON), /trace (Chrome trace snapshot),
// /events (lifecycle events over server-sent events), /timeseries
// (sampled counter history), /healthz, /debug/vars and /debug/pprof for
// the duration of the run; -progress renders a throttled status line on
// stderr. Both are observation-only: the tables are byte-identical with
// or without them.
//
// Sharded sweeps trace across processes: every worker snapshots its
// trace into the shard directory, and -merge -trace FILE stitches all
// of them (plus the merge itself) into one timeline. -trace-parent (or
// $FTES_TRACE_PARENT) reconnects a worker's spans under a coordinator
// span across the process boundary.
//
// All diagnostics (-progress, -log, -metrics, the -serve banner) go to
// stderr or to files; stdout carries only the tables, so redirecting it
// stays golden-comparable.
//
// Absolute acceptance percentages depend on the synthetic workload
// calibration; the comparisons that matter are the relative ones (see
// EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"syscall"
	"time"

	"repro/internal/evalcache"
	"repro/internal/fsatomic"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/runctl"
	"repro/internal/runstate"
	"repro/internal/shard"
)

// stderr is where diagnostics (-progress, -log, -metrics, the -serve
// banner) go; a variable so tests can capture it.
var stderr io.Writer = os.Stderr

// testServeHook, when non-nil, receives the bound -serve address before
// the figures run; tests use it to scrape the endpoints mid-run.
var testServeHook func(addr string)

// testServeDrainHook, when non-nil, runs after the figures finish but
// before the introspection server drains — the last moment the final
// counters are still scrapeable.
var testServeDrainHook func()

func main() {
	ctx, stop := signalContext()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		if errors.Is(err, runctl.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// signalContext installs the two-stage interrupt protocol: the first
// SIGINT/SIGTERM cancels the returned context — the run stops at the
// next row boundary, flushes the partial tables and syncs the journal —
// and a second signal exits immediately.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "paperbench: interrupt — stopping at the next row, flushing partial results (interrupt again to exit now)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "paperbench: second interrupt — exiting immediately")
		os.Exit(130)
	}()
	return ctx, func() { signal.Stop(ch); cancel() }
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 6a, 6b, 6c, 6d, cc, policies, simulation, runtime, ablation or all")
	apps := fs.Int("apps", 10, "applications per process count (paper: 150)")
	procs := fs.String("procs", "20,40", "comma-separated process counts")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "parallel workers across applications (0 = all cores)")
	runWorkers := fs.Int("run-workers", 0, "parallel workers inside each design run (0 or 1 = sequential; results are identical either way)")
	md := fs.Bool("md", false, "render tables as Markdown instead of ASCII")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the selected figures to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the selected figures to this file")
	trace := fs.String("trace", "", "write a Chrome trace_event JSON of the selected figures to this file (load in Perfetto or chrome://tracing)")
	metrics := fs.Bool("metrics", false, "print the observability counters and duration histograms to stderr after the run")
	metricsOut := fs.String("metrics-out", "", "write the observability counters to this file instead of stderr (implies -metrics)")
	serve := fs.String("serve", "", "serve live introspection on this address (e.g. :8080 or 127.0.0.1:0) for the duration of the run: /metrics, /progress, /trace, /healthz, /debug/vars, /debug/pprof")
	serveWait := fs.Bool("serve-wait", false, "with -serve: keep the introspection server up after the run until SIGINT/SIGTERM, so the final counters can still be scraped")
	progress := fs.Bool("progress", false, "render a live progress status line on stderr")
	logFormat := fs.String("log", "", "emit structured logs on stderr: text or json")
	logLevel := fs.String("log-level", "info", "minimum structured-log level: debug, info, warn or error")
	benchJSON := fs.String("bench-json", "", "write a machine-readable benchmark record (figures, wall times, counters, version) to this JSON file")
	timeout := fs.Duration("timeout", 0, "overall run deadline; on expiry the run stops at the next row boundary and flushes partial tables (0 = none)")
	appTimeout := fs.Duration("app-timeout", 0, "per-application deadline; a timed-out application counts as rejected instead of aborting the sweep (0 = none)")
	journalPath := fs.String("journal", "", "journal completed experiment rows to this crash-safe append-only file")
	resume := fs.Bool("resume", false, "with -journal or -shard-dir: restore rows a previous interrupted run already journaled instead of recomputing them")
	shards := fs.Int("shards", 0, "shard the sweep this many ways; this process computes only shard -shard's rows, journaling them into -shard-dir (shardable figures: 6a, 6b, 6c, 6d, runtime)")
	shardIdx := fs.Int("shard", -1, "with -shards: this worker's shard index in [0, shards)")
	shardDir := fs.String("shard-dir", "", "with -shards: the sweep's shard directory (manifest + per-shard journals), shared by all workers")
	mergeDir := fs.String("merge", "", "merge the per-shard journals in this directory into the final table; computes nothing, and refuses (naming the incomplete shards) unless every shard finished")
	partial := fs.Bool("partial", false, "with -merge: degrade instead of refusing when shards are missing or damaged — absent rows render as '!' cells and incomplete.json (written next to the journals) names every missing row and its owning shard")
	heal := fs.Bool("heal", false, "self-healing coordinator: spawn one worker subprocess per shard (-shards/-shard-dir), restart dead or wedged workers with backoff until every slice's journal is complete, then merge in-process — the final table is byte-identical to a clean run")
	healAttempts := fs.Int("heal-attempts", 25, "with -heal: worker (re)starts allowed per shard before the sweep gives up")
	healStale := fs.Duration("heal-stale", 10*time.Second, "with -heal: how long a worker's lease heartbeat may go quiet before the supervisor declares it wedged and replaces it")
	evalCacheDir := fs.String("eval-cache", "", "warm-start directory for the disk-backed evaluation cache: memoized schedules/solutions are loaded from and flushed to it, so repeated runs skip recomputation (results are identical either way)")
	traceParent := fs.String("trace-parent", os.Getenv("FTES_TRACE_PARENT"), "cross-process parent span reference (traceID:spanID) this run's root spans attach to; a sweep coordinator passes it to its shard workers so the merged trace is one tree (default: $FTES_TRACE_PARENT)")
	sampleInterval := fs.Duration("sample-interval", time.Second, "with -serve: interval of the /timeseries metrics sampler")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tracer *obs.Tracer
	if *trace != "" || *serve != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if *metrics || *metricsOut != "" || *serve != "" || *benchJSON != "" {
		reg = obs.NewRegistry()
	}
	var prog *obs.Progress
	if *progress || *serve != "" || *benchJSON != "" {
		prog = obs.NewProgress()
	}
	lg, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *serveWait && *serve == "" {
		return fmt.Errorf("-serve-wait requires -serve")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: -memprofile:", err)
			}
		}()
	}

	var events *obs.EventLog
	var sampler *obs.Sampler
	if *serve != "" {
		// The event stream and time series exist for the lifetime of the
		// introspection server: /events narrates each figure job live and
		// /timeseries keeps a ring of counter snapshots.
		events = obs.NewEventLog()
		defer events.Close()
		sampler = obs.NewSampler(reg, *sampleInterval, 0)
		sampler.Start()
		defer sampler.Stop()
		srv, err := obshttp.Serve(*serve, obshttp.Options{
			Registry: reg, Progress: prog, Tracer: tracer,
			Events: events, Sampler: sampler,
		})
		if err != nil {
			return err
		}
		// Graceful teardown: stop admitting scrapes, give in-flight ones a
		// bounded drain, then force-close whatever is left.
		defer func() {
			if testServeDrainHook != nil {
				testServeDrainHook()
			}
			if err := srv.Drain(); err != nil {
				fmt.Fprintln(stderr, "paperbench: introspection drain:", err)
			}
		}()
		fmt.Fprintf(stderr, "paperbench: serving live introspection on %s\n", srv.URL())
		lg.Info("introspection server up", "url", srv.URL())
		if testServeHook != nil {
			testServeHook(srv.Addr())
		}
	}
	if *progress {
		stop := renderProgress(prog, stderr)
		defer stop()
	}

	base := jobs.Spec{Kind: jobs.KindFigure, Apps: *apps, Seed: *seed,
		Workers: *workers, RunWorkers: *runWorkers, AppTimeout: *appTimeout, Markdown: *md}
	for _, tok := range splitInts(*procs) {
		base.Procs = append(base.Procs, tok)
	}
	if len(base.Procs) == 0 {
		return fmt.Errorf("no process counts in -procs")
	}

	if *resume && *journalPath == "" && *shardDir == "" {
		return fmt.Errorf("-resume requires -journal or -shard-dir")
	}
	var rowJournal *runstate.Journal
	if *journalPath != "" {
		// The fingerprint pins the workload identity: resuming under a
		// different -apps/-procs/-seed is refused rather than silently
		// mixing incompatible rows.
		fp, err := runstate.Fingerprint(struct {
			Apps  int   `json:"apps"`
			Procs []int `json:"procs"`
			Seed  int64 `json:"seed"`
		}{base.Apps, base.Procs, base.Seed})
		if err != nil {
			return err
		}
		j, err := runstate.Open(*journalPath, fp, *resume)
		if err != nil {
			return err
		}
		defer j.Close()
		rowJournal = j
		if reg != nil {
			reg.GaugeFunc("journal_rows_restored", func() float64 { return float64(j.Restored()) })
			reg.GaugeFunc("journal_rows_appended", func() float64 { return float64(j.Appended()) })
		}
		if *resume && j.Restored() > 0 {
			fmt.Fprintf(stderr, "paperbench: resuming: %d journaled rows restored from %s\n", j.Restored(), *journalPath)
		}
	}

	var selected []string
	if *fig == "all" {
		selected = jobs.FigureOrder()
	} else if jobs.KnownFigure(*fig) {
		selected = []string{*fig}
	} else {
		return fmt.Errorf("unknown figure %q (want 6a, 6b, 6c, 6d, cc, policies, simulation, runtime, ablation or all)", *fig)
	}

	sharded := *shards != 0 || *shardIdx != -1 || *shardDir != ""
	if *mergeDir != "" {
		if sharded {
			return fmt.Errorf("-merge replays finished shard journals; it conflicts with the worker flags -shards/-shard/-shard-dir")
		}
		if *journalPath != "" || *resume {
			return fmt.Errorf("-merge conflicts with -journal/-resume (the shard directory is the journal)")
		}
	}
	if *partial && *mergeDir == "" {
		return fmt.Errorf("-partial requires -merge (it relaxes the merge, nothing else)")
	}
	if sharded || *mergeDir != "" {
		if len(selected) != 1 {
			return fmt.Errorf("sharded sweeps take exactly one -fig, not %q", *fig)
		}
		if !jobs.ShardableFigure(selected[0]) {
			return fmt.Errorf("figure %s is not shardable (its rows are not fully journaled; shardable: 6a, 6b, 6c, 6d, runtime)", selected[0])
		}
	}
	if *heal {
		if *mergeDir != "" {
			return fmt.Errorf("-heal runs the sweep; it conflicts with -merge")
		}
		if *shardIdx != -1 {
			return fmt.Errorf("-heal is the supervisor: it owns every slice and conflicts with -shard")
		}
		if *shards < 2 {
			return fmt.Errorf("-heal requires -shards ≥ 2, got %d", *shards)
		}
		if *shardDir == "" {
			return fmt.Errorf("-heal requires -shard-dir")
		}
		if *journalPath != "" {
			return fmt.Errorf("-journal conflicts with -heal (the shard journals live in the shard directory)")
		}
		if *healAttempts < 1 {
			return fmt.Errorf("-heal-attempts %d (want ≥ 1)", *healAttempts)
		}
		spec := base
		spec.Fig = selected[0]
		inst := &jobs.Instruments{Tracer: tracer, Metrics: reg, Progress: prog, Log: lg}
		return runHeal(ctx, w, healConfig{
			spec:       spec,
			shards:     *shards,
			dir:        *shardDir,
			attempts:   *healAttempts,
			staleAfter: *healStale,
			inst:       inst,
			trace:      *trace,
		})
	}
	if sharded {
		if *shards < 2 {
			return fmt.Errorf("-shards %d (want ≥ 2)", *shards)
		}
		if *shardIdx < 0 || *shardIdx >= *shards {
			return fmt.Errorf("-shard %d out of range [0, %d)", *shardIdx, *shards)
		}
		if *shardDir == "" {
			return fmt.Errorf("-shards requires -shard-dir")
		}
		if *journalPath != "" {
			return fmt.Errorf("-journal conflicts with -shard-dir (the shard journal lives in the shard directory)")
		}
		// The manifest pins (workload, figure, shard count); a worker whose
		// flags disagree with an existing manifest is refused before it can
		// write a single row into the wrong sweep.
		wfp, err := shard.WorkloadFingerprint(base.Apps, base.Procs, base.Seed)
		if err != nil {
			return err
		}
		m := shard.Manifest{FP: wfp, Fig: selected[0], Shards: *shards,
			Apps: base.Apps, Procs: base.Procs, Seed: base.Seed}
		if err := shard.EnsureManifest(*shardDir, m); err != nil {
			return err
		}
		j, err := runstate.Open(
			filepath.Join(*shardDir, shard.JournalName(*shardIdx, *shards)),
			shard.JournalFingerprint(wfp, *shardIdx, *shards), *resume)
		if err != nil {
			return err
		}
		defer j.Close()
		rowJournal = j
		base.ShardIndex, base.ShardCount = *shardIdx, *shards
		// Liveness lease: heartbeats while this worker computes, released
		// on clean exit. A -heal supervisor (or a jobs watchdog sharing the
		// directory) reads its mtime to tell dead from slow. Advisory — the
		// journal flock above is the actual mutual exclusion — so a failed
		// install is reported, not fatal.
		workerAttempt := 1
		if v, aerr := strconv.Atoi(os.Getenv("FTES_WORKER_ATTEMPT")); aerr == nil && v > 0 {
			workerAttempt = v
		}
		if lease, lerr := shard.AcquireLease(*shardDir, *shardIdx, *shards, workerAttempt, 0); lerr != nil {
			fmt.Fprintln(stderr, "paperbench: worker lease:", lerr)
		} else {
			defer lease.Release()
		}
		// A worker always traces, whether or not -trace asked for a local
		// file: its snapshot lands next to its journal so a later merge can
		// stitch the whole fleet into one timeline. The snapshot is written
		// on every exit path — an interrupted worker still leaves its
		// partial lane behind.
		if tracer == nil {
			tracer = obs.NewTracer()
		}
		tracer.SetProcessLabel(fmt.Sprintf("shard %d/%d", *shardIdx, *shards))
		defer func() {
			if err := writeWorkerTrace(tracer, *shardDir, *shardIdx, *shards); err != nil {
				fmt.Fprintln(stderr, "paperbench: worker trace snapshot:", err)
			}
		}()
		if reg != nil {
			reg.GaugeFunc("journal_rows_restored", func() float64 { return float64(j.Restored()) })
			reg.GaugeFunc("journal_rows_appended", func() float64 { return float64(j.Appended()) })
		}
		if *resume && j.Restored() > 0 {
			fmt.Fprintf(stderr, "paperbench: resuming shard %d/%d: %d journaled rows restored\n", *shardIdx, *shards, j.Restored())
		}
	}

	// Reconnect this process's root spans under the coordinator's span
	// when one was handed down (no-op on an empty ref).
	tracer.SetRemoteParent(*traceParent)

	// One single-worker scheduler runs the figures in order; the process
	// instruments ride along on every job, so -serve, -trace and -metrics
	// observe all figures in one place exactly as before.
	var ec *evalcache.Cache
	if *evalCacheDir != "" {
		if ec, err = evalcache.Open(*evalCacheDir); err != nil {
			return err
		}
	}
	sched, err := jobs.New(jobs.Options{Workers: 1, Metrics: reg, Log: lg, EvalCache: ec, Events: events})
	if err != nil {
		return err
	}
	defer sched.Close(context.Background())
	inst := &jobs.Instruments{Tracer: tracer, Metrics: reg, Progress: prog, Log: lg}

	type phaseTiming struct {
		Phase    string  `json:"phase"`
		ActiveMs float64 `json:"active_ms"`
	}
	type figTiming struct {
		Fig    string        `json:"fig"`
		WallMs float64       `json:"wall_ms"`
		Phases []phaseTiming `json:"phases,omitempty"`
	}
	var timings []figTiming
	for i, name := range selected {
		if i > 0 {
			fmt.Fprintln(w)
		}
		start := time.Now()
		phasesBefore := phaseActives(prog)
		spec := base
		spec.Fig = name
		var art jobs.Artifacts
		var err error
		if *mergeDir != "" {
			// Merge mode: reassemble the table from the finished per-shard
			// journals — no scheduler, no computation, byte-identical output.
			// -partial degrades (missing rows as '!') instead of refusing,
			// and leaves incomplete.json next to the journals.
			var mopts []jobs.MergeOpt
			if *partial {
				mopts = append(mopts, jobs.Partial)
			}
			art, err = jobs.MergeShards(ctx, spec, *mergeDir, *inst, mopts...)
			if rep, ok := art[jobs.ArtifactIncomplete]; ok && err == nil {
				path := filepath.Join(*mergeDir, jobs.ArtifactIncomplete)
				if werr := fsatomic.WriteFile(path, rep); werr != nil {
					fmt.Fprintln(stderr, "paperbench: incomplete report:", werr)
				} else {
					fmt.Fprintf(stderr, "paperbench: partial merge — gap report written to %s\n", path)
				}
			}
		} else {
			var h *jobs.Handle
			h, err = sched.Submit(spec, jobs.SubmitOptions{Context: ctx, Obs: inst, RowJournal: rowJournal})
			if err != nil {
				return err
			}
			// Wait on the job itself, not ctx: a canceled run still flushes its
			// deterministic partial table before the error surfaces.
			art, err = h.Wait(context.Background())
		}
		elapsed := time.Since(start)
		if _, werr := w.Write(art[jobs.ArtifactTable]); werr != nil && err == nil {
			err = werr
		}
		if err != nil {
			if errors.Is(err, runctl.ErrCanceled) {
				// The partial table is already rendered; make the interrupted
				// run resumable and report over stderr, keeping stdout golden.
				if rowJournal != nil {
					if serr := rowJournal.Sync(); serr != nil {
						fmt.Fprintln(stderr, "paperbench: journal sync:", serr)
					}
					if sharded {
						fmt.Fprintf(stderr, "paperbench: interrupted; %d rows journaled — rerun shard %d/%d with -resume to continue\n",
							rowJournal.Len(), *shardIdx, *shards)
					} else {
						fmt.Fprintf(stderr, "paperbench: interrupted; %d rows journaled — rerun with -resume -journal %s to continue\n",
							rowJournal.Len(), *journalPath)
					}
				}
			}
			return fmt.Errorf("%s: %w", jobs.FigureTitle(name), err)
		}
		ft := figTiming{Fig: name, WallMs: float64(elapsed) / float64(time.Millisecond)}
		if prog != nil && *benchJSON != "" {
			// Attribute this figure's wall time to the progress phases that
			// advanced during it: the delta of each phase's active window
			// (first tick to last tick) across the figure.
			for _, ph := range prog.Status().Phases {
				delta := ph.Active - phasesBefore[ph.Name]
				if delta > 0 {
					ft.Phases = append(ft.Phases, phaseTiming{
						Phase: ph.Name, ActiveMs: float64(delta) / float64(time.Millisecond)})
				}
			}
		}
		timings = append(timings, ft)
		fmt.Fprintf(w, "(%s regenerated in %v)\n", jobs.FigureTitle(name), elapsed.Round(time.Millisecond))
	}

	if *trace != "" {
		if *mergeDir != "" {
			// Merge mode stitches the fleet: this process's merge spans plus
			// every worker snapshot found in the shard directory, one
			// process lane each, cross-process parents resolved.
			n, err := writeMergedTrace(*trace, tracer, *mergeDir)
			if err != nil {
				return fmt.Errorf("-trace: %w", err)
			}
			fmt.Fprintf(w, "(trace: merged %d processes into %s)\n", n, *trace)
		} else {
			f, err := os.Create(*trace)
			if err != nil {
				return fmt.Errorf("-trace: %w", err)
			}
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("-trace: %w", err)
			}
			fmt.Fprintf(w, "(trace: %d spans written to %s)\n", tracer.SpanCount(), *trace)
		}
	}
	// The counter dump goes to stderr (or a file), never stdout: stdout
	// carries only the golden-compared tables.
	if *metrics || *metricsOut != "" {
		mw := stderr
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return fmt.Errorf("-metrics-out: %w", err)
			}
			defer f.Close()
			mw = f
		}
		fmt.Fprintln(mw, "metrics:")
		if err := reg.WriteText(mw); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		version, dirty := buildVersion()
		rec := struct {
			Version   string       `json:"version"`
			Dirty     bool         `json:"dirty,omitempty"`
			GoVersion string       `json:"go_version"`
			Figures   []figTiming  `json:"figures"`
			TotalMs   float64      `json:"total_ms"`
			Metrics   obs.Snapshot `json:"metrics"`
		}{
			Version:   version,
			Dirty:     dirty,
			GoVersion: runtime.Version(),
			Figures:   timings,
			Metrics:   reg.Snapshot(),
		}
		for _, ft := range timings {
			rec.TotalMs += ft.WallMs
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			return fmt.Errorf("-bench-json: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rec)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("-bench-json: %w", err)
		}
	}
	if *serveWait {
		fmt.Fprintln(stderr, "paperbench: run complete; serving until interrupted (-serve-wait)")
		<-ctx.Done()
	}
	return nil
}

// newLogger builds the stderr structured logger selected by -log and
// -log-level ("" format = logging disabled).
func newLogger(format, level string) (*obs.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	switch format {
	case "":
		return nil, nil
	case "text":
		return obs.NewTextLogger(stderr, lvl), nil
	case "json":
		return obs.NewJSONLogger(stderr, lvl), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text or json)", format)
	}
}

// buildVersion derives a git-describable version from the build info
// stamped by the Go toolchain ("unknown" outside a VCS build). dirty
// reports uncommitted changes in the build tree, so benchmark records
// can carry it as an explicit field instead of hiding it in a version
// suffix.
func buildVersion() (version string, dirty bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown", false
	}
	rev := ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			return bi.Main.Version, dirty
		}
		return "unknown", dirty
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev, dirty
}

// renderProgress starts the throttled stderr status-line renderer and
// returns a function that stops it and clears the line.
func renderProgress(p *obs.Progress, w io.Writer) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		width := 0
		draw := func() {
			line := p.Status().StatusLine()
			if line == "" {
				return
			}
			if len(line) > 160 {
				line = line[:160]
			}
			if len(line) > width {
				width = len(line)
			}
			fmt.Fprintf(w, "\r%-*s", width, line)
		}
		for {
			select {
			case <-stopCh:
				if width == 0 {
					// The run finished before the first tick; render the
					// final status once so captured stderr (CI logs, piped
					// output) still records where the time went.
					draw()
				}
				if width > 0 {
					fmt.Fprintf(w, "\r%*s\r", width, "")
				}
				return
			case <-tick.C:
				draw()
			}
		}
	}()
	return func() { close(stopCh); <-done }
}

// phaseActives snapshots each progress phase's active window, so a later
// snapshot can be diffed into per-figure phase durations.
func phaseActives(p *obs.Progress) map[string]time.Duration {
	if p == nil {
		return nil
	}
	out := map[string]time.Duration{}
	for _, ph := range p.Status().Phases {
		out[ph.Name] = ph.Active
	}
	return out
}

// writeWorkerTrace atomically snapshots a shard worker's trace into the
// sweep's shard directory under the slice's canonical trace name, where
// the merge step (and jobs.SubmitSharded coordinators) will find it.
func writeWorkerTrace(tr *obs.Tracer, dir string, index, shards int) error {
	dst := filepath.Join(dir, shard.TraceName(index, shards))
	return fsatomic.Install(dst, tr.WriteChromeTrace)
}

// writeMergedTrace stitches the merge process's own trace with every
// worker snapshot in the shard directory into one cross-process Chrome
// trace at path, returning how many process lanes it holds. Missing
// snapshots narrow the merge (a worker may predate tracing); an empty
// directory still yields the local lane.
func writeMergedTrace(path string, tr *obs.Tracer, dir string) (int, error) {
	inputs := []obs.TraceData{tr.TraceData()}
	names, err := filepath.Glob(filepath.Join(dir, "trace-*-of-*.json"))
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		td, rerr := obs.ReadTraceFile(name)
		if rerr != nil {
			fmt.Fprintf(stderr, "paperbench: worker trace %s unreadable: %v\n", name, rerr)
			continue
		}
		inputs = append(inputs, td)
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	err = obs.MergeTraces(f, inputs...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return len(inputs), nil
}

// splitInts parses a comma-separated list of positive ints, ignoring empty
// tokens.
func splitInts(s string) []int {
	var out []int
	cur := 0
	has := false
	flush := func() {
		if has && cur > 0 {
			out = append(out, cur)
		}
		cur, has = 0, false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			cur = cur*10 + int(r-'0')
			has = true
		case r == ',':
			flush()
		}
	}
	flush()
	return out
}
