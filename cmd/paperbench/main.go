// Command paperbench regenerates the experimental evaluation of the paper
// (Section 7): the acceptance-rate figures 6a–6d, the cruise-controller
// case study, and the ablation studies of this reproduction.
//
// Usage:
//
//	paperbench -fig 6a            # one figure
//	paperbench -fig all           # everything
//	paperbench -fig 6b -apps 150  # full paper scale (slow)
//	paperbench -fig cc -md        # Markdown tables
//	paperbench -fig 6a -cpuprofile cpu.pprof  # profile the run
//	paperbench -fig cc -run-workers 4         # parallelize inside each run
//
// Figures: 6a–6d (the paper's acceptance sweeps), cc (cruise controller),
// policies (re-execution vs checkpointing vs replication), simulation
// (execution replay vs static bounds), runtime (MIN/MAX/OPT wall-clock
// with the evaluation-engine counters), ablation (slack sharing, tabu
// mapping, gradient guidance).
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// figures, for `go tool pprof`.
//
// Absolute acceptance percentages depend on the synthetic workload
// calibration; the comparisons that matter are the relative ones (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 6a, 6b, 6c, 6d, cc, policies, simulation, runtime, ablation or all")
	apps := fs.Int("apps", 10, "applications per process count (paper: 150)")
	procs := fs.String("procs", "20,40", "comma-separated process counts")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "parallel workers across applications (0 = all cores)")
	runWorkers := fs.Int("run-workers", 0, "parallel workers inside each design run (0 or 1 = sequential; results are identical either way)")
	md := fs.Bool("md", false, "render tables as Markdown instead of ASCII")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the selected figures to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the selected figures to this file")
	trace := fs.String("trace", "", "write a Chrome trace_event JSON of the selected figures to this file (load in Perfetto or chrome://tracing)")
	metrics := fs.Bool("metrics", false, "print the observability counters and duration histograms after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: -memprofile:", err)
			}
		}()
	}

	cfg := experiments.Config{Apps: *apps, Seed: *seed, Workers: *workers, RunWorkers: *runWorkers, Metrics: reg}
	for _, tok := range splitInts(*procs) {
		cfg.Procs = append(cfg.Procs, tok)
	}
	if len(cfg.Procs) == 0 {
		return fmt.Errorf("no process counts in -procs")
	}

	// figSpan is the current figure's root span; the job closures read cfg
	// (and runCC reads figSpan) when they run, so the per-figure loop below
	// rebinds both before each job.
	var figSpan *obs.Span

	type job struct {
		name string
		run  func() error
	}
	render := func(t *experiments.Table) error {
		if *md {
			return t.RenderMarkdown(w)
		}
		return t.Render(w)
	}
	table := func(f func(experiments.Config) (*experiments.Table, error)) func() error {
		return func() error {
			t, err := f(cfg)
			if err != nil {
				return err
			}
			return render(t)
		}
	}
	jobs := map[string]job{
		"6a": {"Fig. 6a", table(experiments.Fig6a)},
		"6b": {"Fig. 6b", table(experiments.Fig6b)},
		"6c": {"Fig. 6c", table(experiments.Fig6c)},
		"6d": {"Fig. 6d", table(experiments.Fig6d)},
		"cc": {"Cruise controller", func() error { return runCC(w, render, *runWorkers, figSpan, reg) }},
		"runtime": {"Strategy runtime", func() error {
			t, err := experiments.RuntimeStudy(cfg, 1e-11, 25)
			if err != nil {
				return err
			}
			return render(t)
		}},
		"simulation": {"Simulation vs analysis", func() error {
			t, err := experiments.SimulationStudy(cfg, 1e-11, 200)
			if err != nil {
				return err
			}
			return render(t)
		}},
		"policies": {"Policy comparison", func() error {
			t, err := experiments.PolicyComparison(cfg, 1e-10, 0.5)
			if err != nil {
				return err
			}
			return render(t)
		}},
		"ablation": {"Ablations", func() error {
			t, err := experiments.AblationSlack(cfg, experiments.Point{SER: 1e-10, HPD: 25, ArC: 20})
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(w)
			t, err = experiments.AblationMapping(cfg, experiments.Point{SER: 1e-11, HPD: 25, ArC: 20})
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(w)
			t, err = experiments.AblationGradient(cfg, 1e-10)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			fmt.Fprintln(w)
			t, err = experiments.AblationBus(cfg, experiments.Point{SER: 1e-11, HPD: 25, ArC: 20})
			if err != nil {
				return err
			}
			return render(t)
		}},
	}
	order := []string{"6a", "6b", "6c", "6d", "cc", "policies", "simulation", "runtime", "ablation"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else if _, ok := jobs[*fig]; ok {
		selected = []string{*fig}
	} else {
		return fmt.Errorf("unknown figure %q (want 6a, 6b, 6c, 6d, cc, policies, simulation, runtime, ablation or all)", *fig)
	}

	for i, name := range selected {
		if i > 0 {
			fmt.Fprintln(w)
		}
		start := time.Now()
		figSpan = tracer.Start("fig." + name)
		cfg.Span = figSpan
		err := jobs[name].run()
		figSpan.End()
		if err != nil {
			return fmt.Errorf("%s: %w", jobs[name].name, err)
		}
		fmt.Fprintf(w, "(%s regenerated in %v)\n", jobs[name].name, time.Since(start).Round(time.Millisecond))
	}

	if tracer != nil {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		err = tracer.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		fmt.Fprintf(w, "(trace: %d spans written to %s)\n", tracer.SpanCount(), *trace)
	}
	if reg != nil {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "metrics:")
		if err := reg.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// runCC reproduces the cruise-controller case study. span and reg are the
// optional observability hooks (nil disables them): the three design runs
// nest under span and fold their counters into reg.
func runCC(w io.Writer, render func(*experiments.Table) error, runWorkers int, span *obs.Span, reg *obs.Registry) error {
	inst, err := cc.Instance()
	if err != nil {
		return err
	}
	t := experiments.NewTable("Cruise controller (32 processes on ETM/ABS/TCM, D=300 ms, rho=1-1.2e-5)",
		[]string{"strategy", "feasible", "cost", "schedule length (ms)"})
	var maxCost, optCost float64
	type strategyStats struct {
		s     core.Strategy
		stats string
	}
	var lines []strategyStats
	for _, s := range []core.Strategy{core.MIN, core.MAX, core.OPT} {
		res, err := core.Run(inst.App, inst.Platform, core.Options{
			Goal: inst.Goal, Strategy: s, Workers: runWorkers,
			ParentSpan: span, Metrics: reg,
		})
		if err != nil {
			return err
		}
		row := []string{s.String(), fmt.Sprint(res.Feasible), "-", "-"}
		if res.Feasible {
			row[2] = fmt.Sprintf("%g", res.Cost)
			row[3] = fmt.Sprintf("%.1f", res.Schedule.Length)
		}
		t.AddRow(row)
		lines = append(lines, strategyStats{s, res.EvalStats.String()})
		switch s {
		case core.MAX:
			maxCost = res.Cost
		case core.OPT:
			optCost = res.Cost
		}
	}
	if err := render(t); err != nil {
		return err
	}
	for _, l := range lines {
		fmt.Fprintf(w, "%s evaluator: %s\n", l.s, l.stats)
	}
	if maxCost > 0 && optCost > 0 {
		fmt.Fprintf(w, "OPT improves on MAX by %.0f%% in cost (paper: 66%%)\n", 100*(maxCost-optCost)/maxCost)
	}
	return nil
}

// splitInts parses a comma-separated list of positive ints, ignoring empty
// tokens.
func splitInts(s string) []int {
	var out []int
	cur := 0
	has := false
	flush := func() {
		if has && cur > 0 {
			out = append(out, cur)
		}
		cur, has = 0, false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			cur = cur*10 + int(r-'0')
			has = true
		case r == ',':
			flush()
		}
	}
	flush()
	return out
}
