package main

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runctl"
)

// TestRunJournalResumeByteIdentical: a run journaled to disk and then
// rerun with -resume produces byte-identical stdout without recomputing
// the journaled rows (the resumed run is near-instant; the identical
// bytes are the contract the CI smoke job checks after a real SIGINT).
func TestRunJournalResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	args := []string{"-fig", "runtime", "-apps", "2", "-procs", "20", "-seed", "3", "-journal", journal}

	var first strings.Builder
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if err := run(context.Background(), append(args, "-resume"), &second); err != nil {
		t.Fatal(err)
	}
	a, b := normalize(first.String()), normalize(second.String())
	if a != b {
		t.Errorf("resumed output differs:\n%s\nwant:\n%s", b, a)
	}
}

// TestRunResumeRejectsChangedWorkload: the journal fingerprint pins
// -apps/-procs/-seed; resuming under different parameters must fail
// instead of mixing rows from incompatible sweeps.
func TestRunResumeRejectsChangedWorkload(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "policies", "-apps", "1", "-procs", "20", "-seed", "3", "-journal", journal}, &sb); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-fig", "policies", "-apps", "1", "-procs", "20", "-seed", "4", "-journal", journal, "-resume"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resume with a different seed: err = %v, want fingerprint mismatch", err)
	}
}

func TestRunResumeRequiresJournal(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-fig", "runtime", "-resume"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-journal") {
		t.Errorf("err = %v, want -resume requires -journal", err)
	}
}

// TestRunCanceledFlushesPartialTable: a canceled run exits with the
// typed error and still renders the (empty-prefix) partial table on
// stdout, with "-" in the unmeasured cells.
func TestRunCanceledFlushesPartialTable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-fig", "6a", "-apps", "2", "-procs", "20", "-seed", "3"}, &sb)
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 6a") || !strings.Contains(out, " - ") {
		t.Errorf("canceled run did not flush a partial table:\n%s", out)
	}
}

// TestRunTimeoutFlag: -timeout bounds the whole run through the same
// cancellation path as an interrupt.
func TestRunTimeoutFlag(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-fig", "6a", "-apps", "2", "-procs", "20", "-seed", "3", "-timeout", "1ns"}, &sb)
	if !errors.Is(err, runctl.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestRunAppTimeoutFlag: an unmeetable per-app deadline rejects every
// application but completes the sweep normally.
func TestRunAppTimeoutFlag(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-fig", "6a", "-apps", "2", "-procs", "20", "-seed", "3", "-app-timeout", "1ns"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0") {
		t.Errorf("expected all-rejected rates:\n%s", sb.String())
	}
}
