package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// durRE matches Go duration strings (possibly compound, e.g. "1m30s") so
// the timing columns can be masked: wall-clock values vary run to run.
var durRE = regexp.MustCompile(`(\d+(\.\d+)?(ns|µs|us|ms|s|m|h))+`)

// normalize makes paperbench output stable across machines: duration
// tokens become DUR, and because the table column widths derive from the
// masked strings, runs of spaces and dashes are collapsed too.
func normalize(s string) string {
	s = durRE.ReplaceAllString(s, "DUR")
	s = regexp.MustCompile(` {2,}`).ReplaceAllString(s, "  ")
	s = regexp.MustCompile(`-{4,}`).ReplaceAllString(s, "----")
	var sb strings.Builder
	for _, line := range strings.Split(s, "\n") {
		sb.WriteString(strings.TrimRight(line, " "))
		sb.WriteString("\n")
	}
	return strings.TrimRight(sb.String(), "\n") + "\n"
}

// checkGolden compares the normalized output against testdata/<name>;
// `go test -run TestGolden -update` regenerates the files so formatting
// or metric changes show up as reviewable diffs.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	norm := normalize(got)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(norm), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if norm != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, norm, want)
	}
}

// TestGoldenCC pins the cruise-controller tables: strategy feasibility,
// costs, schedule lengths and the evaluator counters are deterministic;
// only the timing figures are masked.
func TestGoldenCC(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cc.golden", sb.String())
}

// TestGoldenRuntime pins the runtime-study table shape and its
// deterministic counter columns on a small batch.
func TestGoldenRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the strategy-runtime study")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "runtime", "-apps", "2", "-procs", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runtime.golden", sb.String())
}
