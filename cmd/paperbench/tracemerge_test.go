package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/shard"
)

// readTraceEvents parses a Chrome trace file into its event list.
func readTraceEvents(t *testing.T, path string) []obs.Event {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("%s is not valid trace JSON: %v", path, err)
	}
	return doc.TraceEvents
}

// asSpanID reads a span/parent id out of parsed JSON (float64 after the
// round trip).
func asSpanID(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case float64:
		return int64(n), true
	}
	return 0, false
}

// TestShardedTraceMergeCLI is the CLI acceptance path of the fleet trace:
// two worker processes run a 2-shard runtime sweep, each snapshotting its
// trace into the shard directory; -merge -trace stitches them with the
// merge process into one timeline — three process lanes, globally unique
// span ids, every parent resolved, timestamps monotone per lane.
func TestShardedTraceMergeCLI(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	for idx := 0; idx < 2; idx++ {
		runOut(t, append(shardArgs("runtime"),
			"-shards", "2", "-shard", fmt.Sprint(idx), "-shard-dir", dir)...)
		snap := filepath.Join(dir, shard.TraceName(idx, 2))
		if _, err := os.Stat(snap); err != nil {
			t.Fatalf("worker %d left no trace snapshot: %v", idx, err)
		}
	}
	tracePath := filepath.Join(t.TempDir(), "merged.json")
	out := runOut(t, append(shardArgs("runtime"), "-merge", dir, "-trace", tracePath)...)
	if !strings.Contains(out, "(trace: merged 3 processes into") {
		t.Errorf("merge stdout missing trace line:\n%s", out)
	}

	events := readTraceEvents(t, tracePath)
	lanes := map[int]string{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			name, _ := ev.Args["name"].(string)
			lanes[ev.PID] = name
		}
	}
	if len(lanes) != 3 {
		t.Fatalf("merged trace has %d process lanes (%v), want 3 (merge + 2 workers)", len(lanes), lanes)
	}
	workerLanes := map[int]bool{}
	for pid, name := range lanes {
		if strings.HasPrefix(name, "shard ") {
			workerLanes[pid] = true
		}
	}
	if len(workerLanes) != 2 {
		t.Fatalf("worker lanes = %v, want 2 shard lanes in %v", workerLanes, lanes)
	}

	spanIDs := map[int64]bool{}
	figSpans := map[int]int{} // worker pid → fig.runtime span count
	lastTS := map[[2]int]float64{}
	for _, ev := range events {
		if ev.TS < 0 {
			t.Errorf("event %q has negative timestamp %v", ev.Name, ev.TS)
		}
		lane := [2]int{ev.PID, ev.TID}
		if ev.TS < lastTS[lane] {
			t.Errorf("lane %v timestamps not monotone: %q at %v after %v", lane, ev.Name, ev.TS, lastTS[lane])
		}
		lastTS[lane] = ev.TS
		if ev.Ph != "X" {
			continue
		}
		id, ok := asSpanID(ev.Args["span_id"])
		if !ok {
			t.Fatalf("span %q has no span_id", ev.Name)
		}
		if spanIDs[id] {
			t.Errorf("span id %d appears twice", id)
		}
		spanIDs[id] = true
		if ev.Name == "fig.runtime" && workerLanes[ev.PID] {
			figSpans[ev.PID]++
		}
	}
	for pid := range workerLanes {
		if figSpans[pid] != 1 {
			t.Errorf("worker pid %d has %d fig.runtime spans, want 1", pid, figSpans[pid])
		}
	}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if p, ok := asSpanID(ev.Args["parent_id"]); ok && !spanIDs[p] {
			t.Errorf("span %q parent %d not present in merged trace", ev.Name, p)
		}
	}
}

// TestWorkerTraceParent: a worker launched with -trace-parent records the
// coordinator's span reference on its root spans, so a later merge that
// includes the coordinator's trace reconnects them.
func TestWorkerTraceParent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	runOut(t, append(shardArgs("6a"),
		"-shards", "2", "-shard", "0", "-shard-dir", dir,
		"-trace-parent", "feedc0de-1-2:7")...)
	events := readTraceEvents(t, filepath.Join(dir, shard.TraceName(0, 2)))
	var roots, withRef int
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if _, hasParent := ev.Args["parent_id"]; hasParent {
			continue
		}
		roots++
		if ref, _ := ev.Args["parent_ref"].(string); ref == "feedc0de-1-2:7" {
			withRef++
		}
	}
	if roots == 0 || withRef != roots {
		t.Errorf("%d/%d root spans carry the trace parent ref", withRef, roots)
	}
}
