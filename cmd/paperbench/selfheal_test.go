package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// incompleteReport mirrors the schema of the -partial gap report.
type incompleteReport struct {
	Fig      string `json:"fig"`
	Shards   int    `json:"shards"`
	Complete bool   `json:"complete"`
	Present  int    `json:"present_rows"`
	Missing  []struct {
		Key   string `json:"key"`
		Shard int    `json:"shard"`
	} `json:"missing_rows"`
	Reasons map[string]string `json:"shard_reasons"`
}

// TestPartialMergeDegrades: with one shard's journal gone, the strict
// merge refuses while -partial emits a degraded table ("!" cells for the
// missing rows) plus incomplete.json naming every gap and its owning
// shard; on a complete sweep -partial matches the strict merge and the
// report says complete.
func TestPartialMergeDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	dir := filepath.Join(t.TempDir(), "sweep")
	const shards = 3
	for idx := 0; idx < shards; idx++ {
		runOut(t, append(shardArgs("6a"),
			"-shards", fmt.Sprint(shards), "-shard", fmt.Sprint(idx), "-shard-dir", dir)...)
	}

	// Complete sweep: -partial is byte-identical to strict, report clean.
	strict := runOut(t, append(shardArgs("6a"), "-merge", dir)...)
	partial := runOut(t, append(shardArgs("6a"), "-merge", dir, "-partial")...)
	if normalize(partial) != normalize(strict) {
		t.Errorf("-partial on a complete sweep differs from strict:\n%s\nvs\n%s", partial, strict)
	}
	rep := readReport(t, dir)
	if !rep.Complete || len(rep.Missing) != 0 || len(rep.Reasons) != 0 {
		t.Errorf("complete sweep report = %+v", rep)
	}

	// Lose shard 0 (the shard owning most rows of this tiny workload):
	// strict refuses, -partial degrades.
	if err := os.Remove(filepath.Join(dir, "shard-0000-of-0003.jsonl")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), append(shardArgs("6a"), "-merge", dir), &sb); err == nil ||
		!strings.Contains(err.Error(), "merge refused") {
		t.Fatalf("strict merge of gapped sweep: %v, want refusal", err)
	}
	degraded := runOut(t, append(shardArgs("6a"), "-merge", dir, "-partial")...)
	if !strings.Contains(degraded, "!") {
		t.Errorf("degraded table has no ! cells:\n%s", degraded)
	}
	rep = readReport(t, dir)
	if rep.Complete {
		t.Error("gapped sweep reported complete")
	}
	if rep.Fig != "6a" || rep.Shards != shards {
		t.Errorf("report identity = %s/%d", rep.Fig, rep.Shards)
	}
	if len(rep.Missing) == 0 {
		t.Fatal("no missing rows named")
	}
	for _, m := range rep.Missing {
		if m.Shard != 0 {
			t.Errorf("missing row %q attributed to shard %d, want 0", m.Key, m.Shard)
		}
	}
	if why, ok := rep.Reasons["0"]; !ok || !strings.Contains(why, "missing") {
		t.Errorf("shard_reasons = %v, want shard 0 named with a missing-journal reason", rep.Reasons)
	}
	if rep.Present == 0 {
		t.Error("degraded merge served no rows at all")
	}

	// -partial without -merge is refused.
	if err := run(context.Background(), append(shardArgs("6a"), "-partial"), &sb); err == nil ||
		!strings.Contains(err.Error(), "-partial") {
		t.Errorf("-partial without -merge: %v, want flag error", err)
	}
}

func readReport(t *testing.T, dir string) incompleteReport {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "incomplete.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep incompleteReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("incomplete.json: %v\n%s", err, data)
	}
	return rep
}

// syncWriter serializes concurrent worker stderr streams into one buffer.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestHealConvergence is the self-healing acceptance test: the -heal
// supervisor drives real worker subprocesses that SIGKILL themselves
// every second journal append (injected via FTES_FAULTS, so every
// incarnation lands exactly one durable row before dying), restarts them
// with backoff until every slice journal is complete, and the merged
// table is byte-identical to a clean unsharded run.
func TestHealConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	args := []string{"-fig", "runtime", "-apps", "4", "-procs", "20,40", "-seed", "3"}
	want := normalize(runOut(t, args...))

	// Workers re-exec this test binary (workerEnv) and inherit the
	// failpoint spec; the supervisor itself appends nothing, so the armed
	// kill only ever fires inside workers.
	t.Setenv(workerEnv, "1")
	t.Setenv("FTES_FAULTS", "runstate.append=kill:every=2")

	// Capture the supervisor's narration to prove the kills really landed.
	sw := &syncWriter{}
	old := stderr
	stderr = sw
	defer func() { stderr = old }()

	dir := filepath.Join(t.TempDir(), "sweep")
	got := normalize(runOut(t, append(args,
		"-shards", "3", "-shard-dir", dir, "-heal",
		"-heal-attempts", "40", "-heal-stale", "10s")...))
	if got != want {
		t.Errorf("healed sweep differs from clean run:\n%s\nwant:\n%s", got, want)
	}
	if log := sw.String(); !strings.Contains(log, "restarting in") {
		t.Errorf("no worker was ever restarted — the chaos never fired:\n%s", log)
	}
}

// TestHealFlagValidation: -heal conflicts and bounds fail fast.
func TestHealFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		args []string
		want string
	}{
		{append(shardArgs("6a"), "-heal"), "-shards"},
		{append(shardArgs("6a"), "-heal", "-shards", "2"), "-shard-dir"},
		{append(shardArgs("6a"), "-heal", "-shards", "2", "-shard-dir", dir, "-shard", "0"), "-shard"},
		{append(shardArgs("6a"), "-heal", "-shards", "2", "-shard-dir", dir, "-merge", dir), "-merge"},
		{append(shardArgs("6a"), "-heal", "-shards", "2", "-shard-dir", dir, "-journal", dir + "/j.jsonl"), "-journal"},
		{append(shardArgs("6a"), "-heal", "-shards", "2", "-shard-dir", dir, "-heal-attempts", "0"), "-heal-attempts"},
		{append(shardArgs("cc"), "-heal", "-shards", "2", "-shard-dir", dir), "not shardable"},
	}
	for _, tc := range cases {
		var sb strings.Builder
		err := run(context.Background(), tc.args, &sb)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
