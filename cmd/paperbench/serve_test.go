package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// captureStderr redirects the package's stderr writer into a buffer for
// the duration of one test.
func captureStderr(t *testing.T) *syncBuffer {
	t.Helper()
	old := stderr
	buf := &syncBuffer{}
	stderr = buf
	t.Cleanup(func() { stderr = old })
	return buf
}

// syncBuffer is a locked bytes.Buffer: the progress renderer goroutine
// writes to stderr concurrently with the test reading it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeFlag is the acceptance check for the live-introspection layer:
// with -serve active during -fig cc, /healthz answers 200, /metrics is
// scrapeable and ends up with the run's counters, /progress advances
// monotonically — and the tables are byte-identical to a run without
// -serve.
func TestServeFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	captureStderr(t)

	get := func(base, path string) (int, string, error) {
		resp, err := http.Get("http://" + base + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}

	type probe struct {
		healthOK    bool
		scrapes     int
		progressOK  bool
		monotonic   bool
		lastCurrent int64
		promSeen    map[string]bool
		finalStatus obs.ProgressStatus
	}
	promTokens := []string{"core_archs_explored_total", "core_runs_total",
		`progress_current{phase="cc.strategies"}`, "evalengine_evaluations_total"}
	pr := probe{promSeen: map[string]bool{}, monotonic: true, lastCurrent: -1}
	scrape := func(addr string) {
		if code, _, err := get(addr, "/healthz"); err == nil && code == http.StatusOK {
			pr.healthOK = true
		}
		if code, body, err := get(addr, "/metrics"); err == nil && code == http.StatusOK {
			pr.scrapes++
			for _, tok := range promTokens {
				if strings.Contains(body, tok) {
					pr.promSeen[tok] = true
				}
			}
		}
		if code, body, err := get(addr, "/progress"); err == nil && code == http.StatusOK {
			var st obs.ProgressStatus
			if json.Unmarshal([]byte(body), &st) == nil {
				pr.progressOK = true
				var total int64
				for _, phs := range st.Phases {
					total += phs.Current
				}
				if total < pr.lastCurrent {
					pr.monotonic = false
				}
				pr.lastCurrent = total
				pr.finalStatus = st
			}
		}
	}
	// The server shuts down the moment the figures finish, so the polling
	// loop's scrapes race with run progress: on a slow box it may only get
	// one or two in before the run ends. The drain hook stops the loop and
	// takes one guaranteed final sample while the server is still up — that
	// sample carries the run's final counters and progress phases.
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	testServeHook = func(addr string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				scrape(addr)
				time.Sleep(10 * time.Millisecond)
			}
		}()
		testServeDrainHook = func() {
			stopOnce.Do(func() { close(stop) })
			wg.Wait()
			scrape(addr)
		}
	}
	defer func() { testServeHook, testServeDrainHook = nil, nil }()

	var served, plain strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-serve", "127.0.0.1:0"}, &served); err != nil {
		t.Fatal(err)
	}
	stopOnce.Do(func() { close(stop) })
	wg.Wait()
	if err := run(context.Background(), []string{"-fig", "cc"}, &plain); err != nil {
		t.Fatal(err)
	}

	if !pr.healthOK {
		t.Error("/healthz never answered 200 during the run")
	}
	if pr.scrapes == 0 {
		t.Fatal("/metrics was never scraped successfully")
	}
	if !pr.progressOK {
		t.Fatal("/progress never decoded")
	}
	if !pr.monotonic {
		t.Error("/progress total current went backwards")
	}
	phases := map[string]obs.PhaseStatus{}
	for _, phs := range pr.finalStatus.Phases {
		phases[phs.Name] = phs
	}
	if phases["cc.strategies"].Current == 0 {
		t.Errorf("cc.strategies never ticked: %+v", pr.finalStatus)
	}
	if phases["core.archs"].Current == 0 || phases["mapping.iterations"].Current == 0 {
		t.Errorf("per-run phases never ticked: %+v", pr.finalStatus)
	}
	for _, want := range promTokens {
		if !pr.promSeen[want] {
			t.Errorf("no /metrics scrape ever contained %q (%d scrapes)", want, pr.scrapes)
		}
	}

	// -serve must not perturb stdout at all: byte-identical tables modulo
	// wall-clock lines.
	keep := func(s string) string {
		var sb strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "evaluator:") || strings.Contains(line, "regenerated in") {
				continue
			}
			sb.WriteString(line)
			sb.WriteString("\n")
		}
		return sb.String()
	}
	if keep(served.String()) != keep(plain.String()) {
		t.Errorf("-serve changed stdout:\n--- served ---\n%s\n--- plain ---\n%s",
			served.String(), plain.String())
	}
}

// TestMetricsKeepsGolden is the -metrics interleaving regression: the
// dump goes to stderr, so stdout of `-metrics -fig cc` must still match
// testdata/cc.golden byte for byte.
func TestMetricsKeepsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	errBuf := captureStderr(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-metrics"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cc.golden", sb.String())
	if !strings.Contains(errBuf.String(), "metrics:") ||
		!strings.Contains(errBuf.String(), "core.runs 3") {
		t.Errorf("metrics dump missing from stderr:\n%s", errBuf.String())
	}
}

// TestBenchJSON checks the machine-readable benchmark record.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-bench-json", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
		Figures   []struct {
			Fig    string  `json:"fig"`
			WallMs float64 `json:"wall_ms"`
			Phases []struct {
				Phase    string  `json:"phase"`
				ActiveMs float64 `json:"active_ms"`
			} `json:"phases"`
		} `json:"figures"`
		TotalMs float64      `json:"total_ms"`
		Metrics obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("-bench-json output not JSON: %v", err)
	}
	if rec.Version == "" || rec.GoVersion == "" {
		t.Errorf("record lacks version fields: %+v", rec)
	}
	if len(rec.Figures) != 1 || rec.Figures[0].Fig != "cc" || rec.Figures[0].WallMs <= 0 {
		t.Errorf("figures = %+v", rec.Figures)
	}
	// The record attributes the figure's time to its progress phases: cc
	// ticks the "cc.strategies" phase once per strategy.
	var ccPhase bool
	for _, ph := range rec.Figures[0].Phases {
		if ph.Phase == "cc.strategies" {
			ccPhase = true
			if ph.ActiveMs <= 0 {
				t.Errorf("cc.strategies active_ms = %v, want > 0", ph.ActiveMs)
			}
		}
	}
	if !ccPhase {
		t.Errorf("figure phases lack cc.strategies: %+v", rec.Figures[0].Phases)
	}
	if rec.TotalMs <= 0 {
		t.Errorf("total_ms = %v", rec.TotalMs)
	}
	if rec.Metrics.Counters["core.runs"] != 3 {
		t.Errorf("metrics.counters[core.runs] = %d, want 3", rec.Metrics.Counters["core.runs"])
	}
	if rec.Metrics.Histograms["core.run"].Count != 3 {
		t.Errorf("metrics.histograms[core.run].count = %d, want 3",
			rec.Metrics.Histograms["core.run"].Count)
	}
}

// TestLogFlag: -log json emits one JSON record per line on stderr with
// the run-lifecycle messages; stdout stays golden.
func TestLogFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	errBuf := captureStderr(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-log", "json", "-log-level", "debug"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cc.golden", sb.String())
	out := errBuf.String()
	msgs := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v (%q)", err, line)
		}
		if m, ok := rec["msg"].(string); ok {
			msgs[m] = true
		}
	}
	for _, want := range []string{"figure start", "figure done", "core.run done"} {
		if !msgs[want] {
			t.Errorf("log stream missing %q records (got %v)", want, msgs)
		}
	}
}

// TestLogFlagValidation: bad -log / -log-level values must error out.
func TestLogFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-log", "xml"}, &sb); err == nil {
		t.Error("want error for -log xml")
	}
	if err := run(context.Background(), []string{"-fig", "cc", "-log", "text", "-log-level", "loud"}, &sb); err == nil {
		t.Error("want error for -log-level loud")
	}
}

// TestProgressFlag: -progress renders status lines on stderr and leaves
// stdout untouched.
func TestProgressFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	errBuf := captureStderr(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-progress"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cc.golden", sb.String())
	if !strings.Contains(errBuf.String(), "cc.strategies") {
		t.Errorf("no progress line on stderr:\n%q", errBuf.String())
	}
}
