package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// workerEnv re-enters run() when the test binary is exec'd as a sharded
// worker, so the chaos test can SIGKILL a real process mid-row.
const workerEnv = "PAPERBENCH_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// shardArgs is the common workload of the sharded tests (mirrors the
// resume tests' tiny runtime sweep).
func shardArgs(fig string) []string {
	return []string{"-fig", fig, "-apps", "2", "-procs", "20", "-seed", "3"}
}

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

// TestShardedSweepByteIdentical: for several shard counts, concurrent
// in-process workers in a random start order fill a shard directory and
// -merge reproduces the single-process table byte-for-byte (durations
// masked — the runtime figure measures wall time).
func TestShardedSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	want := normalize(runOut(t, shardArgs("6a")...))
	rng := rand.New(rand.NewSource(17))
	for _, shards := range []int{2, 3, 7} {
		dir := filepath.Join(t.TempDir(), "sweep")
		var wg sync.WaitGroup
		errs := make([]error, shards)
		for _, idx := range rng.Perm(shards) {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				args := append(shardArgs("6a"),
					"-shards", fmt.Sprint(shards), "-shard", fmt.Sprint(idx), "-shard-dir", dir)
				var sb strings.Builder
				errs[idx] = run(context.Background(), args, &sb)
			}(idx)
		}
		wg.Wait()
		for idx, err := range errs {
			if err != nil {
				t.Fatalf("shards=%d: worker %d: %v", shards, idx, err)
			}
		}
		got := normalize(runOut(t, append(shardArgs("6a"), "-merge", dir)...))
		if got != want {
			t.Errorf("shards=%d: merged output differs:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}

// tearJournalTail truncates a few bytes off the shard journal, simulating
// a row torn mid-write by the kill; the header line is never touched.
func tearJournalTail(t *testing.T, path string, rng *rand.Rand) {
	t.Helper()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	header := bytes.IndexByte(data, '\n')
	if header < 0 || len(data) <= header+1 {
		return // header-only journal; nothing to tear
	}
	cut := 1 + rng.Intn(30)
	if keep := len(data) - cut; keep > header {
		if err := os.Truncate(path, int64(keep)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardChaosKillResume is the crash-safety acceptance test: real
// worker processes are SIGKILLed at random points, their journal tails
// torn, and restarted with -resume until they finish; the merge still
// produces the single-process table byte-for-byte.
func TestShardChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep")
	}
	want := normalize(runOut(t, shardArgs("runtime")...))
	dir := filepath.Join(t.TempDir(), "sweep")
	rng := rand.New(rand.NewSource(29))

	const shards = 2
	for idx := 0; idx < shards; idx++ {
		journal := filepath.Join(dir, fmt.Sprintf("shard-%04d-of-%04d.jsonl", idx, shards))
		killed := 0
		for attempt := 0; ; attempt++ {
			if attempt > 20 {
				t.Fatalf("shard %d did not converge in %d attempts", idx, attempt)
			}
			args := append(shardArgs("runtime"),
				"-shards", fmt.Sprint(shards), "-shard", fmt.Sprint(idx), "-shard-dir", dir)
			if attempt > 0 {
				args = append(args, "-resume")
			}
			cmd := exec.Command(os.Args[0], args...)
			cmd.Env = append(os.Environ(), workerEnv+"=1")
			var errBuf bytes.Buffer
			cmd.Stderr = &errBuf
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// SIGKILL the first runs at a random point mid-sweep; after two
			// kills let the worker run to completion so the loop terminates.
			var timer *time.Timer
			if killed < 2 {
				delay := time.Duration(100+rng.Intn(1200)) * time.Millisecond
				timer = time.AfterFunc(delay, func() { cmd.Process.Signal(syscall.SIGKILL) })
			}
			err := cmd.Wait()
			if timer != nil {
				timer.Stop()
			}
			if err == nil {
				break
			}
			if ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus); ok &&
				ws.Signaled() && ws.Signal() == syscall.SIGKILL {
				killed++
				tearJournalTail(t, journal, rng)
				continue
			}
			t.Fatalf("shard %d attempt %d: %v\n%s", idx, attempt, err, errBuf.String())
		}
		if killed == 0 {
			t.Logf("shard %d finished before any kill landed (fast machine); crash path untested this run", idx)
		}
	}

	got := normalize(runOut(t, append(shardArgs("runtime"), "-merge", dir)...))
	if got != want {
		t.Errorf("post-chaos merged output differs:\n%s\nwant:\n%s", got, want)
	}
}

// TestMergeRefusesIncompleteSweep: with one of two shards never run, the
// merge fails naming the missing shard instead of emitting a table.
func TestMergeRefusesIncompleteSweep(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	runOut(t, append(shardArgs("6a"), "-shards", "2", "-shard", "0", "-shard-dir", dir)...)
	var sb strings.Builder
	err := run(context.Background(), append(shardArgs("6a"), "-merge", dir), &sb)
	if err == nil || !strings.Contains(err.Error(), "merge refused") ||
		!strings.Contains(err.Error(), "shard 1/2") {
		t.Errorf("merge of incomplete sweep: %v, want refusal naming shard 1/2", err)
	}
}

// TestMergeRefusesWrongWorkload: merging with flags that fingerprint a
// different workload than the manifest is refused.
func TestMergeRefusesWrongWorkload(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	for idx := 0; idx < 2; idx++ {
		runOut(t, append(shardArgs("6a"), "-shards", "2", "-shard", fmt.Sprint(idx), "-shard-dir", dir)...)
	}
	var sb strings.Builder
	err := run(context.Background(),
		[]string{"-fig", "6a", "-apps", "2", "-procs", "20", "-seed", "4", "-merge", dir}, &sb)
	if err == nil || !strings.Contains(err.Error(), "holds workload") {
		t.Errorf("merge with wrong seed: %v, want workload mismatch", err)
	}
}

// TestWorkerRefusesWrongManifest: a worker whose flags disagree with the
// sweep's manifest is refused before it can write a row.
func TestWorkerRefusesWrongManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	runOut(t, append(shardArgs("6a"), "-shards", "2", "-shard", "0", "-shard-dir", dir)...)
	var sb strings.Builder
	err := run(context.Background(), append(shardArgs("6a"),
		"-shards", "3", "-shard", "1", "-shard-dir", dir), &sb)
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("worker with mismatched shard count: %v, want manifest refusal", err)
	}
}

// TestShardFlagValidation: malformed shard/merge invocations fail fast.
func TestShardFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		args []string
		want string
	}{
		{append(shardArgs("cc"), "-shards", "2", "-shard", "0", "-shard-dir", dir), "not shardable"},
		{append(shardArgs("6a"), "-shards", "1", "-shard", "0", "-shard-dir", dir), "-shards 1"},
		{append(shardArgs("6a"), "-shards", "2", "-shard", "2", "-shard-dir", dir), "out of range"},
		{append(shardArgs("6a"), "-shards", "2", "-shard", "0"), "-shard-dir"},
		{append(shardArgs("6a"), "-shards", "2", "-shard", "0", "-shard-dir", dir, "-journal", dir+"/j.jsonl"), "-journal conflicts"},
		{append(shardArgs("6a"), "-merge", dir, "-shards", "2", "-shard", "0", "-shard-dir", dir), "conflicts"},
		{append(shardArgs("6a"), "-merge", dir, "-journal", dir+"/j.jsonl"), "conflicts"},
		{[]string{"-fig", "all", "-shards", "2", "-shard", "0", "-shard-dir", dir}, "exactly one -fig"},
	}
	for _, tc := range cases {
		var sb strings.Builder
		err := run(context.Background(), tc.args, &sb)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
