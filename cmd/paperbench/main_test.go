package main

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSplitInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"20,40", []int{20, 40}},
		{"20", []int{20}},
		{"", nil},
		{",,", nil},
		{" 20 , 40 ", []int{20, 40}},
	}
	for _, c := range cases {
		if got := splitInts(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "9z"}, &sb); err == nil {
		t.Error("want error for unknown figure")
	}
	if err := run(context.Background(), []string{"-fig", "6a", "-procs", ","}, &sb); err == nil {
		t.Error("want error for empty process list")
	}
}

func TestCCFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"MIN", "MAX", "OPT", "false", "OPT improves on MAX"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestProfileFlags: -cpuprofile and -memprofile must produce non-empty
// pprof files covering the run.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a design strategy")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "runtime", "-apps", "1", "-procs", "20",
		"-cpuprofile", cpu, "-memprofile", mem}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
			continue
		}
		// pprof profiles are gzip-compressed protobufs; checking the gzip
		// magic catches a truncated or never-finalized write. The heap
		// profile is taken after runtime.GC(), so it reflects retained
		// memory rather than not-yet-collected garbage.
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s does not start with the gzip magic (got % x)", path, data[:min(2, len(data))])
		}
	}
	// The runtime figure reports the evaluation-engine counters.
	out := sb.String()
	for _, want := range []string{"cache hit", "sfp built/reused", "MIN", "MAX", "OPT"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestRunWorkersFlag: -run-workers parallelizes inside each design run
// and must not change the reported tables.
func TestRunWorkersFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs design strategies twice")
	}
	var seq, par strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-fig", "cc", "-run-workers", "3"}, &par); err != nil {
		t.Fatal(err)
	}
	// Strip the engine-counter and timing lines (parallel runs report
	// speculative work and wall time differently); the tables and the
	// cost-improvement line must be identical.
	keep := func(s string) string {
		var sb strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "evaluator:") || strings.Contains(line, "regenerated in") {
				continue
			}
			sb.WriteString(line)
			sb.WriteString("\n")
		}
		return sb.String()
	}
	if keep(seq.String()) != keep(par.String()) {
		t.Errorf("-run-workers changed the output:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.String(), par.String())
	}
}

func TestTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "6c", "-apps", "1", "-procs", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 6c") || !strings.Contains(out, "OPT") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
