package main

// Self-healing sweep supervisor (-heal): the chaos-tolerant front end of
// sharded sweeps. The supervisor re-execs itself once per shard as a
// worker subprocess (-shards/-shard/-shard-dir -resume), watches worker
// exits and lease heartbeats, and restarts dead or wedged workers with
// capped exponential backoff until every slice's journal is complete —
// then merges in-process and prints the table, byte-identical to a clean
// unsharded run. Each restart resumes the slice's journal, so every
// attempt strictly shrinks the remaining work and convergence needs only
// that a worker occasionally survives long enough to journal one row.

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/retry"
	"repro/internal/runctl"
	"repro/internal/shard"
)

// healConfig parameterizes one supervised sweep.
type healConfig struct {
	spec       jobs.Spec // base spec with Fig set, shard coordinates zero
	shards     int
	dir        string
	attempts   int // worker (re)starts allowed per shard
	staleAfter time.Duration
	inst       *jobs.Instruments
	trace      string // -trace output path ("" = none)
}

// slot states of one supervised shard.
const (
	slotBackoff = iota // waiting to (re)spawn
	slotRunning
	slotDone
)

type healSlot struct {
	state    int
	attempts int       // spawns so far
	next     time.Time // earliest respawn (slotBackoff)
	started  time.Time // last spawn (slotRunning)
	cmd      *exec.Cmd
}

// workerExit is one worker subprocess finishing, however it died.
type workerExit struct {
	idx int
	err error // nil = exit 0
}

// runHeal supervises the sweep to completion and writes the merged table
// (and timing line, same stdout shape as a clean run) to w.
func runHeal(ctx context.Context, w io.Writer, cfg healConfig) error {
	start := time.Now()
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("-heal: locate own binary: %w", err)
	}
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		return fmt.Errorf("-heal: shard dir: %w", err)
	}

	ph := cfg.inst.Progress.Phase("heal.workers")
	ph.SetTotal(int64(cfg.shards))

	slots := make([]healSlot, cfg.shards)
	now := time.Now()
	for i := range slots {
		slots[i] = healSlot{state: slotBackoff, next: now}
	}
	// Deterministically jittered backoff between restarts of one slice;
	// the budget itself is checked against cfg.attempts below.
	pol := retry.Policy{MaxAttempts: cfg.attempts, BaseDelay: 200 * time.Millisecond, MaxDelay: 3 * time.Second}

	exits := make(chan workerExit, cfg.shards)
	spawn := func(i int) error {
		sl := &slots[i]
		sl.attempts++
		args := workerArgs(cfg.spec, i, cfg.shards, cfg.dir)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = io.Discard // the worker's partial table; only journals matter
		cmd.Stderr = stderr
		cmd.Env = append(os.Environ(), "FTES_WORKER_ATTEMPT="+strconv.Itoa(sl.attempts))
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("-heal: start shard %d/%d worker: %w", i, cfg.shards, err)
		}
		sl.state = slotRunning
		sl.started = time.Now()
		sl.cmd = cmd
		fmt.Fprintf(stderr, "paperbench: heal: shard %d/%d worker pid %d up (attempt %d/%d)\n",
			i, cfg.shards, cmd.Process.Pid, sl.attempts, cfg.attempts)
		go func(i int, cmd *exec.Cmd) { exits <- workerExit{i, cmd.Wait()} }(i, cmd)
		return nil
	}

	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		now := time.Now()
		alive := 0
		for i := range slots {
			sl := &slots[i]
			switch sl.state {
			case slotDone:
				continue
			case slotBackoff:
				if !now.Before(sl.next) {
					if err := spawn(i); err != nil {
						killAll(slots)
						return err
					}
				}
			case slotRunning:
				// Wedged-worker detection: a live process whose lease
				// heartbeat went quiet is stuck (deadlock, unkillable I/O);
				// replace it like a dead one. The age guard keeps a freshly
				// spawned worker (lease not yet written) off the radar.
				if now.Sub(sl.started) > cfg.staleAfter {
					if stale, info := shard.LeaseStale(cfg.dir, i, cfg.shards, cfg.staleAfter); stale && info.PID == sl.cmd.Process.Pid {
						fmt.Fprintf(stderr, "paperbench: heal: shard %d/%d worker pid %d wedged (lease stale), replacing\n",
							i, cfg.shards, info.PID)
						_ = sl.cmd.Process.Kill()
					}
				}
			}
			alive++
		}
		if alive == 0 {
			break
		}
		select {
		case <-ctx.Done():
			killAll(slots)
			return fmt.Errorf("-heal: %w", runctl.Err(ctx))
		case we := <-exits:
			sl := &slots[we.idx]
			sl.cmd = nil
			if we.err == nil {
				sl.state = slotDone
				ph.Add(1)
				fmt.Fprintf(stderr, "paperbench: heal: shard %d/%d complete\n", we.idx, cfg.shards)
				continue
			}
			if sl.attempts >= cfg.attempts {
				killAll(slots)
				return fmt.Errorf("-heal: shard %d/%d still failing after %d attempts: %w",
					we.idx, cfg.shards, sl.attempts, we.err)
			}
			delay := pol.Delay(sl.attempts)
			sl.state = slotBackoff
			sl.next = time.Now().Add(delay)
			fmt.Fprintf(stderr, "paperbench: heal: shard %d/%d worker died (%v), restarting in %v\n",
				we.idx, cfg.shards, we.err, delay.Round(time.Millisecond))
		case <-tick.C:
		}
	}
	ph.Done()

	// Every journal is complete: merge in-process, byte-identical to a
	// clean run of the same spec.
	art, err := jobs.MergeShards(ctx, cfg.spec, cfg.dir, *cfg.inst)
	if err != nil {
		return fmt.Errorf("-heal: merge after convergence: %w", err)
	}
	if _, err := w.Write(art[jobs.ArtifactTable]); err != nil {
		return err
	}
	fmt.Fprintf(w, "(%s regenerated in %v)\n", jobs.FigureTitle(cfg.spec.Fig), time.Since(start).Round(time.Millisecond))
	if cfg.trace != "" {
		n, terr := writeMergedTrace(cfg.trace, cfg.inst.Tracer, cfg.dir)
		if terr != nil {
			return fmt.Errorf("-trace: %w", terr)
		}
		fmt.Fprintf(w, "(trace: merged %d processes into %s)\n", n, cfg.trace)
	}
	return nil
}

// workerArgs renders the re-exec flag set of one shard worker. Note the
// supervisor passes `-shards N -shard i` while itself running with
// `-heal -shards N` and no -shard: external chaos scripts can target
// workers alone by matching the "-shard <idx>" pair.
func workerArgs(spec jobs.Spec, idx, shards int, dir string) []string {
	procs := make([]string, len(spec.Procs))
	for i, p := range spec.Procs {
		procs[i] = strconv.Itoa(p)
	}
	args := []string{
		"-fig", spec.Fig,
		"-apps", strconv.Itoa(spec.Apps),
		"-procs", strings.Join(procs, ","),
		"-seed", strconv.FormatInt(spec.Seed, 10),
		"-shards", strconv.Itoa(shards),
		"-shard", strconv.Itoa(idx),
		"-shard-dir", dir,
		"-resume",
	}
	if spec.Workers != 0 {
		args = append(args, "-workers", strconv.Itoa(spec.Workers))
	}
	if spec.RunWorkers != 0 {
		args = append(args, "-run-workers", strconv.Itoa(spec.RunWorkers))
	}
	if spec.AppTimeout > 0 {
		args = append(args, "-app-timeout", spec.AppTimeout.String())
	}
	return args
}

// killAll hard-stops every still-running worker (supervisor giving up or
// interrupted; their journals stay resumable for the next attempt).
func killAll(slots []healSlot) {
	for i := range slots {
		if slots[i].state == slotRunning && slots[i].cmd != nil && slots[i].cmd.Process != nil {
			_ = slots[i].cmd.Process.Signal(syscall.SIGKILL)
		}
	}
}
