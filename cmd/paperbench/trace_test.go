package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceEvent mirrors the Chrome trace_event entries internal/obs emits.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestTraceFlag is the acceptance check for the observability layer:
// `paperbench -fig cc -trace cc.json` must write valid Chrome trace_event
// JSON whose spans form the documented taxonomy (fig.cc → core.run → arch
// → mapping.optimize → iteration → redundancy-opt) with every child
// time-contained in its parent, and the instrumented run must print the
// same tables as an uninstrumented one.
func TestTraceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cc.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	var traced, plain strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-trace", path, "-metrics-out", metricsPath}, &traced); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-fig", "cc"}, &plain); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	id := func(ev traceEvent, key string) (int64, bool) {
		v, ok := ev.Args[key].(float64)
		return int64(v), ok
	}
	byID := map[int64]traceEvent{}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete (X)", ev.Name, ev.Ph)
		}
		sid, ok := id(ev, "span_id")
		if !ok {
			t.Fatalf("event %q has no span_id", ev.Name)
		}
		byID[sid] = ev
		counts[ev.Name]++
	}
	// The cc figure runs three strategies over a multi-candidate
	// exploration; each taxonomy level must be present.
	for _, name := range []string{"fig.cc", "core.run", "arch", "mapping.optimize", "iteration", "redundancy-opt"} {
		if counts[name] == 0 {
			t.Errorf("no %q spans in trace (got %v)", name, counts)
		}
	}
	if counts["core.run"] != 3 {
		t.Errorf("core.run spans = %d, want 3 (MIN, MAX, OPT)", counts["core.run"])
	}

	// Span nesting: every parent link resolves, the child is time-contained
	// in the parent, and the parent's name is the taxonomy's.
	wantParent := map[string]string{
		"core.run":         "fig.cc",
		"arch":             "core.run",
		"mapping.optimize": "arch",
		"greedy-initial":   "mapping.optimize",
		"iteration":        "mapping.optimize",
	}
	const eps = 1e-3 // µs slack for float rounding
	for _, ev := range doc.TraceEvents {
		pid, ok := id(ev, "parent_id")
		if !ok {
			if ev.Name != "fig.cc" {
				t.Errorf("non-root span %q has no parent", ev.Name)
			}
			continue
		}
		parent, ok := byID[pid]
		if !ok {
			t.Fatalf("span %q has dangling parent id %d", ev.Name, pid)
		}
		if ev.TS < parent.TS-eps || ev.TS+ev.Dur > parent.TS+parent.Dur+eps {
			t.Errorf("span %q [%v, %v] not contained in parent %q [%v, %v]",
				ev.Name, ev.TS, ev.TS+ev.Dur, parent.Name, parent.TS, parent.TS+parent.Dur)
		}
		if want := wantParent[ev.Name]; want != "" && parent.Name != want {
			t.Errorf("span %q has parent %q, want %q", ev.Name, parent.Name, want)
		}
		// redundancy-opt hangs off either the iteration (tabu neighborhood)
		// or the mapping.optimize span (initial evaluation).
		if ev.Name == "redundancy-opt" && parent.Name != "iteration" && parent.Name != "mapping.optimize" && parent.Name != "worker" {
			t.Errorf("redundancy-opt has parent %q", parent.Name)
		}
	}

	// Instrumentation must not change the reported results: the tables and
	// summary lines of the traced run match the plain run (the traced run
	// additionally prints the trace report, and timing lines differ; the
	// metrics dump goes to -metrics-out, never stdout).
	keep := func(s string) string {
		var sb strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "evaluator:") || strings.Contains(line, "regenerated in") ||
				strings.Contains(line, "trace:") {
				continue
			}
			sb.WriteString(line)
			sb.WriteString("\n")
		}
		return strings.TrimRight(sb.String(), "\n")
	}
	if keep(traced.String()) != keep(plain.String()) {
		t.Errorf("-trace changed the tables:\n--- traced ---\n%s\n--- plain ---\n%s",
			traced.String(), plain.String())
	}
	// The metrics dump (in its own file) must report the run's headline
	// counters and the live gauges.
	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core.runs 3", "evalengine.evaluations", "mapping.iterations",
		"core.run count=3", "evalengine.live.cache_entries"} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, mdata)
		}
	}
	if strings.Contains(traced.String(), "metrics:") {
		t.Error("metrics dump leaked into stdout")
	}
}

// TestTraceFlagParallel: tracing a -run-workers run must still produce a
// decodable trace with resolvable parents (worker spans are concurrent
// siblings), and must not perturb the tables.
func TestTraceFlagParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full design strategies")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cc.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-fig", "cc", "-run-workers", "3", "-trace", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	byID := map[int64]traceEvent{}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byID[int64(ev.Args["span_id"].(float64))] = ev
		counts[ev.Name]++
	}
	if counts["worker"] == 0 {
		t.Error("parallel trace has no worker spans")
	}
	for _, ev := range doc.TraceEvents {
		if pv, ok := ev.Args["parent_id"].(float64); ok {
			if _, ok := byID[int64(pv)]; !ok {
				t.Fatalf("span %q has dangling parent id %d", ev.Name, int64(pv))
			}
		}
	}
	if !strings.Contains(sb.String(), "OPT improves on MAX") {
		t.Errorf("missing summary line in:\n%s", sb.String())
	}
}
