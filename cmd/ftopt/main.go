// Command ftopt runs the fault-tolerant design optimization on a JSON
// problem specification (see cmd/appgen for producing one) and prints the
// selected architecture, hardening levels, process mapping, re-execution
// counts and static schedule.
//
// Usage:
//
//	ftopt -spec problem.json [-strategy OPT|MIN|MAX] [-arc 20]
//	      [-slack shared|per-process] [-schedule]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/appmodel"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/execsim"
	"repro/internal/gantt"
	"repro/internal/policyopt"
	"repro/internal/sched"
	"repro/internal/specio"
	"repro/internal/ttp"
)

func main() {
	// SIGINT/SIGTERM cancels the optimization; it stops at the next
	// candidate architecture and reports the cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftopt:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ftopt", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the JSON problem specification (required)")
	strategy := fs.String("strategy", "OPT", "design strategy: OPT, MIN or MAX")
	arc := fs.Float64("arc", 0, "maximum architecture cost (0 = unbounded)")
	slack := fs.String("slack", "shared", "recovery slack model: shared or per-process")
	showSchedule := fs.Bool("schedule", false, "print the full static schedule")
	showGantt := fs.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
	dotPath := fs.String("dot", "", "write the mapped task graph as Graphviz DOT to this path")
	simulate := fs.Int("simulate", 0, "run this many simulated iterations with adversarial in-budget faults")
	simSeed := fs.Int64("simseed", 1, "fault-injection seed for -simulate")
	policies := fs.Bool("policies", false, "additionally optimize per-process FT policies (checkpointing/replication) on the final design")
	chiAlpha := fs.Float64("chialpha", 1, "checkpoint overheads χ=α in ms for -policies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}

	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	defer f.Close()
	spec, err := specio.Read(f)
	if err != nil {
		return err
	}

	opts := core.Options{Goal: spec.Goal(), MaxCost: *arc}
	switch *strategy {
	case "OPT":
		opts.Strategy = core.OPT
	case "MIN":
		opts.Strategy = core.MIN
	case "MAX":
		opts.Strategy = core.MAX
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch *slack {
	case "shared":
		opts.Model = sched.SlackShared
	case "per-process":
		opts.Model = sched.SlackPerProcess
	default:
		return fmt.Errorf("unknown slack model %q", *slack)
	}

	res, err := core.RunContext(ctx, spec.Application, spec.Platform, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "application: %s (%d processes, %d graphs)\n",
		spec.Application.Name, spec.Application.NumProcesses(), len(spec.Application.Graphs))
	fmt.Fprintf(w, "strategy:    %s  (reliability goal 1-%.3g per %.0f ms)\n",
		opts.Strategy, spec.Goal().Gamma, spec.Goal().Tau)
	fmt.Fprintf(w, "explored:    %d architectures, %d redundancy evaluations\n",
		res.ArchsExplored, res.Evaluations)
	if !res.Feasible {
		fmt.Fprintln(w, "result:      INFEASIBLE — no architecture meets the deadline, reliability goal and cost bound")
		return nil
	}
	fmt.Fprintf(w, "result:      feasible, cost %g\n", res.Cost)
	fmt.Fprintf(w, "architecture: %s\n", res.Arch)
	for j, node := range res.Arch.Nodes {
		var procs []string
		for pid, m := range res.Mapping {
			if m == j {
				procs = append(procs, spec.Application.Procs[pid].Name)
			}
		}
		fmt.Fprintf(w, "  %s^%d: k=%d  processes: %v\n", node.Name, res.Arch.Levels[j], res.Ks[j], procs)
	}
	fmt.Fprintf(w, "worst-case schedule length: %.3f ms\n", res.Schedule.Length)
	if *showSchedule {
		printSchedule(w, spec, res)
	}
	if *showGantt {
		var deadline float64
		for _, g := range spec.Application.Graphs {
			if g.Deadline > deadline {
				deadline = g.Deadline
			}
		}
		chart := &gantt.Chart{
			App:      spec.Application,
			Arch:     res.Arch,
			Mapping:  res.Mapping,
			Schedule: res.Schedule,
			Deadline: deadline,
		}
		if err := chart.Render(w); err != nil {
			return err
		}
	}
	if *dotPath != "" {
		wcets := make([]float64, spec.Application.NumProcesses())
		for pid := range wcets {
			wcets[pid] = res.Arch.Version(res.Mapping[pid]).WCET[pid]
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dot.Write(f, spec.Application, dot.Options{
			Arch:    res.Arch,
			Mapping: res.Mapping,
			WCET:    wcets,
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "task graph written to %s\n", *dotPath)
	}
	if *policies {
		var bus sched.Bus
		if spec.Platform.Bus.SlotLen > 0 {
			bus = ttp.NewBus(len(res.Arch.Nodes), spec.Platform.Bus.SlotLen)
		}
		sol, err := policyopt.Optimize(policyopt.Problem{
			App:       spec.Application,
			Arch:      res.Arch,
			Mapping:   res.Mapping,
			Goal:      spec.Goal(),
			Overheads: checkpoint.Overheads{Chi: *chiAlpha, Alpha: *chiAlpha},
			Bus:       bus,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "policy assignment (chi=alpha=%g ms): worst case %.3f ms (re-execution baseline %.3f ms)\n",
			*chiAlpha, sol.Schedule.Length, res.Schedule.Length)
		for pid, pol := range sol.Assignment.Policies {
			detail := ""
			switch pol {
			case policyopt.Checkpointing:
				if sol.Plan.Segments[pid] > 1 {
					detail = fmt.Sprintf(" (%d segments)", sol.Plan.Segments[pid])
				} else {
					detail = " (1 segment = plain re-execution)"
				}
			case policyopt.Replication:
				detail = fmt.Sprintf(" (replicas on %v)", sol.Assignment.Replicas[appmodel.ProcID(pid)])
			}
			fmt.Fprintf(w, "  %-24s %s%s\n", spec.Application.Procs[pid].Name, pol, detail)
		}
	}
	if *simulate > 0 {
		var bus sched.Bus
		if spec.Platform.Bus.SlotLen > 0 {
			bus = ttp.NewBus(len(res.Arch.Nodes), spec.Platform.Bus.SlotLen)
		}
		campaign := execsim.Campaign{
			Input: execsim.Input{
				App:     spec.Application,
				Arch:    res.Arch,
				Mapping: res.Mapping,
				Ks:      res.Ks,
				Bus:     bus,
				Static:  res.Schedule,
			},
			Iterations:   *simulate,
			Seed:         *simSeed,
			WithinBudget: true,
		}
		cr, err := campaign.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "simulation (%d adversarial in-budget fault patterns):\n", cr.Iterations)
		fmt.Fprintf(w, "  max makespan:  %.3f ms (analyzed bound %.3f ms)\n", cr.MaxMakespan, res.Schedule.Length)
		fmt.Fprintf(w, "  mean makespan: %.3f ms\n", cr.MeanMakespan)
		fmt.Fprintf(w, "  deadline misses: %d\n", cr.DeadlineMisses)
	}
	return nil
}

func printSchedule(w io.Writer, spec *specio.Spec, res *core.Result) {
	fmt.Fprintln(w, "schedule (fault-free start/finish, worst-case finish):")
	type row struct {
		start float64
		line  string
	}
	var rows []row
	for pid := range spec.Application.Procs {
		rows = append(rows, row{
			start: res.Schedule.Start[pid],
			line: fmt.Sprintf("  %-24s on %-4s  [%8.3f, %8.3f]  worst %8.3f",
				spec.Application.Procs[pid].Name,
				res.Arch.Nodes[res.Mapping[pid]].Name,
				res.Schedule.Start[pid], res.Schedule.Finish[pid], res.Schedule.WorstFinish[pid]),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].start < rows[j].start })
	for _, r := range rows {
		fmt.Fprintln(w, r.line)
	}
	for _, e := range spec.Application.Edges {
		if s := res.Schedule.MsgStart[e.ID]; s == s { // not NaN
			fmt.Fprintf(w, "  bus %-20s [%8.3f, %8.3f]\n", e.Name, s, res.Schedule.MsgEnd[e.ID])
		}
	}
}
