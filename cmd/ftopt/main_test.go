package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paper"
	"repro/internal/specio"
)

// writeFig3Spec writes the Fig. 3 problem to a temp file.
func writeFig3Spec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig3.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec := &specio.Spec{
		Application: paper.Fig3Application(),
		Platform:    paper.Fig3Platform(),
		Gamma:       paper.Fig3Gamma,
	}
	if err := specio.Write(f, spec); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOptimizeFig3(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-schedule"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"feasible, cost 20", "N1^2", "k=2", "340.000 ms", "schedule"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStrategies(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-strategy", "MIN"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "INFEASIBLE") {
		t.Errorf("MIN on Fig. 3 should be infeasible:\n%s", sb.String())
	}
	sb.Reset()
	if err := run(context.Background(), []string{"-spec", path, "-strategy", "MAX"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "feasible, cost 40") {
		t.Errorf("MAX on Fig. 3 should cost 40:\n%s", sb.String())
	}
}

func TestSlackModelFlag(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-slack", "per-process"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Monoprocessor, single process: per-process equals shared here.
	if !strings.Contains(sb.String(), "feasible") {
		t.Errorf("per-process slack run failed:\n%s", sb.String())
	}
}

func TestArcBound(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-arc", "15"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "INFEASIBLE") {
		t.Errorf("budget 15 below optimum 20 should be infeasible:\n%s", sb.String())
	}
}

func TestFlagErrors(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{}, &sb); err == nil {
		t.Error("want error without -spec")
	}
	if err := run(context.Background(), []string{"-spec", "/nonexistent"}, &sb); err == nil {
		t.Error("want error for missing file")
	}
	if err := run(context.Background(), []string{"-spec", path, "-strategy", "BOGUS"}, &sb); err == nil {
		t.Error("want error for unknown strategy")
	}
	if err := run(context.Background(), []string{"-spec", path, "-slack", "BOGUS"}, &sb); err == nil {
		t.Error("want error for unknown slack model")
	}
}

func TestGanttFlag(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-gantt"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "N1^2") || !strings.Contains(out, "0---") {
		t.Errorf("missing Gantt chart:\n%s", out)
	}
}

func TestDotFlag(t *testing.T) {
	path := writeFig3Spec(t)
	out := filepath.Join(t.TempDir(), "g.dot")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-dot", out}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("DOT file malformed:\n%s", data)
	}
}

func TestSimulateFlag(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-simulate", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "simulation (50 adversarial") {
		t.Errorf("missing simulation report:\n%s", out)
	}
	// Monoprocessor Fig. 3: the shared-slack bound is sound, so no
	// in-budget pattern may miss the deadline.
	if !strings.Contains(out, "deadline misses: 0") {
		t.Errorf("monoprocessor simulation missed deadlines:\n%s", out)
	}
}

func TestPoliciesFlag(t *testing.T) {
	path := writeFig3Spec(t)
	var sb strings.Builder
	if err := run(context.Background(), []string{"-spec", path, "-policies"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "policy assignment") {
		t.Errorf("missing policy report:\n%s", out)
	}
}
