// Command appgen generates a synthetic fault-tolerant design problem (an
// application, a platform with hardened node versions, and a reliability
// goal) using the paper's experimental parameterization, and writes it as
// a JSON specification for cmd/ftopt.
//
// Usage:
//
//	appgen -seed 1 -procs 20 -ser 1e-11 -hpd 25 [-nodes 4] [-levels 5]
//	       [-out problem.json]
//
// With -paper fig1|fig3|cc, the built-in examples from the paper are
// emitted instead of a synthetic instance.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cc"
	"repro/internal/paper"
	"repro/internal/runctl"
	"repro/internal/specio"
	"repro/internal/taskgen"
	"repro/internal/tgff"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("appgen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator seed")
	procs := fs.Int("procs", 20, "number of processes (paper: 20 or 40)")
	ser := fs.Float64("ser", 1e-11, "soft error rate per clock cycle at minimum hardening")
	hpd := fs.Float64("hpd", 25, "hardening performance degradation in percent")
	nodes := fs.Int("nodes", 4, "number of available node types")
	levels := fs.Int("levels", 5, "hardening levels per node")
	out := fs.String("out", "", "output path (default stdout)")
	builtin := fs.String("paper", "", "emit a built-in example instead: fig1, fig3 or cc")
	asTGFF := fs.Bool("tgff", false, "emit the task graphs in TGFF format instead of a JSON spec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cerr := runctl.Err(ctx); cerr != nil {
		return cerr
	}

	var spec *specio.Spec
	switch *builtin {
	case "":
		cfg := taskgen.DefaultConfig(*seed, *procs, *ser, *hpd)
		cfg.NumNodeTypes = *nodes
		cfg.NumLevels = *levels
		inst, err := taskgen.Generate(cfg)
		if err != nil {
			return err
		}
		spec = &specio.Spec{
			Application: inst.App,
			Platform:    inst.Platform,
			Gamma:       inst.Goal.Gamma,
			TauMs:       inst.Goal.Tau,
		}
	case "fig1":
		spec = &specio.Spec{
			Application: paper.Fig1Application(),
			Platform:    paper.Fig1Platform(),
			Gamma:       paper.Fig1Gamma,
		}
	case "fig3":
		spec = &specio.Spec{
			Application: paper.Fig3Application(),
			Platform:    paper.Fig3Platform(),
			Gamma:       paper.Fig3Gamma,
		}
	case "cc":
		inst, err := cc.Instance()
		if err != nil {
			return err
		}
		spec = &specio.Spec{
			Application: inst.App,
			Platform:    inst.Platform,
			Gamma:       inst.Goal.Gamma,
			TauMs:       inst.Goal.Tau,
		}
	default:
		return fmt.Errorf("unknown built-in example %q", *builtin)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *asTGFF {
		doc, err := tgff.FromApplication(spec.Application)
		if err != nil {
			return err
		}
		return doc.Write(w)
	}
	return specio.Write(w, spec)
}
