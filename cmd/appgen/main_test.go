package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/specio"
)

func TestGenerateSynthetic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-seed", "2", "-procs", "20", "-ser", "1e-11", "-hpd", "25"}, &buf); err != nil {
		t.Fatal(err)
	}
	spec, err := specio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Application.NumProcesses() != 20 {
		t.Errorf("%d processes", spec.Application.NumProcesses())
	}
	if len(spec.Platform.Nodes) != 4 {
		t.Errorf("%d nodes", len(spec.Platform.Nodes))
	}
}

func TestBuiltinExamples(t *testing.T) {
	for _, name := range []string{"fig1", "fig3", "cc"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-paper", name}, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := specio.Read(&buf); err != nil {
			t.Fatalf("%s: emitted spec invalid: %v", name, err)
		}
	}
}

func TestOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-paper", "fig3", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -out is set")
	}
}

func TestUnknownBuiltin(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-paper", "nope"}, &buf); err == nil {
		t.Error("want error for unknown built-in")
	}
}

func TestBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-procs", "0"}, &buf); err == nil {
		t.Error("want error for zero processes")
	}
}

func TestTGFFOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-paper", "fig1", "-tgff"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@TASK_GRAPH 0 {", "TASK P1", "ARC m1", "HARD_DEADLINE", "PERIOD 360"} {
		if !strings.Contains(out, want) {
			t.Errorf("TGFF output missing %q:\n%s", want, out)
		}
	}
}
