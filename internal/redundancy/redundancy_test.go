package redundancy

import (
	"reflect"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func fig3Problem() Problem {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0]})
	return Problem{
		App:     app,
		Arch:    ar,
		Mapping: []int{0},
		Goal:    sfp.Goal{Gamma: paper.Fig3Gamma, Tau: paper.Hour},
	}
}

func fig1Problem(nodes []int, mapping []int) Problem {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	var ns []*platform.Node
	for _, i := range nodes {
		ns = append(ns, &pl.Nodes[i])
	}
	return Problem{
		App:     app,
		Arch:    platform.NewArchitecture(ns),
		Mapping: mapping,
		Goal:    sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Bus:     ttp.NewBus(len(ns), pl.Bus.SlotLen),
	}
}

// TestReExecutionOptFig3 reproduces the per-level re-execution counts of
// Fig. 3: k = 6, 2, 1 for hardening levels 1, 2, 3.
func TestReExecutionOptFig3(t *testing.T) {
	p := fig3Problem()
	want := map[int]int{1: 6, 2: 2, 3: 1}
	for level, wantK := range want {
		ks, ok, err := ReExecutionOpt(p.App, p.Arch, p.Mapping, []int{level}, p.Goal, sfp.DefaultMaxK)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("level %d: goal unreachable", level)
		}
		if ks[0] != wantK {
			t.Errorf("level %d: k = %d, want %d", level, ks[0], wantK)
		}
	}
}

// TestReExecutionOptFig4a: the Fig. 4a architecture needs exactly one
// re-execution per node (Appendix A.2).
func TestReExecutionOptFig4a(t *testing.T) {
	p := fig1Problem([]int{0, 1}, []int{0, 0, 1, 1})
	ks, ok, err := ReExecutionOpt(p.App, p.Arch, p.Mapping, []int{2, 2}, p.Goal, sfp.DefaultMaxK)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("goal unreachable")
	}
	if !reflect.DeepEqual(ks, []int{1, 1}) {
		t.Errorf("ks = %v, want [1 1]", ks)
	}
}

// TestReExecutionOptUnreachable: with an absurd goal the heuristic reports
// failure instead of looping.
func TestReExecutionOptUnreachable(t *testing.T) {
	p := fig3Problem()
	impossible := sfp.Goal{Gamma: 1e-300, Tau: paper.Hour}
	ks, ok, err := ReExecutionOpt(p.App, p.Arch, p.Mapping, []int{1}, impossible, sfp.DefaultMaxK)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("impossible goal reported reachable with ks=%v", ks)
	}
}

// TestReExecutionOptGradient: with one much less reliable node, the greedy
// assigns re-executions there first.
func TestReExecutionOptGradient(t *testing.T) {
	p := fig1Problem([]int{0, 1}, []int{0, 0, 1, 1})
	// N1 at level 1 (p ≈ 1.2e-3), N2 at level 3 (p ≈ 1e-10): all
	// re-executions should land on node 0.
	ks, ok, err := ReExecutionOpt(p.App, p.Arch, p.Mapping, []int{1, 3}, p.Goal, sfp.DefaultMaxK)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("goal unreachable")
	}
	if ks[0] == 0 || ks[1] != 0 {
		t.Errorf("ks = %v, want all re-executions on the unreliable node", ks)
	}
}

// TestRedundancyOptFig3 reproduces the conclusion of the first
// motivational example: the middle h-version N1^2 with k = 2 should be
// chosen (cost 20), not the unhardened or the maximal one.
func TestRedundancyOptFig3(t *testing.T) {
	p := fig3Problem()
	sol, err := RedundancyOpt(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("Fig. 3 should be feasible")
	}
	if sol.Levels[0] != 2 || sol.Ks[0] != 2 {
		t.Errorf("chose level %d with k=%d, want level 2 with k=2", sol.Levels[0], sol.Ks[0])
	}
	if sol.Cost != 20 {
		t.Errorf("cost = %v, want 20", sol.Cost)
	}
	if sol.Schedule.Length != 340 {
		t.Errorf("schedule length = %v, want 340", sol.Schedule.Length)
	}
}

// TestRedundancyOptFig4a: for the two-node mapping of Fig. 4a the
// trade-off settles on h = 2 for both nodes with one re-execution each,
// total cost 72, as in the paper.
func TestRedundancyOptFig4a(t *testing.T) {
	p := fig1Problem([]int{0, 1}, []int{0, 0, 1, 1})
	sol, err := RedundancyOpt(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("Fig. 4a mapping should be feasible")
	}
	if !reflect.DeepEqual(sol.Levels, []int{2, 2}) {
		t.Errorf("levels = %v, want [2 2]", sol.Levels)
	}
	if !reflect.DeepEqual(sol.Ks, []int{1, 1}) {
		t.Errorf("ks = %v, want [1 1]", sol.Ks)
	}
	if sol.Cost != 72 {
		t.Errorf("cost = %v, want 72 (C_a in Fig. 4)", sol.Cost)
	}
}

// TestRedundancyOptFig4e: mapping everything on N2 forces the maximum
// hardening level (h = 3, k = 0, cost 80) — the only feasible
// monoprocessor alternative of Fig. 4.
func TestRedundancyOptFig4e(t *testing.T) {
	p := fig1Problem([]int{1}, []int{0, 0, 0, 0})
	sol, err := RedundancyOpt(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("Fig. 4e mapping should be feasible")
	}
	if sol.Levels[0] != 3 {
		t.Errorf("level = %d, want 3", sol.Levels[0])
	}
	if sol.Ks[0] != 0 {
		t.Errorf("k = %d, want 0", sol.Ks[0])
	}
	if sol.Cost != 80 {
		t.Errorf("cost = %v, want 80 (C_e in Fig. 4)", sol.Cost)
	}
}

// TestRedundancyOptFig4dDiscarded: mapping everything on N1 is
// unschedulable at every hardening level (performance degradation, Fig.
// 4d) and must be reported infeasible.
func TestRedundancyOptFig4dDiscarded(t *testing.T) {
	p := fig1Problem([]int{0}, []int{0, 0, 0, 0})
	sol, err := RedundancyOpt(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible() {
		t.Errorf("Fig. 4d mapping should be infeasible, got levels %v ks %v", sol.Levels, sol.Ks)
	}
}

// TestEvaluateDoesNotMutateArch: Evaluate must leave the problem's
// architecture untouched.
func TestEvaluateDoesNotMutateArch(t *testing.T) {
	p := fig1Problem([]int{0, 1}, []int{0, 0, 1, 1})
	before := append([]int(nil), p.Arch.Levels...)
	if _, err := Evaluate(p, []int{2, 2}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, p.Arch.Levels) {
		t.Errorf("architecture levels mutated: %v -> %v", before, p.Arch.Levels)
	}
}

// TestEvaluateErrors covers defensive paths.
func TestEvaluateErrors(t *testing.T) {
	p := fig3Problem()
	if _, err := Evaluate(p, []int{9}); err == nil {
		t.Error("want error for invalid level")
	}
	p.Mapping = []int{5}
	if _, err := Evaluate(p, []int{1}); err == nil {
		t.Error("want error for invalid mapping")
	}
	p = fig3Problem()
	p.Goal = sfp.Goal{}
	if _, err := Evaluate(p, []int{1}); err == nil {
		t.Error("want error for invalid goal")
	}
}

// TestSolutionFeasibleNil: Feasible on a nil solution is false, not a
// panic.
func TestSolutionFeasibleNil(t *testing.T) {
	var s *Solution
	if s.Feasible() {
		t.Error("nil solution should be infeasible")
	}
}

// TestRedundancyOptUsesSlackModel: the per-process slack model is more
// pessimistic on monoprocessor mappings, so it can only require equal or
// more hardening than the shared model.
func TestRedundancyOptUsesSlackModel(t *testing.T) {
	pShared := fig1Problem([]int{1}, []int{0, 0, 0, 0})
	solShared, err := RedundancyOpt(pShared)
	if err != nil {
		t.Fatal(err)
	}
	pPP := fig1Problem([]int{1}, []int{0, 0, 0, 0})
	pPP.Model = sched.SlackPerProcess
	solPP, err := RedundancyOpt(pPP)
	if err != nil {
		t.Fatal(err)
	}
	if solPP.Feasible() && solShared.Feasible() && solPP.Cost < solShared.Cost {
		t.Errorf("per-process slack found a cheaper solution (%v < %v)", solPP.Cost, solShared.Cost)
	}
}

// TestFixedLevelsPath: the MIN/MAX baselines evaluate exactly the fixed
// levels, skipping the hardening search.
func TestFixedLevelsPath(t *testing.T) {
	p := fig3Problem()
	p.FixedLevels = []int{1}
	sol, err := RedundancyOpt(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Levels[0] != 1 {
		t.Errorf("fixed level ignored: %v", sol.Levels)
	}
	if sol.Feasible() {
		t.Error("level 1 with k=6 should be unschedulable (Fig. 3a)")
	}
	p.FixedLevels = []int{1, 2}
	if _, err := RedundancyOpt(p); err == nil {
		t.Error("want error for fixed-levels length mismatch")
	}
}
