// Package redundancy implements the hardening/re-execution trade-off
// heuristics of Section 6.3 of the paper:
//
//   - ReExecutionOpt assigns the number of re-executions k_j to each
//     computation node, starting from zero and greedily adding the
//     re-execution that yields the largest increase in system reliability
//     (the largest decrease of the SFP union) until the reliability goal ρ
//     is reached.
//
//   - RedundancyOpt decides the hardening levels: starting from the minimum
//     hardening, it greedily raises levels until the application becomes
//     schedulable, then iteratively lowers levels one node at a time, as
//     long as the application stays schedulable, keeping the cheapest
//     schedulable alternative.
//
// Both heuristics evaluate schedulability through the list scheduler of
// package sched and reliability through the SFP analysis of package sfp.
package redundancy

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Problem bundles the fixed inputs of the redundancy optimization: the
// application, the candidate architecture, the process mapping, the
// reliability goal, the bus and the slack accounting model.
type Problem struct {
	App     *appmodel.Application
	Arch    *platform.Architecture
	Mapping []int
	Goal    sfp.Goal
	// Bus carries cross-node messages during schedule evaluation; nil
	// means instantaneous messages.
	Bus sched.Bus
	// MaxK caps the re-executions per node; zero means sfp.DefaultMaxK.
	MaxK int
	// Model selects the recovery-slack accounting (default: the paper's
	// shared slack).
	Model sched.SlackModel
	// FixedLevels, when non-nil, disables the hardening optimization:
	// RedundancyOpt evaluates exactly these levels and only optimizes the
	// software re-executions. The MIN and MAX baseline strategies of the
	// paper's evaluation (Section 7) use this with the minimum/maximum
	// levels.
	FixedLevels []int
}

func (p *Problem) maxK() int {
	if p.MaxK > 0 {
		return p.MaxK
	}
	return sfp.DefaultMaxK
}

// Solution is one evaluated redundancy configuration.
type Solution struct {
	// Levels[j] is the hardening level of architecture node j.
	Levels []int
	// Ks[j] is the number of software re-executions on node j.
	Ks []int
	// Schedule is the static schedule built for this configuration.
	Schedule *sched.Schedule
	// Cost is the architecture cost at these levels.
	Cost float64
	// Reliable reports whether the SFP analysis meets the goal with Ks.
	Reliable bool
	// Schedulable reports whether every process meets its deadline in the
	// worst case.
	Schedulable bool
}

// Feasible reports whether the solution is both reliable and schedulable.
func (s *Solution) Feasible() bool { return s != nil && s.Reliable && s.Schedulable }

// nodeProbs collects, for each architecture node at the given levels, the
// failure probabilities of the processes mapped on it.
func nodeProbs(app *appmodel.Application, ar *platform.Architecture, mapping []int, levels []int) ([][]float64, error) {
	probs := make([][]float64, len(ar.Nodes))
	for pid := range mapping {
		j := mapping[pid]
		if j < 0 || j >= len(ar.Nodes) {
			return nil, fmt.Errorf("redundancy: process %d mapped to invalid node %d", pid, j)
		}
		v := ar.Nodes[j].Version(levels[j])
		if v == nil {
			return nil, fmt.Errorf("redundancy: node %d has no h-version at level %d", j, levels[j])
		}
		probs[j] = append(probs[j], v.FailProb[pid])
	}
	return probs, nil
}

// ReExecutionOpt computes the per-node re-execution counts for the given
// hardening levels. It starts from k_j = 0 on every node and greedily adds
// one re-execution at a time on the node where it decreases the system
// failure probability the most, until the reliability goal is met. The
// returned flag is false when the goal cannot be met even with every node
// saturated at maxK re-executions (the caller then typically raises a
// hardening level instead).
func ReExecutionOpt(app *appmodel.Application, ar *platform.Architecture, mapping []int, levels []int, goal sfp.Goal, maxK int) ([]int, bool, error) {
	probs, err := nodeProbs(app, ar, mapping, levels)
	if err != nil {
		return nil, false, err
	}
	analysis, err := sfp.NewAnalysis(probs, app.EffectivePeriod(), maxK)
	if err != nil {
		return nil, false, err
	}
	return ReExecutionOptAnalysis(analysis, goal, maxK)
}

// ReExecutionOptAnalysis is ReExecutionOpt on a prebuilt SFP analysis. It
// lets callers that cache the per-node analyses (package evalengine) skip
// the combinatorial setup of sfp.NewAnalysis while running the exact same
// greedy k-assignment.
func ReExecutionOptAnalysis(analysis *sfp.Analysis, goal sfp.Goal, maxK int) ([]int, bool, error) {
	if err := goal.Validate(); err != nil {
		return nil, false, err
	}
	ks := make([]int, len(analysis.Nodes))
	if analysis.MeetsGoal(ks, goal) {
		return ks, true, nil
	}
	fails := make([]float64, len(analysis.Nodes))
	for j, n := range analysis.Nodes {
		fails[j] = n.FailureProb(0)
	}
	for {
		// Pick the increment with the lowest resulting union failure
		// probability — the "largest increase in the system reliability"
		// guidance of Section 6.3.
		best := -1
		bestUnion := 0.0
		for j, n := range analysis.Nodes {
			if ks[j] >= maxK {
				continue
			}
			nf := n.FailureProb(ks[j] + 1)
			if nf >= fails[j] {
				continue // saturated: one more re-execution buys nothing
			}
			old := fails[j]
			fails[j] = nf
			union := sfp.SystemFailureProb(fails)
			fails[j] = old
			if best < 0 || union < bestUnion {
				best, bestUnion = j, union
			}
		}
		if best < 0 {
			return ks, false, nil // no increment helps; goal unreachable
		}
		ks[best]++
		fails[best] = analysis.Nodes[best].FailureProb(ks[best])
		if sfp.Reliability(sfp.SystemFailureProb(fails), analysis.Period, goal.Tau) >= goal.Rho() {
			return ks, true, nil
		}
	}
}

// Evaluate builds the complete solution (re-executions, schedule, cost,
// feasibility) for the given hardening levels without modifying the
// problem's architecture.
func Evaluate(p Problem, levels []int) (*Solution, error) {
	ks, reliable, err := ReExecutionOpt(p.App, p.Arch, p.Mapping, levels, p.Goal, p.maxK())
	if err != nil {
		return nil, err
	}
	ar := p.Arch.Clone()
	copy(ar.Levels, levels)
	s, err := sched.Build(sched.Input{
		App:     p.App,
		Arch:    ar,
		Mapping: p.Mapping,
		Ks:      ks,
		Bus:     p.Bus,
		Model:   p.Model,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Levels:      append([]int(nil), levels...),
		Ks:          ks,
		Schedule:    s,
		Cost:        ar.Cost(),
		Reliable:    reliable,
		Schedulable: s.Schedulable(p.App),
	}, nil
}

// EvalFunc evaluates one hardening vector for a fixed problem and
// mapping. The levels slice is owned by the caller and mutated between
// calls; implementations must copy whatever they retain.
type EvalFunc func(levels []int) (*Solution, error)

// RedundancyOpt runs the full hardening/re-execution trade-off of Section
// 6.3 for the problem's mapping. It returns the cheapest feasible solution
// found, or the last evaluated (infeasible) solution with Feasible() ==
// false when no hardening assignment makes the mapping both reliable and
// schedulable — the mapping optimizer then discards this mapping.
//
// The search starts from the architecture's minimum hardening levels
// (Fig. 5 line 5), greedily raises the level that most shortens the
// worst-case schedule until feasible, then iteratively lowers levels while
// feasibility is preserved, always keeping the cheapest feasible
// alternative.
func RedundancyOpt(p Problem) (*Solution, error) {
	return RedundancyOptWith(p, func(levels []int) (*Solution, error) {
		return Evaluate(p, levels)
	})
}

// RedundancyOptWith is RedundancyOpt with the per-vector evaluation
// pluggable, so a memoizing evaluator (package evalengine) can intercept
// every probe. The search logic is identical to RedundancyOpt.
func RedundancyOptWith(p Problem, eval EvalFunc) (*Solution, error) {
	if p.FixedLevels != nil {
		if len(p.FixedLevels) != len(p.Arch.Nodes) {
			return nil, fmt.Errorf("redundancy: fixed levels cover %d of %d nodes", len(p.FixedLevels), len(p.Arch.Nodes))
		}
		return eval(p.FixedLevels)
	}
	levels := make([]int, len(p.Arch.Nodes))
	for j, n := range p.Arch.Nodes {
		levels[j] = n.MinLevel()
	}
	cur, err := eval(levels)
	if err != nil {
		return nil, err
	}
	// Phase 1: raise hardening greedily until feasible.
	for !cur.Feasible() {
		best := (*Solution)(nil)
		bestJ := -1
		for j, n := range p.Arch.Nodes {
			if levels[j] >= n.MaxLevel() {
				continue
			}
			levels[j]++
			cand, err := eval(levels)
			levels[j]--
			if err != nil {
				return nil, err
			}
			if better(cand, best) {
				best, bestJ = cand, j
			}
		}
		if bestJ < 0 {
			return cur, nil // every node at max hardening and still infeasible
		}
		levels[bestJ]++
		cur = best
	}
	// Phase 2: lower hardening while a cheaper feasible alternative
	// exists.
	for {
		var best *Solution
		bestJ := -1
		for j, n := range p.Arch.Nodes {
			if levels[j] <= n.MinLevel() {
				continue
			}
			levels[j]--
			cand, err := eval(levels)
			levels[j]++
			if err != nil {
				return nil, err
			}
			if !cand.Feasible() || cand.Cost >= cur.Cost {
				continue
			}
			if best == nil || cand.Cost < best.Cost ||
				(cand.Cost == best.Cost && cand.Schedule.Length < best.Schedule.Length) {
				best, bestJ = cand, j
			}
		}
		if bestJ < 0 {
			return cur, nil
		}
		levels[bestJ]--
		cur = best
	}
}

// better orders phase-1 candidates: feasible beats infeasible; then
// reliable beats unreliable; then shorter worst-case schedule; then lower
// cost.
func better(a, b *Solution) bool {
	if b == nil {
		return true
	}
	if a.Feasible() != b.Feasible() {
		return a.Feasible()
	}
	if a.Reliable != b.Reliable {
		return a.Reliable
	}
	if a.Schedule.Length != b.Schedule.Length {
		return a.Schedule.Length < b.Schedule.Length
	}
	return a.Cost < b.Cost
}
