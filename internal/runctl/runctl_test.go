package runctl

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestErrNilAndLive(t *testing.T) {
	if err := Err(nil); err != nil {
		t.Errorf("Err(nil) = %v, want nil", err)
	}
	if err := Err(context.Background()); err != nil {
		t.Errorf("Err(Background) = %v, want nil", err)
	}
}

func TestErrCanceledWrapping(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Err(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled ctx: errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause context.Canceled not reachable: %v", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	derr := Err(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("deadline ctx: %v must wrap both ErrCanceled and DeadlineExceeded", derr)
	}
	if errors.Is(derr, context.Canceled) {
		t.Errorf("deadline err must not read as plain cancel: %v", derr)
	}
}

func TestRecover(t *testing.T) {
	work := func() (err error) {
		defer Recover("test worker", &err)
		panic("boom")
	}
	err := work()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T %v, want *PanicError", err, err)
	}
	if pe.Where != "test worker" || pe.Value != "boom" {
		t.Errorf("captured %q/%v", pe.Where, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "boom") || !strings.Contains(pe.Error(), "test worker") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestRecoverNoPanic(t *testing.T) {
	work := func() (err error) {
		defer Recover("test worker", &err)
		return nil
	}
	if err := work(); err != nil {
		t.Errorf("err = %v without a panic", err)
	}
}
