// Package runctl is the run-control vocabulary shared by every layer of
// the exploration stack: a typed cancellation error so callers can tell
// "the operator interrupted this" apart from "the computation is broken",
// and panic capture so a fault inside one worker goroutine surfaces as an
// error from the phase that owns it instead of killing the process.
//
// The threading convention (documented in DESIGN.md and enforced by the
// parallel-equality tests) is that contexts are consulted *between* units
// of work — tabu iterations, candidate architectures, experiment rows —
// and never inside the bit-identical arithmetic of an evaluation. A
// canceled run therefore always stops on a row boundary with a
// deterministic best-so-far partial result in hand.
package runctl

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrCanceled marks errors caused by cooperative cancellation (a context
// canceled or past its deadline) rather than by a failed computation.
// Every layer wraps it, so errors.Is(err, ErrCanceled) holds from a tabu
// iteration all the way up to the paperbench exit path; the underlying
// context cause (context.Canceled or context.DeadlineExceeded) stays
// reachable through errors.Is as well, which is how the experiment
// harness tells a per-app deadline miss from an operator interrupt.
var ErrCanceled = errors.New("run canceled")

// Err returns nil while ctx is live and an ErrCanceled-wrapped error once
// it is done. A nil ctx means "not cancellable" and always returns nil,
// so legacy entry points cost nothing on the hot path.
func Err(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if cause := ctx.Err(); cause != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, cause)
	}
	return nil
}

// PanicError is a panic recovered at a worker-goroutine boundary,
// converted into an error so the owning phase can drain its remaining
// workers and fail deterministically instead of crashing the process.
type PanicError struct {
	// Where names the boundary that contained the panic (e.g. "evalengine
	// worker 2").
	Where string
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error summarizes the panic; the captured stack is available via the
// Stack field for logs.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Where, e.Value)
}

// NewPanicError wraps a recovered panic value; callers that need a custom
// recover block use it as
//
//	defer func() {
//		if r := recover(); r != nil {
//			res.err = runctl.NewPanicError("core probe", r)
//		}
//	}()
func NewPanicError(where string, value any) *PanicError {
	return &PanicError{Where: where, Value: value, Stack: debug.Stack()}
}

// Recover converts an in-flight panic into a *PanicError stored in *err.
// Use it directly as a deferred call in functions with a named error
// result:
//
//	func work() (err error) {
//		defer runctl.Recover("experiments app job", &err)
//		...
//	}
func Recover(where string, err *error) {
	if r := recover(); r != nil {
		*err = NewPanicError(where, r)
	}
}
