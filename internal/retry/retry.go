// Package retry implements capped exponential backoff with deterministic
// seeded jitter, attempt budgets, and error classification for the
// self-healing sweep layer.
//
// Classification splits failures into two classes: retryable I/O faults
// (a full disk, a torn write, a journal flock still held by a worker that
// is being torn down) where re-running the job after a pause makes
// progress because the journal resume path restores every completed row,
// and permanent spec faults (an unparsable design document, an unknown
// figure) where re-running burns the budget to reach the same error.
// Wrap errors with Retryable/Permanent to override the default
// classification; unmarked errors default to permanent, so only faults
// the storage layer recognizes as transient are retried.
package retry

import (
	"errors"
	"io"
	"io/fs"
	"math"
	"os"
	"syscall"
	"time"
)

// Policy is a backoff schedule plus an attempt budget. The zero value is
// not useful; fill in MaxAttempts at minimum and Delay applies defaults
// for the rest.
type Policy struct {
	// MaxAttempts is the total attempt budget including the first run.
	// A policy with MaxAttempts <= 1 never retries.
	MaxAttempts int
	// BaseDelay is the pause before the first retry (default 250ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 10s).
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter)
	// (default 0.2). Zero jitter is expressed as a negative value.
	Jitter float64
	// Seed makes the jitter deterministic: the same (Seed, attempt) pair
	// always yields the same delay, so chaos runs replay identically.
	Seed int64
}

func (p Policy) defaults() Policy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 250 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Delay returns the pause before re-running after the given failed
// attempt (1-based): capped exponential in the attempt number, scaled by
// deterministic seeded jitter.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.defaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt-1))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// splitmix64 over (seed, attempt) — cheap, stateless, deterministic.
		u := splitmix64(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(attempt))
		frac := float64(u>>11) / float64(1<<53) // uniform [0,1)
		d *= 1 - p.Jitter + 2*p.Jitter*frac
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Exhausted reports whether the budget is spent after the given number
// of attempts.
func (p Policy) Exhausted(attempts int) bool {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	return attempts >= max
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type marked struct {
	err       error
	retryable bool
}

func (m *marked) Error() string { return m.err.Error() }
func (m *marked) Unwrap() error { return m.err }

// Retryable marks err as retryable regardless of its type.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, retryable: true}
}

// Permanent marks err as permanent regardless of its type.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, retryable: false}
}

// transientErrnos are the I/O conditions worth re-running a job for: the
// disk may drain (ENOSPC), the contended resource may free (EAGAIN,
// EBUSY, the flock of a dying worker), or the glitch may not recur (EIO,
// EINTR, broken pipes and reset connections from a co-process).
var transientErrnos = []syscall.Errno{
	syscall.ENOSPC, syscall.EAGAIN, syscall.EBUSY, syscall.EINTR,
	syscall.EIO, syscall.EPIPE, syscall.ECONNRESET, syscall.ETIMEDOUT,
}

// IsRetryable classifies err. Explicit Retryable/Permanent marks win
// (innermost-first via errors.As); otherwise transient I/O errors —
// short writes and the errnos above, however deeply wrapped — are
// retryable, and everything else (spec errors, validation errors,
// panics) is permanent.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var m *marked
	if errors.As(err, &m) {
		return m.retryable
	}
	if errors.Is(err, io.ErrShortWrite) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	if errors.Is(err, fs.ErrPermission) {
		return false
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		for _, t := range transientErrnos {
			if errno == t {
				return true
			}
		}
	}
	return false
}
