package retry

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestDelayDeterministic: the same (Seed, attempt) pair always yields the
// same delay, and different seeds spread.
func TestDelayDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 10, Seed: 7}
	for attempt := 1; attempt <= 6; attempt++ {
		if a, b := p.Delay(attempt), p.Delay(attempt); a != b {
			t.Errorf("attempt %d: Delay not deterministic: %v vs %v", attempt, a, b)
		}
	}
	q := Policy{MaxAttempts: 10, Seed: 8}
	diff := false
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Delay(attempt) != q.Delay(attempt) {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 7 and 8 produced identical schedules; jitter is not seeded")
	}
}

// TestDelayGrowthAndCap: delays grow roughly exponentially and never
// exceed MaxDelay*(1+Jitter).
func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.2}
	if d := p.Delay(1); d < 8*time.Millisecond || d > 12*time.Millisecond {
		t.Errorf("Delay(1) = %v, want within ±20%% of 10ms", d)
	}
	for attempt := 1; attempt <= 30; attempt++ {
		if d := p.Delay(attempt); d > 120*time.Millisecond {
			t.Errorf("Delay(%d) = %v, exceeds cap 100ms +20%% jitter", attempt, d)
		}
	}
	// Zero jitter (expressed as negative) pins the schedule exactly.
	exact := Policy{MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 100, 100}
	for i, w := range want {
		if d := exact.Delay(i + 1); d != w*time.Millisecond {
			t.Errorf("jitterless Delay(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

// TestExhausted: the budget includes the first run; a <=1 budget never
// retries.
func TestExhausted(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	for attempts, want := range map[int]bool{0: false, 1: false, 2: false, 3: true, 4: true} {
		if got := p.Exhausted(attempts); got != want {
			t.Errorf("MaxAttempts=3 Exhausted(%d) = %v, want %v", attempts, got, want)
		}
	}
	if !(Policy{}).Exhausted(1) {
		t.Error("zero policy should exhaust after one attempt")
	}
}

// TestIsRetryable: explicit marks win however wrapped; transient I/O
// errnos and short writes are retryable; everything else is permanent.
func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("spec parse error"), false},
		{"marked retryable", Retryable(errors.New("x")), true},
		{"marked permanent", Permanent(syscall.ENOSPC), false},
		{"wrapped mark", fmt.Errorf("run: %w", Retryable(errors.New("x"))), true},
		{"short write", fmt.Errorf("journal: %w", io.ErrShortWrite), true},
		{"deadline", os.ErrDeadlineExceeded, true},
		{"permission", fs.ErrPermission, false},
		{"enospc", &fs.PathError{Op: "write", Path: "j", Err: syscall.ENOSPC}, true},
		{"ebusy", syscall.EBUSY, true},
		{"eio", fmt.Errorf("flush: %w", syscall.EIO), true},
		{"enoent", syscall.ENOENT, false},
		{"canceled", errors.New("context canceled"), false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMarksUnwrap: marked errors keep the underlying error reachable for
// errors.Is, and nil stays nil.
func TestMarksUnwrap(t *testing.T) {
	base := syscall.ENOSPC
	if !errors.Is(Retryable(base), syscall.ENOSPC) {
		t.Error("Retryable hides the wrapped error from errors.Is")
	}
	if Retryable(nil) != nil || Permanent(nil) != nil {
		t.Error("marking nil should stay nil")
	}
	// The innermost mark is overridden by an outer one (errors.As finds
	// the outermost first).
	double := Permanent(Retryable(base))
	if IsRetryable(double) {
		t.Error("outer Permanent mark should win over inner Retryable")
	}
}
