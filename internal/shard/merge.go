package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/runstate"
)

// IncompleteError reports the shards that block a merge, one reason per
// shard, so the operator knows exactly which workers to rerun (or which
// journals were damaged) instead of guessing from a generic failure.
type IncompleteError struct {
	Dir     string
	Shards  int
	Reasons map[int]string // shard index → why it cannot be merged
}

func (e *IncompleteError) Error() string {
	idx := make([]int, 0, len(e.Reasons))
	for i := range e.Reasons {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	parts := make([]string, len(idx))
	for k, i := range idx {
		parts[k] = fmt.Sprintf("shard %d/%d: %s", i, e.Shards, e.Reasons[i])
	}
	return fmt.Sprintf("shard: merge refused, %d of %d shard journal(s) in %s unusable — %s",
		len(e.Reasons), e.Shards, e.Dir, strings.Join(parts, "; "))
}

// Rows is the read-only union of a sweep's per-shard journals: the merge
// step's row store. It satisfies the experiments harness's row-store
// surface — Lookup serves journaled rows, Record refuses (a merge never
// computes, so nothing may be recorded through it).
type Rows struct {
	manifest Manifest
	rows     map[string]json.RawMessage
	bySource map[string]int // row key → shard journal it came from
}

// Manifest returns the manifest the rows were loaded under.
func (r *Rows) Manifest() Manifest { return r.manifest }

// Len returns the number of distinct journaled rows across all shards.
func (r *Rows) Len() int { return len(r.rows) }

// Source returns the shard whose journal holds key (-1 when absent).
func (r *Rows) Source(key string) int {
	if s, ok := r.bySource[key]; ok {
		return s
	}
	return -1
}

// Lookup reports whether key was journaled by any shard, unmarshalling
// its payload into v when v is non-nil.
func (r *Rows) Lookup(key string, v any) bool {
	data, ok := r.rows[key]
	if !ok {
		return false
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			return false
		}
	}
	return true
}

// Record always fails: the merged row store is read-only by construction.
// Reaching it means a figure tried to compute a row during a merge, which
// the strict-restore mode of the experiments harness reports first with a
// better error; this is the backstop.
func (r *Rows) Record(key string, v any) error {
	return fmt.Errorf("shard: merge is read-only, refusing to record row %q", key)
}

// Load opens a shard directory for merging: it verifies the manifest,
// scans every per-shard journal (rounding a torn tail down to its intact
// prefix, exactly like a resume would), and checks the merge invariants —
// every journal present and bound to its expected fingerprint, and every
// row journaled by the one shard that Index assigns it to. A violated
// invariant returns an *IncompleteError naming the offending shards;
// nothing is ever silently dropped or combined.
func Load(dir string) (*Rows, error) {
	r, bad, err := load(dir)
	if err != nil {
		return nil, err
	}
	if len(bad) > 0 {
		return nil, &IncompleteError{Dir: dir, Shards: r.manifest.Shards, Reasons: bad}
	}
	return r, nil
}

// LoadPartial opens a shard directory for a degraded merge: shards whose
// journals are missing, torn below the header, misbound or internally
// inconsistent are reported in the returned reasons map (and contribute
// no rows) instead of refusing the whole merge. The manifest itself must
// still verify — without it nothing binds the directory to a sweep, so
// there is no safe degradation. A clean directory returns empty reasons.
func LoadPartial(dir string) (*Rows, map[int]string, error) {
	r, bad, err := load(dir)
	if err != nil {
		return nil, nil, err
	}
	return r, bad, nil
}

// load reads every per-shard journal under the directory's manifest. A
// shard that violates any merge invariant lands in the reasons map and
// contributes no rows at all — a journal that mixes in foreign rows is
// distrusted entirely, not salvaged up to the violation.
func load(dir string) (*Rows, map[int]string, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	r := &Rows{
		manifest: m,
		rows:     make(map[string]json.RawMessage),
		bySource: make(map[string]int),
	}
	bad := map[int]string{}
	for i := 0; i < m.Shards; i++ {
		name := JournalName(i, m.Shards)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				bad[i] = fmt.Sprintf("journal %s missing (worker never ran?)", name)
			} else {
				bad[i] = fmt.Sprintf("journal %s unreadable: %v", name, err)
			}
			continue
		}
		fp, ok, rows, _ := runstate.Scan(data)
		if !ok {
			bad[i] = fmt.Sprintf("journal %s has no intact header", name)
			continue
		}
		if want := JournalFingerprint(m.FP, i, m.Shards); fp != want {
			bad[i] = fmt.Sprintf("journal %s fingerprint %s, want %s (different workload or shard coordinates)", name, fp, want)
			continue
		}
		staged := make([]runstate.Row, 0, len(rows))
		stagedKeys := make(map[string]bool, len(rows))
		for _, row := range rows {
			if owner := Index(row.Key, m.Shards); owner != i {
				bad[i] = fmt.Sprintf("journal %s holds row %q owned by shard %d — journals were mixed or renamed", name, row.Key, owner)
				break
			}
			if stagedKeys[row.Key] {
				bad[i] = fmt.Sprintf("journal %s holds row %q twice", name, row.Key)
				break
			}
			if prev, dup := r.bySource[row.Key]; dup {
				// Unreachable when the partition invariant holds (the same
				// key cannot belong to two shards), kept as defense in depth.
				bad[i] = fmt.Sprintf("row %q journaled by shards %d and %d", row.Key, prev, i)
				break
			}
			staged = append(staged, row)
			stagedKeys[row.Key] = true
		}
		if _, isBad := bad[i]; isBad {
			continue // distrust the whole journal, commit none of its rows
		}
		for _, row := range staged {
			r.rows[row.Key] = row.Data
			r.bySource[row.Key] = i
		}
	}
	return r, bad, nil
}
