package shard

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLeaseLifecycle: AcquireLease installs the lease file with the
// worker's identity, the heartbeat keeps the mtime fresh, and Release
// removes the file so the slice never reads as stale afterwards.
func TestLeaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLease(dir, 1, 3, 4, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	info, mtime, err := ReadLease(dir, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.PID != os.Getpid() || info.Index != 1 || info.Shards != 3 || info.Attempt != 4 {
		t.Fatalf("lease info = %+v", info)
	}
	// The heartbeat advances the mtime without a new Acquire.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, m2, err := ReadLease(dir, 1, 3)
		if err == nil && m2.After(mtime) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never advanced the lease mtime")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stale, _ := LeaseStale(dir, 1, 3, time.Minute); stale {
		t.Error("freshly heartbeaten lease reads stale")
	}

	l.Release()
	if _, _, err := ReadLease(dir, 1, 3); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("lease after Release: %v, want not-exist", err)
	}
	if stale, _ := LeaseStale(dir, 1, 3, 0); stale {
		t.Error("released (missing) lease reads stale — no lease is not stale")
	}
	l.Release() // idempotent
}

// TestLeaseStaleAfterSilence: once the heartbeat stops (simulated by
// backdating the file's mtime, as if the worker was SIGKILLed), the lease
// reads stale and still carries the dead worker's identity.
func TestLeaseStaleAfterSilence(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLease(dir, 0, 2, 1, time.Hour) // heartbeat never fires
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	path := filepath.Join(dir, LeaseName(0, 2))
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	stale, info := LeaseStale(dir, 0, 2, 10*time.Second)
	if !stale {
		t.Fatal("minute-old heartbeat not stale at a 10s threshold")
	}
	if info.PID != os.Getpid() || info.Attempt != 1 {
		t.Errorf("stale lease identity = %+v", info)
	}
	if stale, _ := LeaseStale(dir, 0, 2, 2*time.Minute); stale {
		t.Error("minute-old heartbeat stale at a 2m threshold")
	}
}

// TestLeaseOverwrite: a new attempt overwrites the dead previous
// attempt's lease file rather than failing — the journal flock, not the
// lease, owns mutual exclusion.
func TestLeaseOverwrite(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireLease(dir, 0, 2, 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLease(dir, 0, 2, 2, time.Hour)
	if err != nil {
		t.Fatalf("second acquire over an existing lease: %v", err)
	}
	info, _, err := ReadLease(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Attempt != 2 {
		t.Errorf("lease attempt = %d, want the newer attempt 2", info.Attempt)
	}
	l2.Release()
	l1.Release()
}

// TestReadLeaseTorn: a lease whose payload is garbage (torn write on a
// pre-fsatomic filesystem, or fs corruption) still reports liveness via
// mtime with zeroed identity instead of erroring the watchdog out.
func TestReadLeaseTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LeaseName(1, 2))
	if err := os.WriteFile(path, []byte(`{"pid": 12`), 0o644); err != nil {
		t.Fatal(err)
	}
	info, mtime, err := ReadLease(dir, 1, 2)
	if err != nil {
		t.Fatalf("torn lease: %v, want tolerated", err)
	}
	if info != (LeaseInfo{}) {
		t.Errorf("torn lease info = %+v, want zeroed", info)
	}
	if mtime.IsZero() {
		t.Error("torn lease lost its mtime — staleness would be unjudgeable")
	}
	if stale, _ := LeaseStale(dir, 1, 2, time.Minute); stale {
		t.Error("fresh torn lease reads stale")
	}
}

// TestLoadPartialDegrades: LoadPartial serves rows from the intact shards
// and names each unusable one with a reason, where strict Load refuses
// the whole merge; a clean directory yields empty reasons.
func TestLoadPartialDegrades(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	m := testManifest(3)
	if err := EnsureManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	keys := []string{"row-a", "row-b", "row-c", "row-d", "row-e", "row-f", "row-g"}
	for i := 0; i < m.Shards; i++ {
		writeShardJournal(t, dir, m, i, keys)
	}
	rows, reasons, err := LoadPartial(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reasons) != 0 || rows.Len() != len(keys) {
		t.Fatalf("clean dir: %d rows, reasons %v", rows.Len(), reasons)
	}

	// Kill shard 1's journal: strict refuses, partial degrades.
	if err := os.Remove(filepath.Join(dir, JournalName(1, m.Shards))); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("strict Load accepted a missing journal")
	}
	rows, reasons, err = LoadPartial(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reasons) != 1 || reasons[1] == "" {
		t.Fatalf("reasons = %v, want shard 1 named", reasons)
	}
	lost := 0
	for _, k := range keys {
		owner := Index(k, m.Shards)
		if got := rows.Lookup(k, nil); got != (owner != 1) {
			t.Errorf("row %q (owner %d): present=%v after losing shard 1", k, owner, got)
		}
		if owner == 1 {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("test workload assigned no keys to shard 1; pick different keys")
	}
	if rows.Len() != len(keys)-lost {
		t.Errorf("partial rows = %d, want %d", rows.Len(), len(keys)-lost)
	}

	// A missing manifest is not degradable: nothing binds the directory.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadPartial(dir); err == nil {
		t.Fatal("LoadPartial accepted a directory with no manifest")
	}
}
