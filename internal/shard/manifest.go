package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/fsatomic"
)

// ManifestVersion is the shard-manifest format version. Any other version
// fails closed — an old binary never half-reads a newer layout.
const ManifestVersion = 1

// ManifestName is the manifest's file name inside a shard directory.
const ManifestName = "shard-manifest.json"

// ErrNoManifest marks a shard directory with no manifest file at all
// (as opposed to a corrupt one, which is its own loud error).
var ErrNoManifest = errors.New("shard: no manifest")

// Manifest binds a shard directory to one sharded sweep: the workload
// fingerprint, the figure, and the partition width. Every worker writing
// into the directory and the merge step reading it verify against it, so
// journals from different workloads, figures or shard counts can never be
// silently combined.
type Manifest struct {
	// FP is the workload fingerprint (WorkloadFingerprint) every
	// per-shard journal is derived from.
	FP string `json:"fp"`
	// Fig names the figure being sharded.
	Fig string `json:"fig"`
	// Shards is the partition width; journals are named
	// JournalName(0..Shards-1, Shards).
	Shards int `json:"shards"`
	// Apps, Procs and Seed restate the workload for error messages and
	// tooling; FP is what is actually enforced.
	Apps  int   `json:"apps"`
	Procs []int `json:"procs"`
	Seed  int64 `json:"seed"`
}

// manifestFile is the on-disk framing: the manifest payload as raw JSON
// plus a CRC-32 over exactly those bytes, so equality and integrity are
// both byte-level questions.
type manifestFile struct {
	V   int             `json:"v"`
	M   json.RawMessage `json:"m"`
	CRC string          `json:"crc"`
}

func manifestCRC(payload []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))
}

// encode renders the manifest to its canonical file bytes.
func (m Manifest) encode() ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("shard: encode manifest: %w", err)
	}
	out, err := json.Marshal(manifestFile{V: ManifestVersion, M: payload, CRC: manifestCRC(payload)})
	if err != nil {
		return nil, fmt.Errorf("shard: encode manifest: %w", err)
	}
	return append(out, '\n'), nil
}

// validate rejects manifests that cannot describe a real sweep; a
// corrupted-but-CRC-valid file (hand-edited, version-skewed) fails closed
// here instead of producing nonsense journal names.
func (m Manifest) validate() error {
	if m.FP == "" {
		return errors.New("shard: manifest has no workload fingerprint")
	}
	if m.Fig == "" {
		return errors.New("shard: manifest names no figure")
	}
	if m.Shards < 1 || m.Shards > 1<<20 {
		return fmt.Errorf("shard: manifest shard count %d out of range", m.Shards)
	}
	return nil
}

// ParseManifest decodes manifest file bytes, failing closed on anything
// torn, corrupt, version-skewed or semantically invalid. It never
// panics; FuzzShardManifest pins that.
func ParseManifest(data []byte) (Manifest, error) {
	var f manifestFile
	if err := json.Unmarshal(bytes.TrimSpace(data), &f); err != nil {
		return Manifest{}, fmt.Errorf("shard: corrupt manifest: %w", err)
	}
	if f.V != ManifestVersion {
		return Manifest{}, fmt.Errorf("shard: manifest version %d, want %d", f.V, ManifestVersion)
	}
	if f.CRC != manifestCRC(f.M) {
		return Manifest{}, errors.New("shard: manifest checksum mismatch")
	}
	var m Manifest
	if err := json.Unmarshal(f.M, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: corrupt manifest payload: %w", err)
	}
	if err := m.validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// ReadManifest loads and verifies the manifest of a shard directory. A
// missing file returns ErrNoManifest (wrapped); any corruption is a loud
// error, never a zero manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Manifest{}, fmt.Errorf("%w in %s", ErrNoManifest, dir)
		}
		return Manifest{}, fmt.Errorf("shard: read manifest: %w", err)
	}
	return ParseManifest(data)
}

// EnsureManifest creates the shard directory and installs the manifest,
// or verifies that the manifest already there describes the same sweep.
// Concurrent workers of one sweep all call it: the write is atomic
// (temp file + rename) and idempotent, and a worker configured for a
// different workload, figure or shard count is refused instead of
// corrupting the directory.
func EnsureManifest(dir string, m Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	want, err := m.encode()
	if err != nil {
		return err
	}
	existing, err := ReadManifest(dir)
	switch {
	case err == nil:
		have, eerr := existing.encode()
		if eerr != nil {
			return eerr
		}
		if !bytes.Equal(have, want) {
			return fmt.Errorf("shard: directory %s already holds a different sweep (manifest fp=%s fig=%s shards=%d; this worker wants fp=%s fig=%s shards=%d)",
				dir, existing.FP, existing.Fig, existing.Shards, m.FP, m.Fig, m.Shards)
		}
		return nil
	case errors.Is(err, ErrNoManifest):
		// Fall through to the initial write.
	default:
		return err // corrupt manifest: fail closed, never overwrite evidence
	}
	if err := fsatomic.WriteFileFP(filepath.Join(dir, ManifestName), want, "shard.manifest"); err != nil {
		return fmt.Errorf("shard: install manifest: %w", err)
	}
	return nil
}
