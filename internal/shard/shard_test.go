package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runstate"
)

// TestIndexExactCover: for any shard count, every key is owned by exactly
// one shard with an index inside [0, shards) — the partition is a
// disjoint exact cover of the key space.
func TestIndexExactCover(t *testing.T) {
	keys := make([]string, 0, 200)
	for i := 0; i < 100; i++ {
		keys = append(keys, fmt.Sprintf("acceptance|model=0|ser=1e-%d|hpd=%d|arc=20", i%12, i))
		keys = append(keys, fmt.Sprintf("runtime|model=0|n=%d|strategy=OPT", i))
	}
	for _, shards := range []int{1, 2, 3, 7, 16} {
		covered := make([]int, shards)
		for _, k := range keys {
			i := Index(k, shards)
			if i < 0 || i >= shards {
				t.Fatalf("Index(%q, %d) = %d out of range", k, shards, i)
			}
			if j := Index(k, shards); j != i {
				t.Fatalf("Index(%q, %d) unstable: %d then %d", k, shards, i, j)
			}
			covered[i]++
		}
		total := 0
		for _, n := range covered {
			total += n
		}
		if total != len(keys) {
			t.Fatalf("shards=%d covered %d of %d keys", shards, total, len(keys))
		}
	}
	// Degenerate widths own everything in shard 0.
	for _, shards := range []int{0, 1, -3} {
		if i := Index("any", shards); i != 0 {
			t.Errorf("Index(any, %d) = %d, want 0", shards, i)
		}
	}
}

// TestWorkloadFingerprintMatchesJournal: the sweep fingerprint is the
// same identity paperbench's -journal uses, so sharded and unsharded runs
// of one workload agree on what they are.
func TestWorkloadFingerprint(t *testing.T) {
	a, err := WorkloadFingerprint(10, []int{20, 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WorkloadFingerprint(10, []int{20, 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fingerprint unstable: %s then %s", a, b)
	}
	c, err := WorkloadFingerprint(10, []int{20, 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds fingerprint identically")
	}
	want, err := runstate.Fingerprint(struct {
		Apps  int   `json:"apps"`
		Procs []int `json:"procs"`
		Seed  int64 `json:"seed"`
	}{10, []int{20, 40}, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != want {
		t.Fatalf("WorkloadFingerprint %s does not match the -journal fingerprint %s", a, want)
	}
}

func testManifest(shards int) Manifest {
	return Manifest{FP: "abcdef0123456789", Fig: "6a", Shards: shards,
		Apps: 2, Procs: []int{20}, Seed: 3}
}

// TestManifestRoundtrip: EnsureManifest installs once, is idempotent for
// the same sweep, and refuses a different one.
func TestManifestRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	m := testManifest(3)
	if err := EnsureManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.FP != m.FP || got.Fig != m.Fig || got.Shards != m.Shards || got.Seed != m.Seed {
		t.Fatalf("roundtrip: got %+v, want %+v", got, m)
	}
	// Same sweep again: idempotent.
	if err := EnsureManifest(dir, m); err != nil {
		t.Fatalf("idempotent EnsureManifest: %v", err)
	}
	// Different shard count: refused loudly.
	other := m
	other.Shards = 4
	if err := EnsureManifest(dir, other); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("mismatched manifest accepted: %v", err)
	}
}

// TestManifestFailsClosed: corrupt, torn and version-skewed manifests are
// errors, never zero values, and EnsureManifest never overwrites them.
func TestManifestFailsClosed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	if err := EnsureManifest(dir, testManifest(2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutant := range map[string][]byte{
		"truncated":     data[:len(data)/2],
		"bit-flipped":   append([]byte{}, append(data[:10], append([]byte{'x'}, data[11:]...)...)...),
		"empty":         nil,
		"not-json":      []byte("hello\n"),
		"wrong-version": []byte(`{"v":99,"m":{},"crc":"00000000"}`),
	} {
		if _, err := ParseManifest(mutant); err == nil {
			t.Errorf("%s manifest parsed without error", name)
		}
		if err := os.WriteFile(path, mutant, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); err == nil {
			t.Errorf("%s manifest read without error", name)
		}
		if err := EnsureManifest(dir, testManifest(2)); err == nil {
			t.Errorf("EnsureManifest overwrote a %s manifest", name)
		}
	}
	// Missing entirely: the typed sentinel.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("missing manifest: %v, want ErrNoManifest", err)
	}
}

// TestManifestValidate: a CRC-valid but semantically impossible manifest
// fails closed instead of producing nonsense journal names.
func TestManifestValidate(t *testing.T) {
	bad := []Manifest{
		{FP: "", Fig: "6a", Shards: 2},
		{FP: "x", Fig: "", Shards: 2},
		{FP: "x", Fig: "6a", Shards: 0},
		{FP: "x", Fig: "6a", Shards: 1 << 21},
	}
	for _, m := range bad {
		if err := EnsureManifest(t.TempDir(), m); err == nil {
			t.Errorf("manifest %+v accepted", m)
		}
	}
}

// writeShardJournal populates one shard's journal with the subset of keys
// it owns, each recorded under a small payload.
func writeShardJournal(t *testing.T, dir string, m Manifest, idx int, keys []string) {
	t.Helper()
	j, err := runstate.Open(filepath.Join(dir, JournalName(idx, m.Shards)),
		JournalFingerprint(m.FP, idx, m.Shards), false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, k := range keys {
		if Index(k, m.Shards) != idx {
			continue
		}
		if err := j.Record(k, map[string]float64{"v": float64(len(k))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadMergesAllShards: a complete shard directory loads into the
// union of every journal, each row attributed to its owner.
func TestLoadMergesAllShards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	m := testManifest(3)
	if err := EnsureManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	keys := []string{"row-a", "row-b", "row-c", "row-d", "row-e", "row-f", "row-g"}
	for i := 0; i < m.Shards; i++ {
		writeShardJournal(t, dir, m, i, keys)
	}
	rows, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != len(keys) {
		t.Fatalf("merged %d rows, want %d", rows.Len(), len(keys))
	}
	for _, k := range keys {
		var v map[string]float64
		if !rows.Lookup(k, &v) {
			t.Fatalf("row %q not merged", k)
		}
		if v["v"] != float64(len(k)) {
			t.Fatalf("row %q payload %v", k, v)
		}
		if got, want := rows.Source(k), Index(k, m.Shards); got != want {
			t.Fatalf("row %q attributed to shard %d, want %d", k, got, want)
		}
	}
	if rows.Source("absent") != -1 {
		t.Error("absent row has a source")
	}
	if err := rows.Record("new", 1); err == nil {
		t.Error("merged rows accepted a Record — merges must be read-only")
	}
}

// TestLoadRefusesIncomplete: a missing shard journal, a foreign
// fingerprint and a row in the wrong journal each block the merge with an
// *IncompleteError naming the offending shard.
func TestLoadRefusesIncomplete(t *testing.T) {
	keys := []string{"row-a", "row-b", "row-c", "row-d", "row-e"}

	setup := func(t *testing.T, shards int) (string, Manifest) {
		dir := filepath.Join(t.TempDir(), "sweep")
		m := testManifest(shards)
		if err := EnsureManifest(dir, m); err != nil {
			t.Fatal(err)
		}
		return dir, m
	}
	wantIncomplete := func(t *testing.T, dir string, shardIdx int, substr string) {
		t.Helper()
		_, err := Load(dir)
		var ie *IncompleteError
		if !errors.As(err, &ie) {
			t.Fatalf("Load = %v, want *IncompleteError", err)
		}
		reason, ok := ie.Reasons[shardIdx]
		if !ok {
			t.Fatalf("shard %d not in reasons: %v", shardIdx, ie)
		}
		if !strings.Contains(reason, substr) {
			t.Fatalf("shard %d reason %q does not mention %q", shardIdx, reason, substr)
		}
		if !strings.Contains(err.Error(), "merge refused") {
			t.Fatalf("error %q does not read as a refusal", err)
		}
	}

	t.Run("missing journal", func(t *testing.T) {
		dir, m := setup(t, 2)
		writeShardJournal(t, dir, m, 0, keys) // shard 1 never ran
		wantIncomplete(t, dir, 1, "missing")
	})

	t.Run("wrong fingerprint", func(t *testing.T) {
		dir, m := setup(t, 2)
		writeShardJournal(t, dir, m, 0, keys)
		// Shard 1's journal written under another workload's fingerprint.
		j, err := runstate.Open(filepath.Join(dir, JournalName(1, 2)),
			JournalFingerprint("feedfacefeedface", 1, 2), false)
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		wantIncomplete(t, dir, 1, "fingerprint")
	})

	t.Run("row in wrong journal", func(t *testing.T) {
		dir, m := setup(t, 2)
		writeShardJournal(t, dir, m, 0, keys)
		// Shard 1's journal holds a row shard 0 owns — as if journals were
		// renamed or hand-mixed.
		j, err := runstate.Open(filepath.Join(dir, JournalName(1, 2)),
			JournalFingerprint(m.FP, 1, 2), false)
		if err != nil {
			t.Fatal(err)
		}
		var stolen string
		for _, k := range keys {
			if Index(k, 2) == 0 {
				stolen = k
				break
			}
		}
		if err := j.Record(stolen, 1); err != nil {
			t.Fatal(err)
		}
		j.Close()
		wantIncomplete(t, dir, 1, "owned by shard 0")
	})

	t.Run("torn tail rounds down", func(t *testing.T) {
		// Enough keys that both shards certainly own several rows.
		many := make([]string, 24)
		for i := range many {
			many[i] = fmt.Sprintf("row-%02d", i)
		}
		dir, m := setup(t, 2)
		for i := 0; i < 2; i++ {
			writeShardJournal(t, dir, m, i, many)
		}
		// Tear the final bytes of shard 1's journal: the damaged record
		// disappears (exactly like a resume would drop it), so the merge
		// sees one fewer row than a complete sweep.
		path := filepath.Join(dir, JournalName(1, 2))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		rows, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != len(many)-1 {
			t.Fatalf("torn journal merged %d rows, want %d (one torn away)", rows.Len(), len(many)-1)
		}
	})

	t.Run("no manifest", func(t *testing.T) {
		if _, err := Load(t.TempDir()); !errors.Is(err, ErrNoManifest) {
			t.Fatalf("Load without manifest: %v", err)
		}
	})
}
