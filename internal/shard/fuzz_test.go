package shard

import (
	"bytes"
	"testing"

	"repro/internal/runstate"
)

// FuzzShardManifest pins the fail-closed contract of the shard metadata:
// whatever bytes land in a manifest file (torn writes, bit rot, hand
// edits, version skew), ParseManifest either returns a fully valid
// manifest or an error — never a panic, never a half-read zero value.
// The same input is also fed to the journal scanner, which must round
// down to an intact prefix under the identical no-panic contract, since
// the merge step trusts both on the same directory.
func FuzzShardManifest(f *testing.F) {
	valid, err := Manifest{FP: "abcdef0123456789", Fig: "6a", Shards: 3,
		Apps: 2, Procs: []int{20}, Seed: 3}.encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                      // torn write
	f.Add(bytes.Replace(valid, []byte("crc"), []byte("crx"), 1))     // framing damage
	f.Add(bytes.Replace(valid, []byte(`"v":1`), []byte(`"v":9`), 1)) // version skew
	f.Add([]byte(`{"v":1,"m":{"fp":"x","fig":"6a","shards":-4},"crc":"00000000"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(nil))
	f.Add([]byte("\x00\x01\x02garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err == nil {
			// Whatever parsed must satisfy the merge invariants: journal
			// names derivable, shard count usable.
			if m.FP == "" || m.Fig == "" || m.Shards < 1 || m.Shards > 1<<20 {
				t.Fatalf("invalid manifest parsed without error: %+v", m)
			}
			if JournalName(0, m.Shards) == "" {
				t.Fatal("no journal name for a valid manifest")
			}
		}
		// The journal scanner shares the fail-closed contract: arbitrary
		// bytes round down to an intact prefix or nothing, without panics.
		fp, ok, rows, goodLen := runstate.Scan(data)
		if ok && goodLen > len(data) {
			t.Fatalf("Scan claims %d good bytes of %d", goodLen, len(data))
		}
		if !ok && (fp != "" || len(rows) != 0) {
			t.Fatalf("failed Scan still returned fp=%q rows=%d", fp, len(rows))
		}
	})
}
