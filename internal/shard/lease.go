package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fsatomic"
)

// DefaultLeaseInterval is how often a live worker refreshes its lease
// file; staleness thresholds should be a comfortable multiple of it.
const DefaultLeaseInterval = time.Second

// LeaseName returns the lease file name of one slice inside its shard
// directory, zero-padded like the journal names so listings sort.
func LeaseName(index, shards int) string {
	return fmt.Sprintf("lease-%04d-of-%04d.json", index, shards)
}

// LeaseInfo is the payload of a lease file: who is (or was) working the
// slice. Liveness is judged by the file's mtime — each heartbeat rewrite
// bumps it — not by the embedded wall-clock time, which exists for
// humans reading the file.
type LeaseInfo struct {
	PID       int   `json:"pid"`
	Index     int   `json:"index"`
	Shards    int   `json:"shards"`
	Attempt   int   `json:"attempt"`
	UpdatedMS int64 `json:"updated_ms"`
}

// Lease is a live heartbeat on one slice of a sharded sweep: a lease
// file in the shard directory rewritten (atomic temp+rename) on every
// interval tick, so a watchdog can tell a working slice (fresh mtime)
// from a dead or wedged one (stale mtime). The lease is advisory —
// mutual exclusion on the journal itself is the runstate flock — so
// heartbeat write failures are tolerated, not fatal.
type Lease struct {
	path string
	info LeaseInfo

	mu     sync.Mutex
	stop   chan struct{}
	done   chan struct{}
	closed bool
}

// AcquireLease installs the slice's lease file in dir and starts the
// heartbeat goroutine refreshing it every interval (DefaultLeaseInterval
// when interval <= 0). An existing lease file — a previous attempt that
// died without cleaning up — is overwritten: the journal flock, not the
// lease, arbitrates ownership.
func AcquireLease(dir string, index, shards, attempt int, interval time.Duration) (*Lease, error) {
	if interval <= 0 {
		interval = DefaultLeaseInterval
	}
	l := &Lease{
		path: filepath.Join(dir, LeaseName(index, shards)),
		info: LeaseInfo{PID: os.Getpid(), Index: index, Shards: shards, Attempt: attempt},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := l.write(); err != nil {
		return nil, fmt.Errorf("shard: acquire lease: %w", err)
	}
	go l.heartbeat(interval)
	return l, nil
}

func (l *Lease) write() error {
	info := l.info
	info.UpdatedMS = time.Now().UnixMilli()
	b, err := json.Marshal(info)
	if err != nil {
		return err
	}
	return fsatomic.WriteFileFP(l.path, append(b, '\n'), "shard.lease")
}

func (l *Lease) heartbeat(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			// Best effort: a failed refresh only risks a spurious stale
			// verdict, and the resubmitted attempt then loses the journal
			// flock race and backs off.
			l.write()
		}
	}
}

// Release stops the heartbeat and removes the lease file: the slice is
// done (or cleanly handing over) and should never read as stale.
func (l *Lease) Release() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	close(l.stop)
	l.mu.Unlock()
	<-l.done
	os.Remove(l.path)
}

// ReadLease reads the slice's lease file and the mtime its last
// heartbeat landed at. A missing file returns fs.ErrNotExist (wrapped):
// no attempt is working the slice, or the last one released cleanly.
func ReadLease(dir string, index, shards int) (LeaseInfo, time.Time, error) {
	path := filepath.Join(dir, LeaseName(index, shards))
	st, err := os.Stat(path)
	if err != nil {
		return LeaseInfo{}, time.Time{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return LeaseInfo{}, time.Time{}, err
	}
	var info LeaseInfo
	if err := json.Unmarshal(data, &info); err != nil {
		// A torn lease (the writer died mid-install before fsatomic
		// existed, or the fs lied) still carries liveness in its mtime;
		// report it with zeroed info rather than failing the watchdog.
		return LeaseInfo{}, st.ModTime(), nil
	}
	return info, st.ModTime(), nil
}

// LeaseStale reports whether the slice's lease exists and its last
// heartbeat is older than threshold — the signature of a worker that
// died (SIGKILL, power cut) or wedged. No lease at all is not stale:
// either nothing has claimed the slice yet or its owner finished and
// released.
func LeaseStale(dir string, index, shards int, threshold time.Duration) (bool, LeaseInfo) {
	info, mtime, err := ReadLease(dir, index, shards)
	if err != nil {
		return false, info
	}
	return time.Since(mtime) > threshold, info
}
