// Package shard turns one experiment sweep into a coordinator/worker fleet
// job: a deterministic partition of the workload grid over N workers, a
// versioned on-disk manifest binding the shard directory to one workload,
// per-shard runstate journals, and a merge reader that reassembles the
// rows into the byte-identical single-process table.
//
// The partition is a pure function of the per-row journal key — the same
// key every figure already uses for crash-safe resume — so any shard
// count yields a disjoint exact cover of the grid: every row belongs to
// exactly one shard, no coordination needed beyond agreeing on (count,
// index). Workers run their slice through the ordinary experiments path,
// appending completed rows to their own CRC-checksummed journal; a crash
// or SIGKILL costs at most the row being written, and a restarted worker
// resumes from its journal exactly like a single-process -resume run.
//
// The merge step (Load + the strict row store it returns) never computes:
// it verifies the manifest, checks every per-shard journal against its
// bound fingerprint, and re-renders the figure purely from journaled rows
// — refusing, with an error naming the incomplete shards, when any row
// that the grid needs is missing.
package shard

import (
	"fmt"
	"hash/fnv"

	"repro/internal/runstate"
)

// Index returns the shard that owns the row with the given journal key,
// for a partition into shards slices. It is a stable pure function
// (FNV-64a of the key, reduced mod shards): every key maps to exactly one
// shard for a given count, so the slices form a disjoint exact cover of
// any workload grid. shards < 2 always returns 0.
func Index(key string, shards int) int {
	if shards < 2 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(shards))
}

// WorkloadFingerprint derives the workload identity a sweep is sharded
// over: the same (apps, procs, seed) fingerprint cmd/paperbench binds its
// single-process -journal to, so sharded and unsharded journals of one
// workload agree on what they describe.
func WorkloadFingerprint(apps int, procs []int, seed int64) (string, error) {
	return runstate.Fingerprint(struct {
		Apps  int   `json:"apps"`
		Procs []int `json:"procs"`
		Seed  int64 `json:"seed"`
	}{apps, procs, seed})
}

// JournalName returns the file name of shard index's journal in a
// partition into shards slices, e.g. "shard-0002-of-0007.jsonl".
func JournalName(index, shards int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.jsonl", index, shards)
}

// TraceName returns the file name of shard index's Chrome trace snapshot
// in the shard directory, e.g. "trace-0002-of-0007.json". Workers write
// it next to their journal; the merge step stitches all of them (plus
// its own trace) into one cross-process timeline with obs.MergeTraces.
func TraceName(index, shards int) string {
	return fmt.Sprintf("trace-%04d-of-%04d.json", index, shards)
}

// JournalFingerprint returns the runstate fingerprint a per-shard journal
// is bound to: the workload fingerprint extended with the shard
// coordinates, so a journal written for slice 2/7 can never be resumed —
// or merged — as any other slice or shard count.
func JournalFingerprint(workloadFP string, index, shards int) string {
	return fmt.Sprintf("%s|shard=%d/%d", workloadFP, index, shards)
}
