package runstate

import (
	"bytes"
	"encoding/json"
	"testing"
)

// validJournal builds an intact journal image with a header and n rows,
// used both as fuzz seed material and as the known-good prefix in the
// round-down property below.
func validJournal(fp string, n int) []byte {
	var buf bytes.Buffer
	h, _ := json.Marshal(record{V: Version, Kind: "header", FP: fp, CRC: crcOf("header", "", nil)})
	buf.Write(h)
	buf.WriteByte('\n')
	for i := 0; i < n; i++ {
		key := string(rune('a' + i))
		data := []byte(`{"rates":{"OPT":` + string(rune('0'+i)) + `}}`)
		r, _ := json.Marshal(record{V: Version, Key: key, Data: data, CRC: crcOf("", key, data)})
		buf.Write(r)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// FuzzJournal drives the journal record parser with arbitrary bytes:
// truncated, bit-flipped and version-skewed inputs must round down to the
// last good record — never panic, never fabricate rows, and never return
// an unstable parse.
func FuzzJournal(f *testing.F) {
	f.Add(validJournal("fp", 3))
	f.Add(validJournal("fp", 0))
	f.Add(validJournal("fp", 2)[:40])                                                         // torn mid-record
	f.Add(append(validJournal("fp", 1), "{\"v\":1,\"key\":"...))                              // torn tail, no newline
	f.Add(append(validJournal("fp", 1), "{\"v\":2,\"key\":\"z\",\"crc\":\"00000000\"}\n"...)) // version skew
	f.Add([]byte("not json at all\n"))
	f.Add([]byte{})
	bitFlipped := validJournal("fp", 2)
	bitFlipped[len(bitFlipped)/2] ^= 0x40
	f.Add(bitFlipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fp, ok, rows, goodLen := Scan(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d outside [0,%d]", goodLen, len(data))
		}
		if !ok && (fp != "" || len(rows) != 0) {
			t.Fatalf("rows or fingerprint without an intact header")
		}
		for _, r := range rows {
			if r.Key == "" {
				t.Fatal("row with empty key")
			}
			if !json.Valid(r.Data) && r.Data != nil {
				t.Fatalf("row %q carries invalid JSON payload", r.Key)
			}
		}
		// Round-down stability: re-scanning the intact prefix must yield
		// exactly the same parse — the bytes past goodLen contribute
		// nothing.
		fp2, ok2, rows2, goodLen2 := Scan(data[:goodLen])
		if fp2 != fp || ok2 != ok || goodLen2 != goodLen || len(rows2) != len(rows) {
			t.Fatalf("unstable parse: (%q,%v,%d rows,%d) then (%q,%v,%d rows,%d)",
				fp, ok, len(rows), goodLen, fp2, ok2, len(rows2), goodLen2)
		}
		for i := range rows {
			if rows2[i].Key != rows[i].Key || !bytes.Equal(rows2[i].Data, rows[i].Data) {
				t.Fatalf("row %d differs on re-scan", i)
			}
		}
	})
}

// TestScanKnownGoodPrefix pins the core round-down property on a
// deterministic case (the fuzz target checks it on arbitrary bytes).
func TestScanKnownGoodPrefix(t *testing.T) {
	good := validJournal("fp", 3)
	garbage := append(append([]byte{}, good...), "{\"v\":1,\"key\":\"torn"...)
	fp, ok, rows, goodLen := Scan(garbage)
	if !ok || fp != "fp" || len(rows) != 3 || goodLen != len(good) {
		t.Fatalf("fp=%q ok=%v rows=%d goodLen=%d (want %d)", fp, ok, len(rows), goodLen, len(good))
	}
}
