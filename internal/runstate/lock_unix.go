//go:build unix

package runstate

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive flock on the journal file. The
// lock belongs to the open file description, so it also excludes a second
// Open within the same process, and it is released automatically when the
// descriptor closes — including when the process is SIGKILLed, which is
// exactly when the next Open must be able to take over the journal.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrLocked
	}
	return fmt.Errorf("flock: %w", err)
}
