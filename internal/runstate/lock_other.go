//go:build !unix

package runstate

import "os"

// lockFile is a no-op where flock is unavailable; concurrent-open
// protection is best-effort and unix-only.
func lockFile(*os.File) error { return nil }
