package runstate

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultject"
)

// recordRows appends keys r0..r<n-1> with small payloads, returning the
// first error.
func recordRows(j *Journal, from, to int) error {
	for i := from; i < to; i++ {
		if err := j.Record(key(i), map[string]int{"i": i}); err != nil {
			return err
		}
	}
	return nil
}

func key(i int) string { return "row-" + string(rune('a'+i)) }

// TestAppendFaultShortWrite: an injected short write errors the append,
// the journal refuses further appends until reopened, and the reopen
// rounds the torn tail down to exactly the rows that were durable —
// never a corrupt or phantom row.
func TestAppendFaultShortWrite(t *testing.T) {
	t.Cleanup(faultject.Reset)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path, "fp-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recordRows(j, 0, 3); err != nil {
		t.Fatal(err)
	}
	// Header consumed hit 1 at Open time? No — the journal was opened
	// before arming, so the next append is hit 1: make it fail.
	if err := faultject.Arm("runstate.append=short:after=1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(key(3), map[string]int{"i": 3}); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("injected short write: %v, want io.ErrShortWrite", err)
	}
	faultject.Reset()
	// Damaged: even a clean append is refused until reopen.
	if err := j.Record(key(4), map[string]int{"i": 4}); err == nil {
		t.Fatal("append after failed write accepted; the tail may be torn")
	}
	j.Close()

	j2, err := Open(path, "fp-test", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() != 3 {
		t.Fatalf("restored %d rows, want the 3 durable ones", j2.Restored())
	}
	for i := 0; i < 3; i++ {
		var v map[string]int
		if !j2.Lookup(key(i), &v) || v["i"] != i {
			t.Fatalf("row %d lost or corrupted: %v", i, v)
		}
	}
	if j2.Lookup(key(3), nil) {
		t.Fatal("torn row resurrected")
	}
	// The journal is fully usable again.
	if err := recordRows(j2, 3, 5); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestAppendFaultENOSPC: a full disk fails the append with ENOSPC (the
// retryable class) before any byte lands; a reopen restores every row
// recorded before the fault.
func TestAppendFaultENOSPC(t *testing.T) {
	t.Cleanup(faultject.Reset)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path, "fp-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recordRows(j, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := faultject.Arm("runstate.append=enospc:after=1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(key(2), nil); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected ENOSPC: %v", err)
	}
	faultject.Reset()
	j.Close()

	j2, err := Open(path, "fp-test", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() != 2 {
		t.Fatalf("restored %d rows, want 2", j2.Restored())
	}
}

// TestAppendFaultTornTailScan: the bytes a short write leaves behind are
// invisible to Scan — the torn line never parses as a row, and goodLen
// points at the last intact boundary.
func TestAppendFaultTornTailScan(t *testing.T) {
	t.Cleanup(faultject.Reset)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path, "fp-test", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recordRows(j, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := faultject.Arm("runstate.append=torn:after=1"); err != nil {
		t.Fatal(err)
	}
	j.Record(key(2), map[string]int{"i": 2})
	faultject.Reset()
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fp, ok, rows, goodLen := Scan(data)
	if !ok || fp != "fp-test" {
		t.Fatalf("scan of torn journal: ok=%v fp=%q", ok, fp)
	}
	if len(rows) != 2 {
		t.Fatalf("scan found %d rows, want 2 (torn tail must not parse)", len(rows))
	}
	if goodLen >= len(data) {
		t.Fatal("goodLen includes the torn tail")
	}
}
