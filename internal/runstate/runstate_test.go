package runstate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Rates map[string]float64 `json:"rates"`
}

func openFresh(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path, "fp-1", false)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openFresh(t, path)
	want := payload{Rates: map[string]float64{"MIN": 12.5, "OPT": 100.0 / 3.0}}
	if err := j.Record("row-a", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("row-b", payload{Rates: map[string]float64{"MAX": 0}}); err != nil {
		t.Fatal(err)
	}
	if j.Appended() != 2 || j.Restored() != 0 || j.Len() != 2 {
		t.Errorf("appended %d restored %d len %d", j.Appended(), j.Restored(), j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, "fp-1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Restored() != 2 {
		t.Fatalf("restored %d rows, want 2", r.Restored())
	}
	var got payload
	if !r.Lookup("row-a", &got) {
		t.Fatal("row-a not restored")
	}
	// Float64 payloads must round-trip exactly: the resumed tables are
	// formatted from these values and must be byte-identical.
	if got.Rates["MIN"] != want.Rates["MIN"] || got.Rates["OPT"] != want.Rates["OPT"] {
		t.Errorf("payload %+v, want %+v", got, want)
	}
	if r.Lookup("row-c", nil) {
		t.Error("phantom row-c")
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	openFresh(t, path).Close()
	if _, err := Open(path, "other-fp", true); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
	// Without -resume the file is truncated and rebound, never an error.
	j, err := Open(path, "other-fp", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openFresh(t, path)
	for _, k := range []string{"a", "b", "c"} {
		if err := j.Record(k, payload{Rates: map[string]float64{"OPT": 50}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-write: drop its trailing bytes including
	// the newline.
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, "fp-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restored() != 2 || !r.Lookup("a", nil) || !r.Lookup("b", nil) || r.Lookup("c", nil) {
		t.Fatalf("restored %d; want exactly rows a and b", r.Restored())
	}
	// The torn tail was truncated away, so re-recording row c appends a
	// clean record after the last good one.
	if err := r.Record("c", payload{Rates: map[string]float64{"OPT": 50}}); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2, err := Open(path, "fp-1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Restored() != 3 {
		t.Fatalf("after repair restored %d rows, want 3", r2.Restored())
	}
}

func TestJournalBitFlipRoundsDown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openFresh(t, path)
	j.Record("a", payload{Rates: map[string]float64{"OPT": 1}})
	j.Record("b", payload{Rates: map[string]float64{"OPT": 2}})
	j.Close()

	data, _ := os.ReadFile(path)
	// Flip a bit inside row "a"'s payload: its CRC fails, and row "b"
	// after it must NOT be trusted (the append-only invariant is broken).
	i := strings.Index(string(data), `"OPT":1`)
	data[i+6] ^= 0x01
	os.WriteFile(path, data, 0o644)

	r, err := Open(path, "fp-1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Restored() != 0 {
		t.Fatalf("restored %d rows after mid-file corruption, want 0", r.Restored())
	}
}

func TestJournalVersionSkewRoundsDown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openFresh(t, path)
	j.Record("a", payload{Rates: map[string]float64{"OPT": 1}})
	j.Close()

	// Append a future-version record with a valid CRC: the reader must
	// stop before it rather than guess at its semantics.
	data, _ := os.ReadFile(path)
	fut := record{V: Version + 1, Key: "b", Data: json.RawMessage(`{}`), CRC: crcOf("", "b", []byte(`{}`))}
	b, _ := json.Marshal(fut)
	data = append(data, b...)
	data = append(data, '\n')
	os.WriteFile(path, data, 0o644)

	r, err := Open(path, "fp-1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Restored() != 1 || !r.Lookup("a", nil) {
		t.Fatalf("restored %d, want just row a", r.Restored())
	}
}

func TestJournalNoDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openFresh(t, path)
	if err := j.Record("a", payload{Rates: map[string]float64{"OPT": 1}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", payload{Rates: map[string]float64{"OPT": 999}}); err != nil {
		t.Fatal(err)
	}
	if j.Appended() != 1 {
		t.Fatalf("appended %d, want 1 (re-record is a no-op)", j.Appended())
	}
	j.Close()
	data, _ := os.ReadFile(path)
	_, _, rows, _ := Scan(data)
	if len(rows) != 1 {
		t.Fatalf("%d rows on disk, want 1", len(rows))
	}
	var got payload
	json.Unmarshal(rows[0].Data, &got)
	if got.Rates["OPT"] != 1 {
		t.Errorf("first record must win, got %v", got.Rates["OPT"])
	}
}

func TestJournalEmptyKeyRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openFresh(t, path)
	defer j.Close()
	if err := j.Record("", payload{}); err == nil {
		t.Error("empty key accepted")
	}
}

func TestFingerprintStable(t *testing.T) {
	type cfg struct {
		Apps  int
		Procs []int
		Seed  int64
	}
	a, err := Fingerprint(cfg{10, []int{20, 40}, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Fingerprint(cfg{10, []int{20, 40}, 1})
	c, _ := Fingerprint(cfg{10, []int{20, 40}, 2})
	if a != b {
		t.Errorf("fingerprint unstable: %s vs %s", a, b)
	}
	if a == c {
		t.Error("different configs share a fingerprint")
	}
	if len(a) != 16 {
		t.Errorf("fingerprint %q, want 16 hex chars", a)
	}
}

func TestOpenMissingDirFails(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "no/such/dir/j.jsonl"), "fp", false); err == nil {
		t.Error("want error for unwritable path")
	}
}
