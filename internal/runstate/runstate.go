// Package runstate makes long experiment sweeps crash-safe: a journal of
// completed rows on disk that an interrupted run — SIGINT, OOM kill,
// power loss — can be resumed from, skipping every row that already
// finished and reproducing the remaining ones deterministically, so the
// resumed output is byte-identical to an uninterrupted run.
//
// The format is line-oriented JSON (one record per line), chosen so a
// torn final record — the crash landing mid-write — costs exactly the row
// being written and nothing before it:
//
//	{"v":1,"kind":"header","fp":"<config fingerprint>","crc":"xxxxxxxx"}
//	{"v":1,"key":"acceptance|ser=1e-11|hpd=5|arc=20","data":{...},"crc":"xxxxxxxx"}
//
// Every record carries the format version and a CRC-32 over its content;
// readers stop at the first record that fails either check ("round down
// to the last good record") and Open truncates the tail away before
// appending. Appends are a single O_APPEND write of a whole line followed
// by fsync, so a record is either fully durable or invisible. The header
// binds the journal to a fingerprint of the generating configuration:
// resuming with a different configuration is an error, never silently
// wrong rows.
package runstate

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"syscall"

	"repro/internal/faultject"
)

// ErrLocked marks the failure of Open when another open journal already
// holds the file's advisory lock: two writers interleaving appends in one
// journal would corrupt the append-only invariant, so the second open
// fails fast instead. Test with errors.Is(err, ErrLocked).
var ErrLocked = errors.New("journal locked")

// Version is the journal format version. Records with any other version
// are treated like corruption: the reader rounds down to the last record
// it fully understands.
const Version = 1

// record is the on-disk framing of one journal line.
type record struct {
	V    int             `json:"v"`
	Kind string          `json:"kind,omitempty"` // "header" on the first line, empty for rows
	FP   string          `json:"fp,omitempty"`   // header only
	Key  string          `json:"key,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
	CRC  string          `json:"crc"`
}

// crcOf computes the integrity checksum over a record's content. The kind
// participates so a row cannot be reinterpreted as a header by editing.
func crcOf(kind, key string, data []byte) string {
	h := crc32.NewIEEE()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(data)
	return fmt.Sprintf("%08x", h.Sum32())
}

// Row is one parsed journal row.
type Row struct {
	Key  string
	Data json.RawMessage
}

// Scan parses journal bytes. It returns the header fingerprint (ok
// reports whether an intact header was present), the intact rows in file
// order, and the byte offset just past the last intact record. Scanning
// stops at the first torn, corrupted or version-skewed record; everything
// after it is ignored even if it would parse, because a damaged middle
// means the append-only invariant was broken.
func Scan(data []byte) (fp string, ok bool, rows []Row, goodLen int) {
	off := 0
	first := true
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn final record: no terminator
		}
		line := data[off : off+nl]
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		if rec.V != Version {
			break
		}
		if rec.CRC != crcOf(rec.Kind, rec.Key, rec.Data) {
			break
		}
		if first {
			if rec.Kind != "header" {
				break
			}
			fp, ok = rec.FP, true
		} else {
			if rec.Kind != "" || rec.Key == "" {
				break
			}
			rows = append(rows, Row{Key: rec.Key, Data: rec.Data})
		}
		first = false
		off += nl + 1
	}
	return fp, ok, rows, off
}

// Fingerprint derives a short stable fingerprint from any JSON-encodable
// configuration value; the journal header stores it so a journal cannot
// be resumed against a different configuration.
func Fingerprint(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstate: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8]), nil
}

// Journal is an open, append-only journal of completed experiment rows.
// It is safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	rows     map[string]json.RawMessage
	order    []Row
	restored int
	appended int
	// damaged is set by any failed append: the on-disk tail may be torn,
	// so further appends are refused until the journal is reopened.
	damaged bool
}

// Open opens the journal at path, bound to the given configuration
// fingerprint.
//
// With resume=false any existing file is truncated and a fresh header is
// written. With resume=true an existing file is scanned first: its intact
// rows become Lookup hits, a torn or corrupted tail is truncated away,
// and a header carrying a different fingerprint is an error. A missing,
// empty or header-corrupt file resumes as an empty journal.
//
// The open journal holds an exclusive advisory lock on the file for its
// whole lifetime: a second Open of the same path — from this process or
// another — fails fast with ErrLocked instead of interleaving appends.
func Open(path, fingerprint string, resume bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	// Take the lock before reading anything, so the scan below cannot race
	// a concurrent writer's append.
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: journal %s is already open by another journal writer (%w)", path, err)
	}
	j := &Journal{rows: make(map[string]json.RawMessage)}
	goodLen := 0
	if resume {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("runstate: %w", err)
		}
		fp, ok, rows, n := Scan(data)
		if ok {
			if fp != fingerprint {
				f.Close()
				return nil, fmt.Errorf("runstate: journal %s was written by a different configuration (fingerprint %s, want %s)", path, fp, fingerprint)
			}
			goodLen = n
			for _, r := range rows {
				if _, dup := j.rows[r.Key]; dup {
					continue // keep the first record of a key
				}
				j.rows[r.Key] = r.Data
				j.order = append(j.order, r)
			}
			j.restored = len(j.rows)
		}
	}
	// Round the file down to its last intact record (0 on a fresh start)
	// before switching to append-only writes, so a torn tail can never
	// corrupt the record that follows it.
	if err := f.Truncate(int64(goodLen)); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: %w", err)
	}
	j.f = f
	if goodLen == 0 {
		if err := j.append(record{V: Version, Kind: "header", FP: fingerprint, CRC: crcOf("header", "", nil)}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// append marshals rec and writes it as one line followed by fsync, so the
// record is either fully durable or (on a crash mid-write) a torn tail
// the next Open rounds away. Any append failure — real or injected —
// damages the journal: the on-disk tail may be torn, so further appends
// would land after garbage and be lost to the next Scan's round-down.
// The journal refuses them; the caller must reopen (which truncates the
// tail) to resume.
func (j *Journal) append(rec record) error {
	if j.damaged {
		return fmt.Errorf("runstate: append after failed write; reopen the journal to resume")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	b = append(b, '\n')
	if faultject.Enabled() {
		if f := faultject.Fire("runstate.append"); f != nil {
			return j.injectAppendFault(f, b)
		}
	}
	if _, err := j.f.Write(b); err != nil {
		j.damaged = true
		return fmt.Errorf("runstate: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.damaged = true
		return fmt.Errorf("runstate: sync: %w", err)
	}
	return nil
}

// injectAppendFault realizes an armed faultject fault at the append
// boundary: enospc fails before any byte lands, short/torn land half the
// line (a torn tail the next Open rounds away), kill lands half the line
// and then terminates the process — the crash the journal is built for.
func (j *Journal) injectAppendFault(f *faultject.Fault, line []byte) error {
	switch f.Kind {
	case faultject.KindShortWrite, faultject.KindTornRename:
		j.f.Write(line[:len(line)/2])
		j.f.Sync()
		j.damaged = true
		return fmt.Errorf("runstate: append: %w (%v)", io.ErrShortWrite, f)
	case faultject.KindKill:
		j.f.Write(line[:len(line)/2])
		j.f.Sync()
		faultject.Kill()
		return nil // unreachable
	default: // KindENOSPC
		j.damaged = true
		return fmt.Errorf("runstate: append: %w (%v)", syscall.ENOSPC, f)
	}
}

// Lookup reports whether key has a journaled row and, when it does,
// unmarshals its payload into v (which may be nil to test presence only).
func (j *Journal) Lookup(key string, v any) bool {
	j.mu.Lock()
	data, ok := j.rows[key]
	j.mu.Unlock()
	if !ok {
		return false
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			return false
		}
	}
	return true
}

// Record journals a completed row under key. Re-recording a key that is
// already journaled is a no-op, so a row can never be duplicated; the
// first recorded payload wins.
func (j *Journal) Record(key string, v any) error {
	if key == "" {
		return fmt.Errorf("runstate: empty row key")
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.rows[key]; dup {
		return nil
	}
	if err := j.append(record{V: Version, Key: key, Data: data, CRC: crcOf("", key, data)}); err != nil {
		return err
	}
	j.rows[key] = data
	j.appended++
	return nil
}

// RestoredRows returns the rows Open recovered from disk, in file order
// with duplicate keys already collapsed to their first record. Callers
// that replay a journal as a log — the jobs scheduler recovering its
// submitted/completed state — iterate this instead of probing keys.
func (j *Journal) RestoredRows() []Row {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Row, len(j.order))
	copy(out, j.order)
	return out
}

// Restored returns how many rows Open recovered from disk.
func (j *Journal) Restored() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored
}

// Appended returns how many rows this process has journaled.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Len returns the total number of distinct journaled rows.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.rows)
}

// Sync forces the journal file to stable storage. Every Record already
// syncs; this exists for shutdown paths that want an explicit barrier.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
