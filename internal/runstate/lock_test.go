package runstate

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestOpenLocked: two concurrent opens of the same journal path must fail
// fast with ErrLocked — from either mode combination — instead of
// interleaving appends; the path frees up again on Close.
func TestOpenLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path, "fp", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, resume := range []bool{false, true} {
		if _, err := Open(path, "fp", resume); !errors.Is(err, ErrLocked) {
			t.Errorf("second Open(resume=%v) = %v, want ErrLocked", resume, err)
		}
	}
	if err := j.Record("row", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, "fp", true)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer j2.Close()
	if j2.Restored() != 1 {
		t.Errorf("restored %d rows, want 1", j2.Restored())
	}
}

// TestRestoredRows: replayed rows come back in append order with
// duplicate keys collapsed, so a log-style consumer sees each record once.
func TestRestoredRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path, "fp", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := j.Record(k, k); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := Open(path, "fp", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rows := j2.RestoredRows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i, want := range []string{"a", "b", "c"} {
		if rows[i].Key != want {
			t.Errorf("row %d key %q, want %q", i, rows[i].Key, want)
		}
	}
}
