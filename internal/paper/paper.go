// Package paper encodes the concrete examples printed in the paper —
// the application of Fig. 1 with the h-version tables of nodes N1 and N2,
// and the single-process example of Fig. 3 — so that tests, examples and
// benchmarks across the repository reproduce the published numbers from a
// single definition.
package paper

import (
	"repro/internal/appmodel"
	"repro/internal/platform"
)

// Fig. 1 constants.
const (
	// Fig1Deadline is the deadline D of application graph G1.
	Fig1Deadline = 360 // ms
	// Fig1Mu is the recovery overhead μ of the Fig. 1 application.
	Fig1Mu = 15 // ms
	// Fig1Gamma is γ in the reliability goal ρ = 1 − γ per hour.
	Fig1Gamma = 1e-5
)

// Fig1Application returns the four-process application A = {G1} of Fig. 1:
// the diamond P1 → {P2, P3} → P4 with messages m1..m4, deadline 360 ms and
// μ = 15 ms.
func Fig1Application() *appmodel.Application {
	b := appmodel.NewBuilder("A")
	b.Graph("G1", Fig1Deadline)
	p1 := b.Process("P1", Fig1Mu)
	p2 := b.Process("P2", Fig1Mu)
	p3 := b.Process("P3", Fig1Mu)
	p4 := b.Process("P4", Fig1Mu)
	b.Edge("m1", p1, p2, 8)
	b.Edge("m2", p1, p3, 8)
	b.Edge("m3", p2, p4, 8)
	b.Edge("m4", p3, p4, 8)
	b.Period(Fig1Deadline)
	return b.MustBuild()
}

// Fig1Platform returns nodes N1 and N2 of Fig. 1, each with three
// h-versions. WCETs are in milliseconds; failure probabilities are per
// process execution; costs are 16/32/64 for N1 and 20/40/80 for N2.
//
// The bus slot length is chosen small (5 ms) relative to the process
// WCETs, consistent with the figure's schedules where message transmission
// is visible but thin.
func Fig1Platform() *platform.Platform {
	n1 := platform.Node{
		ID:   0,
		Name: "N1",
		Versions: []platform.HVersion{
			{
				Level:    1,
				Cost:     16,
				WCET:     []float64{60, 75, 60, 75},
				FailProb: []float64{1.2e-3, 1.3e-3, 1.4e-3, 1.6e-3},
			},
			{
				Level:    2,
				Cost:     32,
				WCET:     []float64{75, 90, 75, 90},
				FailProb: []float64{1.2e-5, 1.3e-5, 1.4e-5, 1.6e-5},
			},
			{
				Level:    3,
				Cost:     64,
				WCET:     []float64{90, 105, 90, 105},
				FailProb: []float64{1.2e-10, 1.3e-10, 1.4e-10, 1.6e-10},
			},
		},
	}
	n2 := platform.Node{
		ID:   1,
		Name: "N2",
		Versions: []platform.HVersion{
			{
				Level:    1,
				Cost:     20,
				WCET:     []float64{65, 50, 50, 65},
				FailProb: []float64{1e-3, 1.2e-3, 1.2e-3, 1.3e-3},
			},
			{
				Level:    2,
				Cost:     40,
				WCET:     []float64{75, 60, 60, 75},
				FailProb: []float64{1e-5, 1.2e-5, 1.2e-5, 1.3e-5},
			},
			{
				Level:    3,
				Cost:     80,
				WCET:     []float64{90, 75, 75, 90},
				FailProb: []float64{1e-10, 1.2e-10, 1.2e-10, 1.3e-10},
			},
		},
	}
	return &platform.Platform{
		Nodes: []platform.Node{n1, n2},
		Bus:   platform.BusSpec{SlotLen: 5},
	}
}

// Fig. 3 constants.
const (
	// Fig3Deadline is the deadline of the Fig. 3 example.
	Fig3Deadline = 360 // ms
	// Fig3Mu is the recovery overhead μ of the Fig. 3 example.
	Fig3Mu = 20 // ms
	// Fig3Gamma is γ in the reliability goal ρ = 1 − γ per hour.
	Fig3Gamma = 1e-5
)

// Fig3Application returns the single-process application of Fig. 3 with
// deadline 360 ms and μ = 20 ms.
func Fig3Application() *appmodel.Application {
	b := appmodel.NewBuilder("Fig3")
	b.Graph("G", Fig3Deadline)
	b.Process("P1", Fig3Mu)
	b.Period(Fig3Deadline)
	return b.MustBuild()
}

// Fig3Platform returns node N1 of Fig. 3 with its three h-versions:
// t = 80/100/160 ms, p = 4e-2/4e-4/4e-6, cost = 10/20/40.
func Fig3Platform() *platform.Platform {
	n1 := platform.Node{
		ID:   0,
		Name: "N1",
		Versions: []platform.HVersion{
			{Level: 1, Cost: 10, WCET: []float64{80}, FailProb: []float64{4e-2}},
			{Level: 2, Cost: 20, WCET: []float64{100}, FailProb: []float64{4e-4}},
			{Level: 3, Cost: 40, WCET: []float64{160}, FailProb: []float64{4e-6}},
		},
	}
	return &platform.Platform{
		Nodes: []platform.Node{n1},
		Bus:   platform.BusSpec{SlotLen: 5},
	}
}

// Hour is the time unit τ of the reliability goal, in milliseconds.
const Hour = 3.6e6
