package paper

import "testing"

// TestFixturesValid: the transcribed paper examples satisfy all model
// invariants.
func TestFixturesValid(t *testing.T) {
	app1 := Fig1Application()
	if err := app1.Validate(); err != nil {
		t.Error(err)
	}
	if err := Fig1Platform().Validate(app1.NumProcesses()); err != nil {
		t.Error(err)
	}
	app3 := Fig3Application()
	if err := app3.Validate(); err != nil {
		t.Error(err)
	}
	if err := Fig3Platform().Validate(app3.NumProcesses()); err != nil {
		t.Error(err)
	}
}

// TestFig1TableValues spot-checks the transcription against the printed
// table.
func TestFig1TableValues(t *testing.T) {
	pl := Fig1Platform()
	n1 := pl.Nodes[0]
	if n1.Versions[0].WCET[0] != 60 || n1.Versions[2].WCET[3] != 105 {
		t.Error("N1 WCETs mistranscribed")
	}
	if n1.Versions[1].FailProb[1] != 1.3e-5 {
		t.Error("N1 failure probabilities mistranscribed")
	}
	if n1.Versions[0].Cost != 16 || n1.Versions[1].Cost != 32 || n1.Versions[2].Cost != 64 {
		t.Error("N1 costs mistranscribed")
	}
	n2 := pl.Nodes[1]
	if n2.Versions[0].Cost != 20 || n2.Versions[2].Cost != 80 {
		t.Error("N2 costs mistranscribed")
	}
	if n2.Versions[1].FailProb[2] != 1.2e-5 || n2.Versions[1].FailProb[3] != 1.3e-5 {
		t.Error("N2 failure probabilities mistranscribed (Appendix A.2 uses these)")
	}
}

// TestFig3TableValues spot-checks Fig. 3.
func TestFig3TableValues(t *testing.T) {
	pl := Fig3Platform()
	v := pl.Nodes[0].Versions
	if v[0].WCET[0] != 80 || v[1].WCET[0] != 100 || v[2].WCET[0] != 160 {
		t.Error("Fig. 3 WCETs mistranscribed")
	}
	if v[0].FailProb[0] != 4e-2 || v[1].FailProb[0] != 4e-4 || v[2].FailProb[0] != 4e-6 {
		t.Error("Fig. 3 failure probabilities mistranscribed")
	}
	if v[0].Cost != 10 || v[1].Cost != 20 || v[2].Cost != 40 {
		t.Error("Fig. 3 costs mistranscribed")
	}
}
