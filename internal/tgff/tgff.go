// Package tgff reads and writes a practical subset of the TGFF (Task
// Graphs For Free, Dick/Rhodes/Wolf) benchmark format, the de-facto
// interchange format for task graphs in the embedded-systems scheduling
// literature — the paper's synthetic applications are of exactly this
// family.
//
// Supported constructs:
//
//	@TASK_GRAPH <id> {
//	    PERIOD <ms>
//	    TASK <name> TYPE <n>
//	    ARC <name> FROM <task> TO <task> TYPE <n>
//	    HARD_DEADLINE <name> ON <task> AT <ms>
//	}
//
// '#' starts a comment; whitespace is free-form. Anything else is
// rejected with a position-annotated error. TGFF "types" are opaque
// integers here; Application converts a file into the library's model
// given per-type recovery overheads and message sizes.
package tgff

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/appmodel"
)

// Task is one TGFF task.
type Task struct {
	Name string
	Type int
}

// Arc is one TGFF arc (a message).
type Arc struct {
	Name     string
	From, To string
	Type     int
}

// Deadline is a TGFF hard deadline on a task.
type Deadline struct {
	Name string
	On   string
	At   float64
}

// TaskGraph is one @TASK_GRAPH block.
type TaskGraph struct {
	ID        int
	Period    float64
	Tasks     []Task
	Arcs      []Arc
	Deadlines []Deadline
}

// File is a parsed TGFF document.
type File struct {
	Graphs []TaskGraph
}

// Parse reads a TGFF document.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	f := &File{}
	var cur *TaskGraph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "@TASK_GRAPH":
			if cur != nil {
				return nil, fmt.Errorf("tgff:%d: nested @TASK_GRAPH", lineNo)
			}
			if len(fields) < 3 || fields[len(fields)-1] != "{" {
				return nil, fmt.Errorf("tgff:%d: want \"@TASK_GRAPH <id> {\"", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("tgff:%d: bad graph id %q", lineNo, fields[1])
			}
			cur = &TaskGraph{ID: id}
		case "}":
			if cur == nil {
				return nil, fmt.Errorf("tgff:%d: unmatched }", lineNo)
			}
			f.Graphs = append(f.Graphs, *cur)
			cur = nil
		case "PERIOD":
			if cur == nil {
				return nil, fmt.Errorf("tgff:%d: PERIOD outside a graph", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("tgff:%d: want \"PERIOD <ms>\"", lineNo)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || !(v > 0) || math.IsInf(v, 1) {
				return nil, fmt.Errorf("tgff:%d: bad period %q", lineNo, fields[1])
			}
			cur.Period = v
		case "TASK":
			if cur == nil {
				return nil, fmt.Errorf("tgff:%d: TASK outside a graph", lineNo)
			}
			// TASK name TYPE n
			if len(fields) != 4 || fields[2] != "TYPE" {
				return nil, fmt.Errorf("tgff:%d: want \"TASK <name> TYPE <n>\"", lineNo)
			}
			ty, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("tgff:%d: bad task type %q", lineNo, fields[3])
			}
			cur.Tasks = append(cur.Tasks, Task{Name: fields[1], Type: ty})
		case "ARC":
			if cur == nil {
				return nil, fmt.Errorf("tgff:%d: ARC outside a graph", lineNo)
			}
			// ARC name FROM a TO b TYPE n
			if len(fields) != 8 || fields[2] != "FROM" || fields[4] != "TO" || fields[6] != "TYPE" {
				return nil, fmt.Errorf("tgff:%d: want \"ARC <name> FROM <t> TO <t> TYPE <n>\"", lineNo)
			}
			ty, err := strconv.Atoi(fields[7])
			if err != nil {
				return nil, fmt.Errorf("tgff:%d: bad arc type %q", lineNo, fields[7])
			}
			cur.Arcs = append(cur.Arcs, Arc{Name: fields[1], From: fields[3], To: fields[5], Type: ty})
		case "HARD_DEADLINE":
			if cur == nil {
				return nil, fmt.Errorf("tgff:%d: HARD_DEADLINE outside a graph", lineNo)
			}
			// HARD_DEADLINE name ON task AT ms
			if len(fields) != 6 || fields[2] != "ON" || fields[4] != "AT" {
				return nil, fmt.Errorf("tgff:%d: want \"HARD_DEADLINE <name> ON <task> AT <ms>\"", lineNo)
			}
			at, err := strconv.ParseFloat(fields[5], 64)
			if err != nil || !(at > 0) || math.IsInf(at, 1) {
				return nil, fmt.Errorf("tgff:%d: bad deadline %q", lineNo, fields[5])
			}
			cur.Deadlines = append(cur.Deadlines, Deadline{Name: fields[1], On: fields[3], At: at})
		default:
			return nil, fmt.Errorf("tgff:%d: unsupported construct %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tgff: read: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("tgff: unterminated @TASK_GRAPH %d", cur.ID)
	}
	return f, nil
}

// Write emits the document.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for gi := range f.Graphs {
		g := &f.Graphs[gi]
		fmt.Fprintf(bw, "@TASK_GRAPH %d {\n", g.ID)
		if g.Period > 0 {
			fmt.Fprintf(bw, "\tPERIOD %g\n", g.Period)
		}
		for _, t := range g.Tasks {
			fmt.Fprintf(bw, "\tTASK %s\tTYPE %d\n", t.Name, t.Type)
		}
		for _, a := range g.Arcs {
			fmt.Fprintf(bw, "\tARC %s\tFROM %s TO %s TYPE %d\n", a.Name, a.From, a.To, a.Type)
		}
		for _, d := range g.Deadlines {
			fmt.Fprintf(bw, "\tHARD_DEADLINE %s ON %s AT %g\n", d.Name, d.On, d.At)
		}
		fmt.Fprintln(bw, "}")
	}
	return bw.Flush()
}

// Options tunes the conversion to the library's application model.
type Options struct {
	// Mu returns the recovery overhead μ (ms) of a task type; nil means
	// zero overhead.
	Mu func(taskType int) float64
	// MsgSize returns the message size in bytes of an arc type; nil
	// means 8 bytes.
	MsgSize func(arcType int) int
}

// Application converts the file into the library's model. The deadline of
// each graph is the largest HARD_DEADLINE in it, falling back to the
// PERIOD; a graph with neither is rejected. The application period is the
// largest graph period.
func (f *File) Application(name string, opts Options) (*appmodel.Application, error) {
	if len(f.Graphs) == 0 {
		return nil, fmt.Errorf("tgff: no task graphs")
	}
	b := appmodel.NewBuilder(name)
	var maxPeriod float64
	edgeCount := 0
	for gi := range f.Graphs {
		g := &f.Graphs[gi]
		deadline := g.Period
		for _, d := range g.Deadlines {
			if d.At > deadline {
				deadline = d.At
			}
		}
		if deadline <= 0 {
			return nil, fmt.Errorf("tgff: graph %d has neither PERIOD nor HARD_DEADLINE", g.ID)
		}
		if g.Period > maxPeriod {
			maxPeriod = g.Period
		}
		b.Graph(fmt.Sprintf("TG%d", g.ID), deadline)
		ids := make(map[string]appmodel.ProcID, len(g.Tasks))
		for _, t := range g.Tasks {
			if _, dup := ids[t.Name]; dup {
				return nil, fmt.Errorf("tgff: graph %d: duplicate task %q", g.ID, t.Name)
			}
			mu := 0.0
			if opts.Mu != nil {
				mu = opts.Mu(t.Type)
			}
			ids[t.Name] = b.Process(t.Name, mu)
		}
		for _, a := range g.Arcs {
			from, ok := ids[a.From]
			if !ok {
				return nil, fmt.Errorf("tgff: graph %d: arc %q references unknown task %q", g.ID, a.Name, a.From)
			}
			to, ok := ids[a.To]
			if !ok {
				return nil, fmt.Errorf("tgff: graph %d: arc %q references unknown task %q", g.ID, a.Name, a.To)
			}
			size := 8
			if opts.MsgSize != nil {
				size = opts.MsgSize(a.Type)
			}
			b.Edge(a.Name, from, to, size)
			edgeCount++
		}
	}
	if maxPeriod > 0 {
		b.Period(maxPeriod)
	}
	return b.Build()
}

// FromApplication converts an application into a TGFF document: processes
// become tasks with their ID as the type, edges become arcs with the edge
// ID as the type, and each graph carries its deadline as a HARD_DEADLINE
// on every sink plus the application period as PERIOD.
func FromApplication(app *appmodel.Application) (*File, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	f := &File{}
	outdeg := make([]int, app.NumProcesses())
	for _, e := range app.Edges {
		outdeg[e.Src]++
	}
	for gi := range app.Graphs {
		g := &app.Graphs[gi]
		tg := TaskGraph{ID: gi, Period: app.EffectivePeriod()}
		procs := append([]appmodel.ProcID(nil), g.Procs...)
		sort.Slice(procs, func(a, b int) bool { return procs[a] < procs[b] })
		for _, pid := range procs {
			tg.Tasks = append(tg.Tasks, Task{Name: app.Procs[pid].Name, Type: int(pid)})
		}
		for _, eid := range g.Edges {
			e := app.Edges[eid]
			tg.Arcs = append(tg.Arcs, Arc{
				Name: e.Name,
				From: app.Procs[e.Src].Name,
				To:   app.Procs[e.Dst].Name,
				Type: int(e.ID),
			})
		}
		dn := 0
		for _, pid := range procs {
			if outdeg[pid] == 0 {
				tg.Deadlines = append(tg.Deadlines, Deadline{
					Name: fmt.Sprintf("d%d_%d", gi, dn),
					On:   app.Procs[pid].Name,
					At:   g.Deadline,
				})
				dn++
			}
		}
		f.Graphs = append(f.Graphs, tg)
	}
	return f, nil
}
