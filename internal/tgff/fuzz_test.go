package tgff

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes into the TGFF reader. Invariants:
// Parse never panics; accepted documents carry only finite positive
// periods and deadlines; Write∘Parse round-trips to an identical
// document; and the Application conversion never panics on a parsed
// file (it may reject it with an error).
func FuzzParse(f *testing.F) {
	f.Add("@TASK_GRAPH 0 {\n\tPERIOD 120\n\tTASK t0 TYPE 0\n\tTASK t1 TYPE 1\n\tARC a0 FROM t0 TO t1 TYPE 0\n\tHARD_DEADLINE d0 ON t1 AT 100\n}\n")
	f.Add("# comment only\n")
	f.Add("@TASK_GRAPH 1 {\n}\n")
	f.Add("@TASK_GRAPH 2 {\n\tPERIOD NaN\n}\n")
	f.Add("@TASK_GRAPH 3 {\n\tTASK t TYPE 0\n\tHARD_DEADLINE d ON t AT +Inf\n}\n")
	f.Add("@TASK_GRAPH 4 {\n\tPERIOD 1e309\n}\n")
	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := Parse(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, g := range parsed.Graphs {
			if g.Period != 0 && !(g.Period > 0 && !math.IsInf(g.Period, 1)) {
				t.Fatalf("accepted period %v", g.Period)
			}
			for _, d := range g.Deadlines {
				if !(d.At > 0 && !math.IsInf(d.At, 1)) {
					t.Fatalf("accepted deadline %v", d.At)
				}
			}
		}
		var buf bytes.Buffer
		if err := parsed.Write(&buf); err != nil {
			t.Fatalf("write accepted file: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("reparse of written file failed: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(parsed, again) {
			t.Fatalf("round trip changed the document:\n%#v\nvs\n%#v", parsed, again)
		}
		// Conversion may reject (dangling arcs, missing deadlines, cycles)
		// but must not panic.
		_, _ = parsed.Application("fuzz", Options{})
	})
}
