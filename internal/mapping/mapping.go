// Package mapping implements the MappingAlgorithm heuristic of Section
// 6.2: a tabu search over process-to-node mappings. At each iteration the
// processes on the critical path of the current worst-case schedule are
// candidates for re-mapping; recently moved processes are tabu, processes
// that have waited long are prioritized, and a move is accepted if it
// either beats the best-so-far solution (aspiration, even when tabu) or is
// the best available non-tabu move (diversification, even when worse than
// the current solution).
//
// Every candidate mapping is evaluated through the shared evaluation
// engine (evalengine.Evaluator.RedundancyOpt), which settles the hardening
// levels and re-execution counts for that mapping — "the change of the
// mapping immediately triggers the change of the hardening levels"
// (Section 6.1) — and memoizes revisited mappings, which tabu search
// produces constantly.
//
// Two cost functions are supported, as required by the design strategy of
// Fig. 5: ScheduleLength produces the shortest-possible worst-case
// schedule, and ArchitectureCost minimizes the architecture cost without
// impairing schedulability.
package mapping

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/appmodel"
	"repro/internal/evalengine"
	"repro/internal/obs"
	"repro/internal/redundancy"
	"repro/internal/runctl"
)

// CostFunction selects the objective of the mapping optimization.
type CostFunction int

const (
	// ScheduleLength minimizes the worst-case schedule length SL
	// (feasible solutions first).
	ScheduleLength CostFunction = iota
	// ArchitectureCost minimizes the architecture cost among feasible
	// solutions (schedule length breaks ties).
	ArchitectureCost
)

// String returns the cost function name.
func (cf CostFunction) String() string {
	switch cf {
	case ScheduleLength:
		return "schedule-length"
	case ArchitectureCost:
		return "architecture-cost"
	default:
		return fmt.Sprintf("CostFunction(%d)", int(cf))
	}
}

// Params tunes the tabu search.
type Params struct {
	// TabuTenure is the number of iterations a moved process stays tabu.
	TabuTenure int
	// MaxNoImprove stops the search after this many consecutive
	// iterations without improving the best solution.
	MaxNoImprove int
	// MaxIterations is a hard safety cap on total iterations.
	MaxIterations int
}

// DefaultParams returns the tuning used by the experimental evaluation.
func DefaultParams() Params {
	return Params{TabuTenure: 3, MaxNoImprove: 8, MaxIterations: 200}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.TabuTenure <= 0 {
		p.TabuTenure = d.TabuTenure
	}
	if p.MaxNoImprove <= 0 {
		p.MaxNoImprove = d.MaxNoImprove
	}
	if p.MaxIterations <= 0 {
		p.MaxIterations = d.MaxIterations
	}
	return p
}

// Result is the outcome of the mapping optimization: the best mapping
// found and its fully evaluated redundancy solution.
type Result struct {
	Mapping  []int
	Solution *redundancy.Solution
	// Evaluations counts RedundancyOpt invocations, for the experiment
	// reports.
	Evaluations int
}

// objective is a lexicographic objective vector: smaller is better.
func objective(cf CostFunction, sol *redundancy.Solution) [3]float64 {
	feas := 1.0
	if sol.Feasible() {
		feas = 0
	}
	switch cf {
	case ArchitectureCost:
		return [3]float64{feas, sol.Cost, sol.Schedule.Length}
	default:
		return [3]float64{feas, sol.Schedule.Length, sol.Cost}
	}
}

func lessObj(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Optimize runs the tabu search through the given evaluation engine,
// whose bound problem supplies the application, architecture and goal
// (the problem's Mapping field is ignored). initial provides the starting
// mapping (nil lets the heuristic construct a greedy one). The returned
// solution may be infeasible if no feasible mapping was found — the
// caller (DesignStrategy) then grows the architecture.
//
// Optimize is not cancellable; long-running callers use OptimizeContext.
func Optimize(ev *evalengine.Evaluator, initial []int, cf CostFunction, params Params) (*Result, error) {
	return optimize(context.Background(), ev, nil, initial, cf, params)
}

// OptimizeContext is Optimize with cooperative cancellation: the context
// is consulted between tabu iterations — never inside an evaluation, so
// the arithmetic stays bit-identical — and a done context stops the
// search at the next iteration boundary. The canceled search returns the
// best solution found so far (at minimum the fully evaluated initial
// mapping, never nil) together with an error wrapping runctl.ErrCanceled.
func OptimizeContext(ctx context.Context, ev *evalengine.Evaluator, initial []int, cf CostFunction, params Params) (*Result, error) {
	return optimize(ctx, ev, nil, initial, cf, params)
}

// optimize is the tabu search with a pluggable neighborhood evaluator:
// batch, when non-nil, evaluates one iteration's trial mappings (possibly
// out of order, possibly concurrently) and returns their solutions
// indexed like the trials. The search builds the trial list, the
// solutions, and the winner selection in the exact order of the
// sequential path, so any batch that returns the same solutions yields
// the identical trajectory (see OptimizeConcurrent).
func optimize(ctx context.Context, ev *evalengine.Evaluator, batch func([][]int) ([]*redundancy.Solution, error), initial []int, cf CostFunction, params Params) (*Result, error) {
	params = params.withDefaults()
	p := ev.Problem()
	n := p.App.NumProcesses()
	numNodes := len(p.Arch.Nodes)
	if numNodes == 0 {
		return nil, fmt.Errorf("mapping: architecture has no nodes")
	}

	// The whole search runs under one span (child of whatever scope the
	// caller installed on the evaluator), and the evaluator carries the
	// innermost open scope so RedundancyOpt cache misses nest correctly.
	parentSpan := ev.TraceSpan()
	span := parentSpan.Child("mapping.optimize",
		obs.String("cost_function", cf.String()),
		obs.Int("tabu_tenure", params.TabuTenure),
		obs.Int("max_no_improve", params.MaxNoImprove),
		obs.Int("processes", n),
		obs.Int("nodes", numNodes))
	ev.SetTraceSpan(span)
	defer func() {
		ev.SetTraceSpan(parentSpan)
		span.End()
	}()
	reg := ev.MetricsRegistry()
	iterCtr := reg.Counter("mapping.iterations")
	moveCtr := reg.Counter("mapping.moves")
	iterPh := ev.Progress().Phase("mapping.iterations")

	cur := make([]int, n)
	if initial != nil {
		if len(initial) != n {
			return nil, fmt.Errorf("mapping: initial mapping covers %d of %d processes", len(initial), n)
		}
		copy(cur, initial)
		for pid, j := range cur {
			if j < 0 || j >= numNodes {
				return nil, fmt.Errorf("mapping: initial mapping sends process %d to invalid node %d", pid, j)
			}
		}
	} else {
		var err error
		cur, err = GreedyInitial(ev)
		if err != nil {
			return nil, err
		}
	}

	evals := 0
	pred := p.App.Predecessors()
	evals++
	curSol, err := ev.RedundancyOpt(cur)
	if err != nil {
		return nil, err
	}
	best := &Result{Mapping: append([]int(nil), cur...), Solution: curSol}
	bestObj := objective(cf, curSol)

	tabu := make([]int, n)    // iterations left in tabu state
	waiting := make([]int, n) // iterations since last move

	type move struct {
		pid  appmodel.ProcID
		node int
		sol  *redundancy.Solution
		obj  [3]float64
	}

	noImprove := 0
	for iter := 0; iter < params.MaxIterations && noImprove < params.MaxNoImprove; iter++ {
		// Cancellation is checked once per iteration — between evaluations,
		// never inside them — so a canceled search stops on an iteration
		// boundary with the deterministic best-so-far result in hand.
		if cerr := runctl.Err(ctx); cerr != nil {
			reg.Counter("mapping.canceled").Add(1)
			span.SetAttr(obs.Bool("canceled", true))
			best.Evaluations = evals
			return best, fmt.Errorf("mapping: canceled at iteration %d: %w", iter, cerr)
		}
		if numNodes == 1 {
			break // nothing to move
		}
		cands := criticalPath(pred, cur, curSol)
		// The iteration's neighborhood, in the canonical order (critical
		// path × target nodes). Selection below scans the same order with
		// a strict-less comparator, so it picks the same winner whether
		// the solutions were computed here one by one or by a batch.
		var trials [][]int
		var moves []move
		for _, pid := range cands {
			for j := 0; j < numNodes; j++ {
				if j == cur[pid] {
					continue
				}
				trial := append([]int(nil), cur...)
				trial[pid] = j
				trials = append(trials, trial)
				moves = append(moves, move{pid: pid, node: j})
			}
		}
		if len(trials) == 0 {
			break // no candidates (empty critical path)
		}
		evals += len(trials)
		iterCtr.Add(1)
		moveCtr.Add(int64(len(trials)))
		iterPh.Add(1)
		iterSpan := span.Child("iteration",
			obs.Int("iter", iter),
			obs.Int("critical_path", len(cands)),
			obs.Int("neighborhood", len(trials)))
		ev.SetTraceSpan(iterSpan)
		var sols []*redundancy.Solution
		if batch != nil && len(trials) > 1 {
			sols, err = batch(trials)
		} else {
			sols = make([]*redundancy.Solution, len(trials))
			for i := range trials {
				if sols[i], err = ev.RedundancyOpt(trials[i]); err != nil {
					break
				}
			}
		}
		ev.SetTraceSpan(span)
		if err != nil {
			iterSpan.End()
			// A batch interrupted by cancellation still owes the caller the
			// best-so-far partial result; a genuine evaluation failure does
			// not (there is no trustworthy solution to return).
			if errors.Is(err, runctl.ErrCanceled) {
				reg.Counter("mapping.canceled").Add(1)
				span.SetAttr(obs.Bool("canceled", true))
				best.Evaluations = evals
				return best, fmt.Errorf("mapping: canceled at iteration %d: %w", iter, err)
			}
			return nil, err
		}
		// Move ordering: objective first, then the waiting priority of
		// Section 6.2 (processes that have waited longest to be re-mapped
		// move first), then IDs for determinism.
		lessMove := func(a, b *move) bool {
			if a.obj != b.obj {
				return lessObj(a.obj, b.obj)
			}
			if waiting[a.pid] != waiting[b.pid] {
				return waiting[a.pid] > waiting[b.pid]
			}
			if a.pid != b.pid {
				return a.pid < b.pid
			}
			return a.node < b.node
		}
		var bestAny, bestNonTabu *move
		for i := range moves {
			mv := &moves[i]
			mv.sol = sols[i]
			mv.obj = objective(cf, mv.sol)
			if bestAny == nil || lessMove(mv, bestAny) {
				bestAny = mv
			}
			if tabu[mv.pid] == 0 && (bestNonTabu == nil || lessMove(mv, bestNonTabu)) {
				bestNonTabu = mv
			}
		}
		// Rule (1): accept the best move, tabu or not, if it beats the
		// best-so-far. Rule (2): otherwise take the best non-tabu move,
		// even if it is worse than the current solution.
		var chosen *move
		if lessObj(bestAny.obj, bestObj) {
			chosen = bestAny
		} else if bestNonTabu != nil {
			chosen = bestNonTabu
		} else {
			chosen = bestAny // all candidates tabu: fall back
		}
		cur[chosen.pid] = chosen.node
		curSol = chosen.sol
		for pid := range tabu {
			if tabu[pid] > 0 {
				tabu[pid]--
			}
			waiting[pid]++
		}
		tabu[chosen.pid] = params.TabuTenure
		waiting[chosen.pid] = 0

		improved := lessObj(chosen.obj, bestObj)
		iterSpan.SetAttr(
			obs.Int("moved_process", int(chosen.pid)),
			obs.Int("to_node", chosen.node),
			obs.Bool("improved", improved))
		iterSpan.End()
		if improved {
			best = &Result{Mapping: append([]int(nil), cur...), Solution: curSol}
			bestObj = chosen.obj
			noImprove = 0
		} else {
			noImprove++
		}
	}
	best.Evaluations = evals
	span.SetAttr(
		obs.Int("evaluations", evals),
		obs.Bool("feasible", best.Solution.Feasible()),
		obs.Float("schedule_length", best.Solution.Schedule.Length),
		obs.Float("cost", best.Solution.Cost))
	return best, nil
}

// criticalPath returns the processes on the chain that determines the
// worst-case schedule length: starting from the process with the largest
// worst-case finish, it walks backwards through whichever dependency
// (same-node predecessor in the schedule or incoming message) fixed each
// process's start time. pred is the application's predecessor adjacency,
// hoisted to the caller so the per-iteration walk does not rebuild it.
func criticalPath(pred [][]appmodel.Edge, mapping []int, sol *redundancy.Solution) []appmodel.ProcID {
	s := sol.Schedule
	n := len(s.Start)
	if n == 0 {
		return nil
	}
	// Same-node schedule predecessor.
	prevOnNode := make([]int, n)
	for i := range prevOnNode {
		prevOnNode[i] = -1
	}
	for _, order := range s.NodeOrder {
		for i := 1; i < len(order); i++ {
			prevOnNode[order[i]] = int(order[i-1])
		}
	}
	// Start from the worst finisher.
	cur := 0
	for pid := 1; pid < n; pid++ {
		if s.WorstFinish[pid] > s.WorstFinish[cur] {
			cur = pid
		}
	}
	const eps = 1e-9
	seen := make(map[appmodel.ProcID]bool)
	var path []appmodel.ProcID
	for cur >= 0 && !seen[appmodel.ProcID(cur)] {
		pid := appmodel.ProcID(cur)
		seen[pid] = true
		path = append(path, pid)
		if s.Start[pid] <= eps {
			break
		}
		next := -1
		// Message (or intra-node data) dependency that fixed the start?
		// Track the latest-arriving predecessor alongside: when the start
		// was fixed by worst-case/recovery timing rather than a fault-free
		// arrival, no edge matches exactly and the walk falls back to it.
		maxPred, maxArr := -1, math.Inf(-1)
		for _, e := range pred[pid] {
			arr := s.Finish[e.Src]
			if mapping[e.Src] != mapping[e.Dst] && !math.IsNaN(s.MsgEnd[e.ID]) {
				arr = s.MsgEnd[e.ID]
			}
			if math.Abs(arr-s.Start[pid]) <= eps {
				next = int(e.Src)
				break
			}
			if arr > maxArr {
				maxPred, maxArr = int(e.Src), arr
			}
		}
		// Otherwise the node was busy: follow the schedule predecessor,
		// or, first on its node, the latest-arriving predecessor — never
		// silently truncate the candidate set while dependencies remain.
		if next < 0 {
			next = prevOnNode[pid]
		}
		if next < 0 {
			next = maxPred
		}
		cur = next
	}
	return path
}

// GreedyInitial constructs a deterministic initial mapping for the
// evaluator's bound problem: processes are taken in topological order and
// each is placed on the node that yields the earliest estimated finish at
// minimum hardening (a HEFT-style seed).
func GreedyInitial(ev *evalengine.Evaluator) ([]int, error) {
	defer ev.TraceSpan().Child("greedy-initial").End()
	p := ev.Problem()
	app := p.App
	order, err := app.TopoOrder()
	if err != nil {
		return nil, err
	}
	numNodes := len(p.Arch.Nodes)
	mapping := make([]int, app.NumProcesses())
	avail := make([]float64, numNodes)
	finish := make([]float64, app.NumProcesses())
	pred := app.Predecessors()
	for _, pid := range order {
		bestJ, bestF := -1, math.Inf(1)
		for j := 0; j < numNodes; j++ {
			v := p.Arch.Nodes[j].Version(p.Arch.Nodes[j].MinLevel())
			ready := avail[j]
			for _, e := range pred[pid] {
				arr := finish[e.Src]
				if mapping[e.Src] != j {
					arr += 1 // nominal one-slot transfer penalty
				}
				if arr > ready {
					ready = arr
				}
			}
			f := ready + v.WCET[pid]
			if f < bestF {
				bestJ, bestF = j, f
			}
		}
		mapping[pid] = bestJ
		finish[pid] = bestF
		avail[bestJ] = bestF
	}
	return mapping, nil
}
