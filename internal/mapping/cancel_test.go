package mapping

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evalengine"
	"repro/internal/runctl"
)

// cancelAfter is a context whose Err flips to context.Canceled after a
// fixed number of Err calls, so tests can cancel at an exact cooperative
// checkpoint instead of racing a timer.
type cancelAfter struct {
	context.Context
	calls atomic.Int64
	after int64
}

func newCancelAfter(after int64) *cancelAfter {
	return &cancelAfter{Context: context.Background(), after: after}
}

func (c *cancelAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestOptimizeContextMatchesOptimize: a live context changes nothing —
// the context-aware entry point returns the exact trajectory of the
// legacy one.
func TestOptimizeContextMatchesOptimize(t *testing.T) {
	p := fig1Problem()
	want, err := Optimize(evalengine.New(p), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeContext(context.Background(), evalengine.New(p), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "live context", got, want)
}

// TestOptimizeContextCanceledUpfront: an already-canceled context still
// yields the fully evaluated initial mapping — best-so-far is never nil
// — with an error wrapping both runctl.ErrCanceled and context.Canceled.
func TestOptimizeContextCanceledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeContext(ctx, evalengine.New(fig1Problem()), nil, ScheduleLength, Params{})
	if !errors.Is(err, runctl.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if res == nil || res.Solution == nil {
		t.Fatal("canceled search returned no partial result")
	}
	if res.Evaluations != 1 {
		t.Errorf("evaluations = %d, want exactly the initial evaluation", res.Evaluations)
	}
}

// TestOptimizeContextDeadline: a deadline miss reads as ErrCanceled AND
// DeadlineExceeded but not as a plain interrupt, which is how callers
// distinguish per-app timeouts from operator cancellation.
func TestOptimizeContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := OptimizeContext(ctx, evalengine.New(fig1Problem()), nil, ScheduleLength, Params{})
	if !errors.Is(err, runctl.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("deadline err %v must not read as plain cancel", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
}

// TestOptimizeContextMidSearchDeterministicPartial: canceling at the
// same cooperative checkpoint twice yields byte-identical partial
// results, and the partial is a genuine prefix of the full search (its
// best solution can only be matched or improved by running longer).
func TestOptimizeContextMidSearchDeterministicPartial(t *testing.T) {
	p := fig1Problem()
	full, err := Optimize(evalengine.New(p), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := OptimizeContext(newCancelAfter(2), evalengine.New(p), nil, ArchitectureCost, Params{})
		if !errors.Is(err, runctl.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if res == nil || res.Solution == nil {
			t.Fatal("no partial result")
		}
		return res
	}
	a, b := run(), run()
	assertSameResult(t, "repeat canceled run", b, a)
	if a.Evaluations >= full.Evaluations {
		t.Errorf("canceled run evaluated %d ≥ full run's %d", a.Evaluations, full.Evaluations)
	}
	if lessObj(objective(ArchitectureCost, a.Solution), objective(ArchitectureCost, full.Solution)) {
		t.Error("partial result beats the full search — trajectories diverged")
	}
}

// TestOptimizeConcurrentContextCanceled: the worker-pool path honors
// cancellation too, draining the pool and returning the best-so-far
// partial instead of hanging or dropping it.
func TestOptimizeConcurrentContextCanceled(t *testing.T) {
	ce := evalengine.NewConcurrent(fig1Problem(), 4)
	res, err := OptimizeConcurrentContext(newCancelAfter(3), ce, nil, ScheduleLength, Params{})
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Solution == nil {
		t.Fatal("canceled concurrent search returned no partial result")
	}
}

// TestWorkerPanicContained: a panic inside one evalengine worker must
// come back as a *runctl.PanicError from the optimization — the other
// workers drain, nothing crashes, and the error names the worker.
func TestWorkerPanicContained(t *testing.T) {
	var fired atomic.Bool
	testWorkerHook = func(wid int, trial []int) {
		if fired.CompareAndSwap(false, true) {
			panic("injected evaluator fault")
		}
	}
	defer func() { testWorkerHook = nil }()

	ce := evalengine.NewConcurrent(fig1Problem(), 4)
	_, err := OptimizeConcurrentContext(context.Background(), ce, nil, ScheduleLength, Params{})
	var pe *runctl.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *runctl.PanicError", err, err)
	}
	if pe.Value != "injected evaluator fault" {
		t.Errorf("panic value %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
}
