package mapping

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/evalengine"
	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sched"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// assertSameResult fails unless the two optimization results are
// bit-identical in mapping, evaluation count, and every solution field
// the design strategy consumes.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Mapping) != len(want.Mapping) {
		t.Fatalf("%s: mapping sizes %d vs %d", label, len(got.Mapping), len(want.Mapping))
	}
	for i := range got.Mapping {
		if got.Mapping[i] != want.Mapping[i] {
			t.Fatalf("%s: mapping %v, want %v", label, got.Mapping, want.Mapping)
		}
	}
	if got.Evaluations != want.Evaluations {
		t.Errorf("%s: evaluations %d, want %d", label, got.Evaluations, want.Evaluations)
	}
	gs, ws := got.Solution, want.Solution
	if gs.Feasible() != ws.Feasible() {
		t.Errorf("%s: feasible %v, want %v", label, gs.Feasible(), ws.Feasible())
	}
	if math.Float64bits(gs.Cost) != math.Float64bits(ws.Cost) {
		t.Errorf("%s: cost %v, want %v", label, gs.Cost, ws.Cost)
	}
	if math.Float64bits(gs.Schedule.Length) != math.Float64bits(ws.Schedule.Length) {
		t.Errorf("%s: SL %v, want %v", label, gs.Schedule.Length, ws.Schedule.Length)
	}
	for i := range ws.Levels {
		if gs.Levels[i] != ws.Levels[i] {
			t.Errorf("%s: levels %v, want %v", label, gs.Levels, ws.Levels)
			break
		}
	}
	for i := range ws.Ks {
		if gs.Ks[i] != ws.Ks[i] {
			t.Errorf("%s: ks %v, want %v", label, gs.Ks, ws.Ks)
			break
		}
	}
}

// TestParallelMatchesSequential proves OptimizeConcurrent returns the
// identical trajectory as Optimize — same mapping, hardening vector,
// schedule length, cost, and evaluation count — on the Fig. 1/Fig. 4
// deployment and a batch of seeded synthetic applications, for both cost
// functions.
func TestParallelMatchesSequential(t *testing.T) {
	type tc struct {
		label   string
		prob    redundancy.Problem
		initial []int
	}
	cases := []tc{
		{"fig1-greedy", fig1Problem(), nil},
		{"fig1-fig4a-seed", fig1Problem(), []int{0, 0, 1, 1}},
		{"fig1-bad-seed", fig1Problem(), []int{0, 0, 0, 0}},
	}
	for i := 0; i < 6; i++ {
		n := 10 + 5*(i%3)
		ser := []float64{1e-12, 1e-11, 1e-10}[i%3]
		inst, err := taskgen.Generate(taskgen.DefaultConfig(int64(200+i), n, ser, 25))
		if err != nil {
			t.Fatal(err)
		}
		nodes := []*platform.Node{&inst.Platform.Nodes[i%2], &inst.Platform.Nodes[2+i%2]}
		cases = append(cases, tc{
			label: fmt.Sprintf("synthetic-%d", i),
			prob: redundancy.Problem{
				App:  inst.App,
				Arch: platform.NewArchitecture(nodes),
				Goal: inst.Goal,
				Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
			},
		})
	}
	for _, c := range cases {
		for _, cf := range []CostFunction{ScheduleLength, ArchitectureCost} {
			want, err := Optimize(evalengine.New(c.prob), c.initial, cf, Params{})
			if err != nil {
				t.Fatalf("%s/%v sequential: %v", c.label, cf, err)
			}
			for _, workers := range []int{2, 4} {
				ce := evalengine.NewConcurrent(c.prob, workers)
				got, err := OptimizeConcurrent(ce, c.initial, cf, Params{})
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", c.label, cf, workers, err)
				}
				assertSameResult(t, fmt.Sprintf("%s/%v workers=%d", c.label, cf, workers), got, want)
			}
		}
	}
}

// TestOptimizeConcurrentSingleWorker: a one-worker engine takes the plain
// sequential path.
func TestOptimizeConcurrentSingleWorker(t *testing.T) {
	p := fig1Problem()
	want, err := Optimize(evalengine.New(p), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeConcurrent(evalengine.NewConcurrent(p, 1), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "single worker", got, want)
}

// TestOptimizeConcurrentError: an evaluation error inside the worker pool
// surfaces, instead of hanging or panicking.
func TestOptimizeConcurrentError(t *testing.T) {
	p := fig1Problem()
	ce := evalengine.NewConcurrent(p, 4)
	if _, err := OptimizeConcurrent(ce, []int{0, 0, 0, 9}, ScheduleLength, Params{}); err == nil {
		t.Error("want error for out-of-range initial mapping")
	}
}

// TestCriticalPathWorstCaseArrival is the regression test for the silent
// truncation: under the per-process slack model a successor's start is
// fixed by the predecessor's worst-case (recovery-inclusive) finish, the
// exact fault-free-arrival match fails, and a first-on-its-node process
// has no schedule predecessor — the old walk stopped there. The walk must
// fall back to the latest-arriving predecessor and reach the source.
func TestCriticalPathWorstCaseArrival(t *testing.T) {
	b := appmodel.NewBuilder("worst-case-arrival")
	b.Graph("G", 1000)
	a := b.Process("A", 10)
	bb := b.Process("B", 10)
	b.Edge("e", a, bb, 4)
	app := b.MustBuild()
	app.Procs[a].Mu = 5
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	mapping := []int{0, 1}

	// No bus and per-process slack: B's arrival is A's worst-case finish
	// (finish + k×(wcet+μ)), while the matcher's fault-free candidates are
	// A's finish (no message end is recorded without a bus).
	s, err := sched.Build(sched.Input{
		App:     app,
		Arch:    ar,
		Mapping: mapping,
		Ks:      []int{1, 1},
		Model:   sched.SlackPerProcess,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[bb] <= s.Finish[a] {
		t.Fatalf("precondition failed: B starts at %v, not after A's fault-free finish %v",
			s.Start[bb], s.Finish[a])
	}

	path := criticalPath(app.Predecessors(), mapping, &redundancy.Solution{Schedule: s})
	if len(path) != 2 {
		t.Fatalf("critical path %v: want [B A] — the walk truncated", path)
	}
	if path[0] != bb || path[1] != a {
		t.Errorf("critical path %v, want [%d %d]", path, bb, a)
	}
}
