package mapping

import (
	"sync"
	"sync/atomic"

	"repro/internal/evalengine"
	"repro/internal/obs"
	"repro/internal/redundancy"
)

// OptimizeConcurrent is Optimize with the tabu neighborhood fanned out
// over the engine's workers: each iteration's trial mappings are
// evaluated by a bounded worker pool, then the winner is selected in the
// canonical candidate order with the same strict-less comparator as the
// sequential path. Every evaluation is deterministic regardless of which
// worker computes it (the caches only short-cut to bit-identical
// values), so the returned trajectory — mapping, solution, evaluation
// count — is identical to Optimize on worker 0 (TestParallelMatchesSequential).
func OptimizeConcurrent(ce *evalengine.Concurrent, initial []int, cf CostFunction, params Params) (*Result, error) {
	if ce.NumWorkers() <= 1 {
		return Optimize(ce.Worker(0), initial, cf, params)
	}
	return optimize(ce.Worker(0), func(trials [][]int) ([]*redundancy.Solution, error) {
		return evalTrials(ce, trials)
	}, initial, cf, params)
}

// evalTrials evaluates the trial mappings on the engine's workers. Work
// is handed out by an atomic counter (work stealing, no per-trial
// goroutine), results land by index, and a failure makes the remaining
// workers drain without starting new trials. On failure the
// lowest-indexed recorded error is returned.
func evalTrials(ce *evalengine.Concurrent, trials [][]int) ([]*redundancy.Solution, error) {
	sols := make([]*redundancy.Solution, len(trials))
	errs := make([]error, len(trials))
	w := ce.NumWorkers()
	if w > len(trials) {
		w = len(trials)
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	// Per-worker spans attribute the batch's cache misses to the worker
	// that computed them; they are concurrent siblings under worker 0's
	// current scope (the tabu iteration), so the trace shows the fan-out.
	parent := ce.Worker(0).TraceSpan()
	prev0 := parent
	spans := make([]*obs.Span, w)
	for i := 0; i < w; i++ {
		spans[i] = parent.Child("worker", obs.Int("wid", i))
		ce.Worker(i).SetTraceSpan(spans[i])
		wg.Add(1)
		go func(ev *evalengine.Evaluator) {
			defer wg.Done()
			for !failed.Load() {
				idx := int(next.Add(1)) - 1
				if idx >= len(trials) {
					return
				}
				sol, err := ev.RedundancyOpt(trials[idx])
				if err != nil {
					errs[idx] = err
					failed.Store(true)
					return
				}
				sols[idx] = sol
			}
		}(ce.Worker(i))
	}
	wg.Wait()
	for i, sp := range spans {
		ce.Worker(i).SetTraceSpan(nil)
		sp.End()
	}
	ce.Worker(0).SetTraceSpan(prev0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sols, nil
}
