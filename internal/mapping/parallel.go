package mapping

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/evalengine"
	"repro/internal/obs"
	"repro/internal/redundancy"
	"repro/internal/runctl"
)

// testWorkerHook, when non-nil, runs inside each worker just before a
// trial is evaluated. Tests use it to inject panics and cancellations at
// deterministic points in the fan-out; it is never set in production.
var testWorkerHook func(wid int, trial []int)

// OptimizeConcurrent is Optimize with the tabu neighborhood fanned out
// over the engine's workers: each iteration's trial mappings are
// evaluated by a bounded worker pool, then the winner is selected in the
// canonical candidate order with the same strict-less comparator as the
// sequential path. Every evaluation is deterministic regardless of which
// worker computes it (the caches only short-cut to bit-identical
// values), so the returned trajectory — mapping, solution, evaluation
// count — is identical to Optimize on worker 0 (TestParallelMatchesSequential).
func OptimizeConcurrent(ce *evalengine.Concurrent, initial []int, cf CostFunction, params Params) (*Result, error) {
	return OptimizeConcurrentContext(context.Background(), ce, initial, cf, params)
}

// OptimizeConcurrentContext is OptimizeConcurrent with cooperative
// cancellation: the context is consulted between tabu iterations and
// between trials inside the worker pool — never inside an evaluation —
// and cancellation drains the workers before returning the best-so-far
// partial result with an error wrapping runctl.ErrCanceled. A panic in
// any worker is recovered into a *runctl.PanicError, the remaining
// workers drain, and the search fails without the panic escaping.
func OptimizeConcurrentContext(ctx context.Context, ce *evalengine.Concurrent, initial []int, cf CostFunction, params Params) (*Result, error) {
	if ce.NumWorkers() <= 1 {
		return optimize(ctx, ce.Worker(0), nil, initial, cf, params)
	}
	return optimize(ctx, ce.Worker(0), func(trials [][]int) ([]*redundancy.Solution, error) {
		return evalTrials(ctx, ce, trials)
	}, initial, cf, params)
}

// evalOne evaluates a single trial on one worker, converting a panic in
// the evaluator into a *runctl.PanicError instead of letting it kill the
// goroutine (which would deadlock the WaitGroup and take the process
// down).
func evalOne(ev *evalengine.Evaluator, wid int, trial []int) (sol *redundancy.Solution, err error) {
	defer runctl.Recover(fmt.Sprintf("evalengine worker %d", wid), &err)
	if testWorkerHook != nil {
		testWorkerHook(wid, trial)
	}
	return ev.RedundancyOpt(trial)
}

// evalTrials evaluates the trial mappings on the engine's workers. Work
// is handed out by an atomic counter (work stealing, no per-trial
// goroutine), results land by index, and a failure — evaluation error,
// recovered panic, or cancellation — makes the remaining workers drain
// without starting new trials. On failure the lowest-indexed recorded
// error is returned; a cancellation outranks nothing (it is only
// reported when no evaluation failed first).
func evalTrials(ctx context.Context, ce *evalengine.Concurrent, trials [][]int) ([]*redundancy.Solution, error) {
	sols := make([]*redundancy.Solution, len(trials))
	errs := make([]error, len(trials))
	w := ce.NumWorkers()
	if w > len(trials) {
		w = len(trials)
	}
	var next atomic.Int64
	var failed atomic.Bool
	var cancelErr atomic.Pointer[error] // first worker to observe cancellation wins
	var wg sync.WaitGroup
	// Per-worker spans attribute the batch's cache misses to the worker
	// that computed them; they are concurrent siblings under worker 0's
	// current scope (the tabu iteration), so the trace shows the fan-out.
	parent := ce.Worker(0).TraceSpan()
	prev0 := parent
	spans := make([]*obs.Span, w)
	for i := 0; i < w; i++ {
		spans[i] = parent.Child("worker", obs.Int("wid", i))
		ce.Worker(i).SetTraceSpan(spans[i])
		wg.Add(1)
		go func(wid int, ev *evalengine.Evaluator) {
			defer wg.Done()
			for !failed.Load() {
				// Checked between trials, so an in-flight evaluation always
				// completes and the memo caches stay consistent.
				if cerr := runctl.Err(ctx); cerr != nil {
					cancelErr.CompareAndSwap(nil, &cerr)
					failed.Store(true)
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= len(trials) {
					return
				}
				sol, err := evalOne(ev, wid, trials[idx])
				if err != nil {
					errs[idx] = err
					failed.Store(true)
					return
				}
				sols[idx] = sol
			}
		}(i, ce.Worker(i))
	}
	wg.Wait()
	for i, sp := range spans {
		ce.Worker(i).SetTraceSpan(nil)
		sp.End()
	}
	ce.Worker(0).SetTraceSpan(prev0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if p := cancelErr.Load(); p != nil {
		return nil, *p
	}
	return sols, nil
}
