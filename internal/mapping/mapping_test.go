package mapping

import (
	"testing"

	"repro/internal/appmodel"
	"repro/internal/evalengine"
	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func fig1Problem() redundancy.Problem {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	return redundancy.Problem{
		App:  app,
		Arch: platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]}),
		Goal: sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Bus:  ttp.NewBus(2, pl.Bus.SlotLen),
	}
}

// TestOptimizeFindsFig4aCostOrBetter: on the two-node architecture of
// Fig. 1, optimizing for architecture cost must find a feasible mapping no
// more expensive than the paper's Fig. 4a solution (cost 72). Under our
// concrete bus timing (the paper does not publish message sizes or slot
// lengths) the tabu search actually discovers a cheaper feasible mix —
// N1^2 + N2^1 with k = (1, 3), cost 52 — exactly the kind of
// hardening/re-execution trade the paper advocates.
func TestOptimizeFindsFig4aCostOrBetter(t *testing.T) {
	p := fig1Problem()
	res, err := Optimize(evalengine.New(p), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible() {
		t.Fatal("two-node Fig. 1 architecture should be feasible")
	}
	if res.Solution.Cost > 72 {
		t.Errorf("cost = %v, want ≤ 72 (C_a of Fig. 4)", res.Solution.Cost)
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

// TestOptimizeScheduleLength: the schedule-length objective yields a
// feasible schedule within the deadline.
func TestOptimizeScheduleLength(t *testing.T) {
	p := fig1Problem()
	res, err := Optimize(evalengine.New(p), nil, ScheduleLength, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible() {
		t.Fatal("expected feasible solution")
	}
	if res.Solution.Schedule.Length > paper.Fig1Deadline {
		t.Errorf("SL = %v exceeds deadline", res.Solution.Schedule.Length)
	}
}

// TestOptimizeMonoprocessor: with a single node there is nothing to move;
// the result equals the single evaluation (Fig. 4e: N2^3, cost 80).
func TestOptimizeMonoprocessor(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	p := redundancy.Problem{
		App:  app,
		Arch: platform.NewArchitecture([]*platform.Node{&pl.Nodes[1]}),
		Goal: sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Bus:  ttp.NewBus(1, pl.Bus.SlotLen),
	}
	res, err := Optimize(evalengine.New(p), nil, ArchitectureCost, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible() {
		t.Fatal("monoprocessor N2 should be feasible at h=3")
	}
	if res.Solution.Cost != 80 {
		t.Errorf("cost = %v, want 80 (C_e)", res.Solution.Cost)
	}
	for _, j := range res.Mapping {
		if j != 0 {
			t.Errorf("monoprocessor mapping uses node %d", j)
		}
	}
}

func TestOptimizeInitialValidation(t *testing.T) {
	p := fig1Problem()
	if _, err := Optimize(evalengine.New(p), []int{0}, ScheduleLength, Params{}); err == nil {
		t.Error("want error for short initial mapping")
	}
	if _, err := Optimize(evalengine.New(p), []int{0, 0, 0, 9}, ScheduleLength, Params{}); err == nil {
		t.Error("want error for out-of-range initial mapping")
	}
	p.Arch = &platform.Architecture{}
	if _, err := Optimize(evalengine.New(p), nil, ScheduleLength, Params{}); err == nil {
		t.Error("want error for empty architecture")
	}
}

// TestOptimizeRespectsInitial: a provided initial mapping is the starting
// point; with zero iterations allowed the result is its evaluation.
func TestOptimizeRespectsInitial(t *testing.T) {
	p := fig1Problem()
	initial := []int{0, 0, 1, 1} // Fig. 4a split
	res, err := Optimize(evalengine.New(p), initial, ArchitectureCost, Params{MaxIterations: 1, MaxNoImprove: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible() || res.Solution.Cost > 72 {
		t.Errorf("Fig. 4a initial mapping should already cost 72, got %+v", res.Solution.Cost)
	}
}

func TestGreedyInitialValid(t *testing.T) {
	p := fig1Problem()
	m, err := GreedyInitial(evalengine.New(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Fatalf("mapping size %d", len(m))
	}
	for pid, j := range m {
		if j < 0 || j >= 2 {
			t.Errorf("process %d mapped to invalid node %d", pid, j)
		}
	}
}

func TestCostFunctionString(t *testing.T) {
	if ScheduleLength.String() != "schedule-length" ||
		ArchitectureCost.String() != "architecture-cost" {
		t.Error("cost function names changed")
	}
	if CostFunction(9).String() != "CostFunction(9)" {
		t.Error("unknown cost function formatting")
	}
}

// TestCriticalPathStartsAtWorstFinisher: the extracted critical path heads
// at the process with the largest worst-case finish and walks only through
// dependencies.
func TestCriticalPathStartsAtWorstFinisher(t *testing.T) {
	p := fig1Problem()
	q := p
	q.Mapping = []int{0, 0, 1, 1}
	sol, err := redundancy.RedundancyOpt(q)
	if err != nil {
		t.Fatal(err)
	}
	path := criticalPath(p.App.Predecessors(), q.Mapping, sol)
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	head := path[0]
	for pid := range sol.Schedule.WorstFinish {
		if sol.Schedule.WorstFinish[pid] > sol.Schedule.WorstFinish[head] {
			t.Errorf("process %d finishes worse than path head %d", pid, head)
		}
	}
	// The path ends at a process that starts at time 0.
	tail := path[len(path)-1]
	if sol.Schedule.Start[tail] != 0 {
		t.Errorf("path tail starts at %v, want 0", sol.Schedule.Start[tail])
	}
}

// TestOptimizeImprovesBadInitial: starting from the worst initial mapping
// (everything on N1, Fig. 4d — infeasible), the tabu search must escape to
// a feasible mapping.
func TestOptimizeImprovesBadInitial(t *testing.T) {
	p := fig1Problem()
	res, err := Optimize(evalengine.New(p), []int{0, 0, 0, 0}, ScheduleLength, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible() {
		t.Error("tabu search failed to escape the infeasible all-on-N1 mapping")
	}
}

// TestOptimizeTwoGraphApplication exercises multi-graph applications.
func TestOptimizeTwoGraphApplication(t *testing.T) {
	b := appmodel.NewBuilder("two-graphs")
	b.Graph("G1", 400)
	a1 := b.Process("A1", 5)
	a2 := b.Process("A2", 5)
	b.Edge("e1", a1, a2, 4)
	b.Graph("G2", 400)
	c1 := b.Process("C1", 5)
	c2 := b.Process("C2", 5)
	b.Edge("e2", c1, c2, 4)
	app := b.MustBuild()

	pl := paper.Fig1Platform()
	p := redundancy.Problem{
		App:  app,
		Arch: platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]}),
		Goal: sfp.Goal{Gamma: 1e-5, Tau: paper.Hour},
		Bus:  ttp.NewBus(2, pl.Bus.SlotLen),
	}
	res, err := Optimize(evalengine.New(p), nil, ScheduleLength, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Feasible() {
		t.Error("two independent 2-chains should easily be feasible")
	}
}
