package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/paper"
	"repro/internal/platform"
	. "repro/internal/sched"
	"repro/internal/ttp"
)

// fig3Input builds the Fig. 3 scheduling problem on h-version level with k
// re-executions.
func fig3Input(level, k int) Input {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0]})
	ar.Levels[0] = level
	return Input{App: app, Arch: ar, Mapping: []int{0}, Ks: []int{k}}
}

// TestFig3WorstCaseLengths reproduces the worst-case schedule lengths of
// Fig. 3: 680 ms with N1^1 and k=6 (misses D=360), and exactly 340 ms for
// both N1^2/k=2 and N1^3/k=1 — the paper notes the two complete "exactly
// at the same time".
func TestFig3WorstCaseLengths(t *testing.T) {
	cases := []struct {
		level, k    int
		wantLen     float64
		schedulable bool
	}{
		{1, 6, 80 + 6*(80+20), false}, // 680
		{2, 2, 100 + 2*(100+20), true},
		{3, 1, 160 + 1*(160+20), true},
	}
	for _, c := range cases {
		s, err := Build(fig3Input(c.level, c.k))
		if err != nil {
			t.Fatal(err)
		}
		if s.Length != c.wantLen {
			t.Errorf("h=%d k=%d: length = %v, want %v", c.level, c.k, s.Length, c.wantLen)
		}
		if got := s.Schedulable(paper.Fig3Application()); got != c.schedulable {
			t.Errorf("h=%d k=%d: schedulable = %v, want %v", c.level, c.k, got, c.schedulable)
		}
	}
	// The two schedulable versions tie exactly (both 340).
	s2, _ := Build(fig3Input(2, 2))
	s3, _ := Build(fig3Input(3, 1))
	if s2.Length != s3.Length {
		t.Errorf("N1^2/k=2 (%v) and N1^3/k=1 (%v) should tie", s2.Length, s3.Length)
	}
}

// fig4 builds one of the architecture alternatives of Fig. 4.
func fig4(t *testing.T, nodes []int, levels []int, mapping []int, ks []int) (*Schedule, *appmodel.Application) {
	t.Helper()
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	var ns []*platform.Node
	for _, idx := range nodes {
		ns = append(ns, &pl.Nodes[idx])
	}
	ar := platform.NewArchitecture(ns)
	copy(ar.Levels, levels)
	in := Input{
		App:     app,
		Arch:    ar,
		Mapping: mapping,
		Ks:      ks,
		Bus:     ttp.NewBus(len(nodes), pl.Bus.SlotLen),
	}
	s, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return s, app
}

// TestFig4Alternatives reproduces all five verdicts of Fig. 4 and, where
// the figure prints them, the exact worst-case schedule lengths.
func TestFig4Alternatives(t *testing.T) {
	// (a) N1^2 + N2^2, P1,P2 on N1, P3,P4 on N2, k = (1,1): schedulable.
	s, app := fig4(t, []int{0, 1}, []int{2, 2}, []int{0, 0, 1, 1}, []int{1, 1})
	if !s.Schedulable(app) {
		t.Errorf("(a) should be schedulable, length %v", s.Length)
	}
	// (b) only N1^2, k = 2: fault-free 330 + 2×(90+15) = 540.
	s, app = fig4(t, []int{0}, []int{2}, []int{0, 0, 0, 0}, []int{2})
	if s.Length != 540 {
		t.Errorf("(b) length = %v, want 540", s.Length)
	}
	if s.Schedulable(app) {
		t.Error("(b) should be unschedulable")
	}
	// (c) only N2^2, k = 2: 270 + 2×(75+15) = 450.
	s, app = fig4(t, []int{1}, []int{2}, []int{0, 0, 0, 0}, []int{2})
	if s.Length != 450 {
		t.Errorf("(c) length = %v, want 450", s.Length)
	}
	if s.Schedulable(app) {
		t.Error("(c) should be unschedulable")
	}
	// (d) only N1^3, k = 0: 390 — unschedulable purely from hardening
	// performance degradation.
	s, app = fig4(t, []int{0}, []int{3}, []int{0, 0, 0, 0}, []int{0})
	if s.Length != 390 {
		t.Errorf("(d) length = %v, want 390", s.Length)
	}
	if s.Schedulable(app) {
		t.Error("(d) should be unschedulable")
	}
	// (e) only N2^3, k = 0: 330 — schedulable.
	s, app = fig4(t, []int{1}, []int{3}, []int{0, 0, 0, 0}, []int{0})
	if s.Length != 330 {
		t.Errorf("(e) length = %v, want 330", s.Length)
	}
	if !s.Schedulable(app) {
		t.Error("(e) should be schedulable")
	}
}

func TestValidateRejects(t *testing.T) {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0]})
	ok := Input{App: app, Arch: ar, Mapping: []int{0}, Ks: []int{0}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Input)
	}{
		{"nil app", func(in *Input) { in.App = nil }},
		{"nil arch", func(in *Input) { in.Arch = nil }},
		{"short mapping", func(in *Input) { in.Mapping = nil }},
		{"bad node", func(in *Input) { in.Mapping = []int{3} }},
		{"short ks", func(in *Input) { in.Ks = nil }},
		{"negative k", func(in *Input) { in.Ks = []int{-1} }},
		{"bad level", func(in *Input) { in.Arch = ar.Clone(); in.Arch.Levels[0] = 9 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := ok
			c.mutate(&in)
			if err := in.Validate(); err == nil {
				t.Error("want error")
			}
			if _, err := Build(in); err == nil {
				t.Error("Build should fail on invalid input")
			}
		})
	}
}

func TestUnknownSlackModel(t *testing.T) {
	in := fig3Input(1, 0)
	in.Model = SlackModel(99)
	if _, err := Build(in); err == nil {
		t.Error("want error for unknown slack model")
	}
	if s := SlackModel(99).String(); s != "SlackModel(99)" {
		t.Errorf("String = %q", s)
	}
	if SlackShared.String() != "shared" || SlackPerProcess.String() != "per-process" {
		t.Error("model names changed")
	}
}

// randomProblem builds a random application, 2-node architecture and
// mapping for property tests.
func randomProblem(rng *rand.Rand) (Input, *appmodel.Application) {
	b := appmodel.NewBuilder("rand")
	b.Graph("G", 1e6)
	n := 3 + rng.Intn(12)
	ids := make([]appmodel.ProcID, n)
	for i := range ids {
		ids[i] = b.Process("P", 1+rng.Float64()*5)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				b.Edge("e", ids[i], ids[j], 8)
			}
		}
	}
	app := b.MustBuild()
	mkVersion := func(level int, scale float64) platform.HVersion {
		w := make([]float64, n)
		p := make([]float64, n)
		for i := range w {
			w[i] = (1 + rng.Float64()*19) * scale
			p[i] = 1e-4
		}
		return platform.HVersion{Level: level, Cost: float64(level * 10), WCET: w, FailProb: p}
	}
	nodes := []platform.Node{
		{ID: 0, Name: "Na", Versions: []platform.HVersion{mkVersion(1, 1)}},
		{ID: 1, Name: "Nb", Versions: []platform.HVersion{mkVersion(1, 1)}},
	}
	// Keep WCET monotone across levels trivially satisfied (single level).
	pl := &platform.Platform{Nodes: nodes, Bus: platform.BusSpec{SlotLen: 2}}
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = rng.Intn(2)
	}
	in := Input{
		App:     app,
		Arch:    ar,
		Mapping: mapping,
		Ks:      []int{rng.Intn(3), rng.Intn(3)},
		Bus:     ttp.NewBus(2, 2),
	}
	return in, app
}

// TestScheduleInvariants checks, over random problems, that precedence
// constraints hold, node executions do not overlap, worst-case finishes
// dominate fault-free finishes, and message windows sit between producer
// finish and consumer start.
func TestScheduleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		in, app := randomProblem(rng)
		s, err := Build(in)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-9
		for pid := range s.Start {
			if s.Finish[pid] < s.Start[pid] {
				t.Fatalf("trial %d: finish before start for P%d", trial, pid)
			}
			if s.WorstFinish[pid] < s.Finish[pid]-eps {
				t.Fatalf("trial %d: worst finish below fault-free finish for P%d", trial, pid)
			}
			if s.WorstFinish[pid] > s.Length+eps {
				t.Fatalf("trial %d: worst finish beyond schedule length", trial)
			}
		}
		for _, e := range app.Edges {
			if in.Mapping[e.Src] == in.Mapping[e.Dst] {
				if s.Start[e.Dst] < s.Finish[e.Src]-eps {
					t.Fatalf("trial %d: intra-node precedence violated on edge %d", trial, e.ID)
				}
				if !math.IsNaN(s.MsgStart[e.ID]) {
					t.Fatalf("trial %d: intra-node edge %d has a bus window", trial, e.ID)
				}
			} else {
				if math.IsNaN(s.MsgStart[e.ID]) {
					t.Fatalf("trial %d: cross-node edge %d missing bus window", trial, e.ID)
				}
				if s.MsgStart[e.ID] < s.Finish[e.Src]-eps {
					t.Fatalf("trial %d: message departs before producer finishes", trial)
				}
				if s.Start[e.Dst] < s.MsgEnd[e.ID]-eps {
					t.Fatalf("trial %d: consumer starts before message arrives", trial)
				}
			}
		}
		// Per-node executions are sequential and ordered.
		for j, order := range s.NodeOrder {
			for i := 1; i < len(order); i++ {
				if s.Start[order[i]] < s.Finish[order[i-1]]-eps {
					t.Fatalf("trial %d: node %d executions overlap", trial, j)
				}
			}
		}
	}
}

// TestPerProcessSlackDominatesSharedOnOneNode: on a single node, where no
// message-wait gaps can hide cascaded delays, the per-process model's
// length is fault-free + k·Σ(t+μ) while the shared model's is
// fault-free + k·max(t+μ), so per-process can never be shorter. (Across
// multiple nodes neither model dominates: per-process delays can hide in
// idle waits for messages.)
func TestPerProcessSlackDominatesSharedOnOneNode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		in, _ := randomProblem(rng)
		for i := range in.Mapping {
			in.Mapping[i] = 0
		}
		shared, err := Build(in)
		if err != nil {
			t.Fatal(err)
		}
		inPP := in
		inPP.Model = SlackPerProcess
		inPP.Bus = ttp.NewBus(2, 2)
		perProc, err := Build(inPP)
		if err != nil {
			t.Fatal(err)
		}
		if perProc.Length < shared.Length-1e-9 {
			t.Fatalf("trial %d: per-process length %v below shared %v", trial, perProc.Length, shared.Length)
		}
	}
}

// TestLengthMonotoneInK: adding re-executions never shortens the schedule,
// in either slack model.
func TestLengthMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		in, _ := randomProblem(rng)
		for _, model := range []SlackModel{SlackShared, SlackPerProcess} {
			in.Model = model
			in.Bus = ttp.NewBus(2, 2)
			base, err := Build(in)
			if err != nil {
				t.Fatal(err)
			}
			inMore := in
			inMore.Ks = []int{in.Ks[0] + 1, in.Ks[1] + 1}
			inMore.Bus = ttp.NewBus(2, 2)
			more, err := Build(inMore)
			if err != nil {
				t.Fatal(err)
			}
			if more.Length < base.Length-1e-9 {
				t.Fatalf("trial %d model %v: length decreased when k increased (%v -> %v)",
					trial, model, base.Length, more.Length)
			}
		}
	}
}

// TestSharedSlackUsesRunningMax verifies the shared-slack subtlety: a
// process is only delayed by re-executions of processes scheduled up to
// it, so an early small process has a smaller worst-case finish than a
// later large one.
func TestSharedSlackUsesRunningMax(t *testing.T) {
	b := appmodel.NewBuilder("chain")
	b.Graph("G", 1e6)
	p1 := b.Process("small", 10)
	p2 := b.Process("large", 10)
	b.Edge("e", p1, p2, 1)
	app := b.MustBuild()
	node := platform.Node{ID: 0, Name: "N", Versions: []platform.HVersion{{
		Level: 1, Cost: 1, WCET: []float64{10, 100}, FailProb: []float64{1e-5, 1e-5},
	}}}
	ar := platform.NewArchitecture([]*platform.Node{&node})
	s, err := Build(Input{App: app, Arch: ar, Mapping: []int{0, 0}, Ks: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// P1 worst finish: 10 + 1×(10+10) = 30, not 10 + (100+10).
	if s.WorstFinish[p1] != 30 {
		t.Errorf("small process worst finish = %v, want 30", s.WorstFinish[p1])
	}
	// P2 worst finish: 110 + 1×(100+10) = 220.
	if s.WorstFinish[p2] != 220 {
		t.Errorf("large process worst finish = %v, want 220", s.WorstFinish[p2])
	}
}

// TestNilBusInstantMessages: without a bus, cross-node messages arrive
// instantly.
func TestNilBusInstantMessages(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	s, err := Build(Input{App: app, Arch: ar, Mapping: []int{0, 0, 1, 1}, Ks: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// P3 starts exactly when P1 finishes (75), no slot delay.
	if s.Start[2] != 75 {
		t.Errorf("P3 start = %v, want 75 with instant messages", s.Start[2])
	}
	for _, e := range app.Edges {
		if !math.IsNaN(s.MsgStart[e.ID]) {
			t.Errorf("edge %d should have no bus window with nil bus", e.ID)
		}
	}
}

// TestFig2WorstCaseShapes reproduces Fig. 2 of the paper: process P1 on
// three h-versions of N1 (t = 30/45/60 ms, μ = 5 ms) with k = 2/1/0
// re-executions. The worst-case completions are 30+2×35 = 100,
// 45+1×50 = 95 and 60 ms — the figure's message that hardening can shrink
// the worst case despite slower execution.
func TestFig2WorstCaseShapes(t *testing.T) {
	app := appmodel.NewBuilder("fig2")
	app.Graph("G", 1000)
	app.Process("P1", 5)
	a := app.MustBuild()
	node := platform.Node{
		ID:   0,
		Name: "N1",
		Versions: []platform.HVersion{
			{Level: 1, Cost: 1, WCET: []float64{30}, FailProb: []float64{1e-3}},
			{Level: 2, Cost: 2, WCET: []float64{45}, FailProb: []float64{1e-5}},
			{Level: 3, Cost: 4, WCET: []float64{60}, FailProb: []float64{1e-7}},
		},
	}
	cases := []struct {
		level, k int
		want     float64
	}{
		{1, 2, 100},
		{2, 1, 95},
		{3, 0, 60},
	}
	for _, c := range cases {
		ar := platform.NewArchitecture([]*platform.Node{&node})
		ar.Levels[0] = c.level
		s, err := Build(Input{App: a, Arch: ar, Mapping: []int{0}, Ks: []int{c.k}})
		if err != nil {
			t.Fatal(err)
		}
		if s.Length != c.want {
			t.Errorf("h=%d k=%d: worst case %v, want %v", c.level, c.k, s.Length, c.want)
		}
	}
}

// TestReleaseValidation covers the release-time input checks.
func TestReleaseValidation(t *testing.T) {
	in := fig3Input(1, 0)
	in.Release = []float64{-5}
	if err := in.Validate(); err == nil {
		t.Error("want error for negative release")
	}
	in.Release = []float64{0, 0}
	if err := in.Validate(); err == nil {
		t.Error("want error for wrong release length")
	}
	in.Release = []float64{50}
	s, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 50 {
		t.Errorf("start %v, want release 50", s.Start[0])
	}
}
