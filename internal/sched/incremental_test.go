package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// schedulesIdentical reports whether two schedules are bit-for-bit equal,
// treating NaN (the intra-node message marker) as equal to NaN.
func schedulesIdentical(a, b *sched.Schedule) bool {
	feq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.IsNaN(x[i]) && math.IsNaN(y[i]) {
				continue
			}
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !feq(a.Start, b.Start) || !feq(a.Finish, b.Finish) || !feq(a.WorstFinish, b.WorstFinish) ||
		!feq(a.MsgStart, b.MsgStart) || !feq(a.MsgEnd, b.MsgEnd) || a.Length != b.Length {
		return false
	}
	if len(a.NodeOrder) != len(b.NodeOrder) {
		return false
	}
	for j := range a.NodeOrder {
		if len(a.NodeOrder[j]) != len(b.NodeOrder[j]) {
			return false
		}
		for k := range a.NodeOrder[j] {
			if a.NodeOrder[j][k] != b.NodeOrder[j][k] {
				return false
			}
		}
	}
	return true
}

// TestBuildIncrementalMatchesBuildInto drives a shared workspace through a
// long random walk of single-process remaps (with hardening-level and k
// perturbations mixed in, mimicking RedundancyOpt probes) and checks that
// every BuildIncremental result is bit-identical to a fresh BuildInto of
// the same input.
func TestBuildIncrementalMatchesBuildInto(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, model := range []sched.SlackModel{sched.SlackShared, sched.SlackPerProcess} {
			inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, 16, 1e-11, 25))
			if err != nil {
				t.Fatalf("seed %d: generate: %v", seed, err)
			}
			enum := platform.NewEnumerator(inst.Platform)
			nNodes := 3
			if enum.MaxNodes() < nNodes {
				nNodes = enum.MaxNodes()
			}
			ar := enum.Arch(nNodes, 0)
			if ar == nil {
				t.Fatalf("seed %d: no %d-node architecture", seed, nNodes)
			}
			n := inst.App.NumProcesses()
			rng := rand.New(rand.NewSource(seed * 1013))
			mapping := make([]int, n)
			for i := range mapping {
				mapping[i] = rng.Intn(len(ar.Nodes))
			}
			ks := make([]int, len(ar.Nodes))
			for j := range ks {
				ks[j] = rng.Intn(3)
			}
			bus := ttp.NewBus(len(ar.Nodes), 2)
			refBus := ttp.NewBus(len(ar.Nodes), 2)

			var ws sched.Workspace
			iters := 1000
			if testing.Short() {
				iters = 100
			}
			for it := 0; it < iters; it++ {
				// One tabu-style move per iteration…
				moved := rng.Intn(n)
				mapping[moved] = rng.Intn(len(ar.Nodes))
				// …and occasionally a hardening probe (level or k change),
				// which BuildIncremental must pick up without being told.
				if rng.Intn(4) == 0 {
					j := rng.Intn(len(ar.Nodes))
					nd := ar.Nodes[j]
					ar.Levels[j] = nd.MinLevel() + rng.Intn(nd.MaxLevel()-nd.MinLevel()+1)
				}
				if rng.Intn(4) == 0 {
					ks[rng.Intn(len(ks))] = rng.Intn(3)
				}
				in := sched.Input{App: inst.App, Arch: ar, Mapping: mapping, Ks: ks, Bus: bus, Model: model}
				inc, err := sched.BuildIncremental(in, &ws)
				if err != nil {
					t.Fatalf("seed %d iter %d: incremental: %v", seed, it, err)
				}
				refIn := in
				refIn.Bus = refBus
				ref, err := sched.BuildInto(refIn, nil)
				if err != nil {
					t.Fatalf("seed %d iter %d: reference: %v", seed, it, err)
				}
				if !schedulesIdentical(inc, ref) {
					t.Fatalf("seed %d iter %d (model %v): incremental schedule diverges from fresh build\nmapping=%v levels=%v ks=%v",
						seed, it, model, mapping, ar.Levels, ks)
				}
			}
		}
	}
}

// TestBuildIncrementalColdStart checks the degenerate paths: no trace yet,
// and a workspace whose trace belongs to a different application.
func TestBuildIncrementalColdStart(t *testing.T) {
	instA, err := taskgen.Generate(taskgen.DefaultConfig(5, 12, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	instB, err := taskgen.Generate(taskgen.DefaultConfig(6, 14, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	var ws sched.Workspace
	for _, inst := range []*taskgen.Instance{instA, instB, instA} {
		ar := platform.NewEnumerator(inst.Platform).Arch(2, 0)
		if ar == nil {
			t.Fatal("no 2-node architecture")
		}
		n := inst.App.NumProcesses()
		mapping := make([]int, n)
		for i := range mapping {
			mapping[i] = i % len(ar.Nodes)
		}
		ks := make([]int, len(ar.Nodes))
		in := sched.Input{App: inst.App, Arch: ar, Mapping: mapping, Ks: ks}
		inc, err := sched.BuildIncremental(in, &ws)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sched.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		if !schedulesIdentical(inc, ref) {
			t.Fatal("cold-start incremental build diverges from fresh build")
		}
	}
}
