// Package sched implements the off-line static cyclic scheduling strategy
// of Section 6.4: a list scheduler with partial-critical-path priorities
// that places processes on their mapped computation nodes and messages in
// TDMA bus slots, then accounts for transient-fault recovery with
// "recovery slack".
//
// # Recovery slack models
//
// After each process P_i on node N_j the paper assigns a recovery slack of
// (t_ijh + μ) × k_j, and "the slack is shared between processes in order
// to reduce the time allocated for recovering from faults". Concretely, in
// the shared model the worst-case completion of P_i is its fault-free
// finish plus k_j × max(t + μ) over the processes scheduled on N_j up to
// and including P_i: any of the node's k_j tolerated faults re-executes
// one of those processes, and each re-execution costs at most the largest
// (t + μ) among them. This model reproduces the paper's worst-case
// arithmetic exactly — e.g. in Fig. 3 both N1^2 with k = 2 (100 + 2×120)
// and N1^3 with k = 1 (160 + 180) complete "exactly at the same time"
// 340 ms, and the Fig. 4 verdicts (a, e schedulable; b, c, d not) follow.
//
// The per-process model (SlackPerProcess) is the classical non-shared
// alternative in which every process reserves its own k_j re-executions
// and delays propagate along the schedule; it is strictly more
// pessimistic and serves as the ablation baseline quantifying the value of
// slack sharing.
package sched

import (
	"fmt"
	"math"

	"repro/internal/appmodel"
	"repro/internal/platform"
)

// Bus abstracts the communication medium used for cross-node messages; it
// is implemented by *ttp.Bus and ttp.InstantBus.
type Bus interface {
	// Schedule books the earliest transmission window for a message from
	// srcNode ready at the given time and returns it.
	Schedule(srcNode int, ready float64) (start, end float64)
	// Reset clears all bookings.
	Reset()
}

// CloneableBus is a Bus whose booking state can be duplicated, giving
// each goroutine of a parallel search its own bus to mutate. Clones share
// the bus parameters (slot layout, timing) but no bookings; a fresh clone
// is equivalent to a fresh bus. Buses that do not implement CloneableBus
// limit the evaluation engine to a single worker.
type CloneableBus interface {
	Bus
	// CloneBus returns an unbooked bus with the same parameters. A
	// stateless bus may return itself.
	CloneBus() Bus
}

// SlackModel selects how re-execution recovery time is accounted for.
type SlackModel int

const (
	// SlackShared is the paper's model: the processes of a node share a
	// recovery slack sized k_j × max(t + μ); see the package comment.
	SlackShared SlackModel = iota
	// SlackPerProcess reserves k_j re-executions for every process
	// individually and propagates the delays; the non-shared ablation
	// baseline.
	SlackPerProcess
)

// String returns the model name.
func (m SlackModel) String() string {
	switch m {
	case SlackShared:
		return "shared"
	case SlackPerProcess:
		return "per-process"
	default:
		return fmt.Sprintf("SlackModel(%d)", int(m))
	}
}

// Input bundles everything the scheduler needs.
type Input struct {
	App *appmodel.Application
	// Arch supplies the selected h-version (WCETs) of each node.
	Arch *platform.Architecture
	// Mapping[i] is the architecture node index process i runs on.
	Mapping []int
	// Ks[j] is the number of re-executions k_j provided on node j.
	Ks []int
	// Bus carries cross-node messages. If nil, transmission is
	// instantaneous.
	Bus Bus
	// Model selects the recovery slack accounting; zero value is the
	// paper's shared model.
	Model SlackModel
	// ExtraExec, when non-nil, adds a per-process execution-time
	// surcharge to the mapped WCET (used by the checkpointing extension
	// for checkpoint-saving and error-detection overheads). Indexed by
	// ProcID.
	ExtraExec []float64
	// Recovery, when non-nil, overrides the per-fault recovery cost of
	// each process (default: WCET + μ, a full re-execution; the
	// checkpointing extension passes one segment plus μ). Indexed by
	// ProcID.
	Recovery []float64
	// Release, when non-nil, gives each process an earliest start time
	// (used by the multi-rate extension, where graph instances are
	// released throughout the hyperperiod). Indexed by ProcID.
	Release []float64
}

// Schedule is the result of list scheduling: fault-free start/finish times
// per process, worst-case finish times including recovery slack, message
// transmission windows, and the derived schedulability verdict.
type Schedule struct {
	// Start and Finish are the fault-free execution windows, indexed by
	// ProcID.
	Start, Finish []float64
	// WorstFinish is the worst-case completion including re-execution
	// recovery, indexed by ProcID. Deadlines are checked against it.
	WorstFinish []float64
	// MsgStart and MsgEnd are the bus windows of cross-node messages,
	// indexed by EdgeID; both are NaN for intra-node edges.
	MsgStart, MsgEnd []float64
	// NodeOrder[j] lists the processes of node j in execution order.
	NodeOrder [][]appmodel.ProcID
	// Length is the worst-case schedule length SL: the largest
	// WorstFinish.
	Length float64
}

// Validate checks the input for structural consistency.
func (in *Input) Validate() error {
	if in.App == nil || in.Arch == nil {
		return fmt.Errorf("sched: nil application or architecture")
	}
	n := in.App.NumProcesses()
	if len(in.Mapping) != n {
		return fmt.Errorf("sched: mapping covers %d of %d processes", len(in.Mapping), n)
	}
	for pid, j := range in.Mapping {
		if j < 0 || j >= len(in.Arch.Nodes) {
			return fmt.Errorf("sched: process %d mapped to invalid node %d", pid, j)
		}
	}
	if len(in.Ks) != len(in.Arch.Nodes) {
		return fmt.Errorf("sched: ks covers %d of %d nodes", len(in.Ks), len(in.Arch.Nodes))
	}
	for j, k := range in.Ks {
		if k < 0 {
			return fmt.Errorf("sched: negative k on node %d", j)
		}
	}
	for j := range in.Arch.Nodes {
		if in.Arch.Version(j) == nil {
			return fmt.Errorf("sched: node %d has no version at level %d", j, in.Arch.Levels[j])
		}
	}
	if in.ExtraExec != nil && len(in.ExtraExec) != n {
		return fmt.Errorf("sched: ExtraExec covers %d of %d processes", len(in.ExtraExec), n)
	}
	if in.Recovery != nil && len(in.Recovery) != n {
		return fmt.Errorf("sched: Recovery covers %d of %d processes", len(in.Recovery), n)
	}
	for pid, x := range in.ExtraExec {
		if x < 0 {
			return fmt.Errorf("sched: negative ExtraExec for process %d", pid)
		}
	}
	for pid, r := range in.Recovery {
		if r < 0 {
			return fmt.Errorf("sched: negative Recovery for process %d", pid)
		}
	}
	if in.Release != nil && len(in.Release) != n {
		return fmt.Errorf("sched: Release covers %d of %d processes", len(in.Release), n)
	}
	for pid, r := range in.Release {
		if r < 0 {
			return fmt.Errorf("sched: negative Release for process %d", pid)
		}
	}
	return nil
}

// Workspace caches per-application adjacency (predecessors, successors,
// topological order, graph index) and reuses the scheduler's scratch
// buffers across Build calls, so evaluation-heavy callers (package
// evalengine) stop paying the per-build allocation cost. The zero value is
// ready to use. A Workspace is bound to one application at a time and
// assumes the application is not mutated while bound; it is not safe for
// concurrent use.
type Workspace struct {
	app  *appmodel.Application
	pred [][]appmodel.Edge
	succ [][]appmodel.Edge
	topo []appmodel.ProcID
	gi   []int

	wcet, prio, arrival, nodeAvail, maxRec []float64
	unscheduled                            []int
	ready                                  []appmodel.ProcID
	pos                                    []int32 // position of each ready process in ws.ready
	nodeCount                              []int
	absDeadline                            []float64
	vers                                   []*platform.HVersion // per-node selected version, hoisted per build

	// slabF and slabP carve the returned Schedule's arrays out of large
	// pointer-free chunks instead of per-build allocations: callers that
	// retain thousands of schedules (the evaluation engine's solution
	// cache) cost the allocator and the garbage collector one chunk per
	// ~hundred builds rather than five objects per build. Carved slices
	// are never reused — the workspace only hands each region out once —
	// so returned schedules stay independent of the workspace.
	slabF []float64
	slabP []appmodel.ProcID

	tr trace
}

// slabChunk is the slab allocation granularity in elements.
const slabChunk = 1 << 14

// carveF returns k fresh zeroed float64s off the workspace slab.
func (ws *Workspace) carveF(k int) []float64 {
	if len(ws.slabF) < k {
		c := slabChunk
		if k > c {
			c = k
		}
		ws.slabF = make([]float64, c)
	}
	out := ws.slabF[:k:k]
	ws.slabF = ws.slabF[k:]
	return out
}

// carveP returns k fresh zeroed ProcIDs off the workspace slab.
func (ws *Workspace) carveP(k int) []appmodel.ProcID {
	if len(ws.slabP) < k {
		c := slabChunk
		if k > c {
			c = k
		}
		ws.slabP = make([]appmodel.ProcID, c)
	}
	out := ws.slabP[:k:k]
	ws.slabP = ws.slabP[k:]
	return out
}

// trace records the selection decisions of the last successful build so
// BuildIncremental can replay the prefix that a small input change cannot
// have perturbed. Selection (with Input.Release nil) depends only on the
// priority vector and the precedence structure: the scheduler always pops
// the ready process with the highest priority (ties by ID), and readiness
// evolves deterministically from the pop sequence. So as long as every
// process that has entered the ready set carries an unchanged priority,
// the recorded pop is provably the process a full build would pick.
type trace struct {
	valid bool
	app   *appmodel.Application
	// prio is the priority vector of the recorded build.
	prio []float64
	// popOrder[s] is the process committed at step s.
	popOrder []appmodel.ProcID
	// readyStep[pid] is the first selection step at which pid was in the
	// ready set (0 for source processes, committing-step+1 otherwise). A
	// changed process can influence selection no earlier than this step.
	readyStep []int32
}

// bind points the workspace at app, recomputing the cached adjacency when
// the application changed since the last call.
func (ws *Workspace) bind(app *appmodel.Application) error {
	if ws.app == app {
		return nil
	}
	topo, err := app.TopoOrder()
	if err != nil {
		return err
	}
	ws.app = app
	ws.topo = topo
	ws.pred = app.Predecessors()
	ws.succ = app.Successors()
	ws.gi = app.GraphOf()
	return nil
}

// Schedulable is Schedule.Schedulable against the workspace's bound
// application, using the cached graph index.
func (ws *Workspace) Schedulable(s *Schedule) bool {
	for pid := range s.WorstFinish {
		if s.WorstFinish[pid] > ws.app.Graphs[ws.gi[pid]].Deadline+1e-9 {
			return false
		}
	}
	return true
}

// floats returns buf resized to n elements, all zero, growing the backing
// array only when needed.
func floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	*buf = s
	return s
}

// Build runs the list scheduler and returns the schedule. The application
// and architecture are not modified.
func Build(in Input) (*Schedule, error) {
	return BuildInto(in, nil)
}

// BuildInto is Build with reusable scratch buffers: a non-nil Workspace
// amortizes the adjacency computation and the scheduler's temporary
// allocations across calls. The returned Schedule is always freshly
// allocated and independent of the workspace. BuildInto(in, nil) is
// exactly Build(in).
func BuildInto(in Input, ws *Workspace) (*Schedule, error) {
	return buildWith(in, ws, false, nil)
}

// BuildIncremental is BuildInto with prefix replay: when the workspace
// holds the trace of a previous build over the same application, the
// schedule prefix that the input change provably cannot perturb is
// replayed from the recorded pop order instead of re-scanned, and only the
// affected suffix (plus every TDMA bus slot, which is re-booked during the
// replay) runs through live selection. The result is bit-identical to
// BuildInto for every input — the divergence point is derived from the
// new priority vector itself, so an unannounced change (a hardening-level
// probe shifting WCETs, a tabu move flipping edge crossness) is caught by
// the same diff that catches the announced one. changed optionally names
// processes the caller knows it touched; they clamp the divergence point
// as a defensive floor and are never required for correctness. With no
// usable trace (first build, different application, Release mode) it is
// exactly BuildInto.
func BuildIncremental(in Input, ws *Workspace, changed ...appmodel.ProcID) (*Schedule, error) {
	return buildWith(in, ws, true, changed)
}

func buildWith(in Input, ws *Workspace, incremental bool, changed []appmodel.ProcID) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = &Workspace{}
	}
	app := in.App
	if err := ws.bind(app); err != nil {
		return nil, err
	}
	n := app.NumProcesses()
	// Hoist the per-node version lookup (a scan over the node's version
	// list) out of the per-process loop: m lookups instead of n.
	if cap(ws.vers) < len(in.Arch.Nodes) {
		ws.vers = make([]*platform.HVersion, len(in.Arch.Nodes))
	}
	vers := ws.vers[:len(in.Arch.Nodes)]
	for j := range vers {
		vers[j] = in.Arch.Version(j)
	}
	wcet := floats(&ws.wcet, n) // t_ijh of each process on its mapped node
	for pid := 0; pid < n; pid++ {
		wcet[pid] = vers[in.Mapping[pid]].WCET[pid]
		if in.ExtraExec != nil {
			wcet[pid] += in.ExtraExec[pid]
		}
	}
	// Partial-critical-path priorities: longest remaining chain where
	// processes weigh their mapped WCET and cross-node edges weigh one
	// bus slot. Same recurrence as appmodel.CriticalPathLengths, run over
	// the cached topological order and successor lists.
	slotEst := busSlotEstimate(in)
	prio := floats(&ws.prio, n)
	for i := len(ws.topo) - 1; i >= 0; i-- {
		p := ws.topo[i]
		best := 0.0
		for _, e := range ws.succ[p] {
			w := 0.0
			if in.Mapping[e.Src] != in.Mapping[e.Dst] {
				w = slotEst
			}
			if v := w + prio[e.Dst]; v > best {
				best = v
			}
		}
		prio[p] = wcet[p] + best
	}

	bus := in.Bus
	if bus != nil {
		bus.Reset()
	}

	// replayUpTo is the first selection step that must run live: every
	// earlier step pops the recorded process directly. A step can be
	// replayed when no process in its ready set carries a changed priority
	// — selection reads nothing else — and the ready sets themselves are
	// reproduced exactly by replaying the recorded pops.
	replayUpTo := 0
	tr := &ws.tr
	if incremental && in.Release == nil && tr.valid && tr.app == app && len(tr.prio) == n {
		replayUpTo = n
		for pid := 0; pid < n; pid++ {
			if prio[pid] != tr.prio[pid] && int(tr.readyStep[pid]) < replayUpTo {
				replayUpTo = int(tr.readyStep[pid])
			}
		}
		for _, pid := range changed {
			if int(pid) < n && int(tr.readyStep[pid]) < replayUpTo {
				replayUpTo = int(tr.readyStep[pid])
			}
		}
	}
	// The trace is rebuilt as this build commits; it becomes valid again
	// only when the build completes (a failed build leaves no trace).
	tr.valid = false
	tr.app = app
	if cap(tr.popOrder) < n {
		tr.popOrder = make([]appmodel.ProcID, n)
		tr.readyStep = make([]int32, n)
	}
	tr.popOrder = tr.popOrder[:n]
	tr.readyStep = tr.readyStep[:n]

	// One slab carve backs the three per-process and two per-edge arrays;
	// NodeOrder gets a single spine sized from the mapping histogram. The
	// schedule stays independent of the workspace — carved regions are
	// handed out exactly once — only the allocation count shrinks.
	m := len(in.Arch.Nodes)
	ne := len(app.Edges)
	fbuf := ws.carveF(3*n + 2*ne)
	msg := fbuf[3*n:]
	for i := range msg {
		msg[i] = math.NaN()
	}
	s := &Schedule{
		Start:       fbuf[0:n:n],
		Finish:      fbuf[n : 2*n : 2*n],
		WorstFinish: fbuf[2*n : 3*n : 3*n],
		MsgStart:    msg[0:ne:ne],
		MsgEnd:      msg[ne : 2*ne : 2*ne],
		NodeOrder:   make([][]appmodel.ProcID, m),
	}
	if cap(ws.nodeCount) < m {
		ws.nodeCount = make([]int, m)
	}
	counts := ws.nodeCount[:m]
	for j := range counts {
		counts[j] = 0
	}
	for _, j := range in.Mapping {
		counts[j]++
	}
	spine := ws.carveP(n)
	for j, off := 0, 0; j < m; j++ {
		s.NodeOrder[j] = spine[off : off : off+counts[j]]
		off += counts[j]
	}

	pred := ws.pred
	succ := ws.succ
	if cap(ws.unscheduled) < n {
		ws.unscheduled = make([]int, n)
		ws.pos = make([]int32, n)
	}
	unscheduled := ws.unscheduled[:n] // remaining predecessor count
	pos := ws.pos[:n]                 // index of each ready process in ready
	for pid := 0; pid < n; pid++ {
		unscheduled[pid] = len(pred[pid])
	}
	// ready is a queue over ws.ready[head:]; processes enter when their
	// last predecessor is scheduled and the best entry is popped each
	// iteration.
	ready := ws.ready[:0]
	head := 0
	for pid := 0; pid < n; pid++ {
		if unscheduled[pid] == 0 {
			pos[pid] = int32(len(ready))
			tr.readyStep[pid] = 0
			ready = append(ready, appmodel.ProcID(pid))
		}
	}

	nodeAvail := floats(&ws.nodeAvail, m)
	// maxRec[j] is the running max of (t + μ) over the processes already
	// scheduled on node j (the shared slack quantum).
	maxRec := floats(&ws.maxRec, m)
	// arrival[pid] is the time all inputs of pid are available at its
	// node (fault-free in the shared model; worst-case in the
	// per-process model).
	arrival := floats(&ws.arrival, n)

	// Absolute deadlines, used by the EDF tie-break in release mode.
	var absDeadline []float64
	if in.Release != nil {
		absDeadline = floats(&ws.absDeadline, n)
		for pid := 0; pid < n; pid++ {
			absDeadline[pid] = app.Graphs[ws.gi[pid]].Deadline
		}
	}

	scheduled := 0
	for head < len(ready) {
		// Select the next process to commit. The comparators below are
		// strict total orders (the final tie-break is the process ID), so
		// the winner is unique and a linear scan picks exactly the process
		// a full sort would put first.
		best := head
		if scheduled < replayUpTo {
			// Replay: the recorded pop is provably the live winner (see
			// trace); find it in the ready queue by position.
			best = int(pos[tr.popOrder[scheduled]])
		} else if in.Release == nil {
			// Highest priority first; ties by ID for determinism.
			for i := head + 1; i < len(ready); i++ {
				a, b := ready[i], ready[best]
				if prio[a] > prio[b] || (prio[a] == prio[b] && a < b) {
					best = i
				}
			}
		} else {
			// With release times, committing a high-priority but
			// not-yet-released job would idle its node (the list
			// scheduler is sequential-commit); pick the earliest
			// effective start instead, breaking ties by the earliest
			// absolute deadline (EDF, which keeps tight early jobs ahead
			// of long relaxed ones) and then by priority.
			est := func(p appmodel.ProcID) float64 {
				e := math.Max(arrival[p], nodeAvail[in.Mapping[p]])
				if in.Release[p] > e {
					e = in.Release[p]
				}
				return e
			}
			eb := est(ready[best])
			for i := head + 1; i < len(ready); i++ {
				a, b := ready[i], ready[best]
				ea := est(a)
				switch {
				case ea != eb:
					if ea < eb {
						best, eb = i, ea
					}
				case absDeadline[a] != absDeadline[b]:
					if absDeadline[a] < absDeadline[b] {
						best, eb = i, ea
					}
				case prio[a] != prio[b]:
					if prio[a] > prio[b] {
						best, eb = i, ea
					}
				case a < b:
					best, eb = i, ea
				}
			}
		}
		pid := ready[head]
		ready[head], ready[best] = ready[best], ready[head]
		pos[pid] = int32(best)
		pid = ready[head]
		pos[pid] = int32(head)
		tr.popOrder[scheduled] = pid
		head++
		j := in.Mapping[pid]

		start := math.Max(arrival[pid], nodeAvail[j])
		if in.Release != nil && in.Release[pid] > start {
			start = in.Release[pid]
		}
		finish := start + wcet[pid]
		s.Start[pid] = start
		s.Finish[pid] = finish
		s.NodeOrder[j] = append(s.NodeOrder[j], pid)

		rec := wcet[pid] + app.Procs[pid].Mu
		if in.Recovery != nil {
			rec = in.Recovery[pid]
		}
		if rec > maxRec[j] {
			maxRec[j] = rec
		}

		var worst float64
		switch in.Model {
		case SlackShared:
			worst = finish + float64(in.Ks[j])*maxRec[j]
			nodeAvail[j] = finish
		case SlackPerProcess:
			worst = finish + float64(in.Ks[j])*rec
			// Delays propagate: the node is busy until the process's own
			// re-executions could have completed.
			nodeAvail[j] = worst
		default:
			return nil, fmt.Errorf("sched: unknown slack model %d", in.Model)
		}
		s.WorstFinish[pid] = worst
		if worst > s.Length {
			s.Length = worst
		}

		// Release successors, propagating data availability.
		departure := finish
		if in.Model == SlackPerProcess {
			departure = worst
		}
		for _, e := range succ[pid] {
			var arr float64
			if in.Mapping[e.Dst] == j {
				arr = departure
			} else if bus != nil {
				mstart, mend := bus.Schedule(j, departure)
				s.MsgStart[e.ID] = mstart
				s.MsgEnd[e.ID] = mend
				arr = mend
			} else {
				arr = departure
			}
			if arr > arrival[e.Dst] {
				arrival[e.Dst] = arr
			}
			unscheduled[e.Dst]--
			if unscheduled[e.Dst] == 0 {
				pos[e.Dst] = int32(len(ready))
				tr.readyStep[e.Dst] = int32(scheduled + 1)
				ready = append(ready, e.Dst)
			}
		}
		scheduled++
	}
	ws.ready = ready[:0]
	if scheduled != n {
		return nil, fmt.Errorf("sched: scheduled %d of %d processes (cycle?)", scheduled, n)
	}
	if in.Release == nil {
		if cap(tr.prio) < n {
			tr.prio = make([]float64, n)
		}
		tr.prio = tr.prio[:n]
		copy(tr.prio, prio)
		tr.valid = true
	}
	return s, nil
}

// busSlotEstimate returns the edge weight used in the priority function
// for cross-node messages: one bus transmission. With no bus it is zero.
func busSlotEstimate(in Input) float64 {
	if in.Bus == nil {
		return 0
	}
	// Probe the bus once on a scratch basis: schedule from node 0 at time
	// 0 and reset. This yields the slot length for ttp.Bus and zero for
	// InstantBus.
	start, end := in.Bus.Schedule(0, 0)
	in.Bus.Reset()
	return end - start
}

// Schedulable reports whether every process completes, in the worst case,
// before the deadline of its graph.
func (s *Schedule) Schedulable(app *appmodel.Application) bool {
	gi := app.GraphOf()
	for pid := range s.WorstFinish {
		if s.WorstFinish[pid] > app.Graphs[gi[pid]].Deadline+1e-9 {
			return false
		}
	}
	return true
}
