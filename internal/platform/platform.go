// Package platform models the bus-based hardware architecture of the paper
// (Section 2): a set of computation nodes, each available in several
// hardened versions (h-versions) that trade cost and speed for
// reliability, connected by a fault-tolerant bus.
//
// For each h-version N_j^h the model stores the cost C_j^h, the worst-case
// execution time t_ijh of every process P_i on N_j^h, and the process
// failure probability p_ijh of a single execution of P_i on N_j^h. In the
// paper t comes from WCET analysis tools and p from fault-injection
// experiments; here they are supplied by the example definitions, the
// synthetic generator (internal/taskgen) or the fault-injection substrate
// (internal/faultsim).
package platform

import (
	"fmt"
	"math"

	"repro/internal/appmodel"
)

// NodeID identifies a computation node type, dense within a Platform.
type NodeID int

// HVersion is one hardened version N_j^h of a computation node.
type HVersion struct {
	// Level is the hardening level h, 1-based; level 1 is the
	// non-hardened version.
	Level int
	// Cost is the cost C_j^h of using this version.
	Cost float64
	// WCET[i] is t_ijh, the worst-case execution time in milliseconds of
	// process i on this version. Indexed by appmodel.ProcID.
	WCET []float64
	// FailProb[i] is p_ijh, the probability that a single execution of
	// process i on this version fails. Indexed by appmodel.ProcID.
	FailProb []float64
}

// Node is a computation node type with its available h-versions, ordered
// by ascending hardening level.
type Node struct {
	ID       NodeID
	Name     string
	Versions []HVersion
}

// MinLevel returns the lowest available hardening level (normally 1).
func (n *Node) MinLevel() int { return n.Versions[0].Level }

// MaxLevel returns the highest available hardening level.
func (n *Node) MaxLevel() int { return n.Versions[len(n.Versions)-1].Level }

// Version returns the h-version with the given level, or nil if the node
// has no such version.
func (n *Node) Version(level int) *HVersion {
	for i := range n.Versions {
		if n.Versions[i].Level == level {
			return &n.Versions[i]
		}
	}
	return nil
}

// Speed returns a scalar speed measure for ordering architectures: the
// inverse of the mean WCET over all processes at the minimum hardening
// level. Larger is faster.
func (n *Node) Speed() float64 {
	w := n.Versions[0].WCET
	var sum float64
	var cnt int
	for _, t := range w {
		if t > 0 {
			sum += t
			cnt++
		}
	}
	if cnt == 0 || sum == 0 {
		return 0
	}
	return float64(cnt) / sum
}

// Platform is the set of available computation node types plus the bus
// characteristics used to derive worst-case message transmission times.
type Platform struct {
	Nodes []Node
	Bus   BusSpec
}

// BusSpec characterizes the fault-tolerant communication bus (the paper
// assumes a TTP-like protocol, so communications themselves never fail and
// are described by worst-case transmission times only).
type BusSpec struct {
	// SlotLen is the length in milliseconds of one TDMA slot; each node
	// owns one slot per round and transmits at most one message per slot.
	SlotLen float64
	// MaxMsgBytes is the largest message that fits in one slot. Zero
	// means unlimited.
	MaxMsgBytes int
}

// Validate checks the structural invariants of the platform against an
// application with numProcs processes: dense node IDs, dense ascending
// hardening levels starting at the first version's level, table sizes,
// positive WCETs, failure probabilities in [0,1), cost strictly increasing
// and WCET non-decreasing and failure probability non-increasing with the
// hardening level (hardening costs money, degrades performance, improves
// reliability — Section 1).
func (p *Platform) Validate(numProcs int) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("platform: no computation nodes")
	}
	if p.Bus.SlotLen < 0 {
		return fmt.Errorf("platform: negative bus slot length %v", p.Bus.SlotLen)
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("platform: node %q has ID %d, want dense ID %d", n.Name, n.ID, i)
		}
		if len(n.Versions) == 0 {
			return fmt.Errorf("platform: node %q has no h-versions", n.Name)
		}
		for vi := range n.Versions {
			v := &n.Versions[vi]
			if v.Level != n.Versions[0].Level+vi {
				return fmt.Errorf("platform: node %q h-version %d has level %d, want dense ascending levels", n.Name, vi, v.Level)
			}
			if len(v.WCET) != numProcs || len(v.FailProb) != numProcs {
				return fmt.Errorf("platform: node %q level %d tables sized %d/%d, want %d", n.Name, v.Level, len(v.WCET), len(v.FailProb), numProcs)
			}
			if v.Cost <= 0 {
				return fmt.Errorf("platform: node %q level %d has non-positive cost %v", n.Name, v.Level, v.Cost)
			}
			for pid := 0; pid < numProcs; pid++ {
				if v.WCET[pid] <= 0 || math.IsNaN(v.WCET[pid]) || math.IsInf(v.WCET[pid], 0) {
					return fmt.Errorf("platform: node %q level %d WCET[%d] = %v, want positive finite", n.Name, v.Level, pid, v.WCET[pid])
				}
				if !(v.FailProb[pid] >= 0 && v.FailProb[pid] < 1) {
					return fmt.Errorf("platform: node %q level %d FailProb[%d] = %v, want in [0,1)", n.Name, v.Level, pid, v.FailProb[pid])
				}
			}
			if vi > 0 {
				prev := &n.Versions[vi-1]
				if v.Cost <= prev.Cost {
					return fmt.Errorf("platform: node %q cost not increasing at level %d", n.Name, v.Level)
				}
				for pid := 0; pid < numProcs; pid++ {
					if v.WCET[pid] < prev.WCET[pid] {
						return fmt.Errorf("platform: node %q WCET[%d] decreases at level %d", n.Name, pid, v.Level)
					}
					if v.FailProb[pid] > prev.FailProb[pid] {
						return fmt.Errorf("platform: node %q FailProb[%d] increases at level %d", n.Name, pid, v.Level)
					}
				}
			}
		}
	}
	return nil
}

// TransmissionTime returns the worst-case time in milliseconds to transmit
// a message of the given size over the bus, ignoring slot-table alignment
// (one slot per message). The TDMA scheduler in internal/ttp refines this
// with actual slot positions.
func (b BusSpec) TransmissionTime(e appmodel.Edge) float64 {
	return b.SlotLen
}

// MessageFits reports whether the message fits into one TDMA slot.
func (b BusSpec) MessageFits(e appmodel.Edge) bool {
	return b.MaxMsgBytes == 0 || e.Size <= b.MaxMsgBytes
}
