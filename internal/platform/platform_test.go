package platform

import (
	"math"
	"strings"
	"testing"

	"repro/internal/appmodel"
)

// twoNodePlatform builds a platform shaped like the paper's Fig. 1 nodes
// (values simplified) over 2 processes.
func twoNodePlatform() *Platform {
	return &Platform{
		Nodes: []Node{
			{
				ID:   0,
				Name: "N1",
				Versions: []HVersion{
					{Level: 1, Cost: 16, WCET: []float64{60, 75}, FailProb: []float64{1.2e-3, 1.3e-3}},
					{Level: 2, Cost: 32, WCET: []float64{75, 90}, FailProb: []float64{1.2e-5, 1.3e-5}},
				},
			},
			{
				ID:   1,
				Name: "N2",
				Versions: []HVersion{
					{Level: 1, Cost: 20, WCET: []float64{50, 50}, FailProb: []float64{1e-3, 1.2e-3}},
					{Level: 2, Cost: 40, WCET: []float64{60, 60}, FailProb: []float64{1e-5, 1.2e-5}},
				},
			},
		},
		Bus: BusSpec{SlotLen: 5},
	}
}

func TestValidateOK(t *testing.T) {
	p := twoNodePlatform()
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Platform)
		want   string
	}{
		{"no nodes", func(p *Platform) { p.Nodes = nil }, "no computation nodes"},
		{"bad node id", func(p *Platform) { p.Nodes[1].ID = 5 }, "dense ID"},
		{"no versions", func(p *Platform) { p.Nodes[0].Versions = nil }, "no h-versions"},
		{"level gap", func(p *Platform) { p.Nodes[0].Versions[1].Level = 3 }, "dense ascending levels"},
		{"table size", func(p *Platform) { p.Nodes[0].Versions[0].WCET = []float64{1} }, "tables sized"},
		{"zero cost", func(p *Platform) { p.Nodes[0].Versions[0].Cost = 0 }, "non-positive cost"},
		{"zero wcet", func(p *Platform) { p.Nodes[0].Versions[0].WCET[0] = 0 }, "positive finite"},
		{"nan wcet", func(p *Platform) { p.Nodes[0].Versions[0].WCET[0] = math.NaN() }, "positive finite"},
		{"prob one", func(p *Platform) { p.Nodes[0].Versions[0].FailProb[0] = 1 }, "in [0,1)"},
		{"prob negative", func(p *Platform) { p.Nodes[0].Versions[0].FailProb[0] = -0.1 }, "in [0,1)"},
		{"cost not increasing", func(p *Platform) { p.Nodes[0].Versions[1].Cost = 16 }, "cost not increasing"},
		{"wcet decreasing", func(p *Platform) { p.Nodes[0].Versions[1].WCET[0] = 10 }, "WCET[0] decreases"},
		{"prob increasing", func(p *Platform) { p.Nodes[0].Versions[1].FailProb[0] = 0.5 }, "FailProb[0] increases"},
		{"negative slot", func(p *Platform) { p.Bus.SlotLen = -1 }, "negative bus slot"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := twoNodePlatform()
			c.mutate(p)
			err := p.Validate(2)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestNodeVersionLookup(t *testing.T) {
	p := twoNodePlatform()
	n := &p.Nodes[0]
	if v := n.Version(2); v == nil || v.Cost != 32 {
		t.Errorf("Version(2) = %+v", v)
	}
	if v := n.Version(9); v != nil {
		t.Errorf("Version(9) = %+v, want nil", v)
	}
	if n.MinLevel() != 1 || n.MaxLevel() != 2 {
		t.Errorf("levels = %d..%d", n.MinLevel(), n.MaxLevel())
	}
}

func TestNodeSpeed(t *testing.T) {
	p := twoNodePlatform()
	// N2 is faster (mean WCET 50 vs 67.5).
	if !(p.Nodes[1].Speed() > p.Nodes[0].Speed()) {
		t.Errorf("N2 should be faster: %v vs %v", p.Nodes[1].Speed(), p.Nodes[0].Speed())
	}
	empty := Node{Versions: []HVersion{{Level: 1, Cost: 1}}}
	if empty.Speed() != 0 {
		t.Errorf("empty node speed = %v, want 0", empty.Speed())
	}
}

func TestArchitectureCostAndLevels(t *testing.T) {
	p := twoNodePlatform()
	ar := NewArchitecture([]*Node{&p.Nodes[0], &p.Nodes[1]})
	if ar.Cost() != 36 {
		t.Errorf("min cost = %v, want 36", ar.Cost())
	}
	ar.SetMaxHardening()
	if ar.Cost() != 72 {
		t.Errorf("max cost = %v, want 72", ar.Cost())
	}
	if ar.MinCost() != 36 {
		t.Errorf("MinCost = %v, want 36", ar.MinCost())
	}
	if ar.CanRaise(0) {
		t.Error("at max level, CanRaise should be false")
	}
	if !ar.CanLower(0) {
		t.Error("at max level, CanLower should be true")
	}
	ar.SetMinHardening()
	if !ar.CanRaise(0) || ar.CanLower(0) {
		t.Error("at min level, CanRaise true / CanLower false expected")
	}
	if got := ar.String(); !strings.Contains(got, "N1^1") || !strings.Contains(got, "cost=36") {
		t.Errorf("String = %q", got)
	}
}

func TestArchitectureClone(t *testing.T) {
	p := twoNodePlatform()
	ar := NewArchitecture([]*Node{&p.Nodes[0], &p.Nodes[1]})
	cp := ar.Clone()
	cp.Levels[0] = 2
	if ar.Levels[0] != 1 {
		t.Error("Clone shares Levels storage")
	}
	if cp.Nodes[0] != ar.Nodes[0] {
		t.Error("Clone should share node pointers")
	}
}

func TestEnumeratorOrder(t *testing.T) {
	p := twoNodePlatform()
	e := NewEnumerator(p)
	if e.MaxNodes() != 2 {
		t.Fatalf("MaxNodes = %d", e.MaxNodes())
	}
	// Size-1 architectures: fastest (N2) first.
	if e.Count(1) != 2 {
		t.Fatalf("Count(1) = %d", e.Count(1))
	}
	first := e.Arch(1, 0)
	if first.Nodes[0].Name != "N2" {
		t.Errorf("fastest 1-node arch = %s, want N2", first.Nodes[0].Name)
	}
	second := e.Arch(1, 1)
	if second.Nodes[0].Name != "N1" {
		t.Errorf("second 1-node arch = %s, want N1", second.Nodes[0].Name)
	}
	if e.Arch(1, 2) != nil {
		t.Error("out-of-range Arch should be nil")
	}
	if e.Count(2) != 1 || e.Arch(2, 0) == nil {
		t.Error("one 2-node architecture expected")
	}
	if e.Arch(3, 0) != nil || e.Arch(0, 0) != nil {
		t.Error("invalid sizes should yield nil")
	}
	// Architectures come out at minimum hardening.
	if lv := e.Arch(2, 0).Levels; lv[0] != 1 || lv[1] != 1 {
		t.Errorf("levels = %v, want min", lv)
	}
}

func TestBusSpec(t *testing.T) {
	b := BusSpec{SlotLen: 5, MaxMsgBytes: 16}
	e := appmodel.Edge{Size: 8}
	if b.TransmissionTime(e) != 5 {
		t.Errorf("TransmissionTime = %v", b.TransmissionTime(e))
	}
	if !b.MessageFits(e) {
		t.Error("8-byte message should fit in 16-byte slot")
	}
	if b.MessageFits(appmodel.Edge{Size: 32}) {
		t.Error("32-byte message should not fit")
	}
	if !(BusSpec{SlotLen: 5}).MessageFits(appmodel.Edge{Size: 1 << 20}) {
		t.Error("unlimited slot should fit anything")
	}
}
