package platform

import (
	"fmt"
	"sort"
	"strings"
)

// Architecture is a selected subset of the platform's node types together
// with a chosen hardening level for each — the "AR" of the design strategy
// (Fig. 5). The design heuristics mutate Levels; Nodes is fixed for a given
// architecture candidate.
type Architecture struct {
	// Nodes are pointers into the Platform's node set, in a fixed order;
	// processes are mapped to indices of this slice.
	Nodes []*Node
	// Levels[j] is the hardening level currently selected for Nodes[j].
	Levels []int
}

// NewArchitecture returns an architecture over the given nodes with every
// node at its minimum hardening level.
func NewArchitecture(nodes []*Node) *Architecture {
	ar := &Architecture{Nodes: nodes, Levels: make([]int, len(nodes))}
	ar.SetMinHardening()
	return ar
}

// Clone returns a deep copy (the node pointers are shared; levels are
// copied).
func (ar *Architecture) Clone() *Architecture {
	cp := &Architecture{Nodes: make([]*Node, len(ar.Nodes)), Levels: make([]int, len(ar.Levels))}
	copy(cp.Nodes, ar.Nodes)
	copy(cp.Levels, ar.Levels)
	return cp
}

// SetMinHardening resets every node to its minimum hardening level
// (Fig. 5 line 5).
func (ar *Architecture) SetMinHardening() {
	for j, n := range ar.Nodes {
		ar.Levels[j] = n.MinLevel()
	}
}

// SetMaxHardening sets every node to its maximum hardening level (the MAX
// baseline strategy of Section 7).
func (ar *Architecture) SetMaxHardening() {
	for j, n := range ar.Nodes {
		ar.Levels[j] = n.MaxLevel()
	}
}

// Version returns the currently selected h-version of node j.
func (ar *Architecture) Version(j int) *HVersion {
	return ar.Nodes[j].Version(ar.Levels[j])
}

// Cost returns the total cost of the selected h-versions (the objective
// minimized by the design strategy).
func (ar *Architecture) Cost() float64 {
	var c float64
	for j := range ar.Nodes {
		c += ar.Version(j).Cost
	}
	return c
}

// MinCost returns the cost of the architecture with all nodes at minimum
// hardening — the lower bound used for pruning (Fig. 5 line 6).
func (ar *Architecture) MinCost() float64 {
	var c float64
	for _, n := range ar.Nodes {
		c += n.Version(n.MinLevel()).Cost
	}
	return c
}

// Speed returns the summed node speeds, the measure by which the design
// strategy orders candidate architectures ("fastest" first).
func (ar *Architecture) Speed() float64 {
	var s float64
	for _, n := range ar.Nodes {
		s += n.Speed()
	}
	return s
}

// CanRaise reports whether node j has a higher hardening level available.
func (ar *Architecture) CanRaise(j int) bool {
	return ar.Levels[j] < ar.Nodes[j].MaxLevel()
}

// CanLower reports whether node j has a lower hardening level available.
func (ar *Architecture) CanLower(j int) bool {
	return ar.Levels[j] > ar.Nodes[j].MinLevel()
}

// String renders the architecture as e.g. "{N1^2, N2^2} cost=72".
func (ar *Architecture) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for j, n := range ar.Nodes {
		if j > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s^%d", n.Name, ar.Levels[j])
	}
	fmt.Fprintf(&sb, "} cost=%g", ar.Cost())
	return sb.String()
}

// Enumerator yields the candidate architectures of a platform in the order
// explored by DesignStrategy: for each node count n, all size-n subsets of
// the available node types, fastest (largest summed speed) first.
type Enumerator struct {
	platform *Platform
	// subsets[n] caches the ordered subsets of size n (as index slices).
	subsets map[int][][]int
}

// NewEnumerator returns an Enumerator over the platform's nodes.
func NewEnumerator(p *Platform) *Enumerator {
	return &Enumerator{platform: p, subsets: make(map[int][][]int)}
}

// MaxNodes returns the number of available node types |N|.
func (e *Enumerator) MaxNodes() int { return len(e.platform.Nodes) }

// Count returns the number of size-n architectures.
func (e *Enumerator) Count(n int) int { return len(e.ordered(n)) }

// Arch returns the i-th fastest architecture with n nodes (i is 0-based),
// at minimum hardening, or nil when i is out of range. Arch(n, 0)
// implements SelectArch(N, n); successive i implement SelectNextArch.
func (e *Enumerator) Arch(n, i int) *Architecture {
	subs := e.ordered(n)
	if i < 0 || i >= len(subs) {
		return nil
	}
	nodes := make([]*Node, n)
	for j, idx := range subs[i] {
		nodes[j] = &e.platform.Nodes[idx]
	}
	return NewArchitecture(nodes)
}

func (e *Enumerator) ordered(n int) [][]int {
	if subs, ok := e.subsets[n]; ok {
		return subs
	}
	if n < 1 || n > len(e.platform.Nodes) {
		e.subsets[n] = nil
		return nil
	}
	var subs [][]int
	cur := make([]int, 0, n)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == n {
			subs = append(subs, append([]int(nil), cur...))
			return
		}
		for i := start; i < len(e.platform.Nodes); i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	speed := func(sub []int) float64 {
		var s float64
		for _, idx := range sub {
			s += e.platform.Nodes[idx].Speed()
		}
		return s
	}
	sort.SliceStable(subs, func(a, b int) bool { return speed(subs[a]) > speed(subs[b]) })
	e.subsets[n] = subs
	return subs
}
