// Package faultject is a test-only failpoint registry for injecting
// storage faults — ENOSPC, short writes, torn renames, and mid-write
// SIGKILL — at named points in the persistence layer (runstate journal
// appends, shard manifest and lease installs, evalcache saves).
//
// Failpoints are disarmed by default and the disarmed fast path is a
// single atomic load, so production code can consult them unconditionally.
// Arm points either programmatically (Arm, from tests) or through the
// FTES_FAULTS environment variable (from chaos harnesses that drive real
// subprocesses):
//
//	FTES_FAULTS="runstate.append=kill:every=7;evalcache.save=torn:after=1"
//
// Each clause is point=kind with optional :key=value triggers:
//
//	after=N  fire on the Nth hit of the point (once)
//	every=N  fire on every Nth hit
//	times=K  fire at most K times (with every=)
//	p=F      fire with probability F per hit, deterministic by seed
//	seed=S   seed for p= draws (default 1)
//
// With no trigger options the rule fires on every hit. All triggers are
// deterministic: counters by construction, probabilities by seeded PRNG,
// so a chaos run replays identically.
package faultject

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Fault kinds understood by the hook sites.
const (
	KindENOSPC     = "enospc" // the write fails with syscall.ENOSPC
	KindShortWrite = "short"  // half the bytes land, then io.ErrShortWrite
	KindTornRename = "torn"   // the rename publishes truncated content
	KindKill       = "kill"   // half the bytes land, then SIGKILL self
)

// Fault describes one injected fault at a hook site.
type Fault struct {
	Point string
	Kind  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultject: injected %s at %s", f.Kind, f.Point)
}

type rule struct {
	kind  string
	after int     // fire once on the Nth hit (1-based)
	every int     // fire on every Nth hit
	times int     // cap on fires (0 = unlimited)
	prob  float64 // per-hit probability (0 = counter-driven)
	rng   *rand.Rand

	hits  int
	fired int
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	rules map[string]*rule
)

func init() {
	if spec := os.Getenv("FTES_FAULTS"); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultject: ignoring FTES_FAULTS: %v\n", err)
		}
	}
}

// Enabled reports whether any failpoint is armed. The disarmed path is a
// single atomic load.
func Enabled() bool { return armed.Load() }

// Arm parses a failpoint spec (see package doc) and arms its points,
// replacing any rule already armed at the same point.
func Arm(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, rest, ok := strings.Cut(clause, "=")
		if !ok || point == "" {
			return fmt.Errorf("faultject: clause %q is not point=kind", clause)
		}
		parts := strings.Split(rest, ":")
		r := &rule{kind: parts[0]}
		switch r.kind {
		case KindENOSPC, KindShortWrite, KindTornRename, KindKill:
		default:
			return fmt.Errorf("faultject: unknown fault kind %q at %s", r.kind, point)
		}
		seed := int64(1)
		for _, opt := range parts[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("faultject: option %q at %s is not key=value", opt, point)
			}
			switch k {
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return fmt.Errorf("faultject: bad after=%q at %s", v, point)
				}
				r.after = n
			case "every":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return fmt.Errorf("faultject: bad every=%q at %s", v, point)
				}
				r.every = n
			case "times":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return fmt.Errorf("faultject: bad times=%q at %s", v, point)
				}
				r.times = n
			case "p":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p < 0 || p > 1 {
					return fmt.Errorf("faultject: bad p=%q at %s", v, point)
				}
				r.prob = p
			case "seed":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return fmt.Errorf("faultject: bad seed=%q at %s", v, point)
				}
				seed = n
			default:
				return fmt.Errorf("faultject: unknown option %q at %s", k, point)
			}
		}
		if r.prob > 0 {
			r.rng = rand.New(rand.NewSource(seed))
		}
		if rules == nil {
			rules = make(map[string]*rule)
		}
		rules[point] = r
	}
	armed.Store(len(rules) > 0)
	return nil
}

// Reset disarms every failpoint and clears all hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	rules = nil
	armed.Store(false)
}

// Fire consults the failpoint named point and returns the fault to
// inject, or nil when the point is disarmed or its trigger does not
// match this hit. Callers should gate on Enabled() first to keep the
// common path allocation- and lock-free.
func Fire(point string) *Fault {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	r, ok := rules[point]
	if !ok {
		return nil
	}
	r.hits++
	if r.times > 0 && r.fired >= r.times {
		return nil
	}
	fire := false
	switch {
	case r.after > 0:
		fire = r.hits == r.after
	case r.every > 0:
		fire = r.hits%r.every == 0
	case r.prob > 0:
		fire = r.rng.Float64() < r.prob
	default:
		fire = true
	}
	if !fire {
		return nil
	}
	r.fired++
	return &Fault{Point: point, Kind: r.kind}
}
