//go:build !unix

package faultject

import "os"

// Kill terminates the current process abruptly. Non-unix fallback: exit
// with the conventional 128+9 status supervisors map to SIGKILL.
func Kill() {
	os.Exit(137)
}
