//go:build unix

package faultject

import (
	"os"
	"syscall"
)

// Kill terminates the current process with SIGKILL, simulating a power
// cut or OOM kill at the exact instruction the failpoint fired. Used by
// KindKill hook sites after landing a torn write.
func Kill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL is not maskable; if we are somehow still here, hard-exit
	// with the conventional 128+9 status so supervisors see a kill.
	os.Exit(137)
}
