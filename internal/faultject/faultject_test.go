package faultject

import (
	"strings"
	"testing"
)

// TestArmGrammar: malformed specs are rejected with an error naming the
// bad clause; valid specs arm.
func TestArmGrammar(t *testing.T) {
	t.Cleanup(Reset)
	bad := []struct{ spec, want string }{
		{"nonsense", "point=kind"},
		{"p=explode", "unknown fault kind"},
		{"runstate.append=vaporize", "unknown fault kind"},
		{"runstate.append=kill:after=0", "bad after"},
		{"runstate.append=kill:every=x", "bad every"},
		{"runstate.append=kill:times=-1", "bad times"},
		{"runstate.append=kill:p=1.5", "bad p"},
		{"runstate.append=kill:seed=abc", "bad seed"},
		{"runstate.append=kill:wat=1", "unknown option"},
		{"runstate.append=kill:after", "key=value"},
	}
	for _, tc := range bad {
		Reset()
		if err := Arm(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Arm(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
	Reset()
	if Enabled() {
		t.Fatal("Enabled after Reset")
	}
	if err := Arm("a.b=enospc; c.d=torn:after=2 ;;"); err != nil {
		t.Fatalf("Arm valid spec: %v", err)
	}
	if !Enabled() {
		t.Error("not Enabled after valid Arm")
	}
}

// TestFireAfter: after=N fires exactly once, on the Nth hit.
func TestFireAfter(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if err := Arm("p=enospc:after=3"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for hit := 1; hit <= 6; hit++ {
		if f := Fire("p"); f != nil {
			fired = append(fired, hit)
			if f.Kind != KindENOSPC || f.Point != "p" {
				t.Errorf("fault = %+v, want enospc at p", f)
			}
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("after=3 fired at hits %v, want [3]", fired)
	}
}

// TestFireEveryTimes: every=N fires periodically, capped by times=K.
func TestFireEveryTimes(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if err := Arm("p=short:every=2:times=2"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for hit := 1; hit <= 8; hit++ {
		if Fire("p") != nil {
			fired = append(fired, hit)
		}
	}
	if want := []int{2, 4}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("every=2:times=2 fired at hits %v, want %v", fired, want)
	}
}

// TestFireDefaultAndUnknownPoint: a rule with no trigger options fires on
// every hit; unarmed points never fire; Reset disarms.
func TestFireDefaultAndUnknownPoint(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if err := Arm("p=torn"); err != nil {
		t.Fatal(err)
	}
	for hit := 0; hit < 3; hit++ {
		if Fire("p") == nil {
			t.Fatal("optionless rule should fire every hit")
		}
	}
	if Fire("other.point") != nil {
		t.Error("unarmed point fired")
	}
	Reset()
	if Fire("p") != nil {
		t.Error("fired after Reset")
	}
}

// TestFireProbabilitySeeded: p= draws are deterministic for a fixed seed.
func TestFireProbabilitySeeded(t *testing.T) {
	t.Cleanup(Reset)
	run := func() []int {
		Reset()
		if err := Arm("p=kill:p=0.5:seed=42"); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for hit := 1; hit <= 32; hit++ {
			if Fire("p") != nil {
				fired = append(fired, hit)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 32 {
		t.Errorf("p=0.5 over 32 hits fired %d times; suspicious", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("replays differ in count: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays diverge: %v vs %v", a, b)
		}
	}
}
