package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fsatomic"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/runstate"
	"repro/internal/shard"
)

// sweepBaseID is the identity every slice of one sharded sweep shares:
// the fingerprint of the spec with its shard coordinates zeroed out.
func sweepBaseID(spec Spec) (string, error) {
	spec.ShardIndex, spec.ShardCount = 0, 0
	return spec.Fingerprint()
}

// sweepDir returns the shard directory of spec's sweep under the
// scheduler's state dir.
func (s *Scheduler) sweepDir(spec Spec) (string, error) {
	base, err := sweepBaseID(spec)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.opts.Dir, "sweep-"+base), nil
}

// openShardJournal installs (or verifies) the sweep's manifest and opens
// the slice's per-shard journal, resuming any rows an earlier attempt of
// the same slice already completed. The journal fingerprint binds the
// file to its exact (workload, shard index, shard count) coordinates.
func (s *Scheduler) openShardJournal(spec Spec) (*runstate.Journal, error) {
	dir, err := s.sweepDir(spec)
	if err != nil {
		return nil, err
	}
	fp, err := shard.WorkloadFingerprint(spec.Apps, spec.Procs, spec.Seed)
	if err != nil {
		return nil, err
	}
	m := shard.Manifest{FP: fp, Fig: spec.Fig, Shards: spec.ShardCount,
		Apps: spec.Apps, Procs: spec.Procs, Seed: spec.Seed}
	if err := shard.EnsureManifest(dir, m); err != nil {
		return nil, err
	}
	return runstate.Open(
		filepath.Join(dir, shard.JournalName(spec.ShardIndex, spec.ShardCount)),
		shard.JournalFingerprint(fp, spec.ShardIndex, spec.ShardCount), true)
}

// ShardedHandle is the coordinator's reference to a sharded sweep: the
// fan-out of per-shard jobs plus the merge that runs once every shard
// completes. Artifacts and error are immutable once Done closes.
type ShardedHandle struct {
	s      *Scheduler
	baseID string
	dir    string
	spec   Spec // base spec, shard coordinates zeroed
	so     SubmitOptions
	shards []*Handle
	inst   Instruments
	// sweepSpan is the coordinator's span covering the whole sweep; every
	// slice's trace reconnects under it (via SubmitOptions.TraceParent)
	// when the merged ArtifactTrace is stitched.
	sweepSpan *obs.Span

	artifacts Artifacts
	err       error
	done      chan struct{}
}

// ID returns the sweep's identity (the base spec's fingerprint, shared by
// every slice).
func (h *ShardedHandle) ID() string { return h.baseID }

// Dir returns the sweep's shard directory (manifest + per-shard journals).
func (h *ShardedHandle) Dir() string { return h.dir }

// Shards returns the per-shard job handles in shard order.
func (h *ShardedHandle) Shards() []*Handle {
	out := make([]*Handle, len(h.shards))
	copy(out, h.shards)
	return out
}

// Instruments returns the coordinator's observability hooks; the
// "shard.workers" progress phase tracks global sweep completion there.
func (h *ShardedHandle) Instruments() Instruments { return h.inst }

// Done returns a channel closed when the sweep (workers + merge) finishes.
func (h *ShardedHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the merge finishes or ctx is canceled, returning the
// merged ArtifactTable byte-identical to a single-process run.
func (h *ShardedHandle) Wait(ctx context.Context) (Artifacts, error) {
	if ctx != nil {
		select {
		case <-h.done:
		case <-ctx.Done():
			return nil, runctl.Err(ctx)
		}
	} else {
		<-h.done
	}
	return h.artifacts, h.err
}

// SubmitSharded fans a shardable figure sweep out over the given number
// of shards — one content-addressed job per slice, all sharing the
// sweep's shard directory under the scheduler's state dir — and merges
// the per-shard journals into the final table when the last worker
// finishes. The per-shard jobs ride the normal queue (tenant fair-share
// and priorities apply slice by slice, so a wide sweep cannot starve
// other tenants), and each slice resumes its own journal, so killed and
// resubmitted workers pick up where they died.
func (s *Scheduler) SubmitSharded(spec Spec, shards int, so SubmitOptions) (*ShardedHandle, error) {
	if spec.Kind == "" {
		spec.Kind = KindFigure
	}
	if spec.Kind != KindFigure {
		return nil, fmt.Errorf("jobs: only figure jobs shard, not %s", spec.Kind)
	}
	if shards < 2 {
		return nil, fmt.Errorf("jobs: sharded sweep needs at least 2 shards, got %d (submit normally instead)", shards)
	}
	if spec.ShardIndex != 0 || spec.ShardCount != 0 {
		return nil, fmt.Errorf("jobs: SubmitSharded assigns the shard coordinates itself; spec already carries %d/%d", spec.ShardIndex, spec.ShardCount)
	}
	if s.opts.Dir == "" {
		return nil, errors.New("jobs: sharded sweeps need a durable scheduler (Options.Dir) for the shard directory")
	}
	if so.RowJournal != nil {
		return nil, errors.New("jobs: sharded sweeps own their per-shard journals; SubmitOptions.RowJournal must be nil")
	}
	slice0 := spec
	slice0.ShardIndex, slice0.ShardCount = 0, shards
	if err := slice0.Validate(); err != nil {
		return nil, err
	}

	baseID, err := sweepBaseID(spec)
	if err != nil {
		return nil, err
	}
	dir, err := s.sweepDir(spec)
	if err != nil {
		return nil, err
	}
	h := &ShardedHandle{s: s, baseID: baseID, dir: dir, spec: spec, done: make(chan struct{})}
	if so.Obs != nil {
		h.inst = *so.Obs
	} else {
		h.inst = Instruments{
			Tracer:   obs.NewTracer(),
			Metrics:  obs.NewRegistry(),
			Progress: obs.NewProgress(),
			Log:      s.log,
		}
		h.inst.Tracer.SetProcessLabel("coordinator")
	}
	if h.inst.Events == nil {
		h.inst.Events = s.events.Scoped(baseID)
	}
	// The sweep span brackets the whole fan-out; its reference rides into
	// every slice as the trace parent, so the merged trace is one tree.
	// sweep.submitted lands before any slice job so the journal always
	// orders it ahead of the slices' own lifecycle events.
	h.sweepSpan = h.inst.Tracer.Start("sweep."+spec.Fig, obs.Int("shards", shards))
	so.TraceParent = h.sweepSpan.Ref()
	h.so = so
	s.events.Emit("sweep.submitted", baseID, map[string]any{"fig": spec.Fig, "shards": shards})
	for i := 0; i < shards; i++ {
		sl := spec
		sl.ShardIndex, sl.ShardCount = i, shards
		sh, err := s.Submit(sl, so)
		if err != nil {
			for _, prev := range h.shards {
				s.Cancel(prev.ID())
			}
			h.sweepSpan.End()
			s.events.Emit("sweep.failed", baseID, map[string]any{"error": err.Error()})
			return nil, fmt.Errorf("jobs: submit shard %d/%d: %w", i, shards, err)
		}
		h.shards = append(h.shards, sh)
	}
	s.log.Info("sharded sweep submitted", "sweep", baseID, "fig", spec.Fig, "shards", shards, "dir", dir)
	go h.run(so.Context)
	return h, nil
}

// run supervises the sweep: it waits for every shard worker, ticking the
// coordinator's global "shard.workers" phase, and acts as the sweep
// watchdog — a slice that fails under a stale lease held by another
// (dead) process is resubmitted rather than counted against the sweep,
// because its journal resumes and the re-run recomputes only what the
// dead worker never journaled. Slices whose failures stand fail the
// sweep (with every slice's error reported) and the merge is not
// attempted — an incomplete sweep can only ever fail loudly, never
// silently produce a table; -merge -partial is the explicit opt-in.
func (h *ShardedHandle) run(parent context.Context) {
	defer close(h.done)
	ph := h.inst.Progress.Phase("shard.workers")
	n := len(h.shards)
	ph.SetTotal(int64(n))
	ctx := parent
	if ctx == nil {
		ctx = context.Background()
	}

	// slices holds the current incarnation of each slice job; healSlice
	// swaps in replacements. credited remembers which slices already
	// ticked the progress phase (a healed slice only counts once).
	slices := make([]*Handle, n)
	copy(slices, h.shards)
	credited := make([]bool, n)

	// Fan-in: any slice finishing (or being replaced) pokes the wake
	// channel; the lease watchdog additionally scans on a timer so a
	// foreign worker dying without finishing anything still gets noticed.
	wake := make(chan struct{}, 1)
	poke := func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
	watch := func(c <-chan struct{}) { go func() { <-c; poke() }() }
	for _, sh := range slices {
		watch(sh.Done())
	}
	poll := h.s.opts.leaseStale() / 4
	if poll < 100*time.Millisecond {
		poll = 100 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	ctxDone := ctx.Done()
	for {
		settled := 0
		var errs []error
		for i, sh := range slices {
			select {
			case <-sh.Done():
			default:
				continue
			}
			_, err := sh.Wait(nil)
			if err == nil {
				settled++
				if !credited[i] {
					credited[i] = true
					ph.Add(1)
				}
				continue
			}
			if nh := h.healSlice(i, sh, err); nh != nil {
				slices[i] = nh
				watch(nh.Done())
				continue
			}
			settled++
			errs = append(errs, fmt.Errorf("shard %d/%d (job %s): %w", i, n, sh.ID(), err))
		}
		if settled == n {
			if len(errs) > 0 {
				h.sweepSpan.End()
				h.err = fmt.Errorf("jobs: sharded sweep %s: %w", h.baseID, errors.Join(errs...))
				h.s.events.Emit("sweep.failed", h.baseID, map[string]any{"error": h.err.Error()})
				return
			}
			break
		}
		select {
		case <-ctxDone:
			// The parent cancel reaches every slice directly; stop
			// selecting on the closed channel and let them settle.
			ctxDone = nil
		case <-wake:
		case <-ticker.C:
		}
	}
	ph.Done()
	h.inst.Log.Info("sharded sweep merging", "sweep", h.baseID, "dir", h.dir)
	h.artifacts, h.err = MergeShards(ctx, h.spec, h.dir, h.inst)
	h.sweepSpan.End()
	if h.err != nil {
		h.s.events.Emit("sweep.failed", h.baseID, map[string]any{"error": h.err.Error()})
		return
	}
	if data := h.mergedTrace(); data != nil {
		h.artifacts[ArtifactTrace] = data
	}
	h.s.events.Emit("sweep.merged", h.baseID, map[string]any{
		"fig": h.spec.Fig, "shards": len(h.shards),
	})
}

// healSlice is the watchdog's verdict on one failed slice: when the
// slice's lease file stopped heartbeating longer than the staleness
// threshold ago and belongs to another process, the worker that held the
// slice died (SIGKILL, OOM, power cut) and the failure — typically a
// journal still flock-held at open time, or a torn write — is
// environmental, not the spec's fault. The slice is then resubmitted (a
// quarantined slice goes through Retry, re-opening its budget) and the
// replacement handle returned; its journal resumes, so re-execution is
// byte-identical. Any other failure returns nil: the error stands.
func (h *ShardedHandle) healSlice(i int, old *Handle, cause error) *Handle {
	if errors.Is(cause, runctl.ErrCanceled) {
		return nil // canceled or interrupted, not dead — never resubmit
	}
	stale, info := shard.LeaseStale(h.dir, i, len(h.shards), h.s.opts.leaseStale())
	if !stale || info.PID == os.Getpid() {
		return nil
	}
	h.s.events.Emit("watchdog.stale", h.baseID, map[string]any{
		"shard": i, "pid": info.PID, "attempt": info.Attempt,
	})
	// Reap the dead worker's lease so one stale file cannot justify a
	// second resubmission of the same slice.
	os.Remove(filepath.Join(h.dir, shard.LeaseName(i, len(h.shards))))

	var (
		nh  *Handle
		err error
	)
	if old.Status().State == StateQuarantined {
		nh, err = h.s.Retry(old.ID())
	} else {
		sl := h.spec
		sl.ShardIndex, sl.ShardCount = i, len(h.shards)
		nh, err = h.s.Submit(sl, h.so)
	}
	if err != nil {
		h.inst.Log.Error("slice resubmit failed", "sweep", h.baseID, "shard", i, "err", err.Error())
		return nil
	}
	h.s.log.Info("slice resubmitted by watchdog", "sweep", h.baseID, "shard", i, "job", nh.ID(), "dead_pid", info.PID)
	h.s.events.Emit("sweep.resubmitted", h.baseID, map[string]any{
		"shard": i, "job": nh.ID(), "cause": cause.Error(),
	})
	return nh
}

// mergedTrace stitches the coordinator's trace with every worker trace
// snapshot found in the shard directory into one cross-process Chrome
// trace. Best-effort and observation-only: a missing snapshot (a worker
// that ran before tracing existed, or a copy that lost a file) narrows
// the merge rather than failing the sweep, and with no coordinator
// tracer and no snapshots at all there is no artifact.
func (h *ShardedHandle) mergedTrace() []byte {
	var inputs []obs.TraceData
	if h.inst.Tracer != nil {
		inputs = append(inputs, h.inst.Tracer.TraceData())
	}
	for i := 0; i < len(h.shards); i++ {
		td, err := obs.ReadTraceFile(filepath.Join(h.dir, shard.TraceName(i, len(h.shards))))
		if err != nil {
			if !os.IsNotExist(err) {
				h.inst.Log.Error("worker trace unreadable", "sweep", h.baseID, "shard", i, "err", err.Error())
			}
			continue
		}
		inputs = append(inputs, td)
	}
	if len(inputs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := obs.MergeTraces(&buf, inputs...); err != nil {
		h.inst.Log.Error("trace merge failed", "sweep", h.baseID, "err", err.Error())
		return nil
	}
	return buf.Bytes()
}

// writeShardTrace snapshots a slice job's trace into its sweep's shard
// directory under shard.TraceName, atomically (temp file + rename) so a
// concurrent merge never reads a half-written snapshot. A re-run slice
// overwrites its previous snapshot.
func (s *Scheduler) writeShardTrace(j *Job) error {
	tr := j.obs.Tracer
	if tr == nil {
		return nil
	}
	dir, err := s.sweepDir(j.spec)
	if err != nil {
		return err
	}
	dst := filepath.Join(dir, shard.TraceName(j.spec.ShardIndex, j.spec.ShardCount))
	return fsatomic.Install(dst, tr.WriteChromeTrace)
}
