package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultject"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/runstate"
	"repro/internal/shard"
)

// plantStaleLease writes a lease file for one slice as if another process
// heartbeat it once and then died: the payload carries the given PID and
// the file's mtime is backdated far past any staleness threshold.
func plantStaleLease(t *testing.T, dir string, index, shards, pid int) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(shard.LeaseInfo{PID: pid, Index: index, Shards: shards, Attempt: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shard.LeaseName(index, shards))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

// eventsOf returns the log's events of one type, in order.
func eventsOf(events *obs.EventLog, typ string) []obs.LogEvent {
	var out []obs.LogEvent
	for _, ev := range events.Events(0) {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

// TestWatchdogResubmitsStaleSlice: a slice that fails while its lease file
// is stale and owned by a dead foreign process is resubmitted by the sweep
// watchdog, and the healed sweep still merges byte-identical to a clean
// unsharded run. The failure is injected at the shard.manifest failpoint
// (one ENOSPC, first slice to run), so only slice 0 ever dies.
func TestWatchdogResubmitsStaleSlice(t *testing.T) {
	clean := newTestScheduler(t, Options{Workers: 1})
	want, err := mustSubmit(t, clean, tinyFigSpec(), SubmitOptions{}).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	events := obs.NewEventLog()
	s := newTestScheduler(t, Options{Workers: 1, Dir: t.TempDir(), Events: events})
	dir, err := s.sweepDir(tinyFigSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The dead worker: a stale lease from a PID that is not ours.
	plantStaleLease(t, dir, 0, 3, os.Getpid()+1)
	if err := faultject.Arm("shard.manifest=enospc:times=1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultject.Reset)

	h, err := s.SubmitSharded(tinyFigSpec(), 3, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("healed sweep failed: %v", err)
	}
	if !bytes.Equal(got[ArtifactTable], want[ArtifactTable]) {
		t.Errorf("healed table differs from clean run:\n%s\nwant:\n%s",
			got[ArtifactTable], want[ArtifactTable])
	}

	// Guard against a vacuous pass: the original slice 0 job really died.
	if _, err := h.Shards()[0].Wait(nil); err == nil {
		t.Fatal("slice 0 never failed — the failpoint did not fire")
	}
	stale := eventsOf(events, "watchdog.stale")
	if len(stale) != 1 || fmt.Sprint(stale[0].Fields["shard"]) != "0" {
		t.Errorf("watchdog.stale events = %+v, want exactly one for shard 0", stale)
	}
	resub := eventsOf(events, "sweep.resubmitted")
	if len(resub) != 1 || fmt.Sprint(resub[0].Fields["shard"]) != "0" {
		t.Errorf("sweep.resubmitted events = %+v, want exactly one for shard 0", resub)
	}
	// The dead worker's lease was reaped (the replacement's own lease is
	// released on completion), so nothing stale remains in the sweep dir.
	if _, err := os.Stat(filepath.Join(dir, shard.LeaseName(0, 3))); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stale lease still present after heal: %v", err)
	}
}

// TestWatchdogSingleRevival: the watchdog's revival of a quarantined slice
// goes through Retry (budget re-opened, attempts monotonic), and one stale
// lease justifies exactly one resubmission — when the revived slice fails
// again the error stands and the sweep fails loudly instead of looping.
func TestWatchdogSingleRevival(t *testing.T) {
	events := obs.NewEventLog()
	s := newTestScheduler(t, Options{
		Workers: 1, Dir: t.TempDir(), Events: events,
		Retry: &retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	dir, err := s.sweepDir(tinyFigSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Poison slice 0 permanently: a journal already bound to a different
	// fingerprint makes every attempt fail at open, a permanent error.
	j, err := runstate.Open(filepath.Join(dir, shard.JournalName(0, 3)), "not-this-sweeps-fingerprint", true)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	plantStaleLease(t, dir, 0, 3, os.Getpid()+1)

	h, err := s.SubmitSharded(tinyFigSpec(), 3, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := h.Wait(context.Background())
	if werr == nil {
		t.Fatal("sweep with a permanently poisoned slice succeeded")
	}
	if !strings.Contains(werr.Error(), "shard 0/3") {
		t.Errorf("sweep error does not name shard 0: %v", werr)
	}
	if strings.Contains(werr.Error(), "shard 1/3") || strings.Contains(werr.Error(), "shard 2/3") {
		t.Errorf("healthy slices dragged into the sweep error: %v", werr)
	}

	// The watchdog revived the quarantined slice exactly once (Retry path:
	// same job, monotonic attempt count), then let the second quarantine
	// stand because the stale lease was already reaped.
	if n := len(eventsOf(events, "sweep.resubmitted")); n != 1 {
		t.Fatalf("sweep.resubmitted fired %d times, want exactly 1", n)
	}
	// The revival went through Retry: same job identity, fresh incarnation
	// (look it up by ID — the pre-revival handle is a stale snapshot).
	hz, ok := s.Get(h.Shards()[0].ID())
	if !ok {
		t.Fatal("poisoned slice vanished from the scheduler")
	}
	st := hz.Status()
	if st.State != StateQuarantined {
		t.Errorf("poisoned slice state = %s, want %s", st.State, StateQuarantined)
	}
	if st.Attempts != 2 {
		t.Errorf("poisoned slice attempts = %d, want 2 (original + one revival)", st.Attempts)
	}
}

// TestWatchdogIgnoresOwnLease: a stale lease carrying our own PID means
// the worker is this very process — the watchdog must not resubmit (the
// scheduler's retry budget already governs in-process failures), so the
// slice's failure stands.
func TestWatchdogIgnoresOwnLease(t *testing.T) {
	events := obs.NewEventLog()
	s := newTestScheduler(t, Options{Workers: 1, Dir: t.TempDir(), Events: events})
	dir, err := s.sweepDir(tinyFigSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, err := runstate.Open(filepath.Join(dir, shard.JournalName(1, 3)), "not-this-sweeps-fingerprint", true)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	plantStaleLease(t, dir, 1, 3, os.Getpid())

	h, err := s.SubmitSharded(tinyFigSpec(), 3, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("sweep with a poisoned slice and our own lease succeeded")
	}
	if n := len(eventsOf(events, "sweep.resubmitted")); n != 0 {
		t.Errorf("watchdog resubmitted %d slices under our own live PID, want 0", n)
	}
}

// TestMergeShardsPartialArtifact: the library-level degraded merge — with
// one journal gone, strict MergeShards refuses while Partial returns a
// table with "!" cells plus the ArtifactIncomplete gap report.
func TestMergeShardsPartialArtifact(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2, Dir: t.TempDir()})
	h, err := s.SubmitSharded(tinyFigSpec(), 3, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Complete sweep: Partial is a no-op and the report says complete.
	art, err := MergeShards(context.Background(), tinyFigSpec(), h.Dir(), Instruments{}, Partial)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Complete bool `json:"complete"`
		Missing  []struct {
			Key   string `json:"key"`
			Shard int    `json:"shard"`
		} `json:"missing_rows"`
	}
	if err := json.Unmarshal(art[ArtifactIncomplete], &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || len(rep.Missing) != 0 {
		t.Errorf("complete sweep report = %+v", rep)
	}

	// Shard 0 owns rows in this workload; losing its journal degrades.
	if err := os.Remove(filepath.Join(h.Dir(), shard.JournalName(0, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(context.Background(), tinyFigSpec(), h.Dir(), Instruments{}); err == nil ||
		!strings.Contains(err.Error(), "merge refused") {
		t.Errorf("strict merge of gapped sweep: %v, want refusal", err)
	}
	art, err = MergeShards(context.Background(), tinyFigSpec(), h.Dir(), Instruments{}, Partial)
	if err != nil {
		t.Fatalf("partial merge of gapped sweep: %v", err)
	}
	if !bytes.Contains(art[ArtifactTable], []byte("!")) {
		t.Errorf("degraded table has no ! cells:\n%s", art[ArtifactTable])
	}
	if err := json.Unmarshal(art[ArtifactIncomplete], &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Complete || len(rep.Missing) == 0 {
		t.Errorf("gapped sweep report = %+v", rep)
	}
	for _, m := range rep.Missing {
		if m.Shard != 0 {
			t.Errorf("missing row %q attributed to shard %d, want 0", m.Key, m.Shard)
		}
	}
}
