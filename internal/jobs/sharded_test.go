package jobs

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/runstate"
)

// TestSubmitShardedEquivalence: a sharded sweep on a durable scheduler
// produces a table byte-identical to an unsharded run of the same spec,
// and the coordinator's global "shard.workers" phase reaches its total.
func TestSubmitShardedEquivalence(t *testing.T) {
	clean := newTestScheduler(t, Options{Workers: 1})
	want, err := mustSubmit(t, clean, tinyFigSpec(), SubmitOptions{}).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := newTestScheduler(t, Options{Workers: 2, Dir: t.TempDir()})
	h, err := s.SubmitSharded(tinyFigSpec(), 3, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Shards()) != 3 {
		t.Fatalf("sweep has %d shard jobs, want 3", len(h.Shards()))
	}
	got, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[ArtifactTable], want[ArtifactTable]) {
		t.Errorf("sharded table differs from unsharded run:\n%s\nwant:\n%s",
			got[ArtifactTable], want[ArtifactTable])
	}
	for _, ph := range h.Instruments().Progress.Status().Phases {
		if ph.Name != "shard.workers" {
			continue
		}
		if ph.Total != 3 || ph.Current != 3 {
			t.Errorf("shard.workers = %d/%d, want 3/3", ph.Current, ph.Total)
		}
	}

	// A second submission of the same sweep dedups slice by slice (each
	// slice spec fingerprints identically) and merges to the same bytes.
	h2, err := s.SubmitSharded(tinyFigSpec(), 3, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID() != h.ID() {
		t.Errorf("sweep ids differ: %s vs %s", h2.ID(), h.ID())
	}
	got2, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2[ArtifactTable], want[ArtifactTable]) {
		t.Error("resubmitted sweep's table differs")
	}
}

// TestSubmitShardedValidation: malformed sweep submissions fail fast with
// errors naming the problem.
func TestSubmitShardedValidation(t *testing.T) {
	mem := newTestScheduler(t, Options{Workers: 1})
	if _, err := mem.SubmitSharded(tinyFigSpec(), 2, SubmitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "Options.Dir") {
		t.Errorf("memory-only scheduler accepted a sharded sweep: %v", err)
	}

	s := newTestScheduler(t, Options{Workers: 1, Dir: t.TempDir()})
	if _, err := s.SubmitSharded(tinyFigSpec(), 1, SubmitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "at least 2") {
		t.Errorf("shards=1 accepted: %v", err)
	}
	preset := tinyFigSpec()
	preset.ShardIndex, preset.ShardCount = 1, 2
	if _, err := s.SubmitSharded(preset, 2, SubmitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "shard coordinates") {
		t.Errorf("spec with preset shard coordinates accepted: %v", err)
	}
	ccSpec := Spec{Kind: KindFigure, Fig: "cc"}
	if _, err := s.SubmitSharded(ccSpec, 2, SubmitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "not shardable") {
		t.Errorf("non-shardable figure accepted: %v", err)
	}
	if _, err := s.SubmitSharded(designSpec(t), 2, SubmitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "figure") {
		t.Errorf("design spec accepted for sharding: %v", err)
	}
	j, err := runstate.Open(t.TempDir()+"/rows.jsonl", "fp", false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := s.SubmitSharded(tinyFigSpec(), 2, SubmitOptions{RowJournal: j}); err == nil ||
		!strings.Contains(err.Error(), "RowJournal") {
		t.Errorf("caller-provided row journal accepted: %v", err)
	}
}

// TestShardSliceNeedsDurability: a shard-coordinate figure spec submitted
// directly to a memory-only scheduler fails with a clear error rather
// than computing a slice nobody can merge.
func TestShardSliceNeedsDurability(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	sl := tinyFigSpec()
	sl.ShardIndex, sl.ShardCount = 0, 2
	h, err := s.Submit(sl, SubmitOptions{})
	if err != nil {
		t.Fatal(err) // validation passes; the failure is at execution
	}
	if _, err := h.Wait(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "durable scheduler") {
		t.Errorf("memory-only slice run: %v, want durability error", err)
	}
}

// TestMergeShardsRefusals: MergeShards fails closed on a sweep directory
// that does not match the spec.
func TestMergeShardsRefusals(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2, Dir: t.TempDir()})
	h, err := s.SubmitSharded(tinyFigSpec(), 2, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Wrong workload: the manifest fingerprint does not match the spec.
	other := tinyFigSpec()
	other.Seed++
	if _, err := MergeShards(context.Background(), other, h.Dir(), Instruments{}); err == nil ||
		!strings.Contains(err.Error(), "holds workload") {
		t.Errorf("merge with wrong seed: %v, want workload mismatch", err)
	}
	// Wrong figure: same workload, different fig.
	fig6c := tinyFigSpec()
	fig6c.Fig = "6c"
	if _, err := MergeShards(context.Background(), fig6c, h.Dir(), Instruments{}); err == nil ||
		!strings.Contains(err.Error(), "figure") {
		t.Errorf("merge with wrong figure: %v, want figure mismatch", err)
	}
	// No sweep directory at all.
	if _, err := MergeShards(context.Background(), tinyFigSpec(), t.TempDir(), Instruments{}); err == nil {
		t.Error("merge of an empty directory succeeded")
	}
	// Non-shardable figure.
	ccSpec := Spec{Kind: KindFigure, Fig: "cc"}
	if _, err := MergeShards(context.Background(), ccSpec, h.Dir(), Instruments{}); err == nil ||
		!strings.Contains(err.Error(), "not shardable") {
		t.Errorf("merge of non-shardable figure: %v", err)
	}
	// And the happy path from the same directory, standalone.
	art, err := MergeShards(context.Background(), tinyFigSpec(), h.Dir(), Instruments{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(art[ArtifactTable], []byte("Fig. 6a")) {
		t.Errorf("standalone merge artifact:\n%s", art[ArtifactTable])
	}
}
