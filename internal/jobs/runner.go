package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/evalcache"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/runstate"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/specio"
)

// runFigure regenerates one figure into the ArtifactTable artifact. The
// rendered bytes are exactly what cmd/paperbench historically printed for
// the figure: the table (or ablation's table group), plus the cc
// evaluator/improvement lines. Cancellation still produces the artifact —
// the experiment functions return their completed rows alongside the
// typed error, so an interrupted job carries its deterministic partial
// table.
func runFigure(ctx context.Context, j *Job, rowJ *runstate.Journal, ec *evalcache.Cache) (Artifacts, error) {
	spec := j.spec
	cfg := experiments.Config{
		Apps: spec.Apps, Procs: spec.Procs, Seed: spec.Seed,
		Workers: spec.Workers, RunWorkers: spec.RunWorkers,
		AppTimeout: spec.AppTimeout,
		ShardIndex: spec.ShardIndex, ShardCount: spec.ShardCount,
		Metrics: j.obs.Metrics, Progress: j.obs.Progress, Log: j.obs.Log,
		Events:    j.obs.Events,
		EvalCache: ec,
	}
	if rowJ != nil {
		// Guarded: a nil *runstate.Journal inside the RowStore interface
		// would read as non-nil and panic on first use.
		cfg.Journal = rowJ
	}
	if testFigRowDone != nil {
		id := j.id
		cfg.RowDone = func(key string) { testFigRowDone(id, key) }
	}
	return renderFigure(ctx, spec, cfg, j.obs, ec)
}

// MergeOpt tunes a MergeShards call.
type MergeOpt int

// Partial switches MergeShards from strict to degraded mode: shards whose
// journals are missing or damaged no longer refuse the merge — their rows
// render as "!" cells and the ArtifactIncomplete report names every
// missing row and the shard that owns it. Strict (no options) remains the
// default: an incomplete sweep refuses loudly rather than produce a table.
const Partial MergeOpt = 1

// MergeShards reassembles a sharded sweep from its shard directory into
// the figure's ArtifactTable — byte-identical to a single-process run of
// the same spec. The merge never computes: every row is restored from the
// per-shard journals (strict mode), and a missing or damaged shard is a
// loud *shard.IncompleteError naming the workers to rerun. The manifest
// must describe exactly the workload and figure the spec asks for, so
// journals from a different sweep can never be dressed up as this one.
// Passing Partial degrades instead of refusing; see MergeOpt.
func MergeShards(ctx context.Context, spec Spec, dir string, inst Instruments, opts ...MergeOpt) (Artifacts, error) {
	partial := false
	for _, o := range opts {
		if o == Partial {
			partial = true
		}
	}
	if spec.Kind == "" {
		spec.Kind = KindFigure
	}
	base := spec
	base.ShardIndex, base.ShardCount = 0, 0
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if base.Kind != KindFigure {
		return nil, fmt.Errorf("jobs: merge of a %s job (only figure sweeps shard)", base.Kind)
	}
	if !ShardableFigure(base.Fig) {
		return nil, fmt.Errorf("jobs: figure %s is not shardable, nothing to merge", base.Fig)
	}
	var (
		rows    *shard.Rows
		reasons map[int]string
		err     error
	)
	if partial {
		rows, reasons, err = shard.LoadPartial(dir)
	} else {
		rows, err = shard.Load(dir)
	}
	if err != nil {
		return nil, err
	}
	m := rows.Manifest()
	wantFP, err := shard.WorkloadFingerprint(base.Apps, base.Procs, base.Seed)
	if err != nil {
		return nil, err
	}
	if m.FP != wantFP {
		return nil, fmt.Errorf("jobs: shard directory %s holds workload %s (fig %s, apps=%d procs=%v seed=%d), merge asked for workload %s (fig %s, apps=%d procs=%v seed=%d)",
			dir, m.FP, m.Fig, m.Apps, m.Procs, m.Seed, wantFP, base.Fig, base.Apps, base.Procs, base.Seed)
	}
	if m.Fig != base.Fig {
		return nil, fmt.Errorf("jobs: shard directory %s holds figure %s, merge asked for %s", dir, m.Fig, base.Fig)
	}
	cfg := experiments.Config{
		Apps: base.Apps, Procs: base.Procs, Seed: base.Seed,
		Workers: base.Workers, RunWorkers: base.RunWorkers,
		AppTimeout: base.AppTimeout,
		Journal:    rows,
		// ShardIndex -1 owns every row; RequireJournaled turns any row that
		// is not in the merged store into an error attributing the
		// incomplete shard instead of a recomputation.
		ShardIndex: -1, ShardCount: m.Shards,
		RequireJournaled: true,
		Metrics:          inst.Metrics, Progress: inst.Progress, Log: inst.Log,
		Events:           inst.Events,
	}
	var missing *experiments.MissingRows
	if partial {
		missing = &experiments.MissingRows{}
		cfg.Missing = missing
	}
	art, err := renderFigure(ctx, base, cfg, inst, nil)
	if partial && art != nil {
		rep, jerr := incompleteReport(base.Fig, m.Shards, rows.Len(), reasons, missing.Keys())
		if jerr != nil {
			if err == nil {
				err = jerr
			}
		} else {
			art[ArtifactIncomplete] = rep
		}
	}
	return art, err
}

// incompleteReport renders the ArtifactIncomplete JSON of a degraded
// merge: which shards were unusable and why, and every missing row with
// the shard that owns it — exactly what to re-run to complete the table.
func incompleteReport(fig string, shards, present int, reasons map[int]string, missingKeys []string) ([]byte, error) {
	type missingRow struct {
		Key   string `json:"key"`
		Shard int    `json:"shard"`
	}
	sort.Strings(missingKeys)
	rows := make([]missingRow, len(missingKeys))
	for i, k := range missingKeys {
		rows[i] = missingRow{Key: k, Shard: shard.Index(k, shards)}
	}
	byShard := map[string]string{}
	for i, why := range reasons {
		byShard[strconv.Itoa(i)] = why
	}
	return jsonMarshalIndent(struct {
		Fig          string            `json:"fig"`
		Shards       int               `json:"shards"`
		Complete     bool              `json:"complete"`
		PresentRows  int               `json:"present_rows"`
		MissingRows  []missingRow      `json:"missing_rows,omitempty"`
		ShardReasons map[string]string `json:"shard_reasons,omitempty"`
	}{
		Fig:          fig,
		Shards:       shards,
		Complete:     len(reasons) == 0 && len(missingKeys) == 0,
		PresentRows:  present,
		MissingRows:  rows,
		ShardReasons: byShard,
	})
}

// renderFigure dispatches one figure run (live, sharded or merge — the
// difference lives entirely in cfg) and renders the ArtifactTable bytes.
func renderFigure(ctx context.Context, spec Spec, cfg experiments.Config, inst Instruments, ec *evalcache.Cache) (Artifacts, error) {
	span := inst.Tracer.Start("fig." + spec.Fig)
	defer span.End()
	cfg.Span = span
	lg := inst.Log
	lg.Info("figure start", "fig", spec.Fig, "span", span.ID())
	start := time.Now()

	var buf bytes.Buffer
	render := func(t *experiments.Table) error {
		if spec.Markdown {
			return t.RenderMarkdown(&buf)
		}
		return t.Render(&buf)
	}
	// renderResult renders whatever table came back — on cancellation the
	// completed rows are rendered alongside the typed error.
	renderResult := func(t *experiments.Table, err error) error {
		if t != nil {
			if rerr := render(t); rerr != nil && err == nil {
				err = rerr
			}
		}
		return err
	}
	table := func(f func(context.Context, experiments.Config) (*experiments.Table, error)) error {
		return renderResult(f(ctx, cfg))
	}

	var err error
	switch spec.Fig {
	case "6a":
		err = table(experiments.Fig6a)
	case "6b":
		err = table(experiments.Fig6b)
	case "6c":
		err = table(experiments.Fig6c)
	case "6d":
		err = table(experiments.Fig6d)
	case "cc":
		err = runCC(ctx, &buf, render, spec.RunWorkers, span, inst.Metrics, inst.Progress, lg, ec)
	case "runtime":
		err = renderResult(experiments.RuntimeStudy(ctx, cfg, 1e-11, 25))
	case "simulation":
		err = renderResult(experiments.SimulationStudy(ctx, cfg, 1e-11, 200))
	case "policies":
		err = renderResult(experiments.PolicyComparison(ctx, cfg, 1e-10, 0.5))
	case "ablation":
		err = runAblation(ctx, &buf, cfg, renderResult)
	default:
		err = fmt.Errorf("jobs: unknown figure %q", spec.Fig)
	}

	switch {
	case err == nil:
		lg.Info("figure done", "fig", spec.Fig, "elapsed", time.Since(start), "span", span.ID())
	case errors.Is(err, runctl.ErrCanceled):
		lg.Info("figure interrupted", "fig", spec.Fig, "err", err.Error(), "span", span.ID())
	default:
		lg.Error("figure failed", "fig", spec.Fig, "err", err.Error(), "span", span.ID())
	}
	return Artifacts{ArtifactTable: buf.Bytes()}, err
}

// runAblation renders the four ablation tables, blank-line separated,
// stopping (with the partial group preserved) at the first error.
func runAblation(ctx context.Context, w io.Writer, cfg experiments.Config,
	renderResult func(*experiments.Table, error) error) error {
	if err := renderResult(experiments.AblationSlack(ctx, cfg, experiments.Point{SER: 1e-10, HPD: 25, ArC: 20})); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := renderResult(experiments.AblationMapping(ctx, cfg, experiments.Point{SER: 1e-11, HPD: 25, ArC: 20})); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := renderResult(experiments.AblationGradient(ctx, cfg, 1e-10)); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return renderResult(experiments.AblationBus(ctx, cfg, experiments.Point{SER: 1e-11, HPD: 25, ArC: 20}))
}

// runCC reproduces the cruise-controller case study. span, reg, prog and
// lg are the optional observability hooks (nil disables each): the three
// design runs nest under span, fold their counters into reg, tick the
// "cc.strategies" progress phase and log per-run records.
func runCC(ctx context.Context, w io.Writer, render func(*experiments.Table) error, runWorkers int, span *obs.Span, reg *obs.Registry, prog *obs.Progress, lg *obs.Logger, ec *evalcache.Cache) error {
	inst, err := cc.Instance()
	if err != nil {
		return err
	}
	ph := prog.Phase("cc.strategies")
	ph.SetTotal(3)
	defer ph.Done()
	t := experiments.NewTable("Cruise controller (32 processes on ETM/ABS/TCM, D=300 ms, rho=1-1.2e-5)",
		[]string{"strategy", "feasible", "cost", "schedule length (ms)"})
	var maxCost, optCost float64
	type strategyStats struct {
		s     core.Strategy
		stats string
	}
	var lines []strategyStats
	for _, s := range []core.Strategy{core.MIN, core.MAX, core.OPT} {
		res, err := core.RunContext(ctx, inst.App, inst.Platform, core.Options{
			Goal: inst.Goal, Strategy: s, Workers: runWorkers,
			ParentSpan: span, Metrics: reg, Progress: prog, Log: lg,
			EvalCache: ec,
		})
		if err != nil {
			return err
		}
		ph.Add(1)
		if res.Feasible {
			ph.Best(res.Cost)
		}
		row := []string{s.String(), fmt.Sprint(res.Feasible), "-", "-"}
		if res.Feasible {
			row[2] = fmt.Sprintf("%g", res.Cost)
			row[3] = fmt.Sprintf("%.1f", res.Schedule.Length)
		}
		t.AddRow(row)
		lines = append(lines, strategyStats{s, res.EvalStats.String()})
		switch s {
		case core.MAX:
			maxCost = res.Cost
		case core.OPT:
			optCost = res.Cost
		}
	}
	if err := render(t); err != nil {
		return err
	}
	for _, l := range lines {
		fmt.Fprintf(w, "%s evaluator: %s\n", l.s, l.stats)
	}
	if maxCost > 0 && optCost > 0 {
		fmt.Fprintf(w, "OPT improves on MAX by %.0f%% in cost (paper: 66%%)\n", 100*(maxCost-optCost)/maxCost)
	}
	return nil
}

// runDesign runs one design optimization over the spec's specio document
// and produces an ftopt-style text summary (ArtifactResultText) and a
// machine-readable record (ArtifactResultJSON).
func runDesign(ctx context.Context, spec Spec, inst Instruments, ec *evalcache.Cache) (Artifacts, error) {
	doc, err := specio.Read(bytes.NewReader(spec.Design))
	if err != nil {
		return nil, err
	}
	opts := core.Options{Goal: doc.Goal(), MaxCost: spec.MaxCost, Workers: spec.RunWorkers,
		Metrics: inst.Metrics, Progress: inst.Progress, Log: inst.Log,
		EvalCache: ec}
	switch spec.Strategy {
	case "", "OPT":
		opts.Strategy = core.OPT
	case "MIN":
		opts.Strategy = core.MIN
	case "MAX":
		opts.Strategy = core.MAX
	}
	switch spec.Slack {
	case "", "shared":
		opts.Model = sched.SlackShared
	case "per-process":
		opts.Model = sched.SlackPerProcess
	}
	span := inst.Tracer.Start("design")
	defer span.End()
	opts.ParentSpan = span

	res, err := core.RunContext(ctx, doc.Application, doc.Platform, opts)
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "application: %s (%d processes, %d graphs)\n",
		doc.Application.Name, doc.Application.NumProcesses(), len(doc.Application.Graphs))
	fmt.Fprintf(&buf, "strategy:    %s  (reliability goal 1-%.3g per %.0f ms)\n",
		opts.Strategy, doc.Goal().Gamma, doc.Goal().Tau)
	fmt.Fprintf(&buf, "explored:    %d architectures, %d redundancy evaluations\n",
		res.ArchsExplored, res.Evaluations)
	type jsonResult struct {
		Application   string  `json:"application"`
		Strategy      string  `json:"strategy"`
		Feasible      bool    `json:"feasible"`
		Cost          float64 `json:"cost,omitempty"`
		ScheduleLenMs float64 `json:"schedule_length_ms,omitempty"`
		ArchsExplored int     `json:"archs_explored"`
		Evaluations   int     `json:"evaluations"`
	}
	rec := jsonResult{
		Application:   doc.Application.Name,
		Strategy:      opts.Strategy.String(),
		Feasible:      res.Feasible,
		ArchsExplored: res.ArchsExplored,
		Evaluations:   res.Evaluations,
	}
	if !res.Feasible {
		fmt.Fprintln(&buf, "result:      INFEASIBLE — no architecture meets the deadline, reliability goal and cost bound")
	} else {
		rec.Cost = res.Cost
		rec.ScheduleLenMs = res.Schedule.Length
		fmt.Fprintf(&buf, "result:      feasible, cost %g\n", res.Cost)
		fmt.Fprintf(&buf, "architecture: %s\n", res.Arch)
		for j, node := range res.Arch.Nodes {
			var procs []string
			for pid, m := range res.Mapping {
				if m == j {
					procs = append(procs, doc.Application.Procs[pid].Name)
				}
			}
			fmt.Fprintf(&buf, "  %s^%d: k=%d  processes: %v\n", node.Name, res.Arch.Levels[j], res.Ks[j], procs)
		}
		fmt.Fprintf(&buf, "worst-case schedule length: %.3f ms\n", res.Schedule.Length)
	}
	js, err := jsonMarshalIndent(rec)
	if err != nil {
		return nil, err
	}
	return Artifacts{ArtifactResultText: buf.Bytes(), ArtifactResultJSON: js}, nil
}
