package jobs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/retry"
)

// fastRetry is a policy quick enough for tests: real backoff machinery,
// millisecond delays.
func fastRetry(max int) *retry.Policy {
	return &retry.Policy{MaxAttempts: max, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestRetryUntilSuccess: a job failing with a retryable error is re-run
// after backoff, the waiter's handle spans every attempt, and the attempt
// count lands in the status.
func TestRetryUntilSuccess(t *testing.T) {
	var runs atomic.Int64
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		if runs.Add(1) < 3 {
			return nil, retry.Retryable(errors.New("synthetic transient fault"))
		}
		return Artifacts{"out": []byte("ok")}, nil
	})
	s := newTestScheduler(t, Options{Workers: 1, Retry: fastRetry(5)})

	h := mustSubmit(t, s, testSpec("flaky"), SubmitOptions{})
	art, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("flaky job: %v", err)
	}
	if string(art["out"]) != "ok" {
		t.Errorf("artifact = %q, want ok", art["out"])
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("ran %d times, want 3", got)
	}
	if st := h.Status(); st.Attempts != 3 || st.State != StateDone {
		t.Errorf("status = %s attempts %d, want done attempts 3", st.State, st.Attempts)
	}
}

// TestQuarantinePermanentError: a permanent error quarantines on the
// first attempt — no retries burn the budget — and the quarantine is
// sticky: a fresh Submit of the same spec joins the quarantined job and
// inherits its error instead of re-running it.
func TestQuarantinePermanentError(t *testing.T) {
	var runs atomic.Int64
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		runs.Add(1)
		return nil, errors.New("unparsable spec")
	})
	s := newTestScheduler(t, Options{Workers: 1, Retry: fastRetry(5)})

	h := mustSubmit(t, s, testSpec("poisoned"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("poisoned job succeeded")
	}
	if st := h.Status(); st.State != StateQuarantined || st.Attempts != 1 {
		t.Fatalf("status = %s attempts %d, want quarantined attempts 1", st.State, st.Attempts)
	}
	h2 := mustSubmit(t, s, testSpec("poisoned"), SubmitOptions{})
	if h2.ID() != h.ID() {
		t.Fatalf("resubmit got fresh job %s, want sticky %s", h2.ID(), h.ID())
	}
	if _, err := h2.Wait(context.Background()); err == nil {
		t.Fatal("joined quarantined job reported success")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("ran %d times, want 1", got)
	}
}

// TestQuarantineAfterBudget: a persistently retryable failure is retried
// exactly MaxAttempts times, then quarantined.
func TestQuarantineAfterBudget(t *testing.T) {
	var runs atomic.Int64
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		runs.Add(1)
		return nil, retry.Retryable(errors.New("disk still full"))
	})
	s := newTestScheduler(t, Options{Workers: 1, Retry: fastRetry(3)})

	h := mustSubmit(t, s, testSpec("doomed"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("doomed job succeeded")
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("ran %d times, want 3", got)
	}
	if st := h.Status(); st.State != StateQuarantined || st.Attempts != 3 {
		t.Errorf("status = %s attempts %d, want quarantined attempts 3", st.State, st.Attempts)
	}
}

// TestRetryReopensBudget: Retry on a quarantined job re-enqueues it with
// a fresh budget window while the attempt count stays monotonic; Retry on
// anything not quarantined is refused.
func TestRetryReopensBudget(t *testing.T) {
	var heal atomic.Bool
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		if heal.Load() {
			return Artifacts{"out": []byte("healed")}, nil
		}
		return nil, retry.Retryable(errors.New("disk full"))
	})
	s := newTestScheduler(t, Options{Workers: 1, Retry: fastRetry(2)})

	h := mustSubmit(t, s, testSpec("recoverable"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("job succeeded before the fault cleared")
	}
	if st := h.Status(); st.State != StateQuarantined || st.Attempts != 2 {
		t.Fatalf("status = %s attempts %d, want quarantined attempts 2", st.State, st.Attempts)
	}
	if _, err := s.Retry("no-such-job"); err == nil {
		t.Error("Retry of unknown id succeeded")
	}

	heal.Store(true)
	h2, err := s.Retry(h.ID())
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if art, err := h2.Wait(context.Background()); err != nil || string(art["out"]) != "healed" {
		t.Fatalf("retried job: %v, artifact %q", err, art["out"])
	}
	if st := h2.Status(); st.State != StateDone || st.Attempts != 3 {
		t.Errorf("status = %s attempts %d, want done attempts 3 (monotonic)", st.State, st.Attempts)
	}
	if _, err := s.Retry(h.ID()); err == nil {
		t.Error("Retry of a completed job succeeded")
	}
}

// TestQuarantineSurvivesRestart: the quar| and try| journal rows restore
// a quarantined job — with its attempt history — into a fresh scheduler
// over the same state dir, and a Retry there runs it again.
func TestQuarantineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var heal atomic.Bool
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		if heal.Load() {
			return Artifacts{"out": []byte("healed")}, nil
		}
		return nil, retry.Retryable(errors.New("disk full"))
	})

	s1, err := New(Options{Workers: 1, Dir: dir, Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	h := mustSubmit(t, s1, testSpec("durable"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("job succeeded before the fault cleared")
	}
	id := h.ID()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestScheduler(t, Options{Workers: 1, Dir: dir, Retry: fastRetry(2)})
	h2, ok := s2.Get(id)
	if !ok {
		t.Fatal("quarantined job lost across restart")
	}
	if st := h2.Status(); st.State != StateQuarantined || st.Attempts != 2 {
		t.Fatalf("restored status = %s attempts %d, want quarantined attempts 2", st.State, st.Attempts)
	}
	if _, err := h2.Wait(context.Background()); err == nil {
		t.Fatal("restored quarantined job reported success")
	}

	heal.Store(true)
	h3, err := s2.Retry(id)
	if err != nil {
		t.Fatalf("Retry after restart: %v", err)
	}
	if art, err := h3.Wait(context.Background()); err != nil || string(art["out"]) != "healed" {
		t.Fatalf("retried job after restart: %v, artifact %q", err, art["out"])
	}
	if st := h3.Status(); st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (history preserved across restart)", st.Attempts)
	}
}

// TestNoPolicyKeepsFailuresTerminal: without Options.Retry the
// pre-self-healing behavior holds — one attempt, StateFailed, and a
// resubmit replaces the failed job rather than joining a quarantine.
func TestNoPolicyKeepsFailuresTerminal(t *testing.T) {
	var runs atomic.Int64
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		runs.Add(1)
		return nil, retry.Retryable(errors.New("transient, but nobody retries"))
	})
	s := newTestScheduler(t, Options{Workers: 1})

	h := mustSubmit(t, s, testSpec("legacy"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("job succeeded")
	}
	if st := h.Status(); st.State != StateFailed {
		t.Errorf("state = %s, want failed", st.State)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("ran %d times, want 1", got)
	}
}
