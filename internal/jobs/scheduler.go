package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/evalcache"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/runctl"
	"repro/internal/runstate"
	"repro/internal/shard"
)

// ErrClosed is returned by Submit once the scheduler is shutting down.
var ErrClosed = errors.New("jobs: scheduler closed")

// stateFingerprint binds the scheduler's state journal to this layout.
const stateFingerprint = "ftes-jobs-state-v1"

// testRunHook, when non-nil, runs kindTest jobs; scheduler tests use it
// to control execution timing deterministically. Never set in production.
var testRunHook func(ctx context.Context, j *Job) (Artifacts, error)

// testFigRowDone, when non-nil, observes every freshly journaled row of a
// figure job; the crash-resume tests use it to stop the scheduler at
// exact row boundaries.
var testFigRowDone func(jobID, rowKey string)

// Options configures a Scheduler.
type Options struct {
	// Workers bounds how many jobs run concurrently (min 1).
	Workers int
	// Dir, when non-empty, makes the scheduler durable: submissions and
	// completions are journaled to Dir/state.jsonl, figure jobs journal
	// their rows to Dir/rows-<id>.jsonl, and a new Scheduler over the same
	// Dir restores completed results and re-enqueues every job that was
	// queued or running when the previous process died.
	Dir string
	// Metrics, when non-nil, receives the scheduler's own instruments:
	// jobs.submitted/completed/failed/canceled/interrupted/dedup_hits
	// counters, jobs.queue_depth and jobs.running gauges, and the
	// jobs.queue_wait submit→start latency histogram.
	Metrics *obs.Registry
	// Log receives scheduler lifecycle records (nil disables logging).
	Log *obs.Logger
	// Events, when non-nil, receives the fleet lifecycle event stream:
	// job submitted/started/done/failed/canceled/interrupted, dedup hits,
	// resumes, shard and sweep milestones, eval-cache warm/cold, panics
	// recovered. ftesd opens a durable log under its state dir so the
	// stream survives restarts; paperbench -serve uses a memory-only log.
	Events *obs.EventLog
	// EvalCache, when non-nil, is the disk-backed evaluation cache every
	// job's design runs share (core.Options.EvalCache): resubmitted and
	// repeated jobs warm-start from what earlier jobs persisted. It lives
	// on Options, not Spec — specs are content-addressed and a cache
	// location must not change a job's identity.
	EvalCache *evalcache.Cache
	// Retry, when non-nil, is the self-healing policy: a job failing with
	// a retryable error (retry.IsRetryable — torn journal writes, ENOSPC,
	// a slice journal still flock-held by a dying worker) is re-enqueued
	// after a backoff delay instead of going terminal, until the policy's
	// attempt budget is spent. Attempt counts are journaled in state.jsonl
	// so restarts never reset a budget. A permanent error, or an exhausted
	// budget, quarantines the job: terminal until a human (or the sweep
	// watchdog) calls Retry, with job.quarantined in the event log. Nil
	// keeps the pre-self-healing behavior: every failure is terminal.
	Retry *retry.Policy
	// LeaseInterval paces the heartbeat on the lease file each sharded
	// slice maintains in its sweep directory (0 = shard.DefaultLeaseInterval).
	LeaseInterval time.Duration
	// LeaseStale is how old a slice lease's heartbeat must be before the
	// sweep watchdog declares its worker dead and resubmits the slice
	// (0 = 10s). Must be a comfortable multiple of LeaseInterval.
	LeaseStale time.Duration
}

// defaultLeaseStale is the watchdog staleness threshold when Options
// does not set one.
const defaultLeaseStale = 10 * time.Second

func (o Options) leaseStale() time.Duration {
	if o.LeaseStale > 0 {
		return o.LeaseStale
	}
	return defaultLeaseStale
}

// Job is one scheduled exploration. All mutable fields are guarded by
// the owning scheduler's mutex; artifacts and err are immutable once the
// done channel closes.
type Job struct {
	id       string
	spec     Spec
	tenant   string
	priority int
	timeout  time.Duration
	seq      int64

	obs        Instruments
	rowJournal *runstate.Journal // submitter-owned; nil → scheduler-owned per-job journal
	parent     context.Context

	state        string
	userCanceled bool
	cancel       context.CancelFunc // set while running
	submits      int
	// attempts counts runs started across the job's whole durable life,
	// monotonic even across manual retries (journaled as try| rows).
	// budgetBase is the attempt count the current budget window started
	// at: Retry (manual un-quarantine) moves it forward so the policy's
	// MaxAttempts applies per window, while the history stays monotonic.
	attempts    int
	budgetBase  int
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	artifacts Artifacts
	err       error
	done      chan struct{}
}

// ID returns the job's content fingerprint.
func (j *Job) ID() string { return j.id }

// Spec returns the job's spec.
func (j *Job) Spec() Spec { return j.spec }

// Instruments returns the job's observability hooks; ftesd mounts
// obshttp handlers over them for per-job /metrics, /progress and /trace.
func (j *Job) Instruments() Instruments { return j.obs }

// SubmitOptions carry everything about a submission that is not part of
// the job's content-addressed identity.
type SubmitOptions struct {
	// Tenant names the fair-share queue the job waits in ("" is a valid
	// tenant). The scheduler serves tenants round-robin, so one tenant's
	// backlog cannot starve another's.
	Tenant string
	// Priority orders jobs within a tenant (higher first, FIFO within a
	// priority).
	Priority int
	// Timeout bounds the job's run (0 = none); expiry surfaces as
	// runctl.ErrCanceled wrapping context.DeadlineExceeded, with the
	// deterministic partial artifacts every canceled run produces.
	Timeout time.Duration
	// Context, when non-nil, parents the job's run context: canceling it
	// cooperatively stops the job. paperbench passes its signal context;
	// daemon submissions leave it nil (jobs outlive HTTP requests).
	Context context.Context
	// Obs, when non-nil, replaces the per-job instruments.
	Obs *Instruments
	// RowJournal, when non-nil, is a caller-owned row journal for figure
	// jobs (paperbench -journal); the scheduler then neither opens nor
	// closes a per-job one.
	RowJournal *runstate.Journal
	// TraceParent, when non-empty, is the cross-process span reference
	// (obs.Span.Ref) the job's root spans hang under once traces are
	// merged. SubmitSharded sets it to its sweep span so every slice's
	// trace reconnects under the coordinator. Like the other fields here
	// it is not part of the job's identity. It applies only to the
	// scheduler's own per-job tracer (ignored when Obs is provided — a
	// shared tracer must not inherit one submission's parent).
	TraceParent string
}

// Handle is a submitter's reference to a (possibly shared) job.
type Handle struct {
	s *Scheduler
	j *Job
}

// ID returns the job's content fingerprint.
func (h *Handle) ID() string { return h.j.id }

// Job returns the underlying job.
func (h *Handle) Job() *Job { return h.j }

// Done returns a channel closed when the job finishes.
func (h *Handle) Done() <-chan struct{} { return h.j.done }

// Wait blocks until the job finishes or ctx is canceled, returning the
// job's artifacts and error. A canceled job returns its deterministic
// partial artifacts alongside the runctl.ErrCanceled-wrapped error.
func (h *Handle) Wait(ctx context.Context) (Artifacts, error) {
	if ctx != nil {
		select {
		case <-h.j.done:
		case <-ctx.Done():
			return nil, runctl.Err(ctx)
		}
	} else {
		<-h.j.done
	}
	return h.j.artifacts, h.j.err
}

// Status snapshots the job.
func (h *Handle) Status() Status { return h.s.status(h.j) }

// Scheduler runs jobs from a priority + fair-share queue on a bounded
// worker pool. Create one with New and stop it with Close.
type Scheduler struct {
	opts   Options
	log    *obs.Logger
	events *obs.EventLog

	mu         sync.Mutex
	cond       *sync.Cond
	jobs       map[string]*Job
	queues     map[string][]*Job
	ring       []string // tenants in first-seen order
	lastTenant int      // ring index served last
	queued     int
	closing    bool
	seq        int64
	resumed    int

	wg    sync.WaitGroup
	state *runstate.Journal

	mSubmitted, mDedup, mCompleted, mFailed, mCanceled, mInterrupted *obs.Counter
	mRetried, mQuarantined                                           *obs.Counter
	hQueueWait                                                       *obs.Histogram
	gRunning                                                         *obs.Gauge
}

// submitRecord is the durable form of one accepted submission.
type submitRecord struct {
	Spec     Spec   `json:"spec"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Timeout  int64  `json:"timeout_ns,omitempty"`
}

// doneRecord is the durable form of one completion.
type doneRecord struct {
	Artifacts map[string][]byte `json:"artifacts,omitempty"`
	Err       string            `json:"err,omitempty"`
	Canceled  bool              `json:"canceled,omitempty"`
}

// quarRecord is the durable form of one quarantine: the error that spent
// the attempt budget. Keyed quar|<id>|<attempts> — the attempt count makes
// the key unique per quarantine, since the journal dedups repeated keys.
type quarRecord struct {
	Err      string `json:"err,omitempty"`
	Attempts int    `json:"attempts"`
}

// New builds a scheduler, restores its durable state when Options.Dir is
// set (completed jobs resolve immediately; interrupted ones re-enqueue),
// and starts the worker pool.
func New(o Options) (*Scheduler, error) {
	if o.Workers < 1 {
		o.Workers = 1
	}
	reg := o.Metrics
	if reg == nil {
		// Private registry: the instruments always exist, they just are
		// not exported anywhere.
		reg = obs.NewRegistry()
	}
	s := &Scheduler{
		opts:   o,
		log:    o.Log,
		events: o.Events,
		jobs:   make(map[string]*Job),
		queues: make(map[string][]*Job),

		mSubmitted:   reg.Counter("jobs.submitted"),
		mDedup:       reg.Counter("jobs.dedup_hits"),
		mCompleted:   reg.Counter("jobs.completed"),
		mFailed:      reg.Counter("jobs.failed"),
		mCanceled:    reg.Counter("jobs.canceled"),
		mInterrupted: reg.Counter("jobs.interrupted"),
		mRetried:     reg.Counter("jobs.retries"),
		mQuarantined: reg.Counter("jobs.quarantined"),
		hQueueWait:   reg.Histogram("jobs.queue_wait"),
		gRunning:     reg.Gauge("jobs.running"),
	}
	s.cond = sync.NewCond(&s.mu)
	reg.GaugeFunc("jobs.queue_depth", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queued)
	})
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: state dir: %w", err)
		}
		st, err := runstate.Open(filepath.Join(o.Dir, "state.jsonl"), stateFingerprint, true)
		if err != nil {
			return nil, err
		}
		s.state = st
		s.recover()
	}
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover replays the state journal: done jobs become resolved entries,
// quarantined jobs come back quarantined (with their attempt history, so
// a restart never resets a budget), and jobs submitted but never
// completed are re-enqueued in their original submission order.
func (s *Scheduler) recover() {
	rows := s.state.RestoredRows()
	type pending struct {
		id  string
		rec submitRecord
	}
	var order []pending
	done := map[string]doneRecord{}
	attempts := map[string]int{}
	base := map[string]int{}
	quar := map[string]string{} // id → error text while quarantined
	for _, r := range rows {
		if id, ok := cutPrefix(r.Key, "done|"); ok {
			var rec doneRecord
			if jsonUnmarshal(r.Data, &rec) {
				done[id] = rec
			}
			continue
		}
		if id, ok := cutPrefix(r.Key, "job|"); ok {
			var rec submitRecord
			if jsonUnmarshal(r.Data, &rec) {
				order = append(order, pending{id, rec})
			}
			continue
		}
		// Self-healing rows, replayed in file order so a quarantine after a
		// manual retry lands quarantined, and vice versa.
		if rest, ok := cutPrefix(r.Key, "try|"); ok {
			if id, n, ok := splitAttemptKey(rest); ok && n > attempts[id] {
				attempts[id] = n
			}
			continue
		}
		if rest, ok := cutPrefix(r.Key, "quar|"); ok {
			if id, _, ok := splitAttemptKey(rest); ok {
				var rec quarRecord
				if jsonUnmarshal(r.Data, &rec) && rec.Err != "" {
					quar[id] = rec.Err
				} else {
					quar[id] = "quarantined by a previous run"
				}
			}
			continue
		}
		if rest, ok := cutPrefix(r.Key, "retry|"); ok {
			if id, n, ok := splitAttemptKey(rest); ok {
				base[id] = n
				delete(quar, id)
			}
		}
	}
	for _, p := range order {
		j := s.newJob(p.id, p.rec.Spec, SubmitOptions{
			Tenant:   p.rec.Tenant,
			Priority: p.rec.Priority,
			Timeout:  time.Duration(p.rec.Timeout),
		})
		j.attempts = attempts[p.id]
		j.budgetBase = base[p.id]
		s.jobs[p.id] = j
		if rec, ok := done[p.id]; ok {
			j.state = StateDone
			j.artifacts = Artifacts(rec.Artifacts)
			switch {
			case rec.Canceled:
				j.state = StateCanceled
				j.err = fmt.Errorf("%w: %s", runctl.ErrCanceled, rec.Err)
			case rec.Err != "":
				j.state = StateFailed
				j.err = errors.New(rec.Err)
			}
			close(j.done)
			continue
		}
		if msg, ok := quar[p.id]; ok {
			j.state = StateQuarantined
			j.err = errors.New(msg)
			close(j.done)
			continue
		}
		s.resumed++
		s.enqueueLocked(j)
		s.log.Info("job resumed from state journal", "job", p.id, "kind", p.rec.Spec.Kind, "fig", p.rec.Spec.Fig)
		s.events.Emit("job.resumed", p.id, eventFields(p.rec.Spec))
	}
}

// splitAttemptKey parses the "<id>|<n>" tail of a try|/quar|/retry| state
// row key.
func splitAttemptKey(rest string) (id string, n int, ok bool) {
	i := strings.LastIndexByte(rest, '|')
	if i < 1 {
		return "", 0, false
	}
	v, err := strconv.Atoi(rest[i+1:])
	if err != nil {
		return "", 0, false
	}
	return rest[:i], v, true
}

// Resumed reports how many in-flight jobs the state journal re-enqueued
// at startup.
func (s *Scheduler) Resumed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumed
}

// newJob builds a Job (caller inserts it under s.mu where needed).
func (s *Scheduler) newJob(id string, spec Spec, so SubmitOptions) *Job {
	j := &Job{
		id:          id,
		spec:        spec,
		tenant:      so.Tenant,
		priority:    so.Priority,
		timeout:     so.Timeout,
		parent:      so.Context,
		rowJournal:  so.RowJournal,
		state:       StateQueued,
		submits:     1,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	if j.parent == nil {
		j.parent = context.Background()
	}
	if so.Obs != nil {
		j.obs = *so.Obs
	} else {
		j.obs = Instruments{
			Tracer:   obs.NewTracer(),
			Metrics:  obs.NewRegistry(),
			Progress: obs.NewProgress(),
			Log:      s.log,
		}
		j.obs.Tracer.SetRemoteParent(so.TraceParent)
		if spec.ShardCount > 1 {
			j.obs.Tracer.SetProcessLabel(fmt.Sprintf("shard %d/%d", spec.ShardIndex, spec.ShardCount))
		}
	}
	if j.obs.Events == nil {
		j.obs.Events = s.events.Scoped(id)
	}
	return j
}

// Submit enqueues the spec (or joins the existing job with the same
// fingerprint) and returns a handle on it.
func (s *Scheduler) Submit(spec Spec, so SubmitOptions) (*Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	id, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		switch j.state {
		case StateFailed, StateCanceled:
			// A terminal non-success does not poison the fingerprint:
			// resubmitting runs the spec again (the fresh job below simply
			// replaces the dead one in the index).
			delete(s.jobs, id)
		default:
			submits := j.submits + 1
			j.submits = submits
			s.mu.Unlock()
			s.mDedup.Add(1)
			s.log.Info("job deduplicated", "job", id, "submits", submits)
			s.events.Emit("job.dedup", id, map[string]any{"submits": submits})
			return &Handle{s, j}, nil
		}
	}
	j := s.newJob(id, spec, so)
	s.jobs[id] = j
	s.mu.Unlock()

	if s.state != nil {
		// Durability before visibility: the submission is on disk before
		// the job can run, so a crash between accept and completion always
		// re-enqueues it.
		rec := submitRecord{Spec: spec, Tenant: so.Tenant, Priority: so.Priority, Timeout: int64(so.Timeout)}
		if err := s.state.Record("job|"+id, rec); err != nil {
			s.mu.Lock()
			delete(s.jobs, id)
			s.mu.Unlock()
			return nil, err
		}
	}
	s.mSubmitted.Add(1)
	s.log.Info("job submitted", "job", id, "kind", spec.Kind, "fig", spec.Fig, "tenant", so.Tenant, "priority", so.Priority)
	s.events.Emit("job.submitted", id, eventFields(spec))

	s.mu.Lock()
	if s.closing {
		// Lost the race with Close: fail the submission rather than leave
		// a job no worker will ever pick up.
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.enqueueLocked(j)
	s.mu.Unlock()
	return &Handle{s, j}, nil
}

// enqueueLocked inserts j into its tenant's queue: higher priority first,
// FIFO within a priority. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(j *Job) {
	s.seq++
	j.seq = s.seq
	q := s.queues[j.tenant]
	if _, ok := s.queues[j.tenant]; !ok {
		s.ring = append(s.ring, j.tenant)
	}
	pos := len(q)
	for i, other := range q {
		if other.priority < j.priority {
			pos = i
			break
		}
	}
	q = append(q, nil)
	copy(q[pos+1:], q[pos:])
	q[pos] = j
	s.queues[j.tenant] = q
	s.queued++
	s.cond.Signal()
}

// next blocks until a job is available or the scheduler closes (nil).
// Fair share: the scan starts at the tenant after the one served last,
// so tenants take turns regardless of backlog sizes.
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closing {
			return nil
		}
		if s.queued > 0 {
			n := len(s.ring)
			for k := 1; k <= n; k++ {
				idx := (s.lastTenant + k) % n
				q := s.queues[s.ring[idx]]
				if len(q) == 0 {
					continue
				}
				j := q[0]
				s.queues[s.ring[idx]] = q[1:]
				s.lastTenant = idx
				s.queued--
				return j
			}
		}
		s.cond.Wait()
	}
}

// worker is one pool goroutine: pick, run, repeat until close.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job and publishes its completion.
func (s *Scheduler) runJob(j *Job) {
	start := time.Now()
	s.mu.Lock()
	if j.userCanceled {
		// Canceled while queued and not yet reaped by Cancel itself —
		// complete it without running anything.
		s.mu.Unlock()
		s.completeJob(j, nil, fmt.Errorf("%w: canceled before start", runctl.ErrCanceled))
		return
	}
	j.state = StateRunning
	j.startedAt = start
	j.attempts++
	attempt := j.attempts
	s.mu.Unlock()
	if s.state != nil {
		// The attempt lands on disk before the run starts, so a crashed
		// attempt still spends budget after a restart. Best-effort: a
		// journal hiccup here must not block the run it describes.
		if rerr := s.state.Record(fmt.Sprintf("try|%s|%d", j.id, attempt), struct{}{}); rerr != nil {
			s.log.Error("attempt not journaled", "job", j.id, "attempt", attempt, "err", rerr.Error())
		}
	}
	s.gRunning.Set(s.gRunning.Value() + 1)
	s.hQueueWait.Observe(start.Sub(j.submittedAt))
	s.log.Info("job start", "job", j.id, "kind", j.spec.Kind, "fig", j.spec.Fig, "queue_wait", start.Sub(j.submittedAt), "attempt", attempt)
	startedFields := eventFields(j.spec)
	startedFields["attempt"] = attempt
	s.events.Emit("job.started", j.id, startedFields)
	if j.spec.ShardCount > 1 {
		s.events.Emit("shard.started", j.id, map[string]any{
			"index": j.spec.ShardIndex, "count": j.spec.ShardCount, "fig": j.spec.Fig,
		})
	}

	ctx, cancel := context.WithCancel(j.parent)
	s.mu.Lock()
	j.cancel = cancel
	s.mu.Unlock()
	runCtx := ctx
	var cancelTimeout context.CancelFunc
	if j.timeout > 0 {
		runCtx, cancelTimeout = context.WithTimeout(ctx, j.timeout)
	}

	var cacheBefore evalcache.Stats
	if s.opts.EvalCache != nil {
		cacheBefore = s.opts.EvalCache.Stats()
	}

	artifacts, err := s.execute(runCtx, j)

	if s.opts.EvalCache != nil {
		// Warm vs cold is a per-job, best-effort read of the shared cache:
		// did this run load anything an earlier run persisted? Concurrent
		// jobs can blur the delta; the answer is still the right signal for
		// "was the cache worth having" dashboards.
		after := s.opts.EvalCache.Stats()
		typ := "evalcache.cold"
		if after.LoadHits > cacheBefore.LoadHits {
			typ = "evalcache.warm"
		}
		s.events.Emit(typ, j.id, map[string]any{
			"load_hits": after.LoadHits - cacheBefore.LoadHits,
			"loads":     after.Loads - cacheBefore.Loads,
			"saves":     after.Saves - cacheBefore.Saves,
		})
	}

	if cancelTimeout != nil {
		cancelTimeout()
	}
	cancel()
	s.gRunning.Set(s.gRunning.Value() - 1)
	s.completeJob(j, artifacts, err)
}

// execute dispatches to the job's runner with panic isolation: a panic
// inside a runner fails the job, not the scheduler.
func (s *Scheduler) execute(ctx context.Context, j *Job) (art Artifacts, err error) {
	defer runctl.Recover(fmt.Sprintf("jobs %s runner (job %s)", j.spec.Kind, j.id), &err)
	switch j.spec.Kind {
	case KindFigure:
		rowJ := j.rowJournal
		sliceTrace := false
		switch {
		case rowJ != nil:
		case j.spec.ShardCount > 1:
			// A sharded slice journals into the sweep's shard directory so
			// the merge can find it; without a state dir there is nowhere
			// durable to put it, which defeats the whole point of sharding.
			if s.opts.Dir == "" {
				return nil, fmt.Errorf("jobs: sharded figure job %s needs a durable scheduler (Options.Dir) or a caller-provided row journal", j.id)
			}
			rj, jerr := s.openShardJournal(j.spec)
			if jerr != nil {
				return nil, jerr
			}
			defer rj.Close()
			rowJ = rj
			sliceTrace = true
			// Heartbeat lease for the watchdog: a dead worker's lease goes
			// stale, a live one's never does. Advisory only (the journal
			// flock is the mutual exclusion), so failure to install it is
			// logged, not fatal.
			s.mu.Lock()
			attempt := j.attempts
			s.mu.Unlock()
			if dir, derr := s.sweepDir(j.spec); derr == nil {
				if lease, lerr := shard.AcquireLease(dir, j.spec.ShardIndex, j.spec.ShardCount, attempt, s.opts.LeaseInterval); lerr != nil {
					s.log.Error("slice lease not acquired", "job", j.id, "err", lerr.Error())
				} else {
					defer lease.Release()
				}
			}
			if rj.Restored() > 0 {
				j.obs.Events.Emit("shard.resumed", map[string]any{
					"index": j.spec.ShardIndex, "count": j.spec.ShardCount,
					"restored_rows": rj.Restored(),
				})
			}
		case s.opts.Dir != "":
			// The row journal is keyed by the job fingerprint, so it can
			// only ever resume the spec that wrote it.
			rj, jerr := runstate.Open(filepath.Join(s.opts.Dir, "rows-"+j.id+".jsonl"), j.id, true)
			if jerr != nil {
				return nil, jerr
			}
			defer rj.Close()
			rowJ = rj
		}
		art, ferr := runFigure(ctx, j, rowJ, s.opts.EvalCache)
		if sliceTrace {
			// Snapshot the slice's trace (final durations, open spans flagged
			// unfinished) into the shard directory next to its journal, so the
			// sweep merge can stitch every worker's timeline. Observation-only:
			// a failed snapshot is logged, never fails the job.
			if terr := s.writeShardTrace(j); terr != nil {
				s.log.Error("shard trace not written", "job", j.id, "err", terr.Error())
			}
		}
		return art, ferr
	case KindDesign:
		return runDesign(ctx, j.spec, j.obs, s.opts.EvalCache)
	case kindTest:
		if testRunHook != nil {
			return testRunHook(ctx, j)
		}
		return nil, fmt.Errorf("jobs: test job without hook")
	default:
		return nil, fmt.Errorf("jobs: unknown job kind %q", j.spec.Kind)
	}
}

// completeJob records the outcome (unless the job was interrupted by a
// shutdown or an external cancel, in which case it stays in-flight for
// the next scheduler over the same state dir) and wakes every waiter.
func (s *Scheduler) completeJob(j *Job, artifacts Artifacts, err error) {
	s.mu.Lock()
	closing := s.closing
	userCanceled := j.userCanceled
	s.mu.Unlock()
	parentCanceled := j.parent.Err() != nil

	// A cooperative cancellation that the submitter did not ask for —
	// scheduler shutdown or the parent context (an operator interrupt)
	// going away — leaves the job interrupted: its completion is not
	// journaled, so a durable scheduler resumes it on the next start.
	interrupted := err != nil && errors.Is(err, runctl.ErrCanceled) &&
		!userCanceled && (closing || parentCanceled)

	// Self-healing disposition. With a retry policy configured, a failure
	// that is neither an interruption nor a user cancel goes one of two
	// ways instead of terminal-failed: retryable with budget left →
	// backoff and re-enqueue; permanent or exhausted → quarantine, held
	// for a human (or the sweep watchdog) to Retry.
	if err != nil && !interrupted && !userCanceled && s.opts.Retry != nil && s.opts.Retry.MaxAttempts > 1 {
		p := s.opts.Retry
		s.mu.Lock()
		used := j.attempts - j.budgetBase
		s.mu.Unlock()
		if retry.IsRetryable(err) && !p.Exhausted(used) {
			s.scheduleRetry(j, err, p.Delay(used))
			return
		}
		s.quarantine(j, artifacts, err)
		return
	}

	if !interrupted && s.state != nil {
		rec := doneRecord{Artifacts: artifacts, Canceled: userCanceled && err != nil}
		if err != nil {
			rec.Err = err.Error()
		}
		if rerr := s.state.Record("done|"+j.id, rec); rerr != nil {
			s.log.Error("job completion not journaled", "job", j.id, "err", rerr.Error())
		}
	}

	s.mu.Lock()
	j.artifacts = artifacts
	j.err = err
	j.finishedAt = time.Now()
	switch {
	case interrupted:
		j.state = StateInterrupted
	case err == nil:
		j.state = StateDone
	case userCanceled && errors.Is(err, runctl.ErrCanceled):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	state := j.state
	s.mu.Unlock()
	close(j.done)

	var pe *runctl.PanicError
	if errors.As(err, &pe) {
		s.events.Emit("panic.recovered", j.id, map[string]any{
			"where": pe.Where, "value": fmt.Sprint(pe.Value),
		})
	}
	switch state {
	case StateDone:
		s.mCompleted.Add(1)
		s.log.Info("job done", "job", j.id, "elapsed", j.finishedAt.Sub(j.startedAt))
		s.events.Emit("job.done", j.id, map[string]any{
			"elapsed_ms": j.finishedAt.Sub(j.startedAt).Milliseconds(),
		})
	case StateCanceled:
		s.mCanceled.Add(1)
		s.log.Info("job canceled", "job", j.id)
		s.events.Emit("job.canceled", j.id, nil)
	case StateInterrupted:
		s.mInterrupted.Add(1)
		s.log.Info("job interrupted", "job", j.id)
		s.events.Emit("job.interrupted", j.id, nil)
	default:
		s.mFailed.Add(1)
		s.log.Error("job failed", "job", j.id, "err", err.Error())
		s.events.Emit("job.failed", j.id, map[string]any{"error": err.Error()})
	}
}

// scheduleRetry re-enqueues j after a backoff delay. The job's done
// channel stays open — waiters keep waiting across the whole retry
// sequence and only ever observe the final outcome — and the failure is
// not journaled as a completion, so a crash mid-backoff resumes the job
// on restart (the journaled try| rows keep the budget honest).
func (s *Scheduler) scheduleRetry(j *Job, cause error, delay time.Duration) {
	s.mu.Lock()
	j.state = StateQueued
	j.cancel = nil
	j.err = cause // visible in Status while the backoff runs
	attempt := j.attempts
	s.mu.Unlock()
	s.mRetried.Add(1)
	s.log.Info("job retry scheduled", "job", j.id, "attempt", attempt, "delay", delay, "err", cause.Error())
	s.events.Emit("job.retry", j.id, map[string]any{
		"attempt": attempt, "delay_ms": delay.Milliseconds(), "error": cause.Error(),
	})
	time.AfterFunc(delay, func() { s.requeueRetry(j, cause) })
}

// requeueRetry fires when a retry backoff elapses: normally the job goes
// back in its queue; under a shutdown it completes interrupted (resumed
// by the next scheduler over the same state dir); after a user cancel it
// completes canceled.
func (s *Scheduler) requeueRetry(j *Job, cause error) {
	s.mu.Lock()
	switch {
	case s.closing:
		s.mu.Unlock()
		s.completeJob(j, nil, fmt.Errorf("%w: retry interrupted by shutdown: %s", runctl.ErrCanceled, cause))
	case j.userCanceled:
		s.mu.Unlock()
		s.completeJob(j, nil, fmt.Errorf("%w: canceled during retry backoff", runctl.ErrCanceled))
	default:
		s.enqueueLocked(j)
		s.mu.Unlock()
	}
}

// quarantine parks j terminally-but-revivably: the outcome is journaled
// as a quar| row (not a done| completion, so the submission stays live in
// the state journal and a restart re-quarantines rather than re-runs),
// waiters are released with the error, and Retry can re-open the budget.
func (s *Scheduler) quarantine(j *Job, artifacts Artifacts, err error) {
	s.mu.Lock()
	j.artifacts = artifacts
	j.err = err
	j.finishedAt = time.Now()
	j.state = StateQuarantined
	attempts := j.attempts
	s.mu.Unlock()
	if s.state != nil {
		rec := quarRecord{Err: err.Error(), Attempts: attempts}
		if rerr := s.state.Record(fmt.Sprintf("quar|%s|%d", j.id, attempts), rec); rerr != nil {
			s.log.Error("quarantine not journaled", "job", j.id, "err", rerr.Error())
		}
	}
	close(j.done)
	s.mQuarantined.Add(1)
	s.log.Error("job quarantined", "job", j.id, "attempts", attempts, "err", err.Error())
	s.events.Emit("job.quarantined", j.id, map[string]any{
		"attempts": attempts, "error": err.Error(),
	})
}

// Retry un-quarantines a job: the same spec re-enqueues with a fresh
// attempt budget window. The attempt history stays monotonic — the new
// window simply starts at the current count — and the retry| state row
// makes both the un-quarantine and the window survive restarts.
func (s *Scheduler) Retry(id string) (*Handle, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("jobs: no job %s", id)
	}
	if j.state != StateQuarantined {
		s.mu.Unlock()
		return nil, fmt.Errorf("jobs: job %s is %s, not quarantined", id, j.state)
	}
	if s.closing {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Fresh Job (the old done channel already closed; waiters saw the
	// quarantine), same identity and submission parameters.
	nj := s.newJob(id, j.spec, SubmitOptions{Tenant: j.tenant, Priority: j.priority, Timeout: j.timeout})
	nj.parent = j.parent
	nj.attempts = j.attempts
	nj.budgetBase = j.attempts
	nj.submits = j.submits + 1
	s.jobs[id] = nj
	s.mu.Unlock()

	if s.state != nil {
		if rerr := s.state.Record(fmt.Sprintf("retry|%s|%d", id, nj.budgetBase), struct{}{}); rerr != nil {
			s.log.Error("retry not journaled", "job", id, "err", rerr.Error())
		}
	}
	s.log.Info("job retried from quarantine", "job", id, "attempts", nj.attempts)
	s.events.Emit("job.retried", id, map[string]any{"attempts": nj.attempts})

	s.mu.Lock()
	if s.closing {
		// Lost the race with Close: put the quarantined entry back so the
		// job is not left queued for a pool that has stopped.
		s.jobs[id] = j
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.enqueueLocked(nj)
	s.mu.Unlock()
	return &Handle{s, nj}, nil
}

// eventFields condenses a spec into the detail fields its lifecycle
// events carry.
func eventFields(spec Spec) map[string]any {
	f := map[string]any{"kind": spec.Kind}
	if spec.Fig != "" {
		f["fig"] = spec.Fig
	}
	if spec.ShardCount > 1 {
		f["shard_index"] = spec.ShardIndex
		f["shard_count"] = spec.ShardCount
	}
	return f
}

// Get returns a handle on the job with the given id.
func (s *Scheduler) Get(id string) (*Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return &Handle{s, j}, true
}

// Cancel cooperatively cancels a job: a queued job completes immediately
// as canceled; a running one stops at its next row boundary with its
// partial artifacts. It reports whether a live job was found.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.state == StateDone || j.state == StateFailed || j.state == StateCanceled || j.state == StateInterrupted || j.state == StateQuarantined {
		s.mu.Unlock()
		return false
	}
	j.userCanceled = true
	if j.state == StateQueued {
		// Reap it from its queue so a worker never picks it up. When a
		// worker already dequeued it (but has not started it yet), leave
		// completion to that worker's userCanceled check — completing from
		// both sides would double-close the done channel.
		q := s.queues[j.tenant]
		for i, other := range q {
			if other == j {
				s.queues[j.tenant] = append(q[:i:i], q[i+1:]...)
				s.queued--
				s.mu.Unlock()
				s.completeJob(j, nil, fmt.Errorf("%w: canceled while queued", runctl.ErrCanceled))
				return true
			}
		}
	}
	cancel := j.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// List snapshots every known job in submission order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].submittedAt.Equal(jobs[b].submittedAt) {
			return jobs[a].id < jobs[b].id
		}
		return jobs[a].submittedAt.Before(jobs[b].submittedAt)
	})
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = s.status(j)
	}
	return out
}

// status snapshots one job under the scheduler lock.
func (s *Scheduler) status(j *Job) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID:          j.id,
		Kind:        j.spec.Kind,
		Fig:         j.spec.Fig,
		Tenant:      j.tenant,
		Priority:    j.priority,
		State:       j.state,
		Submits:     j.submits,
		Attempts:    j.attempts,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	for name := range j.artifacts {
		st.Artifacts = append(st.Artifacts, name)
	}
	sort.Strings(st.Artifacts)
	return st
}

// Close stops the scheduler: running jobs are cooperatively canceled (and
// left interrupted, so a durable scheduler resumes them), queued jobs
// stay queued in the state journal, and workers are waited for until ctx
// expires. A nil ctx waits without bound.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosing := s.closing
	s.closing = true
	for _, j := range s.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if ctx != nil {
		select {
		case <-done:
		case <-ctx.Done():
			return fmt.Errorf("jobs: close: %w", ctx.Err())
		}
	} else {
		<-done
	}
	if !alreadyClosing && s.state != nil {
		return s.state.Close()
	}
	return nil
}

// cutPrefix is strings.CutPrefix (kept local for the 1.22 floor's sake).
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// jsonUnmarshal decodes data into v, reporting success; a malformed state
// row is skipped rather than fatal (the journal CRC already screens real
// corruption — this guards against version skew).
func jsonUnmarshal(data []byte, v any) bool {
	return json.Unmarshal(data, v) == nil
}

// jsonMarshalIndent renders v as pretty-printed JSON with a trailing
// newline (the shape `curl | jq`-free users expect from an artifact).
func jsonMarshalIndent(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
