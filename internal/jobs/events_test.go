package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// eventTypes filters the log down to one job's event type sequence.
func eventTypes(log *obs.EventLog, job string) []string {
	var out []string
	for _, ev := range log.Events(0) {
		if ev.Job == job {
			out = append(out, ev.Type)
		}
	}
	return out
}

// TestSchedulerEvents: a scheduler with an event log narrates every job's
// lifecycle — submitted, started, done in order — plus dedup and failure
// events, and the log survives a reopen with identical contents.
func TestSchedulerEvents(t *testing.T) {
	dir := t.TempDir()
	log, err := obs.OpenEventLog(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		if j.spec.Fig == "boom" {
			return nil, errors.New("synthetic failure")
		}
		return Artifacts{"out": []byte("ok")}, nil
	})
	s := newTestScheduler(t, Options{Workers: 1, Events: log})

	h := mustSubmit(t, s, testSpec("good"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A resubmission of the finished spec dedups without re-running.
	mustSubmit(t, s, testSpec("good"), SubmitOptions{})

	hb := mustSubmit(t, s, testSpec("boom"), SubmitOptions{})
	if _, err := hb.Wait(context.Background()); err == nil {
		t.Fatal("boom job succeeded")
	}

	got := eventTypes(log, h.ID())
	want := []string{"job.submitted", "job.started", "job.done", "job.dedup"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("good job events = %v, want %v", got, want)
	}
	gotB := eventTypes(log, hb.ID())
	wantB := []string{"job.submitted", "job.started", "job.failed"}
	if fmt.Sprint(gotB) != fmt.Sprint(wantB) {
		t.Errorf("failed job events = %v, want %v", gotB, wantB)
	}

	// The journal replays identically after a close/reopen cycle.
	before, err := json.Marshal(log.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := obs.OpenEventLog(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	after, err := json.Marshal(reopened.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("reopened event log differs:\n%s\nwant:\n%s", after, before)
	}
}

// TestPanicEvent: a panicking job emits panic.recovered with the
// recovered value before its terminal job.failed event.
func TestPanicEvent(t *testing.T) {
	log := obs.NewEventLog()
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		panic("kaboom")
	})
	s := newTestScheduler(t, Options{Workers: 1, Events: log})
	h := mustSubmit(t, s, testSpec("panics"), SubmitOptions{})
	if _, err := h.Wait(context.Background()); err == nil {
		t.Fatal("panicking job succeeded")
	}
	var sawPanic bool
	for _, ev := range log.Events(0) {
		if ev.Job == h.ID() && ev.Type == "panic.recovered" {
			sawPanic = true
			if ev.Fields["value"] != "kaboom" {
				t.Errorf("panic value = %v, want kaboom", ev.Fields["value"])
			}
		}
	}
	if !sawPanic {
		t.Errorf("no panic.recovered event; got %v", eventTypes(log, h.ID()))
	}
}

// traceSpanID normalizes a span/parent id from a parsed trace, where JSON
// round-tripping turns int64 into float64.
func traceSpanID(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case float64:
		return int64(n), true
	}
	return 0, false
}

// TestShardedSweepMergedTrace: a 2-shard sweep produces the merged
// ArtifactTrace — one Chrome trace holding the coordinator's sweep span
// plus every worker's spans in separate process lanes, with every worker
// root reconnected to the sweep span across the process boundary.
func TestShardedSweepMergedTrace(t *testing.T) {
	log := obs.NewEventLog()
	s := newTestScheduler(t, Options{Workers: 2, Dir: t.TempDir(), Events: log})
	h, err := s.SubmitSharded(tinyFigSpec(), 2, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	art, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data := art[ArtifactTrace]
	if len(data) == 0 {
		t.Fatal("sweep produced no merged trace artifact")
	}
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	// Three process lanes: the coordinator plus one per worker, each
	// announced by a process_name metadata event.
	lanes := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			name, _ := ev.Args["name"].(string)
			lanes[ev.PID] = name
		}
	}
	if len(lanes) != 3 {
		t.Fatalf("merged trace has %d process lanes (%v), want 3", len(lanes), lanes)
	}
	coordPID := -1
	for pid, name := range lanes {
		if name == "coordinator" {
			coordPID = pid
		}
	}
	if coordPID == -1 {
		t.Fatalf("no coordinator lane in %v", lanes)
	}

	// The sweep span exists exactly once; every span id is globally
	// unique; no unresolved cross-process references survive the merge.
	spanIDs := map[int64]bool{}
	var sweepID int64
	workerRoots := map[int]int64{} // pid → parent of its fig.6a root span
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id, ok := traceSpanID(ev.Args["span_id"])
		if !ok {
			t.Fatalf("span %q has no span_id", ev.Name)
		}
		if spanIDs[id] {
			t.Errorf("span id %d appears twice", id)
		}
		spanIDs[id] = true
		if _, ok := ev.Args["parent_ref"]; ok {
			t.Errorf("span %q kept an unresolved parent_ref", ev.Name)
		}
		switch ev.Name {
		case "sweep.6a":
			sweepID = id
		case "fig.6a":
			// The coordinator renders the merge through its own fig.6a
			// span; only worker-lane roots cross a process boundary.
			if ev.PID == coordPID {
				break
			}
			if p, ok := traceSpanID(ev.Args["parent_id"]); ok {
				workerRoots[ev.PID] = p
			} else {
				t.Errorf("worker root in pid %d has no parent", ev.PID)
			}
		}
	}
	if sweepID == 0 {
		t.Fatal("merged trace has no sweep.6a span")
	}
	if len(workerRoots) != 2 {
		t.Fatalf("found %d worker fig.6a roots, want 2", len(workerRoots))
	}
	for pid, parent := range workerRoots {
		if parent != sweepID {
			t.Errorf("worker pid %d root parent = %d, want sweep span %d", pid, parent, sweepID)
		}
	}

	// Every parent_id must reference a span present in the merged trace.
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if p, ok := traceSpanID(ev.Args["parent_id"]); ok && !spanIDs[p] {
			t.Errorf("span %q parent %d not in trace", ev.Name, p)
		}
	}

	// The sweep's lifecycle narration bookends the merge.
	types := eventTypes(log, h.ID())
	var sawSubmitted, sawMerged bool
	for i, typ := range types {
		switch typ {
		case "sweep.submitted":
			sawSubmitted = true
		case "sweep.merged":
			sawMerged = true
			if !sawSubmitted {
				t.Errorf("sweep.merged at %d before sweep.submitted: %v", i, types)
			}
		}
	}
	if !sawSubmitted || !sawMerged {
		t.Errorf("sweep events missing submitted/merged: %v", types)
	}
}
