package jobs

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runctl"
	"repro/internal/specio"
	"repro/internal/taskgen"
)

// testSpec builds a distinct kindTest spec; the label rides in Fig so two
// labels fingerprint differently.
func testSpec(label string) Spec { return Spec{Kind: kindTest, Fig: label} }

// withHook installs a test runner for kindTest jobs for the duration of
// the test. Tests that use it mutate package globals, so none of them run
// in parallel.
func withHook(t *testing.T, hook func(ctx context.Context, j *Job) (Artifacts, error)) {
	t.Helper()
	testRunHook = hook
	t.Cleanup(func() { testRunHook = nil })
}

func newTestScheduler(t *testing.T, o Options) *Scheduler {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s
}

func mustSubmit(t *testing.T, s *Scheduler, spec Spec, so SubmitOptions) *Handle {
	t.Helper()
	h, err := s.Submit(spec, so)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFairShare: with one worker and two tenants, the queue round-robins
// between the tenants (a deep backlog from tenant A cannot starve B) and
// serves higher priorities first within a tenant.
func TestFairShare(t *testing.T) {
	started := make(chan string)
	proceed := make(chan struct{})
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		started <- j.spec.Fig
		<-proceed
		return Artifacts{"out": []byte(j.spec.Fig)}, nil
	})
	s := newTestScheduler(t, Options{Workers: 1})

	// a1 occupies the sole worker while the backlog builds up.
	h1 := mustSubmit(t, s, testSpec("a1"), SubmitOptions{Tenant: "A"})
	if got := <-started; got != "a1" {
		t.Fatalf("first job %q, want a1", got)
	}
	var handles []*Handle
	handles = append(handles, mustSubmit(t, s, testSpec("a2"), SubmitOptions{Tenant: "A"}))
	handles = append(handles, mustSubmit(t, s, testSpec("a3"), SubmitOptions{Tenant: "A", Priority: 5}))
	handles = append(handles, mustSubmit(t, s, testSpec("a4"), SubmitOptions{Tenant: "A"}))
	handles = append(handles, mustSubmit(t, s, testSpec("b1"), SubmitOptions{Tenant: "B"}))
	handles = append(handles, mustSubmit(t, s, testSpec("b2"), SubmitOptions{Tenant: "B"}))

	// Tenant A was served last (a1), so B goes next; then A's highest
	// priority (a3), then B again, then A FIFO.
	want := []string{"b1", "a3", "b2", "a2", "a4"}
	proceed <- struct{}{} // release a1
	for _, w := range want {
		got := <-started
		if got != w {
			t.Errorf("execution order got %q, want %q", got, w)
		}
		proceed <- struct{}{}
	}
	for _, h := range append(handles, h1) {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Errorf("job %s: %v", h.ID(), err)
		}
	}
}

// TestDedup: the same spec submitted twice runs once — both handles share
// the job and its artifacts — and a third submission after completion is
// served from the finished job without running anything.
func TestDedup(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		runs.Add(1)
		<-release
		return Artifacts{"out": []byte("result")}, nil
	})
	s := newTestScheduler(t, Options{Workers: 2})

	h1 := mustSubmit(t, s, testSpec("same"), SubmitOptions{})
	h2 := mustSubmit(t, s, testSpec("same"), SubmitOptions{})
	if h1.ID() != h2.ID() {
		t.Fatalf("ids differ: %s vs %s", h1.ID(), h2.ID())
	}
	close(release)
	a1, err1 := h1.Wait(context.Background())
	a2, err2 := h2.Wait(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(a1["out"], a2["out"]) {
		t.Error("handles returned different artifacts")
	}
	if runs.Load() != 1 {
		t.Errorf("spec ran %d times, want 1", runs.Load())
	}

	h3 := mustSubmit(t, s, testSpec("same"), SubmitOptions{})
	a3, err := h3.Wait(context.Background())
	if err != nil || string(a3["out"]) != "result" {
		t.Errorf("post-completion dedup: %v %q", err, a3["out"])
	}
	if runs.Load() != 1 {
		t.Errorf("completed spec re-ran (runs=%d)", runs.Load())
	}
	if st := h3.Status(); st.Submits != 3 {
		t.Errorf("submits = %d, want 3", st.Submits)
	}
}

// TestCancelQueued: canceling a job that is still waiting completes it
// immediately as canceled, without ever running it.
func TestCancelQueued(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	running := make(chan struct{})
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		if j.spec.Fig == "blocker" {
			close(running)
			<-release
			return nil, nil
		}
		runs.Add(1)
		return nil, nil
	})
	s := newTestScheduler(t, Options{Workers: 1})
	mustSubmit(t, s, testSpec("blocker"), SubmitOptions{})
	<-running
	h := mustSubmit(t, s, testSpec("victim"), SubmitOptions{})
	if !s.Cancel(h.ID()) {
		t.Fatal("Cancel found no job")
	}
	_, err := h.Wait(context.Background())
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st := h.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
	close(release)
	s.Close(context.Background())
	if runs.Load() != 0 {
		t.Error("canceled queued job still ran")
	}
}

// TestCancelRunning: canceling a running job cancels its context; the
// runner's typed cancel error surfaces as state canceled (a user cancel,
// so it is final — not interrupted/resumable).
func TestCancelRunning(t *testing.T) {
	running := make(chan struct{})
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		close(running)
		<-ctx.Done()
		return Artifacts{"partial": []byte("p")}, runctl.Err(ctx)
	})
	s := newTestScheduler(t, Options{Workers: 1})
	h := mustSubmit(t, s, testSpec("c"), SubmitOptions{})
	<-running
	if !s.Cancel(h.ID()) {
		t.Fatal("Cancel found no job")
	}
	art, err := h.Wait(context.Background())
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if string(art["partial"]) != "p" {
		t.Error("canceled job lost its partial artifacts")
	}
	if st := h.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
}

// TestJobTimeout: a per-job timeout cancels the run with a deadline
// error; the outcome is final (failed), not a resumable interruption.
func TestJobTimeout(t *testing.T) {
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		<-ctx.Done()
		return nil, runctl.Err(ctx)
	})
	s := newTestScheduler(t, Options{Workers: 1})
	h := mustSubmit(t, s, testSpec("slow"), SubmitOptions{Timeout: time.Millisecond})
	_, err := h.Wait(context.Background())
	if !errors.Is(err, runctl.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if st := h.Status(); st.State != StateFailed {
		t.Errorf("state = %s, want failed", st.State)
	}
}

// TestResubmitAfterCancel: a canceled fingerprint is not poisoned — the
// next submission of the same spec runs it fresh.
func TestResubmitAfterCancel(t *testing.T) {
	var canceled atomic.Bool
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		if canceled.CompareAndSwap(false, true) {
			<-ctx.Done()
			return nil, runctl.Err(ctx)
		}
		return Artifacts{"out": []byte("ok")}, nil
	})
	s := newTestScheduler(t, Options{Workers: 1})
	h1 := mustSubmit(t, s, testSpec("again"), SubmitOptions{})
	for {
		if st := h1.Status(); st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Cancel(h1.ID())
	if _, err := h1.Wait(context.Background()); !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	h2 := mustSubmit(t, s, testSpec("again"), SubmitOptions{})
	art, err := h2.Wait(context.Background())
	if err != nil || string(art["out"]) != "ok" {
		t.Fatalf("resubmitted job: %v %q", err, art["out"])
	}
}

// TestValidation: malformed specs are rejected at Submit.
func TestValidation(t *testing.T) {
	s := newTestScheduler(t, Options{})
	bad := []Spec{
		{},
		{Kind: "mystery"},
		{Kind: KindFigure, Fig: "6z"},
		{Kind: KindFigure, Fig: "6a"},                               // no apps
		{Kind: KindFigure, Fig: "6a", Apps: 2},                      // no procs
		{Kind: KindDesign},                                          // no document
		{Kind: KindDesign, Design: []byte("{}"), Strategy: "BEST"},  // bad strategy
		{Kind: KindDesign, Design: []byte("{}"), Slack: "borrowed"}, // bad slack
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec, SubmitOptions{}); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
}

// tinyFigSpec is the cheapest real figure workload (mirrors the
// experiments package's tinyConfig).
func tinyFigSpec() Spec {
	return Spec{Kind: KindFigure, Fig: "6a", Apps: 2, Procs: []int{20}, Seed: 3}
}

// TestFigureJobArtifact: a real figure job produces the rendered table as
// its artifact.
func TestFigureJobArtifact(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	h := mustSubmit(t, s, tinyFigSpec(), SubmitOptions{})
	art, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	table := art[ArtifactTable]
	if !bytes.Contains(table, []byte("Fig. 6a")) {
		t.Errorf("table artifact missing title:\n%s", table)
	}
	if st := h.Status(); st.State != StateDone || len(st.Artifacts) != 1 || st.Artifacts[0] != ArtifactTable {
		t.Errorf("status = %+v", st)
	}
}

// TestCrashResume: a durable scheduler whose process "dies" mid-figure —
// the run context is torn down after one fresh row, the completion never
// journaled — resumes the job on the next start and produces an artifact
// byte-identical to an uninterrupted run, restoring the finished rows
// from the per-job row journal instead of recomputing them.
func TestCrashResume(t *testing.T) {
	// Clean reference run (own scheduler, no durability).
	clean := newTestScheduler(t, Options{Workers: 1})
	want, err := mustSubmit(t, clean, tinyFigSpec(), SubmitOptions{}).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fresh atomic.Int64
	testFigRowDone = func(jobID, key string) {
		// The "crash": after the first freshly computed row, the operator
		// context goes away mid-job.
		if fresh.Add(1) == 1 {
			cancel()
		}
	}
	t.Cleanup(func() { testFigRowDone = nil })

	s1, err := New(Options{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s1.Submit(tinyFigSpec(), SubmitOptions{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Wait(context.Background()); !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("torn-down job err = %v, want ErrCanceled", err)
	}
	if st := h1.Status(); st.State != StateInterrupted {
		t.Fatalf("state = %s, want interrupted", st.State)
	}
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	testFigRowDone = nil
	if fresh.Load() == 0 {
		t.Fatal("no row completed before the tear-down")
	}

	// Restart over the same state dir: the in-flight job re-enqueues and
	// finishes from where the row journal left off. (Two live schedulers
	// cannot share a state dir — the journal flock forbids it — so each
	// restart closes the previous instance first.)
	s2, err := New(Options{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Resumed() != 1 {
		t.Fatalf("Resumed() = %d, want 1", s2.Resumed())
	}
	h2, ok := s2.Get(h1.ID())
	if !ok {
		t.Fatal("resumed job not found by id")
	}
	got, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[ArtifactTable], want[ArtifactTable]) {
		t.Errorf("resumed artifact differs from clean run:\n%s\nwant:\n%s",
			got[ArtifactTable], want[ArtifactTable])
	}
	if err := s2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Third start over the same dir: the job is now done in the state
	// journal, so it restores resolved and a resubmission is a dedup hit.
	s3 := newTestScheduler(t, Options{Workers: 1, Dir: dir})
	if s3.Resumed() != 0 {
		t.Fatalf("Resumed() after completion = %d, want 0", s3.Resumed())
	}
	h3, err := s3.Submit(tinyFigSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got3, err := h3.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got3[ArtifactTable], want[ArtifactTable]) {
		t.Error("restored done artifact differs from clean run")
	}
}

// TestCloseInterruptsRunning: Close cancels a running job and leaves it
// interrupted (resumable), not failed.
func TestCloseInterruptsRunning(t *testing.T) {
	running := make(chan struct{})
	withHook(t, func(ctx context.Context, j *Job) (Artifacts, error) {
		close(running)
		<-ctx.Done()
		return nil, runctl.Err(ctx)
	})
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit(testSpec("x"), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st.State != StateInterrupted {
		t.Errorf("state = %s, want interrupted", st.State)
	}
	if _, err := s.Submit(testSpec("y"), SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// designSpec builds a KindDesign spec over a small generated instance.
func designSpec(t *testing.T) Spec {
	t.Helper()
	inst, err := taskgen.Generate(taskgen.DefaultConfig(3, 10, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	doc := &specio.Spec{Application: inst.App, Platform: inst.Platform,
		Gamma: inst.Goal.Gamma, TauMs: inst.Goal.Tau}
	if err := specio.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return Spec{Kind: KindDesign, Design: buf.Bytes(), MaxCost: 20}
}

// TestDesignJob: a design job over a generated specio document produces
// the text and JSON result artifacts.
func TestDesignJob(t *testing.T) {
	spec := designSpec(t)
	s := newTestScheduler(t, Options{Workers: 1})
	h := mustSubmit(t, s, spec, SubmitOptions{})
	art, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(art[ArtifactResultText], []byte("strategy:    OPT")) {
		t.Errorf("result.txt:\n%s", art[ArtifactResultText])
	}
	if !bytes.Contains(art[ArtifactResultJSON], []byte("\"feasible\"")) {
		t.Errorf("result.json:\n%s", art[ArtifactResultJSON])
	}
}
