// Package jobs is the reusable orchestration layer behind cmd/paperbench
// and cmd/ftesd: a design exploration expressed as a Job (spec →
// fingerprint → run → artifacts) executed by a Scheduler with a
// priority + fair-share queue, a bounded worker pool, per-job cooperative
// timeouts and journal-backed durability.
//
// A Job's identity is the runstate fingerprint of its Spec, which makes
// jobs content-addressable: two identical submissions — the same figure
// over the same workload, or the same specio design problem — share one
// underlying run, and both submitters see its result. With a state
// directory configured, every submission and completion is journaled;
// after a crash (including SIGKILL) the next Scheduler re-enqueues every
// in-flight job, and figure jobs additionally resume row by row from
// their per-job row journal, so the re-produced artifact is byte-identical
// to an uninterrupted run.
//
// Everything the figures need from PRs 2–5 — context cancellation with
// deterministic partial results, panic isolation at worker boundaries,
// runstate journals, per-job obs instruments servable over obshttp — is
// wired through here, so the binaries stay thin clients.
package jobs

import (
	"fmt"
	"time"

	"encoding/json"

	"repro/internal/obs"
	"repro/internal/runstate"
)

// Job kinds.
const (
	// KindFigure regenerates one paperbench figure (a table artifact).
	KindFigure = "figure"
	// KindDesign runs one design optimization over a specio document.
	KindDesign = "design"
	// kindTest is reserved for scheduler tests (a hook-provided runner).
	kindTest = "test"
)

// ArtifactTable is the artifact name of a figure job's rendered table —
// byte-identical to what cmd/paperbench prints for the same flags.
const ArtifactTable = "table.txt"

// ArtifactTrace is the artifact name of a sharded sweep's merged Chrome
// trace: the coordinator's spans plus every worker's trace snapshot,
// stitched by obs.MergeTraces into one cross-process timeline.
const ArtifactTrace = "trace.json"

// ArtifactIncomplete is the artifact name of a partial (degraded) merge's
// machine-readable gap report: which rows are missing and which shard
// owns each, so an operator knows exactly what to re-run.
const ArtifactIncomplete = "incomplete.json"

// Artifact names of a design job.
const (
	// ArtifactResultText is the human-readable design summary.
	ArtifactResultText = "result.txt"
	// ArtifactResultJSON is the machine-readable design result.
	ArtifactResultJSON = "result.json"
)

// Spec is the content of a job: everything that determines its result,
// and nothing else — observability, tenancy, priorities and timeouts
// live in SubmitOptions precisely so that they do not perturb the
// fingerprint two identical explorations share.
type Spec struct {
	// Kind selects the runner: KindFigure or KindDesign.
	Kind string `json:"kind"`

	// Figure jobs (KindFigure).

	// Fig names the figure: 6a, 6b, 6c, 6d, cc, policies, simulation,
	// runtime or ablation.
	Fig string `json:"fig,omitempty"`
	// Apps is the number of synthetic applications per process count.
	Apps int `json:"apps,omitempty"`
	// Procs lists the application sizes.
	Procs []int `json:"procs,omitempty"`
	// Seed bases the deterministic workload generation.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds batch parallelism across applications (0 = cores).
	Workers int `json:"workers,omitempty"`
	// RunWorkers parallelizes inside each design run (results identical).
	RunWorkers int `json:"run_workers,omitempty"`
	// AppTimeout is the per-application deadline (0 = none).
	AppTimeout time.Duration `json:"app_timeout,omitempty"`
	// Markdown renders tables as Markdown instead of ASCII.
	Markdown bool `json:"markdown,omitempty"`
	// ShardIndex/ShardCount make a figure job one slice of a sharded
	// sweep: with ShardCount > 1 the job computes only the rows
	// shard.Index assigns to ShardIndex, journaling them into the sweep's
	// shard directory for a later merge. Both participate in the
	// fingerprint, so every slice is its own content-addressed job.
	// Only shardable figures (ShardableFigure) accept them.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`

	// Design jobs (KindDesign).

	// Design is the specio problem document.
	Design json.RawMessage `json:"design,omitempty"`
	// Strategy is OPT (default), MIN or MAX.
	Strategy string `json:"strategy,omitempty"`
	// MaxCost is the architecture cost bound ArC (0 = unbounded).
	MaxCost float64 `json:"max_cost,omitempty"`
	// Slack is the recovery-slack model: shared (default) or per-process.
	Slack string `json:"slack,omitempty"`
}

// figureTitles maps figure names to the display titles paperbench prints.
var figureTitles = map[string]string{
	"6a":         "Fig. 6a",
	"6b":         "Fig. 6b",
	"6c":         "Fig. 6c",
	"6d":         "Fig. 6d",
	"cc":         "Cruise controller",
	"policies":   "Policy comparison",
	"simulation": "Simulation vs analysis",
	"runtime":    "Strategy runtime",
	"ablation":   "Ablations",
}

// figureOrder is the canonical "-fig all" execution order.
var figureOrder = []string{"6a", "6b", "6c", "6d", "cc", "policies", "simulation", "runtime", "ablation"}

// FigureOrder returns the canonical figure order of a full run.
func FigureOrder() []string {
	out := make([]string, len(figureOrder))
	copy(out, figureOrder)
	return out
}

// KnownFigure reports whether fig names a figure job.
func KnownFigure(fig string) bool { _, ok := figureTitles[fig]; return ok }

// shardableFigures are the figures whose every row is journaled under a
// deterministic key, which is what sharding requires: a merge reassembles
// the table purely from journaled rows. The other figures (cc, policies,
// simulation, ablation) compute rows outside the journal and would
// silently recompute during a merge, so they are refused.
var shardableFigures = map[string]bool{
	"6a": true, "6b": true, "6c": true, "6d": true, "runtime": true,
}

// ShardableFigure reports whether fig can run as a sharded sweep.
func ShardableFigure(fig string) bool { return shardableFigures[fig] }

// FigureTitle returns the display title of a figure ("" when unknown).
func FigureTitle(fig string) string { return figureTitles[fig] }

// Validate checks that the spec describes a runnable job.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindFigure:
		if !KnownFigure(s.Fig) {
			return fmt.Errorf("jobs: unknown figure %q", s.Fig)
		}
		if s.Fig != "cc" {
			if s.Apps <= 0 {
				return fmt.Errorf("jobs: figure %s needs apps > 0", s.Fig)
			}
			if len(s.Procs) == 0 {
				return fmt.Errorf("jobs: figure %s needs at least one process count", s.Fig)
			}
		}
		if s.ShardCount != 0 || s.ShardIndex != 0 {
			if s.ShardCount < 2 {
				return fmt.Errorf("jobs: shard count %d (want ≥ 2, or 0 for an unsharded job)", s.ShardCount)
			}
			if s.ShardIndex < 0 || s.ShardIndex >= s.ShardCount {
				return fmt.Errorf("jobs: shard index %d out of range [0, %d)", s.ShardIndex, s.ShardCount)
			}
			if !ShardableFigure(s.Fig) {
				return fmt.Errorf("jobs: figure %s is not shardable (its rows are not fully journaled; shardable: 6a, 6b, 6c, 6d, runtime)", s.Fig)
			}
		}
		return nil
	case KindDesign:
		if len(s.Design) == 0 {
			return fmt.Errorf("jobs: design job has no specio document")
		}
		switch s.Strategy {
		case "", "OPT", "MIN", "MAX":
		default:
			return fmt.Errorf("jobs: unknown strategy %q (want OPT, MIN or MAX)", s.Strategy)
		}
		switch s.Slack {
		case "", "shared", "per-process":
		default:
			return fmt.Errorf("jobs: unknown slack model %q (want shared or per-process)", s.Slack)
		}
		return nil
	case kindTest:
		if testRunHook == nil {
			return fmt.Errorf("jobs: test jobs need a test hook")
		}
		return nil
	default:
		return fmt.Errorf("jobs: unknown job kind %q (want %s or %s)", s.Kind, KindFigure, KindDesign)
	}
}

// Fingerprint derives the job's content-addressed identity. Identical
// specs fingerprint identically, which is what drives submission dedup
// and binds each per-job row journal to exactly one spec.
func (s Spec) Fingerprint() (string, error) { return runstate.Fingerprint(s) }

// Artifacts are a job's result files by name. Figure jobs produce
// ArtifactTable; design jobs produce ArtifactResultText and
// ArtifactResultJSON. A canceled job's artifacts hold its deterministic
// best-so-far partial output.
type Artifacts map[string][]byte

// Instruments bundles a job's observability hooks. The scheduler creates
// a fresh set per job unless the submitter provides one (paperbench
// passes its process-wide instruments so -serve, -trace and -metrics see
// every figure in one place; ftesd keeps the default per-job set and
// mounts obshttp handlers on it).
type Instruments struct {
	Tracer   *obs.Tracer
	Metrics  *obs.Registry
	Progress *obs.Progress
	Log      *obs.Logger
	// Events is the job's scope into the scheduler's event log. The
	// scheduler fills it in when Options.Events is configured and the
	// submitter left it nil; runners emit low-rate lifecycle events
	// (app timeouts, shard resumes) through it.
	Events *obs.EventScope
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Fig      string `json:"fig,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// State is queued, running, done, failed, canceled, interrupted
	// (stopped by a scheduler shutdown; it resumes on the next start when
	// a state directory is configured) or quarantined (failed permanently
	// or exhausted its retry budget; held until Retry re-opens it).
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Submits counts submissions collapsed into this job (≥ 1); values
	// above 1 are deduplicated resubmissions of the same spec.
	Submits int `json:"submits"`
	// Attempts counts runs started across the job's durable life,
	// monotonic across crashes, restarts and manual retries.
	Attempts    int       `json:"attempts,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// Artifacts lists the artifact names available once the job is done.
	Artifacts []string `json:"artifacts,omitempty"`
}

// Job states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted"
	StateQuarantined = "quarantined"
)
