package wcetan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
)

func TestBlockCycles(t *testing.T) {
	c, err := Block{Name: "b", N: 42}.Cycles()
	if err != nil || c != 42 {
		t.Errorf("cycles = %d, %v", c, err)
	}
	if _, err := (Block{Name: "b", N: -1}).Cycles(); err == nil {
		t.Error("want error for negative cycles")
	}
}

func TestSeqCycles(t *testing.T) {
	s := Seq{Block{N: 10}, Block{N: 20}, Block{N: 30}}
	c, err := s.Cycles()
	if err != nil || c != 60 {
		t.Errorf("cycles = %d, %v", c, err)
	}
	if _, err := (Seq{Block{N: 1}, nil}).Cycles(); err == nil {
		t.Error("want error for nil fragment")
	}
	if c, _ := (Seq{}).Cycles(); c != 0 {
		t.Error("empty sequence should cost 0")
	}
}

func TestBranchCycles(t *testing.T) {
	b := Branch{TestCycles: 5, Alternatives: []Node{Block{N: 10}, Block{N: 100}, Block{N: 50}}}
	c, err := b.Cycles()
	if err != nil || c != 105 {
		t.Errorf("cycles = %d, %v (want test + worst alternative)", c, err)
	}
	// Plain test without alternatives.
	c, err = Branch{TestCycles: 7}.Cycles()
	if err != nil || c != 7 {
		t.Errorf("plain test = %d, %v", c, err)
	}
	if _, err := (Branch{TestCycles: -1}).Cycles(); err == nil {
		t.Error("want error for negative test cost")
	}
	if _, err := (Branch{Alternatives: []Node{nil}}).Cycles(); err == nil {
		t.Error("want error for nil alternative")
	}
}

func TestLoopCycles(t *testing.T) {
	l := Loop{Body: Block{N: 100}, Bound: 10, TestCycles: 2}
	c, err := l.Cycles()
	if err != nil || c != 10*(2+100)+2 {
		t.Errorf("cycles = %d, %v", c, err)
	}
	if _, err := (Loop{Body: Block{N: 1}, Bound: -1}).Cycles(); err == nil {
		t.Error("want error for negative bound")
	}
	if _, err := (Loop{Bound: 1}).Cycles(); err == nil {
		t.Error("want error for missing body")
	}
	if _, err := (Loop{Body: Block{N: 1}, Bound: 1, TestCycles: -1}).Cycles(); err == nil {
		t.Error("want error for negative test cost")
	}
	// Zero-bound loop costs only the exit test.
	c, err = Loop{Body: Block{N: 100}, Bound: 0, TestCycles: 3}.Cycles()
	if err != nil || c != 3 {
		t.Errorf("zero-bound loop = %d, %v", c, err)
	}
}

func TestNestedProgram(t *testing.T) {
	// A filter: init, then 8 iterations of (load + conditional update),
	// then writeback.
	p := Program{
		Name: "filter",
		Root: Seq{
			Block{Name: "init", N: 50},
			Loop{
				Bound:      8,
				TestCycles: 2,
				Body: Seq{
					Block{Name: "load", N: 20},
					Branch{TestCycles: 3, Alternatives: []Node{
						Block{Name: "update", N: 40},
						Block{Name: "skip", N: 5},
					}},
				},
			},
			Block{Name: "writeback", N: 30},
		},
	}
	c, err := p.WCETCycles()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(50 + 8*(2+20+3+40) + 2 + 30)
	if c != want {
		t.Errorf("cycles = %d, want %d", c, want)
	}
	ms, err := p.WCETMs(100) // 100 MHz
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-float64(want)/1e5) > 1e-12 {
		t.Errorf("ms = %v", ms)
	}
	if _, err := p.WCETMs(0); err == nil {
		t.Error("want error for zero clock")
	}
	if _, err := (Program{Name: "empty"}).WCETCycles(); err == nil {
		t.Error("want error for empty program")
	}
}

// TestWCETMonotoneInBound: increasing a loop bound can never decrease the
// WCET (a safety property of the timing schema).
func TestWCETMonotoneInBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		body := Seq{Block{N: int64(rng.Intn(100))}, Branch{
			TestCycles:   int64(rng.Intn(5)),
			Alternatives: []Node{Block{N: int64(rng.Intn(50))}, Block{N: int64(rng.Intn(50))}},
		}}
		b1 := int64(rng.Intn(20))
		l1 := Loop{Body: body, Bound: b1, TestCycles: 1}
		l2 := Loop{Body: body, Bound: b1 + 1 + int64(rng.Intn(10)), TestCycles: 1}
		c1, err := l1.Cycles()
		if err != nil {
			t.Fatal(err)
		}
		c2, err := l2.Cycles()
		if err != nil {
			t.Fatal(err)
		}
		if c2 < c1 {
			t.Fatalf("trial %d: WCET decreased with larger bound", trial)
		}
	}
}

func testPrograms() []Program {
	return []Program{
		{Name: "A", Root: Seq{Block{N: 500000}, Loop{Body: Block{N: 10000}, Bound: 100, TestCycles: 10}}},
		{Name: "B", Root: Branch{TestCycles: 100, Alternatives: []Node{Block{N: 2000000}, Block{N: 800000}}}},
	}
}

func TestBuildNode(t *testing.T) {
	spec := NodeSpec{
		ID:          0,
		Name:        "N1",
		ClockMHz:    1000,
		BaseCost:    10,
		Levels:      3,
		HPDPercent:  25,
		SERPerCycle: 1e-11,
	}
	node, err := BuildNode(spec, testPrograms())
	if err != nil {
		t.Fatal(err)
	}
	if len(node.Versions) != 3 {
		t.Fatalf("%d versions", len(node.Versions))
	}
	// The node passes platform validation.
	pl := platform.Platform{Nodes: []platform.Node{*node}, Bus: platform.BusSpec{SlotLen: 1}}
	if err := pl.Validate(2); err != nil {
		t.Fatal(err)
	}
	// WCET at level 1: program A = 500000 + 100×10010 + 10 cycles at
	// 1 GHz, with the 1% nominal degradation.
	wantA := (500000 + 100*10010 + 10) / 1e6 * 1.01
	if math.Abs(node.Versions[0].WCET[0]-wantA) > 1e-9 {
		t.Errorf("WCET[A] = %v, want %v", node.Versions[0].WCET[0], wantA)
	}
	// Failure probability drops by 100× per level (modulo the small WCET
	// growth).
	r := node.Versions[0].FailProb[0] / node.Versions[1].FailProb[0]
	if r < 80 || r > 101 {
		t.Errorf("level 1→2 reduction ratio %v", r)
	}
}

func TestBuildNodeErrors(t *testing.T) {
	good := NodeSpec{Name: "N", ClockMHz: 1000, BaseCost: 1, Levels: 2, SERPerCycle: 1e-11}
	progs := testPrograms()
	for i, mutate := range []func(*NodeSpec, *[]Program){
		func(s *NodeSpec, _ *[]Program) { s.ClockMHz = 0 },
		func(s *NodeSpec, _ *[]Program) { s.Levels = 0 },
		func(s *NodeSpec, _ *[]Program) { s.BaseCost = 0 },
		func(_ *NodeSpec, p *[]Program) { (*p)[0].Root = nil },
		func(_ *NodeSpec, p *[]Program) { (*p)[0].Root = Block{N: 0} },
	} {
		s := good
		ps := append([]Program(nil), progs...)
		mutate(&s, &ps)
		if _, err := BuildNode(s, ps); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}
