// Package wcetan is a worst-case execution time analysis substrate. The
// paper takes its WCETs t_ijh from industrial static analysis tools
// (Ferdinand et al., "Reliable and Precise WCET Determination for a
// Real-life Processor" — reference [2]); this package supplies the
// closest self-contained equivalent: a structured program representation
// (basic blocks, sequences, branches, bounded loops) whose worst-case
// cycle count is computed by longest-path evaluation, plus helpers that
// turn programs into the per-h-version WCET and failure-probability
// tables of a platform node.
//
// The analysis is deliberately of the classical "tree-based" (timing
// schema) kind: WCET(seq) = Σ WCET(child), WCET(branch) = max over
// alternatives, WCET(loop) = bound × WCET(body) + overhead. It is safe
// (never underestimates) for programs without unstructured jumps, which
// is exactly the class the examples construct.
package wcetan

import (
	"fmt"

	"repro/internal/faultsim"
	"repro/internal/platform"
)

// Node is a structured program fragment with a worst-case cycle count.
type Node interface {
	// Cycles returns the worst-case cycle count of the fragment, or an
	// error for malformed fragments.
	Cycles() (int64, error)
}

// Block is a straight-line basic block.
type Block struct {
	Name string
	// N is the worst-case cycle count of the block.
	N int64
}

// Cycles returns the block's cycle count.
func (b Block) Cycles() (int64, error) {
	if b.N < 0 {
		return 0, fmt.Errorf("wcetan: block %q has negative cycle count %d", b.Name, b.N)
	}
	return b.N, nil
}

// Seq is the sequential composition of fragments.
type Seq []Node

// Cycles sums the children.
func (s Seq) Cycles() (int64, error) {
	var sum int64
	for i, n := range s {
		if n == nil {
			return 0, fmt.Errorf("wcetan: nil fragment at position %d", i)
		}
		c, err := n.Cycles()
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum, nil
}

// Branch is a multi-way conditional; the worst case takes the most
// expensive alternative plus the test itself.
type Branch struct {
	// TestCycles is the cost of evaluating the condition.
	TestCycles int64
	// Alternatives are the branch bodies; an empty alternative set is a
	// plain test.
	Alternatives []Node
}

// Cycles returns test + max(alternatives).
func (b Branch) Cycles() (int64, error) {
	if b.TestCycles < 0 {
		return 0, fmt.Errorf("wcetan: negative test cost %d", b.TestCycles)
	}
	var worst int64
	for i, alt := range b.Alternatives {
		if alt == nil {
			return 0, fmt.Errorf("wcetan: nil alternative %d", i)
		}
		c, err := alt.Cycles()
		if err != nil {
			return 0, err
		}
		if c > worst {
			worst = c
		}
	}
	return b.TestCycles + worst, nil
}

// Loop is a bounded loop: Bound iterations of Body, plus a per-iteration
// condition cost and a final exit test.
type Loop struct {
	Body Node
	// Bound is the maximum iteration count (from flow annotation).
	Bound int64
	// TestCycles is the per-iteration loop-condition cost.
	TestCycles int64
}

// Cycles returns bound × (test + body) + final exit test.
func (l Loop) Cycles() (int64, error) {
	if l.Bound < 0 {
		return 0, fmt.Errorf("wcetan: negative loop bound %d", l.Bound)
	}
	if l.TestCycles < 0 {
		return 0, fmt.Errorf("wcetan: negative loop test cost %d", l.TestCycles)
	}
	if l.Body == nil {
		return 0, fmt.Errorf("wcetan: loop without body")
	}
	body, err := l.Body.Cycles()
	if err != nil {
		return 0, err
	}
	return l.Bound*(l.TestCycles+body) + l.TestCycles, nil
}

// Program is a named structured program — one per process.
type Program struct {
	Name string
	Root Node
}

// WCETCycles returns the worst-case cycle count of the program.
func (p Program) WCETCycles() (int64, error) {
	if p.Root == nil {
		return 0, fmt.Errorf("wcetan: program %q has no body", p.Name)
	}
	return p.Root.Cycles()
}

// WCETMs converts the program's cycle count into milliseconds on a clock
// of clockMHz.
func (p Program) WCETMs(clockMHz float64) (float64, error) {
	if clockMHz <= 0 {
		return 0, fmt.Errorf("wcetan: non-positive clock %v MHz", clockMHz)
	}
	c, err := p.WCETCycles()
	if err != nil {
		return 0, err
	}
	return float64(c) / (clockMHz * 1000), nil
}

// NodeSpec parameterizes BuildNode: how one computation node derives its
// h-version tables from analysed programs.
type NodeSpec struct {
	ID   platform.NodeID
	Name string
	// ClockMHz is the node's clock frequency at minimum hardening.
	ClockMHz float64
	// BaseCost is the cost of the unhardened version; level h costs
	// BaseCost × h.
	BaseCost float64
	// Levels is the number of hardening levels.
	Levels int
	// HPDPercent is the hardening performance degradation at the maximum
	// level (linear in between, as in the paper's experiments).
	HPDPercent float64
	// SERPerCycle is the transient error rate per clock cycle at minimum
	// hardening.
	SERPerCycle float64
	// ReductionPerLevel divides the failure probability per hardening
	// level (default 100, as in the paper's Fig. 3).
	ReductionPerLevel float64
}

// HPDFactor mirrors the generator's per-level WCET multiplier.
func hpdFactor(h, levels int, hpd float64) float64 {
	if h <= 1 || levels <= 1 {
		return 1.01
	}
	return 1 + hpd*float64(h-1)/float64(levels-1)/100
}

// BuildNode analyses every program and assembles a platform node whose
// WCET table comes from the analysis and whose failure probabilities come
// from the fault-injection substrate (p = SER × cycles, reduced per
// hardening level). programs[i] must correspond to process ID i.
func BuildNode(spec NodeSpec, programs []Program) (*platform.Node, error) {
	if spec.ClockMHz <= 0 {
		return nil, fmt.Errorf("wcetan: node %q: non-positive clock", spec.Name)
	}
	if spec.Levels < 1 {
		return nil, fmt.Errorf("wcetan: node %q: no hardening levels", spec.Name)
	}
	if spec.BaseCost <= 0 {
		return nil, fmt.Errorf("wcetan: node %q: non-positive base cost", spec.Name)
	}
	red := spec.ReductionPerLevel
	if red <= 1 {
		red = faultsim.DefaultReductionPerLevel
	}
	node := &platform.Node{ID: spec.ID, Name: spec.Name}
	base := make([]float64, len(programs))
	for i, prog := range programs {
		w, err := prog.WCETMs(spec.ClockMHz)
		if err != nil {
			return nil, fmt.Errorf("wcetan: node %q: process %d: %w", spec.Name, i, err)
		}
		if w <= 0 {
			return nil, fmt.Errorf("wcetan: node %q: program %q has zero WCET", spec.Name, prog.Name)
		}
		base[i] = w
	}
	cyclesPerMs := spec.ClockMHz * 1000
	for h := 1; h <= spec.Levels; h++ {
		factor := hpdFactor(h, spec.Levels, spec.HPDPercent)
		w := make([]float64, len(programs))
		p := make([]float64, len(programs))
		for i := range programs {
			w[i] = base[i] * factor
			p[i] = faultsim.DeriveFailProb(w[i], cyclesPerMs, spec.SERPerCycle, h, red)
		}
		node.Versions = append(node.Versions, platform.HVersion{
			Level:    h,
			Cost:     spec.BaseCost * float64(h),
			WCET:     w,
			FailProb: p,
		})
	}
	return node, nil
}
