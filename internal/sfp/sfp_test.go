package sfp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/paper"
)

// TestAppendixA2Example reproduces the paper's Appendix A.2 computation
// digit for digit: the Fig. 4a architecture (N1^2 with P1, P2 and N2^2 with
// P3, P4), first with k = 0 (goal missed), then with k1 = k2 = 1 (goal
// met).
func TestAppendixA2Example(t *testing.T) {
	n1, err := NewNode([]float64{1.2e-5, 1.3e-5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode([]float64{1.2e-5, 1.3e-5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := n1.PrZero(); got != 0.99997500015 {
		t.Errorf("Pr(0;N1^2) = %.11f, want 0.99997500015", got)
	}
	// Pr(f > 0; N1^2) = 1 − 0.99997500015 = 0.00002499985 per the rounding
	// of formula (4). (The paper prints 0.000024999844 before rounding up;
	// after its own ceil convention the stored value is a 1e-11 multiple.)
	pf0 := n1.FailureProb(0)
	if math.Abs(pf0-(1-0.99997500015)) > 1e-11 {
		t.Errorf("Pr(f>0;N1^2) = %.12f, want ≈%.12f", pf0, 1-0.99997500015)
	}
	// Union with k=0, system reliability over 10000 iterations must miss
	// the goal ρ = 1 − 1e-5 (paper: 0.60652871884).
	union0 := SystemFailureProb([]float64{n1.FailureProb(0), n2.FailureProb(0)})
	rel0 := Reliability(union0, 360, paper.Hour)
	if rel0 >= 1-1e-5 {
		t.Errorf("k=0 reliability %v unexpectedly meets goal", rel0)
	}
	if math.Abs(rel0-0.60652871884) > 1e-3 {
		t.Errorf("k=0 reliability = %.11f, want ≈0.60652871884", rel0)
	}
	// Pr(1; N1^2) = 0.00002499937 (rounded down).
	pr1, err := n1.PrExactly(1)
	if err != nil {
		t.Fatal(err)
	}
	if pr1 != 0.00002499937 {
		t.Errorf("Pr(1;N1^2) = %.11f, want 0.00002499937", pr1)
	}
	// Pr(f > 1; N1^2) = 4.8e-10 (rounded up).
	if got := n1.FailureProb(1); math.Abs(got-4.8e-10) > 1e-21 {
		t.Errorf("Pr(f>1;N1^2) = %g, want 4.8e-10", got)
	}
	// Union = 9.6e-10; reliability = (1 − 9.6e-10)^10000 = 0.99999040004.
	union1 := SystemFailureProb([]float64{n1.FailureProb(1), n2.FailureProb(1)})
	if math.Abs(union1-9.6e-10) > 1e-21 {
		t.Errorf("union = %g, want 9.6e-10", union1)
	}
	rel1 := Reliability(union1, 360, paper.Hour)
	if math.Abs(rel1-0.99999040004) > 1e-11 {
		t.Errorf("k=1 reliability = %.11f, want 0.99999040004", rel1)
	}
	if rel1 < 1-1e-5 {
		t.Error("k=1 should meet the goal ρ = 1 − 1e-5")
	}
}

// TestFig3MinimalK checks the motivational example of Fig. 3: on N1's
// h-versions (p = 4e-2 / 4e-4 / 4e-6), the minimal number of re-executions
// meeting ρ = 1 − 1e-5 per hour with T = 360 ms is 6, 2 and 1.
func TestFig3MinimalK(t *testing.T) {
	goal := Goal{Gamma: paper.Fig3Gamma, Tau: paper.Hour}
	wantK := map[float64]int{4e-2: 6, 4e-4: 2, 4e-6: 1}
	for p, want := range wantK {
		a, err := NewAnalysis([][]float64{{p}}, paper.Fig3Deadline, DefaultMaxK)
		if err != nil {
			t.Fatal(err)
		}
		got := -1
		for k := 0; k <= DefaultMaxK; k++ {
			if a.MeetsGoal([]int{k}, goal) {
				got = k
				break
			}
		}
		if got != want {
			t.Errorf("p=%g: minimal k = %d, want %d", p, got, want)
		}
	}
}

// TestFig4aMinimalKs checks that the Fig. 4a architecture needs exactly
// one re-execution on each node, as stated in Section 5 and Appendix A.2.
func TestFig4aMinimalKs(t *testing.T) {
	goal := Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	a, err := NewAnalysis([][]float64{
		{1.2e-5, 1.3e-5}, // P1, P2 on N1^2
		{1.2e-5, 1.3e-5}, // P3, P4 on N2^2
	}, paper.Fig1Deadline, DefaultMaxK)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeetsGoal([]int{0, 0}, goal) {
		t.Error("k=(0,0) should not meet the goal")
	}
	if a.MeetsGoal([]int{1, 0}, goal) || a.MeetsGoal([]int{0, 1}, goal) {
		t.Error("a single re-execution on one node should not suffice")
	}
	if !a.MeetsGoal([]int{1, 1}, goal) {
		t.Error("k=(1,1) should meet the goal")
	}
}

func TestNodeRejectsBadProbs(t *testing.T) {
	if _, err := NewNode([]float64{-0.1}, 2); err == nil {
		t.Error("want error for negative probability")
	}
	if _, err := NewNode([]float64{1.0}, 2); err == nil {
		t.Error("want error for probability 1")
	}
}

func TestEmptyNode(t *testing.T) {
	n, err := NewNode(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n.PrZero() != 1 {
		t.Errorf("empty node PrZero = %v, want 1", n.PrZero())
	}
	if n.FailureProb(0) != 0 {
		t.Errorf("empty node FailureProb = %v, want 0", n.FailureProb(0))
	}
}

func TestFailureProbMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(10)
		ps := make([]float64, m)
		for i := range ps {
			ps[i] = math.Pow(10, -2-4*rng.Float64()) // 1e-2 .. 1e-6
		}
		n, err := NewNode(ps, 12)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 12; k++ {
			if n.FailureProb(k) > n.FailureProb(k-1) {
				t.Fatalf("trial %d: FailureProb increased from k=%d to k=%d", trial, k-1, k)
			}
		}
		// Probabilities stay in [0,1].
		for k := 0; k <= 12; k++ {
			f := n.FailureProb(k)
			if f < 0 || f > 1 {
				t.Fatalf("FailureProb(%d) = %v outside [0,1]", k, f)
			}
		}
	}
}

func TestFailureProbMonotoneInHardening(t *testing.T) {
	// Lowering every process failure probability (more hardening) cannot
	// increase the node failure probability at any k.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(8)
		soft := make([]float64, m)
		hard := make([]float64, m)
		for i := range soft {
			soft[i] = math.Pow(10, -2-3*rng.Float64())
			hard[i] = soft[i] / 100 // two orders of magnitude, as per hardening levels
		}
		ns, err := NewNode(soft, 8)
		if err != nil {
			t.Fatal(err)
		}
		nh, err := NewNode(hard, 8)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 8; k++ {
			// The paper's pessimistic rounding loses up to one 1e-11 tick
			// per rounded term, so monotonicity holds up to (k+2) ticks.
			slack := float64(k+2) * 1e-11
			if nh.FailureProb(k) > ns.FailureProb(k)+slack {
				t.Fatalf("trial %d k=%d: hardened node fails more often (%v vs %v)",
					trial, k, nh.FailureProb(k), ns.FailureProb(k))
			}
		}
	}
}

func TestSaturationK(t *testing.T) {
	n, err := NewNode([]float64{1e-3}, 16)
	if err != nil {
		t.Fatal(err)
	}
	sat := n.SaturationK()
	if sat <= 0 || sat >= 16 {
		t.Errorf("SaturationK = %d, want interior value", sat)
	}
	if n.FailureProb(sat+1) < n.FailureProb(sat) {
		t.Error("failure probability still improving past saturation")
	}
	// An empty node saturates immediately.
	e, _ := NewNode(nil, 4)
	if e.SaturationK() != 0 {
		t.Errorf("empty SaturationK = %d, want 0", e.SaturationK())
	}
}

func TestFailureProbClamping(t *testing.T) {
	n, err := NewNode([]float64{0.5, 0.5, 0.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n.FailureProb(-3) != n.FailureProb(0) {
		t.Error("negative k should clamp to 0")
	}
	if n.FailureProb(99) != n.FailureProb(8) {
		t.Error("huge k should clamp to MaxK")
	}
	if n.MaxK() != 8 {
		t.Errorf("MaxK = %d, want 8", n.MaxK())
	}
}

func TestPrExactlyRange(t *testing.T) {
	n, _ := NewNode([]float64{0.1}, 3)
	if _, err := n.PrExactly(0); err == nil {
		t.Error("PrExactly(0) should error (use PrZero)")
	}
	if _, err := n.PrExactly(4); err == nil {
		t.Error("PrExactly beyond maxK should error")
	}
	v, err := n.PrExactly(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 0.01
	if math.Abs(v-want) > 1e-11 {
		t.Errorf("PrExactly(2) = %v, want ≈%v", v, want)
	}
}

func TestGoalValidate(t *testing.T) {
	if err := (Goal{Gamma: 1e-5, Tau: paper.Hour}).Validate(); err != nil {
		t.Error(err)
	}
	for _, g := range []Goal{{Gamma: 0, Tau: 1}, {Gamma: 1, Tau: 1}, {Gamma: 0.5, Tau: 0}} {
		if err := g.Validate(); err == nil {
			t.Errorf("goal %+v should be invalid", g)
		}
	}
	g := Goal{Gamma: 2.5e-5, Tau: paper.Hour}
	if math.Abs(g.Rho()-(1-2.5e-5)) > 1e-16 {
		t.Errorf("Rho = %v", g.Rho())
	}
}

func TestAnalysisErrors(t *testing.T) {
	if _, err := NewAnalysis([][]float64{{0.1}}, 0, 4); err == nil {
		t.Error("want error for zero period")
	}
	if _, err := NewAnalysis([][]float64{{2.0}}, 100, 4); err == nil {
		t.Error("want error for bad probability")
	}
}

func TestAnalysisShortKs(t *testing.T) {
	// Missing entries in ks default to k = 0.
	a, err := NewAnalysis([][]float64{{1e-4}, {1e-4}}, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := a.SystemReliability([]int{0, 0}, paper.Hour)
	short := a.SystemReliability(nil, paper.Hour)
	if full != short {
		t.Errorf("nil ks should behave as zeros: %v vs %v", full, short)
	}
}

func TestReliabilityEdgeCases(t *testing.T) {
	if Reliability(0.5, 0, paper.Hour) != 0 {
		t.Error("zero period should yield zero reliability")
	}
	if Reliability(0, 100, paper.Hour) != 1 {
		t.Error("zero failure probability should yield reliability 1")
	}
}

// TestMoreIterationsLowerReliability checks the τ/T exponent direction: a
// shorter period (more iterations per hour) cannot increase reliability.
func TestMoreIterationsLowerReliability(t *testing.T) {
	sysFail := 1e-9
	r1 := Reliability(sysFail, 360, paper.Hour)
	r2 := Reliability(sysFail, 36, paper.Hour)
	if r2 > r1 {
		t.Errorf("10x iterations increased reliability: %v > %v", r2, r1)
	}
}
