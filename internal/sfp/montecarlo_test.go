package sfp_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/sfp"
)

// tolerance returns the acceptance band for comparing an empirical failure
// frequency against the analytic probability ana over n samples: four
// binomial standard deviations (ana is the true parameter under the null
// hypothesis that the analysis is exact) plus a 9/n Poisson floor so that
// configurations whose expected failure count is below one — where the
// normal approximation collapses — still get a meaningful band instead of
// a near-zero one.
func tolerance(ana float64, n int) float64 {
	return 4*math.Sqrt(ana*(1-ana)/float64(n)) + 9/float64(n)
}

// TestMonteCarloAgreesWithAnalysis sweeps a seeded (SER, hardening level,
// k) grid, derives the per-process failure probabilities exactly as the
// experiment generator does (faultsim.DeriveFailProb), and checks that the
// fault-injection campaign's empirical system failure probability matches
// the analytic SFP within a confidence band derived from the sample count
// — no hard-coded tolerances. This covers both the measurable regime
// (unhardened nodes, p ~ 10^-2) and the rare-event regime (hardened
// nodes, where the empirical count is near zero and the Poisson floor
// carries the comparison).
func TestMonteCarloAgreesWithAnalysis(t *testing.T) {
	const iterations = 200_000
	sers := []float64{1e-9, 1e-8}
	levels := []int{1, 2, 3}
	ks := []int{0, 1, 2, 3}
	for si, ser := range sers {
		for _, level := range levels {
			for _, k := range ks {
				name := fmt.Sprintf("ser=%.0e/h=%d/k=%d", ser, level, k)
				t.Run(name, func(t *testing.T) {
					seed := int64(si*1000 + level*100 + k)
					rng := rand.New(rand.NewSource(seed))
					m := 3 + rng.Intn(4)
					probs := make([]float64, m)
					for i := range probs {
						wcet := 1 + 19*rng.Float64() // the generator's 1..20 ms range
						probs[i] = faultsim.DeriveFailProb(wcet,
							faultsim.DefaultCyclesPerMs, ser, level,
							faultsim.DefaultReductionPerLevel)
					}
					node, err := sfp.NewNode(probs, 8)
					if err != nil {
						t.Fatal(err)
					}
					ana := sfp.SystemFailureProb([]float64{node.FailureProb(k)})

					camp := faultsim.Campaign{
						NodeProbs:  [][]float64{probs},
						Ks:         []int{k},
						Iterations: iterations,
						Seed:       seed + 7,
					}
					res, err := camp.Run()
					if err != nil {
						t.Fatal(err)
					}
					emp := res.FailureProb()
					if tol := tolerance(ana, iterations); math.Abs(emp-ana) > tol {
						t.Errorf("analytic %v vs empirical %v: |diff| %v > tol %v (probs %v)",
							ana, emp, math.Abs(emp-ana), tol, probs)
					}
				})
			}
		}
	}
}

// TestMonteCarloAgreesOnMultiNodeSystems repeats the comparison for
// two-node systems assembled from the grid: the union formula (5) must
// match the campaign's system-level frequency, again within the
// sample-derived band.
func TestMonteCarloAgreesOnMultiNodeSystems(t *testing.T) {
	const iterations = 200_000
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			nodeProbs := make([][]float64, 2)
			ks := make([]int, 2)
			fails := make([]float64, 2)
			for j := range nodeProbs {
				ser := []float64{1e-9, 1e-8}[rng.Intn(2)]
				level := 1 + rng.Intn(2)
				ks[j] = rng.Intn(3)
				m := 2 + rng.Intn(4)
				probs := make([]float64, m)
				for i := range probs {
					probs[i] = faultsim.DeriveFailProb(1+19*rng.Float64(),
						faultsim.DefaultCyclesPerMs, ser, level,
						faultsim.DefaultReductionPerLevel)
				}
				node, err := sfp.NewNode(probs, 8)
				if err != nil {
					t.Fatal(err)
				}
				fails[j] = node.FailureProb(ks[j])
				nodeProbs[j] = probs
			}
			ana := sfp.SystemFailureProb(fails)

			camp := faultsim.Campaign{
				NodeProbs:  nodeProbs,
				Ks:         ks,
				Iterations: iterations,
				Seed:       int64(8000 + trial),
			}
			res, err := camp.Run()
			if err != nil {
				t.Fatal(err)
			}
			emp := res.FailureProb()
			if tol := tolerance(ana, iterations); math.Abs(emp-ana) > tol {
				t.Errorf("analytic %v vs empirical %v: |diff| %v > tol %v",
					ana, emp, math.Abs(emp-ana), tol)
			}
		})
	}
}
