// Package sfp implements the System Failure Probability analysis of
// Appendix A of the paper. It connects the hardening level of each
// computation node (through the per-process failure probabilities p_ijh)
// with the maximum number of re-executions k_j that must be provided in
// software for the system to satisfy a reliability goal ρ = 1 − γ within a
// time unit τ (one hour).
//
// Formulae (numbering follows the paper):
//
//	(1) Pr(0; N_j^h)      = Π over processes mapped on N_j^h of (1 − p_ijh)
//	(2,3) Pr(f; N_j^h)    = Pr(0; N_j^h) · Σ over f-fault scenarios of Π p
//	(4) Pr(f > k_j; N_j^h) = 1 − Pr(0) − Σ_{f=1..k_j} Pr(f)
//	(5) Pr(∪_j f > k_j)   = 1 − Π_j (1 − Pr(f > k_j; N_j^h))
//	(6) (1 − Pr(∪ ...))^(τ/T) ≥ ρ
//
// The f-fault scenarios are combinations with repetitions of f faults on
// the processes of the node; their probability sum is the complete
// homogeneous symmetric polynomial h_f of the process failure
// probabilities (package prob). All intermediate values are rounded
// pessimistically at 10^-11 accuracy exactly as in the paper's Appendix
// A.2 computation example.
package sfp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/prob"
)

// DefaultMaxK caps the number of software re-executions the analysis will
// consider per node. Beyond roughly a dozen re-executions the residual
// failure probability is dominated by the 10^-11 rounding floor, so larger
// values only waste schedule time.
const DefaultMaxK = 32

// Goal is the reliability goal ρ = 1 − γ: the probability of a system
// failure due to transient faults within the time unit Tau must not exceed
// Gamma.
type Goal struct {
	// Gamma is γ, the maximum acceptable system failure probability per
	// time unit.
	Gamma float64
	// Tau is the time unit τ in milliseconds (the paper uses one hour).
	Tau float64
}

// Rho returns ρ = 1 − γ.
func (g Goal) Rho() float64 { return 1 - g.Gamma }

// Validate checks that the goal is meaningful.
func (g Goal) Validate() error {
	if !(g.Gamma > 0 && g.Gamma < 1) {
		return fmt.Errorf("sfp: goal gamma %v outside (0,1)", g.Gamma)
	}
	if g.Tau <= 0 {
		return fmt.Errorf("sfp: goal tau %v not positive", g.Tau)
	}
	return nil
}

// Node is the per-node SFP analysis for a fixed set of processes mapped on
// one h-version: it caches Pr(0) and the f-fault probabilities so that
// Pr(f > k) queries for varying k are O(1) after an O(maxK·m) setup.
type Node struct {
	probs []float64
	pr0   float64
	// prf[f] is Pr(f; N_j^h) for f = 1..maxK (index 0 unused).
	prf []float64
	// fail[k] is Pr(f > k; N_j^h) for k = 0..maxK.
	fail []float64
}

// ErrBadProb is returned when a process failure probability is outside
// [0, 1).
var ErrBadProb = errors.New("sfp: process failure probability outside [0,1)")

// NewNode builds the analysis for a node on which processes with the given
// single-execution failure probabilities are mapped, supporting up to maxK
// re-executions. An empty probs slice is valid and models a node with no
// processes (its failure probability is zero).
func NewNode(probs []float64, maxK int) (*Node, error) {
	if maxK < 0 {
		maxK = 0
	}
	for _, p := range probs {
		if !(p >= 0 && p < 1) {
			return nil, fmt.Errorf("%w: %v", ErrBadProb, p)
		}
	}
	n := &Node{probs: append([]float64(nil), probs...)}
	// Formula (1), rounded down.
	pr0 := 1.0
	for _, p := range probs {
		pr0 *= 1 - p
	}
	n.pr0 = prob.FloorP(pr0)
	h, err := prob.CompleteHomogeneous(probs, maxK)
	if err != nil {
		return nil, err
	}
	n.prf = make([]float64, maxK+1)
	n.fail = make([]float64, maxK+1)
	// Formula (4) accumulated over k. The paper works in decimal with
	// 1e-11 accuracy: every Pr(f) is rounded down and the residual
	// 1 − Pr(0) − Σ Pr(f) is rounded up. Because all rounded quantities
	// are exact multiples of 1e-11, the subtraction is carried out on
	// integer tick counts (1 tick = 1e-11) so that binary floating point
	// noise cannot push the residual across a tick boundary — this
	// reproduces Appendix A.2 digit for digit.
	const ticksPerUnit = int64(1e11)
	// n.pr0 and n.prf are tick multiples up to one ulp; Round recovers the
	// exact integer tick count.
	residualTicks := ticksPerUnit - int64(math.Round(n.pr0*1e11))
	n.fail[0] = clampTicks(residualTicks)
	for f := 1; f <= maxK; f++ {
		n.prf[f] = prob.FloorP(n.pr0 * h[f])
		residualTicks -= int64(math.Round(n.prf[f] * 1e11))
		n.fail[f] = clampTicks(residualTicks)
	}
	return n, nil
}

// clampTicks converts a tick count (1 tick = 1e-11) into a probability in
// [0, 1].
func clampTicks(t int64) float64 {
	if t < 0 {
		return 0
	}
	return prob.Clamp01(float64(t) / 1e11)
}

// MaxK returns the largest supported re-execution count.
func (n *Node) MaxK() int { return len(n.fail) - 1 }

// PrZero returns Pr(0; N_j^h): the probability that one iteration of the
// application executes on this node without any fault (formula 1, rounded
// down).
func (n *Node) PrZero() float64 { return n.pr0 }

// PrExactly returns Pr(f; N_j^h): the probability of successful recovery
// from exactly f faults (formula 3, rounded down). f must be in
// [1, MaxK()].
func (n *Node) PrExactly(f int) (float64, error) {
	if f < 1 || f >= len(n.prf) {
		return 0, fmt.Errorf("sfp: PrExactly(%d) outside [1,%d]", f, len(n.prf)-1)
	}
	return n.prf[f], nil
}

// FailureProb returns Pr(f > k; N_j^h): the probability that the node
// experiences more faults than its k re-executions can tolerate in one
// application iteration (formula 4, rounded up). k beyond MaxK saturates
// at MaxK.
func (n *Node) FailureProb(k int) float64 {
	if k < 0 {
		k = 0
	}
	if k >= len(n.fail) {
		k = len(n.fail) - 1
	}
	return n.fail[k]
}

// SaturationK returns the smallest k at which adding further re-executions
// no longer reduces the node failure probability (it has reached either
// zero or the rounding floor).
func (n *Node) SaturationK() int {
	for k := 0; k < len(n.fail)-1; k++ {
		if n.fail[k+1] >= n.fail[k] {
			return k
		}
	}
	return len(n.fail) - 1
}

// SystemFailureProb returns the probability that at least one node fails
// in one application iteration: formula (5) over the per-node
// probabilities Pr(f > k_j; N_j^h), rounded up.
func SystemFailureProb(nodeFail []float64) float64 {
	return prob.Clamp01(prob.CeilP(prob.UnionFail(nodeFail)))
}

// Reliability returns the probability that the system survives the whole
// time unit τ given the per-iteration system failure probability sysFail
// and the application period T (formula 6, left-hand side, rounded down).
func Reliability(sysFail, period, tau float64) float64 {
	if period <= 0 {
		return 0
	}
	iterations := tau / period
	return prob.Clamp01(prob.FloorP(prob.PowSurvive(sysFail, iterations)))
}

// Analysis evaluates a complete deployment: one analysed Node per
// architecture node plus the application period.
type Analysis struct {
	Nodes  []*Node
	Period float64
}

// NewAnalysis builds the analysis from per-node process failure
// probability sets. nodeProbs[j] lists p_ijh for the processes mapped on
// architecture node j at its current hardening level.
func NewAnalysis(nodeProbs [][]float64, period float64, maxK int) (*Analysis, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sfp: non-positive period %v", period)
	}
	a := &Analysis{Period: period}
	for j, ps := range nodeProbs {
		n, err := NewNode(ps, maxK)
		if err != nil {
			return nil, fmt.Errorf("sfp: node %d: %w", j, err)
		}
		a.Nodes = append(a.Nodes, n)
	}
	return a, nil
}

// SystemReliability returns the τ-horizon reliability for the given
// per-node re-execution counts ks (ks[j] is k_j).
func (a *Analysis) SystemReliability(ks []int, tau float64) float64 {
	fails := make([]float64, len(a.Nodes))
	for j, n := range a.Nodes {
		k := 0
		if j < len(ks) {
			k = ks[j]
		}
		fails[j] = n.FailureProb(k)
	}
	return Reliability(SystemFailureProb(fails), a.Period, tau)
}

// MeetsGoal reports whether the deployment with re-execution counts ks
// satisfies the reliability goal (formula 6).
func (a *Analysis) MeetsGoal(ks []int, g Goal) bool {
	return a.SystemReliability(ks, g.Tau) >= g.Rho()
}
