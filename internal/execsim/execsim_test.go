package execsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/ttp"
)

// fig3Input builds the Fig. 3 single-process system at level 2 with k=2.
func fig3Input(t *testing.T, faults []int) Input {
	t.Helper()
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0]})
	ar.Levels[0] = 2
	static, err := sched.Build(sched.Input{App: app, Arch: ar, Mapping: []int{0}, Ks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		App: app, Arch: ar, Mapping: []int{0}, Ks: []int{2},
		Static: static, Faults: faults,
	}
}

func TestRunFaultFree(t *testing.T) {
	res, err := Run(fig3Input(t, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100 {
		t.Errorf("fault-free makespan %v, want 100 (t at level 2)", res.Makespan)
	}
	if res.DeadlineMiss || res.BudgetExceeded {
		t.Error("clean run flagged")
	}
}

func TestRunWithFaults(t *testing.T) {
	// Two faults: 100 + 2×(100+20) = 340, exactly the analyzed worst
	// case and within the 360 ms deadline.
	res, err := Run(fig3Input(t, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 340 {
		t.Errorf("makespan %v, want 340", res.Makespan)
	}
	if res.DeadlineMiss {
		t.Error("within-budget faults missed the deadline")
	}
	if res.BudgetExceeded {
		t.Error("budget wrongly flagged")
	}
}

func TestRunBudgetOverrun(t *testing.T) {
	res, err := Run(fig3Input(t, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetExceeded {
		t.Error("three faults against k=2 should overrun the budget")
	}
}

func TestRunValidation(t *testing.T) {
	in := fig3Input(t, []int{0})
	bad := in
	bad.Faults = []int{-1}
	if _, err := Run(bad); err == nil {
		t.Error("want error for negative faults")
	}
	bad = in
	bad.Faults = []int{0, 0}
	if _, err := Run(bad); err == nil {
		t.Error("want error for wrong fault vector size")
	}
	bad = in
	bad.Static = nil
	if _, err := Run(bad); err == nil {
		t.Error("want error for missing static schedule")
	}
	bad = in
	bad.Ks = nil
	if _, err := Run(bad); err == nil {
		t.Error("want error for missing budgets")
	}
}

// fig4aInput builds the two-node Fig. 4a system.
func fig4aInput(t *testing.T, faults []int) Input {
	t.Helper()
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	mapping := []int{0, 0, 1, 1}
	static, err := sched.Build(sched.Input{
		App: app, Arch: ar, Mapping: mapping, Ks: []int{1, 1},
		Bus: ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		App: app, Arch: ar, Mapping: mapping, Ks: []int{1, 1},
		Bus: ttp.NewBus(2, pl.Bus.SlotLen), Static: static, Faults: faults,
	}
}

// TestFig4aFaultFreeMatchesStatic: with no faults, the simulated finish
// times equal the static schedule's fault-free times.
func TestFig4aFaultFreeMatchesStatic(t *testing.T) {
	in := fig4aInput(t, []int{0, 0, 0, 0})
	res, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for pid, f := range res.Finish {
		if math.Abs(f-in.Static.Finish[pid]) > 1e-9 {
			t.Errorf("process %d: simulated %v vs static %v", pid, f, in.Static.Finish[pid])
		}
	}
}

// TestSingleNodeGuarantee: for a monoprocessor system, every fault
// pattern within the budget finishes within the analyzed worst case (the
// shared-slack bound is per-node sound).
func TestSingleNodeGuarantee(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[1]})
	ar.Levels[0] = 2
	mapping := []int{0, 0, 0, 0}
	ks := []int{2}
	static, err := sched.Build(sched.Input{App: app, Arch: ar, Mapping: mapping, Ks: ks})
	if err != nil {
		t.Fatal(err)
	}
	// All ways to distribute 2 faults over 4 processes.
	for a := 0; a < 4; a++ {
		for b := a; b < 4; b++ {
			faults := make([]int, 4)
			faults[a]++
			faults[b]++
			res, err := Run(Input{
				App: app, Arch: ar, Mapping: mapping, Ks: ks,
				Static: static, Faults: faults,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.BudgetExceeded {
				t.Fatalf("pattern (%d,%d) within budget flagged as overrun", a, b)
			}
			if res.Makespan > static.Length+1e-9 {
				t.Errorf("pattern (%d,%d): makespan %v exceeds analyzed bound %v",
					a, b, res.Makespan, static.Length)
			}
		}
	}
}

func TestCampaignWithinBudget(t *testing.T) {
	in := fig4aInput(t, nil)
	c := Campaign{Input: in, Iterations: 500, Seed: 3, WithinBudget: true}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetOverruns != 0 {
		t.Errorf("%d overruns in within-budget sampling", res.BudgetOverruns)
	}
	if res.MaxMakespan <= 0 || res.MeanMakespan <= 0 {
		t.Error("statistics not populated")
	}
	if res.MaxMakespan < res.MeanMakespan {
		t.Error("max below mean")
	}
}

func TestCampaignProbabilistic(t *testing.T) {
	in := fig4aInput(t, nil)
	c := Campaign{Input: in, Iterations: 2000, Seed: 4}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With p ≈ 1e-5 per process, essentially every iteration is
	// fault-free: mean ≈ fault-free makespan, no deadline misses.
	if res.DeadlineMisses != 0 {
		t.Errorf("%d deadline misses at p≈1e-5", res.DeadlineMisses)
	}
	if math.Abs(res.MeanMakespan-250) > 10 {
		t.Errorf("mean makespan %v, want ≈250 (fault-free)", res.MeanMakespan)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (&Campaign{Iterations: 0}).Run(); err == nil {
		t.Error("want error for zero iterations")
	}
	if _, err := (&Campaign{Iterations: 1}).Run(); err == nil {
		t.Error("want error for missing application")
	}
}

// TestMakespanMonotoneInFaults: adding a fault to any process never
// shortens the simulated makespan.
func TestMakespanMonotoneInFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := fig4aInput(t, nil)
	for trial := 0; trial < 100; trial++ {
		faults := make([]int, 4)
		total := 0
		for pid := range faults {
			faults[pid] = rng.Intn(2)
			total += faults[pid]
		}
		if total > 2 {
			continue // stay within combined budget to avoid suppression
		}
		base := in
		base.Faults = faults
		base.Bus = ttp.NewBus(2, 5)
		r1, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		more := in
		more.Faults = append([]int(nil), faults...)
		pid := rng.Intn(4)
		// Keep the target node within budget.
		node := in.Mapping[pid]
		used := 0
		for q, f := range faults {
			if in.Mapping[q] == node {
				used += f
			}
		}
		if used >= in.Ks[node] {
			continue
		}
		more.Faults[pid]++
		more.Bus = ttp.NewBus(2, 5)
		r2, err := Run(more)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Makespan < r1.Makespan-1e-9 {
			t.Fatalf("trial %d: extra fault shortened makespan (%v -> %v)", trial, r1.Makespan, r2.Makespan)
		}
	}
}
