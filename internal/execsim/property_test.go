package execsim

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/taskgen"
)

// TestMakespanWithinAnalyzedBound is the property-based generalization of
// TestSingleNodeGuarantee: for hundreds of seeded random applications on a
// monoprocessor architecture (the domain where the shared-slack analysis
// is sound — cross-node coupling is quantified separately by the E14
// simulation study), every fault pattern within the node's budget must
// finish within the scheduler's worst-case bound, under both slack
// models. The dispatcher is work-conserving, so on a single node the
// makespan is at most the sum of WCETs plus k worst-case recoveries —
// exactly what sched.Build reserves.
func TestMakespanWithinAnalyzedBound(t *testing.T) {
	const apps = 240
	sers := []float64{1e-12, 1e-11, 1e-10}
	hpds := []float64{5, 25, 100}
	models := []sched.SlackModel{sched.SlackShared, sched.SlackPerProcess}
	for trial := 0; trial < apps; trial++ {
		seed := int64(9000 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		cfg := taskgen.DefaultConfig(seed, n, sers[rng.Intn(len(sers))], hpds[rng.Intn(len(hpds))])
		inst, err := taskgen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		node := &inst.Platform.Nodes[rng.Intn(len(inst.Platform.Nodes))]
		ar := platform.NewArchitecture([]*platform.Node{node})
		ar.Levels[0] = node.MinLevel() + rng.Intn(node.MaxLevel()-node.MinLevel()+1)
		mapping := make([]int, inst.App.NumProcesses())
		k := rng.Intn(4)
		ks := []int{k}
		for _, model := range models {
			static, err := sched.Build(sched.Input{
				App: inst.App, Arch: ar, Mapping: mapping, Ks: ks, Model: model,
			})
			if err != nil {
				t.Fatalf("seed %d model %v: %v", seed, model, err)
			}
			// Several adversarial in-budget patterns per configuration:
			// spend the whole budget on random processes (repeats allowed,
			// concentrating all k faults on one process included).
			for p := 0; p < 4; p++ {
				faults := make([]int, len(mapping))
				for f := 0; f < k; f++ {
					faults[rng.Intn(len(faults))]++
				}
				res, err := Run(Input{
					App: inst.App, Arch: ar, Mapping: mapping, Ks: ks,
					Static: static, Faults: faults,
				})
				if err != nil {
					t.Fatalf("seed %d model %v: %v", seed, model, err)
				}
				if res.BudgetExceeded {
					t.Fatalf("seed %d model %v pattern %v: within-budget pattern flagged as overrun (k=%d)",
						seed, model, faults, k)
				}
				if res.Makespan > static.Length+1e-9 {
					t.Errorf("seed %d model %v pattern %v: makespan %v exceeds analyzed bound %v",
						seed, model, faults, res.Makespan, static.Length)
				}
			}
		}
	}
}
