// Package execsim is a discrete-event execution simulator for designed
// systems: it replays one application iteration under a concrete
// transient-fault pattern, with processes re-executing on their node
// (consuming the node's shared re-execution budget k_j) and messages
// transmitted over the TDMA bus, and reports the actual completion times.
//
// The simulator is the ground truth against which the static analysis is
// judged: for fault patterns within the per-node budgets it measures how
// the achieved makespan compares with the scheduler's worst-case bound
// (experiment E14). Because the paper's shared-slack analysis treats each
// node's recovery in isolation (messages costed at fault-free times — the
// accounting that reproduces the paper's own Figs. 3/4 arithmetic), the
// simulator also quantifies the cross-node coupling that this accounting
// abstracts away, which is reported honestly rather than hidden.
//
// Faults are specified per process-execution attempt: pattern[pid] is the
// number of times process pid fails before succeeding. The simulation is
// work-conserving: each node runs its ready processes in the priority
// order of the static schedule; a failed attempt is retried immediately
// after the recovery overhead μ, as long as the node still has budget.
package execsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Input configures one simulation.
type Input struct {
	App     *appmodel.Application
	Arch    *platform.Architecture
	Mapping []int
	// Ks are the per-node re-execution budgets.
	Ks []int
	// Bus carries cross-node messages; nil means instantaneous.
	Bus sched.Bus
	// Static is the static schedule whose node orders fix the dispatch
	// priorities.
	Static *sched.Schedule
	// Faults[pid] is the number of failed attempts of process pid before
	// it succeeds.
	Faults []int
}

// Result is the outcome of one simulated iteration.
type Result struct {
	// Finish[pid] is the completion time of the successful attempt.
	Finish []float64
	// Makespan is the largest completion time.
	Makespan float64
	// BudgetExceeded reports that some node saw more faults than its
	// budget k_j; the iteration counts as a system failure and the
	// remaining faults of the overrun process are suppressed (the system
	// would have shut down; timing values are still reported).
	BudgetExceeded bool
	// DeadlineMiss reports that some process finished after its graph
	// deadline.
	DeadlineMiss bool
}

// Validate checks the input.
func (in *Input) Validate() error {
	if in.App == nil || in.Arch == nil || in.Static == nil {
		return fmt.Errorf("execsim: missing application, architecture or static schedule")
	}
	n := in.App.NumProcesses()
	if len(in.Mapping) != n {
		return fmt.Errorf("execsim: mapping covers %d of %d processes", len(in.Mapping), n)
	}
	if len(in.Ks) != len(in.Arch.Nodes) {
		return fmt.Errorf("execsim: budgets cover %d of %d nodes", len(in.Ks), len(in.Arch.Nodes))
	}
	if len(in.Faults) != n {
		return fmt.Errorf("execsim: fault pattern covers %d of %d processes", len(in.Faults), n)
	}
	for pid, f := range in.Faults {
		if f < 0 {
			return fmt.Errorf("execsim: negative fault count for process %d", pid)
		}
	}
	return nil
}

// Run simulates one iteration.
func Run(in Input) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	app := in.App
	n := app.NumProcesses()
	if in.Bus != nil {
		in.Bus.Reset()
	}

	// Dispatch priority: the position in the static schedule's node
	// order (earlier = higher priority).
	prio := make([]int, n)
	for _, order := range in.Static.NodeOrder {
		for pos, pid := range order {
			prio[pid] = pos
		}
	}

	pred := app.Predecessors()
	succ := app.Successors()
	remaining := make([]int, n)
	for pid := 0; pid < n; pid++ {
		remaining[pid] = len(pred[pid])
	}
	arrival := make([]float64, n) // when all inputs are available
	nodeFree := make([]float64, len(in.Arch.Nodes))
	budget := append([]int(nil), in.Ks...)

	res := &Result{Finish: make([]float64, n)}
	ready := make([]appmodel.ProcID, 0, n)
	for pid := 0; pid < n; pid++ {
		if remaining[pid] == 0 {
			ready = append(ready, appmodel.ProcID(pid))
		}
	}

	for scheduled := 0; scheduled < n; scheduled++ {
		if len(ready) == 0 {
			return nil, fmt.Errorf("execsim: deadlock — %d processes never became ready", n-scheduled)
		}
		// Pick the ready process that can start earliest; ties by static
		// priority then ID (a work-conserving non-preemptive dispatcher).
		sort.Slice(ready, func(a, b int) bool {
			pa, pb := ready[a], ready[b]
			sa := math.Max(arrival[pa], nodeFree[in.Mapping[pa]])
			sb := math.Max(arrival[pb], nodeFree[in.Mapping[pb]])
			if sa != sb {
				return sa < sb
			}
			if prio[pa] != prio[pb] {
				return prio[pa] < prio[pb]
			}
			return pa < pb
		})
		pid := ready[0]
		ready = ready[1:]
		j := in.Mapping[pid]
		v := in.Arch.Version(j)
		t := v.WCET[pid]
		mu := app.Procs[pid].Mu

		clock := math.Max(arrival[pid], nodeFree[j])
		faults := in.Faults[pid]
		for f := 0; f < faults; f++ {
			if budget[j] == 0 {
				res.BudgetExceeded = true
				break // system failure: stop burning this node's time
			}
			budget[j]--
			clock += t + mu // failed attempt plus recovery overhead
		}
		clock += t // the successful attempt
		res.Finish[pid] = clock
		nodeFree[j] = clock
		if clock > res.Makespan {
			res.Makespan = clock
		}

		for _, e := range succ[pid] {
			arr := clock
			if in.Mapping[e.Dst] != j && in.Bus != nil {
				_, end := in.Bus.Schedule(j, clock)
				arr = end
			}
			if arr > arrival[e.Dst] {
				arrival[e.Dst] = arr
			}
			remaining[e.Dst]--
			if remaining[e.Dst] == 0 {
				ready = append(ready, e.Dst)
			}
		}
	}

	gi := app.GraphOf()
	for pid := 0; pid < n; pid++ {
		if res.Finish[pid] > app.Graphs[gi[pid]].Deadline+1e-9 {
			res.DeadlineMiss = true
		}
	}
	return res, nil
}

// Campaign runs many simulated iterations with random fault patterns and
// aggregates the outcomes.
type Campaign struct {
	Input Input
	// Iterations is the number of simulated application iterations.
	Iterations int
	// Seed drives the fault sampling.
	Seed int64
	// WithinBudget, when true, draws fault patterns that never exceed the
	// per-node budgets (to probe the worst case the analysis claims to
	// cover); when false, faults are sampled from the per-process failure
	// probabilities of the selected h-versions.
	WithinBudget bool
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Iterations     int
	DeadlineMisses int
	BudgetOverruns int
	MaxMakespan    float64
	MeanMakespan   float64
}

// Run executes the campaign.
func (c *Campaign) Run() (*CampaignResult, error) {
	if c.Iterations <= 0 {
		return nil, fmt.Errorf("execsim: non-positive iteration count %d", c.Iterations)
	}
	if c.Input.App == nil {
		return nil, fmt.Errorf("execsim: missing application")
	}
	// The campaign overwrites Faults each iteration; validate with a
	// zero pattern.
	c.Input.Faults = make([]int, c.Input.App.NumProcesses())
	if err := c.Input.Validate(); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(c.Seed))
	n := c.Input.App.NumProcesses()
	res := &CampaignResult{Iterations: c.Iterations}
	var sum float64
	for it := 0; it < c.Iterations; it++ {
		faults := make([]int, n)
		if c.WithinBudget {
			// Distribute each node's full budget over random processes of
			// that node: the adversarial envelope the analysis covers.
			for j, k := range c.Input.Ks {
				var procs []int
				for pid := 0; pid < n; pid++ {
					if c.Input.Mapping[pid] == j {
						procs = append(procs, pid)
					}
				}
				if len(procs) == 0 {
					continue
				}
				for f := 0; f < k; f++ {
					faults[procs[rng.Intn(len(procs))]]++
				}
			}
		} else {
			for pid := 0; pid < n; pid++ {
				v := c.Input.Arch.Version(c.Input.Mapping[pid])
				p := v.FailProb[pid]
				for rng.Float64() < p {
					faults[pid]++
					if faults[pid] > 64 {
						break
					}
				}
			}
		}
		in := c.Input
		in.Faults = faults
		r, err := Run(in)
		if err != nil {
			return nil, err
		}
		if r.DeadlineMiss {
			res.DeadlineMisses++
		}
		if r.BudgetExceeded {
			res.BudgetOverruns++
		}
		if r.Makespan > res.MaxMakespan {
			res.MaxMakespan = r.Makespan
		}
		sum += r.Makespan
	}
	res.MeanMakespan = sum / float64(c.Iterations)
	return res, nil
}
