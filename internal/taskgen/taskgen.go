// Package taskgen generates the synthetic applications and platforms of
// the paper's experimental evaluation (Section 7):
//
//   - applications with 20 or 40 processes, worst-case execution times
//     between 1 and 20 ms on the fastest node without hardening, and
//     recovery overheads μ between 1 and 10% of the process WCET;
//
//   - computation nodes with five hardening levels, initial (unhardened)
//     costs between 1 and 6 cost units growing linearly with the level,
//     hardening performance degradation (HPD) from 5% to 100% growing
//     linearly with the level, and process failure probabilities derived
//     from the technology's transient error rate per clock cycle (SER ∈
//     {10^-10, 10^-11, 10^-12}) through the fault-injection substrate;
//
//   - reliability goals ρ = 1 − γ with γ between 7.5·10^-6 and 2.5·10^-5
//     per hour, and deadlines assigned independently of SER and HPD from
//     the critical path and load of the unhardened application.
//
// All generation is driven by an explicit seed and is reproducible.
package taskgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/appmodel"
	"repro/internal/faultsim"
	"repro/internal/platform"
	"repro/internal/sfp"
)

// Config parameterizes one synthetic instance. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	Seed     int64
	NumProcs int
	// NumGraphs splits the processes into this many independent task
	// graphs (the paper models applications as sets of graphs). Zero or
	// one yields a single graph.
	NumGraphs int
	// EdgeProb is the probability of a dependency between a process and a
	// candidate predecessor in the previous layer.
	EdgeProb float64
	// WCETMin/WCETMax bound process WCETs (ms) on the fastest node at
	// minimum hardening.
	WCETMin, WCETMax float64
	// MuFracMin/MuFracMax bound the recovery overhead μ as a fraction of
	// the process WCET.
	MuFracMin, MuFracMax float64

	// NumNodeTypes is the number of available computation node types |N|.
	NumNodeTypes int
	// NumLevels is the number of hardening levels per node.
	NumLevels int
	// SER is the average transient error rate per clock cycle at the
	// minimum hardening level.
	SER float64
	// HPDPercent is the hardening performance degradation from the
	// minimum to the maximum hardening level, in percent (5..100).
	HPDPercent float64
	// CostMin/CostMax bound the initial (unhardened) processor cost.
	CostMin, CostMax float64
	// SpeedSpread is the maximum slowdown of non-fastest node types
	// (e.g. 0.5 means other nodes are 1.0–1.5× slower).
	SpeedSpread float64
	// ReductionPerLevel divides the failure probability per hardening
	// level.
	ReductionPerLevel float64
	// CyclesPerMs converts WCET to clock cycles.
	CyclesPerMs float64
	// BusSlotLen is the TDMA slot length in ms.
	BusSlotLen float64

	// DeadlineFactorMin/Max scale the total computational load (on the
	// fastest node at minimum hardening) into a deadline; values around 1
	// mean a monoprocessor implementation is borderline. The deadline is
	// floored at 1.1× the critical path.
	DeadlineFactorMin, DeadlineFactorMax float64
	// GammaMin/GammaMax bound the reliability goal γ per hour.
	GammaMin, GammaMax float64
}

// DefaultConfig returns the paper's experimental parameterization for an
// application with n processes at the given technology SER and hardening
// performance degradation.
func DefaultConfig(seed int64, n int, ser, hpdPercent float64) Config {
	return Config{
		Seed:              seed,
		NumProcs:          n,
		EdgeProb:          0.4,
		WCETMin:           1,
		WCETMax:           20,
		MuFracMin:         0.01,
		MuFracMax:         0.10,
		NumNodeTypes:      4,
		NumLevels:         5,
		SER:               ser,
		HPDPercent:        hpdPercent,
		CostMin:           1,
		CostMax:           6,
		SpeedSpread:       0.4,
		ReductionPerLevel: faultsim.DefaultReductionPerLevel,
		CyclesPerMs:       4 * faultsim.DefaultCyclesPerMs,
		BusSlotLen:        0.5,
		DeadlineFactorMin: 0.55,
		DeadlineFactorMax: 1.45,
		GammaMin:          7.5e-6,
		GammaMax:          2.5e-5,
	}
}

// Validate checks configuration sanity.
func (c *Config) Validate() error {
	switch {
	case c.NumProcs < 1:
		return fmt.Errorf("taskgen: NumProcs %d < 1", c.NumProcs)
	case c.WCETMin <= 0 || c.WCETMax < c.WCETMin:
		return fmt.Errorf("taskgen: bad WCET range [%v,%v]", c.WCETMin, c.WCETMax)
	case c.MuFracMin < 0 || c.MuFracMax < c.MuFracMin:
		return fmt.Errorf("taskgen: bad mu range [%v,%v]", c.MuFracMin, c.MuFracMax)
	case c.NumNodeTypes < 1:
		return fmt.Errorf("taskgen: NumNodeTypes %d < 1", c.NumNodeTypes)
	case c.NumLevels < 1:
		return fmt.Errorf("taskgen: NumLevels %d < 1", c.NumLevels)
	case c.SER < 0:
		return fmt.Errorf("taskgen: negative SER %v", c.SER)
	case c.HPDPercent < 0:
		return fmt.Errorf("taskgen: negative HPD %v", c.HPDPercent)
	case c.CostMin <= 0 || c.CostMax < c.CostMin:
		return fmt.Errorf("taskgen: bad cost range [%v,%v]", c.CostMin, c.CostMax)
	case c.DeadlineFactorMin <= 0 || c.DeadlineFactorMax < c.DeadlineFactorMin:
		return fmt.Errorf("taskgen: bad deadline factor range [%v,%v]", c.DeadlineFactorMin, c.DeadlineFactorMax)
	case c.GammaMin <= 0 || c.GammaMax < c.GammaMin || c.GammaMax >= 1:
		return fmt.Errorf("taskgen: bad gamma range [%v,%v]", c.GammaMin, c.GammaMax)
	}
	return nil
}

// Instance is one generated benchmark: application, platform and
// reliability goal.
type Instance struct {
	App      *appmodel.Application
	Platform *platform.Platform
	Goal     sfp.Goal
}

// HPDFactor returns the WCET multiplier of hardening level h (1-based)
// for a platform with numLevels levels and the given HPD percentage. The
// minimum level carries the paper's nominal 1% degradation; the maximum
// level carries the full HPD (e.g. HPD = 100%: factors 1.01, 1.25, 1.50,
// 1.75, 2.00 — the paper's "1, 25, 50, 75 and 100%").
func HPDFactor(h, numLevels int, hpdPercent float64) float64 {
	if h <= 1 || numLevels <= 1 {
		return 1.01
	}
	pct := hpdPercent * float64(h-1) / float64(numLevels-1)
	return 1 + pct/100
}

// Generate builds one reproducible instance.
func Generate(cfg Config) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	// --- Application: one or more layered DAGs ----------------------
	b := appmodel.NewBuilder(fmt.Sprintf("synthetic-%d", cfg.Seed))
	n := cfg.NumProcs
	numGraphs := cfg.NumGraphs
	if numGraphs < 1 {
		numGraphs = 1
	}
	if numGraphs > n {
		numGraphs = n
	}
	wcetBase := make([]float64, 0, n)
	ids := make([]appmodel.ProcID, 0, n)
	layerOf := make([]int, 0, n)
	edges := 0
	for g := 0; g < numGraphs; g++ {
		// Deadlines are set after generation; use a placeholder.
		b.Graph(fmt.Sprintf("G%d", g), 1)
		lo := g * n / numGraphs
		hi := (g + 1) * n / numGraphs
		gn := hi - lo
		// Layering: roughly sqrt(gn) layers of comparable width.
		numLayers := int(math.Max(2, math.Round(math.Sqrt(float64(gn)))))
		if gn == 1 {
			numLayers = 1
		}
		for i := 0; i < gn; i++ {
			w := uniform(cfg.WCETMin, cfg.WCETMax)
			wcetBase = append(wcetBase, w)
			mu := w * uniform(cfg.MuFracMin, cfg.MuFracMax)
			ids = append(ids, b.Process(fmt.Sprintf("P%d", lo+i+1), mu))
			layerOf = append(layerOf, i*numLayers/gn)
		}
		for i := lo; i < hi; i++ {
			if layerOf[i] == 0 {
				continue
			}
			// Candidate predecessors: previous layer of the same graph.
			var linked bool
			for jj := lo; jj < hi; jj++ {
				if layerOf[jj] == layerOf[i]-1 && rng.Float64() < cfg.EdgeProb {
					b.Edge(fmt.Sprintf("m%d", edges+1), ids[jj], ids[i], 1+rng.Intn(8))
					edges++
					linked = true
				}
			}
			if !linked {
				// Guarantee connectivity to the previous layer.
				var prev []int
				for jj := lo; jj < hi; jj++ {
					if layerOf[jj] == layerOf[i]-1 {
						prev = append(prev, jj)
					}
				}
				src := prev[rng.Intn(len(prev))]
				b.Edge(fmt.Sprintf("m%d", edges+1), ids[src], ids[i], 1+rng.Intn(8))
				edges++
			}
		}
	}
	app, err := b.Build()
	if err != nil {
		return nil, err
	}

	// --- Platform ----------------------------------------------------
	pl := &platform.Platform{Bus: platform.BusSpec{SlotLen: cfg.BusSlotLen}}
	for t := 0; t < cfg.NumNodeTypes; t++ {
		speed := 1.0
		if t > 0 {
			speed = 1 + rng.Float64()*cfg.SpeedSpread
		}
		baseCost := uniform(cfg.CostMin, cfg.CostMax)
		// Per-(process,node) jitter, fixed across levels so WCET stays
		// monotone in the level.
		jitter := make([]float64, n)
		for i := range jitter {
			jitter[i] = 0.9 + rng.Float64()*0.2
		}
		node := platform.Node{ID: platform.NodeID(t), Name: fmt.Sprintf("N%d", t+1)}
		for h := 1; h <= cfg.NumLevels; h++ {
			factor := HPDFactor(h, cfg.NumLevels, cfg.HPDPercent)
			w := make([]float64, n)
			p := make([]float64, n)
			for i := 0; i < n; i++ {
				w[i] = wcetBase[i] * speed * jitter[i] * factor
				p[i] = faultsim.DeriveFailProb(w[i], cfg.CyclesPerMs, cfg.SER, h, cfg.ReductionPerLevel)
			}
			node.Versions = append(node.Versions, platform.HVersion{
				Level: h,
				// Linear cost growth with the hardening level.
				Cost:     baseCost * float64(h),
				WCET:     w,
				FailProb: p,
			})
		}
		pl.Nodes = append(pl.Nodes, node)
	}

	// --- Deadline (independent of SER and HPD) -----------------------
	// Lower bound on any makespan at minimum hardening on the fastest
	// node type: max(critical path, total load spread over all nodes).
	cp, err := app.CriticalPathLengths(
		func(pid appmodel.ProcID) float64 { return wcetBase[pid] },
		func(appmodel.Edge) float64 { return cfg.BusSlotLen },
	)
	if err != nil {
		return nil, err
	}
	var cpMax, load float64
	for i := 0; i < n; i++ {
		if cp[i] > cpMax {
			cpMax = cp[i]
		}
		load += wcetBase[i]
	}
	deadline := math.Max(1.1*cpMax, load*uniform(cfg.DeadlineFactorMin, cfg.DeadlineFactorMax))
	for gi := range app.Graphs {
		app.Graphs[gi].Deadline = deadline
	}
	app.Period = deadline

	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(n); err != nil {
		return nil, err
	}
	goal := sfp.Goal{Gamma: uniform(cfg.GammaMin, cfg.GammaMax), Tau: 3.6e6}
	return &Instance{App: app, Platform: pl, Goal: goal}, nil
}
