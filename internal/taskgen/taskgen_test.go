package taskgen

import (
	"math"
	"testing"
)

func TestGenerateValidInstances(t *testing.T) {
	for _, n := range []int{20, 40} {
		for seed := int64(0); seed < 10; seed++ {
			cfg := DefaultConfig(seed, n, 1e-11, 25)
			inst, err := Generate(cfg)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if inst.App.NumProcesses() != n {
				t.Fatalf("generated %d processes, want %d", inst.App.NumProcesses(), n)
			}
			if err := inst.App.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := inst.Platform.Validate(n); err != nil {
				t.Fatal(err)
			}
			if err := inst.Goal.Validate(); err != nil {
				t.Fatal(err)
			}
			if inst.Goal.Gamma < 7.5e-6 || inst.Goal.Gamma > 2.5e-5 {
				t.Errorf("gamma %v outside the paper's range", inst.Goal.Gamma)
			}
			if len(inst.Platform.Nodes) != 4 {
				t.Errorf("%d node types, want 4", len(inst.Platform.Nodes))
			}
			for _, node := range inst.Platform.Nodes {
				if len(node.Versions) != 5 {
					t.Errorf("node %s has %d levels, want 5", node.Name, len(node.Versions))
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(42, 20, 1e-11, 50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(42, 20, 1e-11, 50))
	if err != nil {
		t.Fatal(err)
	}
	if a.App.Graphs[0].Deadline != b.App.Graphs[0].Deadline {
		t.Error("same seed produced different deadlines")
	}
	if a.Goal.Gamma != b.Goal.Gamma {
		t.Error("same seed produced different goals")
	}
	for i := range a.App.Edges {
		if a.App.Edges[i] != b.App.Edges[i] {
			t.Fatalf("edge %d differs between identical seeds", i)
		}
	}
}

func TestGenerateWCETsInRange(t *testing.T) {
	inst, err := Generate(DefaultConfig(1, 20, 1e-11, 5))
	if err != nil {
		t.Fatal(err)
	}
	// On the fastest node (N1, speed 1.0) at minimum hardening, WCETs are
	// base × jitter × 1.01, so within [0.9, 1.12×20] ms.
	v := inst.Platform.Nodes[0].Versions[0]
	for pid, w := range v.WCET {
		if w < 1*0.9*1.0 || w > 20*1.1*1.02 {
			t.Errorf("process %d WCET %v outside expected bounds", pid, w)
		}
	}
	// μ between 1 and 10% of base WCET: bounded by 10% of max WCET.
	for _, p := range inst.App.Procs {
		if p.Mu <= 0 || p.Mu > 20*0.10 {
			t.Errorf("process %q mu %v outside bounds", p.Name, p.Mu)
		}
	}
}

func TestHPDFactorPaperValues(t *testing.T) {
	// HPD = 100%, 5 levels: 1.01, 1.25, 1.50, 1.75, 2.00.
	want := []float64{1.01, 1.25, 1.50, 1.75, 2.00}
	for h := 1; h <= 5; h++ {
		if got := HPDFactor(h, 5, 100); math.Abs(got-want[h-1]) > 1e-12 {
			t.Errorf("HPD=100 h=%d: factor %v, want %v", h, got, want[h-1])
		}
	}
	// HPD = 5%: 1.01 … 1.05 with the maximum level at exactly 5%.
	if got := HPDFactor(5, 5, 5); math.Abs(got-1.05) > 1e-12 {
		t.Errorf("HPD=5 h=5: factor %v, want 1.05", got)
	}
	// Degenerate single-level platform.
	if HPDFactor(1, 1, 100) != 1.01 {
		t.Error("single level should carry only the nominal degradation")
	}
}

func TestGenerateFailProbsScaleWithSERAndLevel(t *testing.T) {
	lo, err := Generate(DefaultConfig(5, 20, 1e-12, 25))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Generate(DefaultConfig(5, 20, 1e-10, 25))
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: identical structure, failure probabilities 100× apart at
	// every level.
	for nd := range lo.Platform.Nodes {
		for lv := range lo.Platform.Nodes[nd].Versions {
			pLo := lo.Platform.Nodes[nd].Versions[lv].FailProb[0]
			pHi := hi.Platform.Nodes[nd].Versions[lv].FailProb[0]
			if pLo == 0 || math.Abs(pHi/pLo-100) > 1e-6 {
				t.Fatalf("node %d level %d: SER scaling broken (%v vs %v)", nd, lv, pLo, pHi)
			}
		}
	}
	// Levels reduce p by ReductionPerLevel.
	v := lo.Platform.Nodes[0]
	for lv := 1; lv < len(v.Versions); lv++ {
		ratio := v.Versions[lv-1].FailProb[0] / v.Versions[lv].FailProb[0]
		// WCET grows slightly with the level, so the ratio is slightly
		// below 100.
		if ratio < 50 || ratio > 100.5 {
			t.Errorf("level %d→%d reduction ratio %v, want ≈100", lv, lv+1, ratio)
		}
	}
}

func TestGenerateDeadlineScalesWithFactor(t *testing.T) {
	tight := DefaultConfig(9, 20, 1e-11, 25)
	tight.DeadlineFactorMin, tight.DeadlineFactorMax = 1.5, 1.5
	loose := DefaultConfig(9, 20, 1e-11, 25)
	loose.DeadlineFactorMin, loose.DeadlineFactorMax = 3.0, 3.0
	a, err := Generate(tight)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(loose)
	if err != nil {
		t.Fatal(err)
	}
	if !(b.App.Graphs[0].Deadline > a.App.Graphs[0].Deadline) {
		t.Errorf("loose deadline %v not above tight %v", b.App.Graphs[0].Deadline, a.App.Graphs[0].Deadline)
	}
	// Deadline equals the period.
	if a.App.Period != a.App.Graphs[0].Deadline {
		t.Error("period should equal the deadline")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1, 20, 1e-11, 25)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumProcs = 0 },
		func(c *Config) { c.WCETMin = 0 },
		func(c *Config) { c.WCETMax = 0.5 },
		func(c *Config) { c.MuFracMin = -1 },
		func(c *Config) { c.NumNodeTypes = 0 },
		func(c *Config) { c.NumLevels = 0 },
		func(c *Config) { c.SER = -1 },
		func(c *Config) { c.HPDPercent = -5 },
		func(c *Config) { c.CostMin = 0 },
		func(c *Config) { c.DeadlineFactorMin = 0 },
		func(c *Config) { c.GammaMin = 0 },
		func(c *Config) { c.GammaMax = 1 },
	}
	for i, m := range mutations {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate should reject mutation %d", i)
		}
	}
}

func TestGenerateMultiGraph(t *testing.T) {
	cfg := DefaultConfig(11, 20, 1e-11, 25)
	cfg.NumGraphs = 3
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.App.Graphs) != 3 {
		t.Fatalf("%d graphs, want 3", len(inst.App.Graphs))
	}
	if inst.App.NumProcesses() != 20 {
		t.Fatalf("%d processes", inst.App.NumProcesses())
	}
	// All graphs share the deadline and no edge crosses graphs (Validate
	// enforces the latter; spot-check deadlines).
	for _, g := range inst.App.Graphs {
		if g.Deadline != inst.App.Graphs[0].Deadline {
			t.Error("graph deadlines differ")
		}
		if len(g.Procs) == 0 {
			t.Error("empty graph")
		}
	}
	// More graphs than processes clamps.
	cfg.NumProcs = 2
	cfg.NumGraphs = 5
	inst, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.App.Graphs) != 2 {
		t.Errorf("%d graphs, want clamp to 2", len(inst.App.Graphs))
	}
}

func TestGenerateSingleProcessGraphs(t *testing.T) {
	cfg := DefaultConfig(13, 4, 1e-11, 25)
	cfg.NumGraphs = 4
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.App.Edges) != 0 {
		t.Errorf("single-process graphs should have no edges, got %d", len(inst.App.Edges))
	}
}
