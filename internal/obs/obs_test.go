package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// decode unmarshals a written trace back into its event list.
func decode(t *testing.T, data []byte) []Event {
	t.Helper()
	var doc struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

// argID reads a span/parent id out of an event's args. Ids are int64 in
// freshly built events and float64 after a JSON round trip.
func argID(ev Event, key string) int64 {
	switch v := ev.Args[key].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

func TestSequentialNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root", String("kind", "test"))
	a := root.Child("a", Int("i", 1))
	b := a.Child("b")
	b.End()
	a.End()
	c := root.Child("c")
	c.End()
	root.SetAttr(Bool("done", true))
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decode(t, buf.Bytes())
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = ev
	}
	// Parent links.
	if argID(byName["a"], "parent_id") != argID(byName["root"], "span_id") {
		t.Error("a is not a child of root")
	}
	if argID(byName["b"], "parent_id") != argID(byName["a"], "span_id") {
		t.Error("b is not a child of a")
	}
	// Time containment.
	within := func(child, parent string) {
		c, p := byName[child], byName[parent]
		if c.TS < p.TS || c.TS+c.Dur > p.TS+p.Dur {
			t.Errorf("%s [%v,%v] not contained in %s [%v,%v]",
				child, c.TS, c.TS+c.Dur, parent, p.TS, p.TS+p.Dur)
		}
	}
	within("a", "root")
	within("b", "a")
	within("c", "root")
	// Sequential nesting shares one lane, so the viewer's time-containment
	// flame layout reconstructs the hierarchy.
	for _, name := range []string{"a", "b", "c"} {
		if byName[name].TID != byName["root"].TID {
			t.Errorf("%s on lane %d, root on %d; sequential children share the parent lane",
				name, byName[name].TID, byName["root"].TID)
		}
	}
	// Attributes survive the round trip.
	if byName["root"].Args["kind"] != "test" || byName["root"].Args["done"] != true {
		t.Errorf("root args = %v", byName["root"].Args)
	}
	if byName["a"].Args["i"].(float64) != 1 {
		t.Errorf("a args = %v", byName["a"].Args)
	}
}

// TestConcurrentChildrenGetOwnLanes: children open at the same time must
// land on distinct tids, or the viewer would stack unrelated spans.
func TestConcurrentChildrenGetOwnLanes(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	w1 := root.Child("worker-1")
	w2 := root.Child("worker-2") // started while w1 is open
	g1 := w1.Child("grand")      // nested under w1 on w1's lane
	g1.End()
	w2.End()
	w1.End()
	root.End()
	evs := tr.Events()
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	if byName["worker-1"].TID == byName["worker-2"].TID {
		t.Error("concurrent siblings share a lane")
	}
	if byName["grand"].TID != byName["worker-1"].TID {
		t.Error("sequential grandchild left its parent's lane")
	}
	// Lanes are reused once free: a span started after everything ended
	// gets the root lane back.
	late := tr.Start("late")
	late.End()
	evs = tr.Events()
	for _, ev := range evs {
		if ev.Name == "late" && ev.TID != byName["root"].TID {
			t.Errorf("late span on lane %d, want reused lane %d", ev.TID, byName["root"].TID)
		}
	}
}

func TestUnfinishedSpansExported(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("open")
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decode(t, buf.Bytes())
	if len(evs) != 1 || evs[0].Name != "open" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Args["unfinished"] != true {
		t.Error("open span not flagged unfinished")
	}
	s.End()
	if n := tr.SpanCount(); n != 1 {
		t.Errorf("span count %d, want 1", n)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", Int("i", 1))
	if s != nil {
		t.Fatal("nil tracer started a span")
	}
	c := s.Child("y")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetAttr(Bool("b", true))
	s.End() // must not panic
	if tr.SpanCount() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if evs := decode(t, buf.Bytes()); len(evs) != 0 {
		t.Errorf("nil tracer wrote %d events", len(evs))
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("once")
	s.End()
	s.End()
	if n := tr.SpanCount(); n != 1 {
		t.Errorf("span count %d after double End, want 1", n)
	}
}

// TestConcurrentUse hammers one tracer from many goroutines; run under
// -race in CI.
func TestConcurrentUse(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.Child("w", Int("g", g), Int("i", i))
				s.Child("inner").End()
				s.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if n := tr.SpanCount(); n != 8*50*2+1 {
		t.Errorf("span count %d, want %d", n, 8*50*2+1)
	}
	// Every recorded parent link must resolve and be time-contained.
	evs := tr.Events()
	byID := map[int64]Event{}
	for _, ev := range evs {
		byID[argID(ev, "span_id")] = ev
	}
	for _, ev := range evs {
		pid := argID(ev, "parent_id")
		if pid == 0 {
			continue
		}
		p, ok := byID[pid]
		if !ok {
			t.Fatalf("event %q has dangling parent %d", ev.Name, pid)
		}
		const eps = 1e-3 // µs; guard float rounding of the microsecond conversion
		if ev.TS < p.TS-eps || ev.TS+ev.Dur > p.TS+p.Dur+eps {
			t.Fatalf("%q [%v,%v] escapes parent %q [%v,%v]",
				ev.Name, ev.TS, ev.TS+ev.Dur, p.Name, p.TS, p.TS+p.Dur)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Counter("a.count").Add(3)
	r.Counter("b.count").Add(1)
	r.Histogram("lat").Observe(2 * time.Millisecond)
	r.Histogram("lat").Observe(6 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters["a.count"] != 5 || s.Counters["b.count"] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	h := s.Histograms["lat"]
	if h.Count != 2 || h.Min != 2*time.Millisecond || h.Max != 6*time.Millisecond {
		t.Errorf("histogram = %+v", h)
	}
	if got, want := h.Mean(), 4*time.Millisecond; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if len(h.Buckets) != 2 {
		t.Errorf("buckets = %+v, want 2 non-empty (2ms and 6ms fall in different powers of two)", h.Buckets)
	}

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.count 5", "b.count 1", "lat count=2"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text dump missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON dump does not decode: %v", err)
	}
	if back.Counters["a.count"] != 5 {
		t.Errorf("JSON round trip lost counters: %v", back.Counters)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Histogram("y").Observe(time.Second)
	if v := r.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to zero
	h.Observe(100 * time.Hour)
	s := h.snapshot()
	if s.Count != 2 || s.Min != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Buckets[len(s.Buckets)-1].Count != 1 {
		t.Errorf("overflow bucket not used: %+v", s.Buckets)
	}
}

// BenchmarkDisabledSpan is the cost instrumented hot paths pay when no
// tracer is installed: a nil check per call.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("root")
		c := s.Child("child", Int("i", i))
		c.End()
		s.End()
	}
}

// BenchmarkEnabledSpan is the recording cost when a tracer is installed.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	root := tr.Start("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := root.Child("child", Int("i", i))
		s.End()
	}
}

// BenchmarkDisabledRegistry is the no-op metrics cost.
func BenchmarkDisabledRegistry(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("c").Add(1)
		r.Histogram("h").Observe(time.Microsecond)
	}
}
