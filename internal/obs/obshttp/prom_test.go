package obshttp

import (
	"bufio"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureSnapshots builds hand-authored registry and progress snapshots
// covering every family kind the writer emits, with values that exercise
// name sanitization, label escaping and bucket accumulation. Literal
// snapshots keep the golden byte-stable (no wall clock involved).
func fixtureSnapshots() (obs.Snapshot, obs.ProgressStatus) {
	m := obs.Snapshot{
		Counters: map[string]int64{
			"core.archs_explored":    12,
			"evalengine.evaluations": 340,
			"weird name!":            3,
		},
		Gauges: map[string]float64{
			"evalengine.live.cache_entries": 128,
			"evalengine.live.evaluations":   340.5,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"core.run": {
				Count: 3,
				Sum:   2 * time.Millisecond,
				Min:   256 * time.Microsecond,
				Max:   1024 * time.Microsecond,
				Buckets: []obs.HistogramBucket{
					{UpperBound: 512 * time.Microsecond, Count: 1},
					{UpperBound: 1024 * time.Microsecond, Count: 2},
				},
			},
		},
	}
	p := obs.ProgressStatus{
		Phases: []obs.PhaseStatus{
			{Name: "cc.strategies", Current: 2, Total: 3, Best: 56, HasBest: true,
				RatePerSec: 1.5, ETA: time.Second, Elapsed: 2 * time.Second},
			{Name: `quo"te\phase`, Current: 480, Done: true, Elapsed: 3 * time.Second},
		},
	}
	return m, p
}

func TestWritePromGolden(t *testing.T) {
	m, p := fixtureSnapshots()
	var sb strings.Builder
	if err := WriteProm(&sb, m, p); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// Exposition-format grammar fragments (text format 0.0.4).
var (
	typeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?(?:[0-9.e+-]+|\+Inf|NaN))$`)
)

// TestWritePromParsesBack lints the emitted exposition line by line: every
// line is a TYPE declaration or a well-formed sample, every sample belongs
// to the most recently declared family, histogram buckets are cumulative
// and the +Inf bucket equals the count.
func TestWritePromParsesBack(t *testing.T) {
	m, p := fixtureSnapshots()
	var sb strings.Builder
	if err := WriteProm(&sb, m, p); err != nil {
		t.Fatal(err)
	}
	lintProm(t, sb.String())
}

func lintProm(t *testing.T, text string) {
	t.Helper()
	curFamily, curKind := "", ""
	declared := map[string]bool{}
	var lastBucket float64
	bucketCum := int64(-1)
	var bucketName string
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			t.Errorf("line %d: blank line in exposition", lineNo)
			continue
		}
		if mm := typeRE.FindStringSubmatch(line); mm != nil {
			if declared[mm[1]] {
				t.Errorf("line %d: family %s declared twice", lineNo, mm[1])
			}
			declared[mm[1]] = true
			curFamily, curKind = mm[1], mm[2]
			lastBucket, bucketCum, bucketName = 0, -1, ""
			continue
		}
		mm := sampleRE.FindStringSubmatch(line)
		if mm == nil {
			t.Errorf("line %d: not a valid exposition line: %q", lineNo, line)
			continue
		}
		name, labels, valStr := mm[1], mm[2], mm[3]
		base := name
		if curKind == "histogram" {
			base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		} else if curKind == "counter" {
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter sample %q lacks _total suffix", lineNo, name)
			}
		}
		if base != curFamily {
			t.Errorf("line %d: sample %q outside its TYPE block (current family %q)", lineNo, name, curFamily)
		}
		if strings.HasSuffix(name, "_bucket") {
			le := ""
			if f := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(labels); f != nil {
				le = f[1]
			}
			cum, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Errorf("line %d: bucket count %q not an int", lineNo, valStr)
				continue
			}
			if bucketName == name && cum < bucketCum {
				t.Errorf("line %d: bucket counts not cumulative: %d after %d", lineNo, cum, bucketCum)
			}
			bucketName, bucketCum = name, cum
			if le == "+Inf" {
				lastBucket = float64(cum)
			} else if ub, err := strconv.ParseFloat(le, 64); err != nil || ub <= 0 {
				t.Errorf("line %d: bad le bound %q", lineNo, le)
			}
		}
		if strings.HasSuffix(name, "_count") && curKind == "histogram" {
			cnt, _ := strconv.ParseFloat(valStr, 64)
			if cnt != lastBucket {
				t.Errorf("line %d: histogram count %v != +Inf bucket %v", lineNo, cnt, lastBucket)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lineNo == 0 {
		t.Fatal("empty exposition")
	}
}

// TestMetricsScrapeRace scrapes /metrics and /progress continuously while
// writer goroutines mutate the shared registry and progress publisher;
// under -race this is the scrape-vs-publish concurrency contract, and
// every scraped body must still lint as valid exposition.
func TestMetricsScrapeRace(t *testing.T) {
	reg := obs.NewRegistry()
	pr := obs.NewProgress()
	reg.GaugeFunc("live.value", func() float64 { return float64(pr.Status().Phases[0].Current) })
	pr.Phase("work").SetTotal(4000)
	srv := httptest.NewServer(Handler(Options{Registry: reg, Progress: pr, Tracer: obs.NewTracer()}))
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ph := pr.Phase("work")
			c := reg.Counter("evals")
			h := reg.Histogram("step")
			for i := 0; i < 1000; i++ {
				ph.Add(1)
				ph.Best(float64(1000 - i))
				c.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	scrape := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	for {
		body := scrape("/metrics")
		if body != "" {
			lintProm(t, body)
		}
		scrape("/progress")
		select {
		case <-done:
			final := scrape("/metrics")
			for _, want := range []string{"evals_total 4000", `progress_current{phase="work"} 4000`} {
				if !strings.Contains(final, want) {
					t.Errorf("final scrape missing %q:\n%s", want, final)
				}
			}
			return
		default:
		}
	}
}

// TestPromNameAndLabel pins the sanitizer edge cases.
func TestPromNameAndLabel(t *testing.T) {
	cases := map[string]string{
		"core.archs_explored": "core_archs_explored",
		"9lead":               "_lead",
		"a b-c":               "a_b_c",
		"ok:colon":            "ok:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("promLabel = %q", got)
	}
}
