package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// This file implements the live half of the introspection surface:
// /events, a Server-Sent Events stream of the fleet lifecycle (job and
// sweep events from the obs.EventLog, interleaved with periodic progress
// frames), and /timeseries, the obs.Sampler's sampled counter/gauge
// history. Together they let `curl -N` watch a sweep end-to-end and
// reconstruct rates-over-time afterwards, with no external collector.

// Tunables for the SSE loop. Variables, not constants, so tests can
// tighten them; production code never writes them.
var (
	// sseProgressInterval paces the progress frames on /events.
	sseProgressInterval = time.Second
	// sseHeartbeatInterval paces comment keep-alives so idle streams
	// survive proxies with read timeouts.
	sseHeartbeatInterval = 15 * time.Second
)

// handleEvents serves the SSE stream. Replay semantics: events with
// sequence numbers greater than ?since (or the Last-Event-ID header,
// standard SSE reconnect) are delivered first, then the stream follows
// the log live. ?since=now skips replay. ?job=ID (or Options.EventJob)
// filters lifecycle events to one job. ?progress_ms overrides the
// progress frame interval (0 disables progress frames).
func handleEvents(o Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		var since int64
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			since, _ = strconv.ParseInt(v, 10, 64)
		}
		if v := r.URL.Query().Get("since"); v != "" {
			if v == "now" {
				since = o.Events.Seq()
			} else {
				since, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		job := o.EventJob
		if v := r.URL.Query().Get("job"); v != "" {
			job = v
		}
		progressEvery := sseProgressInterval
		if v := r.URL.Query().Get("progress_ms"); v != "" {
			if ms, err := strconv.Atoi(v); err == nil {
				progressEvery = time.Duration(ms) * time.Millisecond
			}
		}

		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		var progressC <-chan time.Time
		if o.Progress != nil && progressEvery > 0 {
			t := time.NewTicker(progressEvery)
			defer t.Stop()
			progressC = t.C
		}
		heartbeat := time.NewTicker(sseHeartbeatInterval)
		defer heartbeat.Stop()

		for {
			// Take the change signal before draining, so an emit landing
			// between the drain and the select is never missed.
			changed := o.Events.Changed()
			evs := o.Events.Events(since)
			// A client further behind than the ring window gets an explicit
			// gap marker instead of silently skipped events: the frame names
			// the missing sequence range so the watcher can decide to resync
			// from the durable journal (or accept the hole).
			if len(evs) > 0 && evs[0].Seq > since+1 {
				gap := map[string]int64{
					"from": since + 1, "to": evs[0].Seq - 1,
					"missing": evs[0].Seq - since - 1,
				}
				if err := writeSSE(w, 0, "gap", gap); err != nil {
					return
				}
			}
			for _, ev := range evs {
				since = ev.Seq
				if job != "" && ev.Job != job {
					continue
				}
				if err := writeSSE(w, ev.Seq, ev.Type, ev); err != nil {
					return
				}
			}
			fl.Flush()
			select {
			case <-r.Context().Done():
				return
			case <-changed:
			case <-progressC:
				if err := writeSSE(w, 0, "progress", o.Progress.Status()); err != nil {
					return
				}
				fl.Flush()
			case <-heartbeat.C:
				if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
					return
				}
				fl.Flush()
			}
		}
	}
}

// writeSSE emits one SSE frame. id 0 means "no id" (progress frames,
// which are snapshots rather than log entries, carry none so they don't
// disturb Last-Event-ID reconnect bookkeeping).
func writeSSE(w http.ResponseWriter, id int64, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", id); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleTimeseries serves the sampler's ring buffer as JSON; ?last=N
// limits the response to the most recent N samples.
func handleTimeseries(o Options) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		last := 0
		if v := r.URL.Query().Get("last"); v != "" {
			last, _ = strconv.Atoi(v)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Sampler.Series(last))
	}
}
