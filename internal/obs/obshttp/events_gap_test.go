package obshttp

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEventsSSEGapMarker: a watcher further behind than the in-memory
// ring gets an explicit gap frame naming the evicted sequence range
// before the replay, instead of silently skipped events; a caught-up
// watcher gets no gap frame.
func TestEventsSSEGapMarker(t *testing.T) {
	log := obs.NewEventLog()
	// Overflow the replay ring so the oldest events are evicted.
	for log.Dropped() == 0 {
		for i := 0; i < 512; i++ {
			log.Emit("tick", "", nil)
		}
	}
	oldest := log.OldestBuffered()
	if oldest <= 1 {
		t.Fatalf("ring never evicted (oldest %d)", oldest)
	}

	srv := httptest.NewServer(Handler(Options{Events: log}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// since=0: the watcher asks for history the ring no longer holds.
	r, done := openStream(t, srv.URL+"/events?progress_ms=0")
	frames := readFrames(ctx, t, r, 2)
	done()
	if frames[0].Event != "gap" {
		t.Fatalf("first frame %q, want gap", frames[0].Event)
	}
	var gap struct{ From, To, Missing int64 }
	if err := json.Unmarshal([]byte(frames[0].Data), &gap); err != nil {
		t.Fatal(err)
	}
	if gap.From != 1 || gap.To != oldest-1 || gap.Missing != oldest-1 {
		t.Errorf("gap = %+v, want from 1 to %d missing %d", gap, oldest-1, oldest-1)
	}
	if frames[1].Event != "tick" || frames[1].ID != strconv.FormatInt(oldest, 10) {
		t.Errorf("replay after gap starts at %s/%s, want tick/%d", frames[1].Event, frames[1].ID, oldest)
	}

	// A watcher inside the ring window sees no gap frame.
	r2, done2 := openStream(t, srv.URL+"/events?progress_ms=0&since="+strconv.FormatInt(log.Seq()-1, 10))
	frames2 := readFrames(ctx, t, r2, 1)
	done2()
	if frames2[0].Event == "gap" {
		t.Errorf("caught-up watcher got a gap frame: %+v", frames2[0])
	}
}
