package obshttp

import (
	"net/http"
	"testing"
	"time"
)

// TestDrainTimeoutConfigurable: Drain gives in-flight requests the
// configured deadline, then force-closes what is left — a stuck handler
// cannot wedge shutdown, and a short deadline is honored instead of the
// old hard-coded 2 s.
func TestDrainTimeoutConfigurable(t *testing.T) {
	stuck := make(chan struct{})
	defer close(stuck)
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		<-stuck
	})
	s, err := ServeHandler("127.0.0.1:0", mux, Options{DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	started := make(chan struct{})
	go func() {
		close(started)
		http.Get(s.URL() + "/stuck") //nolint:errcheck — the server kills it
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the request reach the handler

	t0 := time.Now()
	err = s.Drain()
	elapsed := time.Since(t0)
	if err == nil {
		t.Error("Drain returned nil with a handler still stuck")
	}
	if elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("Drain took %v, want ~the configured 100ms deadline", elapsed)
	}
}

// TestDrainDefault: a zero DrainTimeout falls back to DefaultDrainTimeout
// and an idle server drains immediately.
func TestDrainDefault(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.drain != DefaultDrainTimeout {
		t.Errorf("default drain = %v, want %v", s.drain, DefaultDrainTimeout)
	}
	if err := s.Drain(); err != nil {
		t.Errorf("Drain on idle server: %v", err)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Error("server still accepting connections after Drain")
	}
}
