package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, base, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("core.archs_explored").Add(7)
	pr := obs.NewProgress()
	pr.Phase("cc.strategies").SetTotal(3)
	pr.Phase("cc.strategies").Add(1)
	tr := obs.NewTracer()
	tr.Start("root").End()
	srv := httptest.NewServer(Handler(Options{Registry: reg, Progress: pr, Tracer: tr}))
	defer srv.Close()

	t.Run("healthz", func(t *testing.T) {
		code, body, _ := get(t, srv.URL, "/healthz")
		if code != http.StatusOK || body != "ok\n" {
			t.Errorf("healthz = %d %q", code, body)
		}
	})
	t.Run("metrics", func(t *testing.T) {
		code, body, hdr := get(t, srv.URL, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("content type %q lacks exposition version", ct)
		}
		for _, want := range []string{
			"core_archs_explored_total 7",
			`progress_current{phase="cc.strategies"} 1`,
			`progress_total{phase="cc.strategies"} 3`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %q:\n%s", want, body)
			}
		}
	})
	t.Run("progress", func(t *testing.T) {
		code, body, _ := get(t, srv.URL, "/progress")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var st obs.ProgressStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("progress body not JSON: %v (%q)", err, body)
		}
		if len(st.Phases) != 1 || st.Phases[0].Current != 1 || st.Phases[0].Total != 3 {
			t.Errorf("progress = %+v", st)
		}
	})
	t.Run("trace", func(t *testing.T) {
		code, body, _ := get(t, srv.URL, "/trace")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("trace body not JSON: %v", err)
		}
		if _, ok := doc["traceEvents"]; !ok {
			t.Errorf("trace missing traceEvents: %v", doc)
		}
	})
	t.Run("expvar", func(t *testing.T) {
		code, body, _ := get(t, srv.URL, "/debug/vars")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("expvar body not JSON: %v", err)
		}
		if _, ok := doc["memstats"]; !ok {
			t.Error("expvar missing memstats")
		}
	})
	t.Run("pprof", func(t *testing.T) {
		code, body, _ := get(t, srv.URL, "/debug/pprof/")
		if code != http.StatusOK || !strings.Contains(body, "goroutine") {
			t.Errorf("pprof index = %d, body %q", code, body)
		}
	})
	t.Run("index", func(t *testing.T) {
		code, body, _ := get(t, srv.URL, "/")
		if code != http.StatusOK || !strings.Contains(body, "/metrics") {
			t.Errorf("index = %d %q", code, body)
		}
	})
	t.Run("not found", func(t *testing.T) {
		if code, _, _ := get(t, srv.URL, "/nope"); code != http.StatusNotFound {
			t.Errorf("unknown path = %d, want 404", code)
		}
	})
}

// TestNilOptions: every endpoint must serve a valid (possibly empty) body
// with no instruments installed at all.
func TestNilOptions(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/metrics", "/progress", "/trace", "/debug/vars"} {
		code, body, _ := get(t, srv.URL, path)
		if code != http.StatusOK {
			t.Errorf("%s with nil options = %d", path, code)
		}
		if path == "/progress" || path == "/trace" {
			if !json.Valid([]byte(body)) {
				t.Errorf("%s with nil options not JSON: %q", path, body)
			}
		}
	}
}

func TestServe(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x").Add(1)
	s, err := Serve("127.0.0.1:0", Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Errorf("URL = %q", s.URL())
	}
	code, body, _ := get(t, s.URL(), "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "x_total 1") {
		t.Errorf("metrics over Serve = %d %q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestShutdownDrainsInFlightScrape: Shutdown stops admitting new
// connections but lets a /metrics scrape already in flight finish with a
// complete body — the graceful half of paperbench's two-stage interrupt.
func TestShutdownDrainsInFlightScrape(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x").Add(1)
	s, err := Serve("127.0.0.1:0", Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	inFlight := make(chan struct{})
	release := make(chan struct{})
	testMetricsGate = func() {
		close(inFlight)
		<-release
	}
	defer func() { testMetricsGate = nil }()

	type scrape struct {
		code int
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get(s.URL() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{code: resp.StatusCode, body: string(body), err: err}
	}()

	<-inFlight // the scrape is now blocked inside the handler
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// The drain must wait for the handler, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a scrape still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	sc := <-got
	if sc.err != nil {
		t.Fatalf("in-flight scrape failed across Shutdown: %v", sc.err)
	}
	if sc.code != http.StatusOK || !strings.Contains(sc.body, "x_total 1") {
		t.Errorf("drained scrape = %d %q", sc.code, sc.body)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}
