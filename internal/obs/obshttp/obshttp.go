// Package obshttp serves the observability state of a running
// exploration over HTTP, so a long sweep can be watched, scraped and
// profiled while it runs instead of being a black box until it exits:
//
//	/metrics      counters, gauges and histograms from the obs.Registry
//	              plus live progress gauges, in Prometheus text
//	              exposition format (scrape it, or just curl it)
//	/progress     the obs.Progress snapshot as JSON (phase,
//	              current/total, best cost, moving rate, ETA)
//	/trace        the current Chrome trace_event snapshot of the
//	              obs.Tracer (open spans flagged unfinished) — load a
//	              mid-run trace in Perfetto without stopping anything
//	/events       Server-Sent Events stream of the obs.EventLog —
//	              lifecycle events (job submitted/started/done, shards,
//	              sweeps) with replay via ?since / Last-Event-ID, plus
//	              periodic progress frames (events.go)
//	/timeseries   the obs.Sampler ring buffer: counter/gauge values
//	              sampled at a fixed interval, as JSON — rates over
//	              time without an external Prometheus
//	/healthz      liveness: 200 "ok"
//	/debug/vars   expvar (Go runtime memstats, cmdline)
//	/debug/pprof  the standard pprof handlers, so `go tool pprof
//	              http://host:port/debug/pprof/profile?seconds=5`
//	              attaches to a sweep mid-flight
//
// Everything served here is observation-only: handlers snapshot the
// instruments the search stack publishes into, and nothing in the stack
// reads back, so serving cannot alter results (the paperbench tests pin
// byte-identical tables with and without -serve). All option fields are
// optional — a nil Registry/Progress/Tracer serves valid empty bodies.
//
// cmd/paperbench wires this up behind -serve; programmatic use goes
// through ftes.ServeIntrospection.
package obshttp

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// testMetricsGate, when non-nil, runs at the top of every /metrics
// request. Tests use it to hold a scrape in flight while Shutdown runs,
// proving graceful drain.
var testMetricsGate func()

// DefaultDrainTimeout bounds Drain's graceful shutdown when Options does
// not say otherwise.
const DefaultDrainTimeout = 2 * time.Second

// Options selects what the endpoints expose. Every field is optional.
type Options struct {
	// Registry feeds /metrics (and /debug/vars stays Go-runtime-only when
	// nil).
	Registry *obs.Registry
	// Progress feeds /progress and the progress_* gauges on /metrics.
	Progress *obs.Progress
	// Tracer feeds /trace.
	Tracer *obs.Tracer
	// Events feeds /events; nil serves a stream that only ever carries
	// progress frames (when Progress is set) and heartbeats.
	Events *obs.EventLog
	// EventJob, when non-empty, restricts /events to lifecycle events
	// whose Job matches — the per-job introspection mounts in ftesd set
	// it so each job streams only its own story. Clients can restrict a
	// daemon-wide stream the same way with ?job=<id>.
	EventJob string
	// Sampler feeds /timeseries.
	Sampler *obs.Sampler
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// before force-closing them (0 = DefaultDrainTimeout). Long-running
	// daemons surface this as a flag (ftesd -drain); paperbench uses the
	// default.
	DrainTimeout time.Duration
}

// Handler returns the introspection mux over the given instruments.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if testMetricsGate != nil {
			testMetricsGate()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, o.Registry.Snapshot(), o.Progress.Status()); err != nil {
			// Too late for an error status; the client sees a short body.
			return
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Progress.Status())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/events", handleEvents(o))
	mux.HandleFunc("/timeseries", handleTimeseries(o))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "live introspection endpoints:\n"+
			"  /metrics      Prometheus exposition (counters, histograms, progress gauges)\n"+
			"  /progress     progress snapshot (JSON)\n"+
			"  /trace        Chrome trace_event snapshot (JSON)\n"+
			"  /events       lifecycle + progress event stream (SSE; ?since=N, ?job=ID)\n"+
			"  /timeseries   sampled counter/gauge history (JSON; ?last=N)\n"+
			"  /healthz      liveness\n"+
			"  /debug/vars   expvar\n"+
			"  /debug/pprof  pprof profiles\n")
	})
	return mux
}

// Server is a running introspection listener; create one with Serve (or
// ServeHandler for a custom mux) and stop it with Close or Drain.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	drain time.Duration
}

// Serve starts serving the introspection endpoints on addr (e.g. ":8080"
// or "127.0.0.1:0" for an ephemeral port) in a background goroutine. The
// caller owns the returned Server and must Close it.
func Serve(addr string, o Options) (*Server, error) {
	return ServeHandler(addr, Handler(o), o)
}

// ServeHandler is Serve with a caller-provided handler instead of the
// default introspection mux; o contributes only the drain configuration.
// ftesd uses it to serve its job API alongside per-job introspection
// mounts while reusing the listener and graceful-drain machinery.
func ServeHandler(addr string, h http.Handler, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	drain := o.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, drain: drain}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// requested one was 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and closes open connections.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the server gracefully: the listener closes immediately
// (no new scrapes are admitted) while requests already in flight get
// until ctx's deadline to complete. It returns ctx's error if the drain
// ran out of time; callers should fall back to Close then.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Drain is Shutdown bounded by the configured drain deadline
// (Options.DrainTimeout, default DefaultDrainTimeout), falling back to
// Close when the deadline passes with requests still in flight. It is the
// one-call graceful teardown the binaries use.
func (s *Server) Drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}
