package obshttp

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file maps the obs instrument model onto the Prometheus text
// exposition format (version 0.0.4):
//
//   - counters keep their dotted obs name, sanitized and suffixed
//     `_total` (core.archs_explored → core_archs_explored_total);
//   - gauges are sanitized verbatim;
//   - duration histograms become `<name>_seconds` histograms with
//     cumulative `_bucket{le="..."}` series (upper bounds in seconds, the
//     Prometheus base unit), `_sum` and `_count`;
//   - live progress phases export as `progress_current`, `progress_total`,
//     `progress_best`, `progress_rate_per_sec` and `progress_done` gauges
//     labelled {phase="<name>"}.
//
// Output ordering is deterministic — families sorted by name within each
// instrument class, phases in creation order — so the exposition is
// golden-testable and diffs between scrapes are meaningful.

// promName sanitizes an obs instrument name into the Prometheus metric
// name charset [a-zA-Z0-9_:] (dots become underscores).
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat formats a sample value.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func seconds(d time.Duration) float64 { return d.Seconds() }

// sortedKeys returns m's keys sorted by their sanitized metric name.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return promName(keys[i]) < promName(keys[j]) })
	return keys
}

// WriteProm renders a registry snapshot plus a progress snapshot in the
// Prometheus text exposition format. Either snapshot may be empty; the
// output is valid (possibly zero-length body) exposition either way.
func WriteProm(w io.Writer, m obs.Snapshot, p obs.ProgressStatus) error {
	bw := &errWriter{w: w}
	for _, name := range sortedKeys(m.Counters) {
		n := promName(name) + "_total"
		bw.printf("# TYPE %s counter\n%s %d\n", n, n, m.Counters[name])
	}
	for _, name := range sortedKeys(m.Gauges) {
		n := promName(name)
		bw.printf("# TYPE %s gauge\n%s %s\n", n, n, promFloat(m.Gauges[name]))
	}
	for _, name := range sortedKeys(m.Histograms) {
		h := m.Histograms[name]
		n := promName(name) + "_seconds"
		bw.printf("# TYPE %s histogram\n", n)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			bw.printf("%s_bucket{le=\"%s\"} %d\n", n, promFloat(seconds(b.UpperBound)), cum)
		}
		bw.printf("%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		bw.printf("%s_sum %s\n", n, promFloat(seconds(h.Sum)))
		bw.printf("%s_count %d\n", n, h.Count)
	}
	writePromProgress(bw, p)
	return bw.err
}

// writePromProgress renders the progress phases as labelled gauges, one
// family at a time (the exposition format requires all samples of a
// metric to be consecutive).
func writePromProgress(bw *errWriter, p obs.ProgressStatus) {
	if len(p.Phases) == 0 {
		return
	}
	family := func(name string, emit func(ph obs.PhaseStatus) (float64, bool)) {
		first := true
		for _, ph := range p.Phases {
			v, ok := emit(ph)
			if !ok {
				continue
			}
			if first {
				bw.printf("# TYPE %s gauge\n", name)
				first = false
			}
			bw.printf("%s{phase=\"%s\"} %s\n", name, promLabel(ph.Name), promFloat(v))
		}
	}
	family("progress_current", func(ph obs.PhaseStatus) (float64, bool) {
		return float64(ph.Current), true
	})
	family("progress_total", func(ph obs.PhaseStatus) (float64, bool) {
		return float64(ph.Total), ph.Total > 0
	})
	family("progress_best", func(ph obs.PhaseStatus) (float64, bool) {
		return ph.Best, ph.HasBest
	})
	family("progress_rate_per_sec", func(ph obs.PhaseStatus) (float64, bool) {
		return ph.RatePerSec, ph.RatePerSec > 0
	})
	family("progress_done", func(ph obs.PhaseStatus) (float64, bool) {
		if ph.Done {
			return 1, true
		}
		return 0, true
	})
}

// errWriter latches the first write error so the exposition loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
