package obshttp

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	ID    string
	Event string
	Data  string
}

// sseStream is an open SSE connection. A single goroutine (started by
// openStream) owns the response body's reader and feeds lines, so
// repeated readFrames calls on one stream never race on the reader.
type sseStream struct {
	lines chan string
	errs  chan error
}

// readFrames reads SSE frames from s until n frames arrived or the
// context expired.
func readFrames(ctx context.Context, t *testing.T, s *sseStream, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for len(frames) < n {
		select {
		case <-ctx.Done():
			t.Fatalf("timed out with %d/%d frames: %+v", len(frames), n, frames)
		case err := <-s.errs:
			t.Fatalf("stream ended with %d/%d frames: %v", len(frames), n, err)
		case line := <-s.lines:
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.ID = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				cur.Event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.Data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.Event != "":
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		}
	}
	return frames
}

func openStream(t *testing.T, url string) (*sseStream, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("content type %q", ct)
	}
	s := &sseStream{lines: make(chan string), errs: make(chan error, 1)}
	go func() {
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				s.errs <- err
				return
			}
			select {
			case s.lines <- strings.TrimRight(line, "\n"):
			case <-ctx.Done():
				return
			}
		}
	}()
	return s, func() { cancel(); resp.Body.Close() }
}

// TestEventsSSE: the stream replays buffered events, then delivers live
// emissions in order with SSE ids matching sequence numbers.
func TestEventsSSE(t *testing.T) {
	log := obs.NewEventLog()
	log.Emit("job.submitted", "j1", map[string]any{"fig": "6a"})
	log.Emit("job.started", "j1", nil)

	srv := httptest.NewServer(Handler(Options{Events: log}))
	defer srv.Close()

	r, done := openStream(t, srv.URL+"/events")
	defer done()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	frames := readFrames(ctx, t, r, 2)
	if frames[0].Event != "job.submitted" || frames[1].Event != "job.started" {
		t.Fatalf("replay out of order: %+v", frames)
	}
	if frames[0].ID != "1" || frames[1].ID != "2" {
		t.Errorf("SSE ids %q,%q, want 1,2", frames[0].ID, frames[1].ID)
	}

	log.Emit("job.done", "j1", map[string]any{"elapsed_ms": 7})
	live := readFrames(ctx, t, r, 1)
	if live[0].Event != "job.done" || live[0].ID != "3" {
		t.Fatalf("live frame %+v", live[0])
	}
	var ev obs.LogEvent
	if err := json.Unmarshal([]byte(live[0].Data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Job != "j1" || ev.Fields["elapsed_ms"] != float64(7) {
		t.Errorf("payload %+v", ev)
	}
}

// TestEventsSinceAndJobFilter: ?since skips replay and ?job filters the
// lifecycle stream to one job's events.
func TestEventsSinceAndJobFilter(t *testing.T) {
	log := obs.NewEventLog()
	log.Emit("job.started", "a", nil)
	log.Emit("job.started", "b", nil)
	log.Emit("job.done", "a", nil)

	srv := httptest.NewServer(Handler(Options{Events: log}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	r, done := openStream(t, srv.URL+"/events?job=b")
	frames := readFrames(ctx, t, r, 1)
	if frames[0].Event != "job.started" || !strings.Contains(frames[0].Data, `"job":"b"`) {
		t.Errorf("job filter leaked: %+v", frames[0])
	}
	// The next frame for job=b is a live one; a's events never arrive.
	log.Emit("job.done", "b", nil)
	frames = readFrames(ctx, t, r, 1)
	if frames[0].Event != "job.done" || !strings.Contains(frames[0].Data, `"job":"b"`) {
		t.Errorf("job filter leaked live: %+v", frames[0])
	}
	done()

	r, done = openStream(t, srv.URL+"/events?since=now")
	defer done()
	log.Emit("job.canceled", "c", nil)
	frames = readFrames(ctx, t, r, 1)
	if frames[0].Event != "job.canceled" {
		t.Errorf("since=now replayed history: %+v", frames[0])
	}
}

// TestEventsJobOption: Options.EventJob pins the filter server-side, the
// way ftesd's per-job mounts use it.
func TestEventsJobOption(t *testing.T) {
	log := obs.NewEventLog()
	log.Emit("job.started", "a", nil)
	log.Emit("job.started", "b", nil)

	srv := httptest.NewServer(Handler(Options{Events: log, EventJob: "b"}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r, done := openStream(t, srv.URL+"/events")
	defer done()
	frames := readFrames(ctx, t, r, 1)
	if !strings.Contains(frames[0].Data, `"job":"b"`) {
		t.Errorf("EventJob filter leaked: %+v", frames[0])
	}
}

// TestEventsProgressFrames: a stream over a Progress publisher carries
// periodic progress snapshots even with no lifecycle events at all.
func TestEventsProgressFrames(t *testing.T) {
	prog := obs.NewProgress()
	prog.Phase("rows").Add(3)

	srv := httptest.NewServer(Handler(Options{Progress: prog}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r, done := openStream(t, srv.URL+"/events?progress_ms=20")
	defer done()
	frames := readFrames(ctx, t, r, 2)
	for _, f := range frames {
		if f.Event != "progress" {
			t.Fatalf("unexpected frame %+v", f)
		}
		if f.ID != "" {
			t.Errorf("progress frame carries an id: %+v", f)
		}
		var st obs.ProgressStatus
		if err := json.Unmarshal([]byte(f.Data), &st); err != nil {
			t.Fatal(err)
		}
		if len(st.Phases) != 1 || st.Phases[0].Current != 3 {
			t.Errorf("progress payload %+v", st)
		}
	}
}

// TestTimeseries: /timeseries serves the sampler ring as JSON and
// honors ?last.
func TestTimeseries(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("evals")
	smp := obs.NewSampler(reg, 50*time.Millisecond, 16)
	c.Add(1)
	smp.Sample()
	c.Add(1)
	smp.Sample()

	srv := httptest.NewServer(Handler(Options{Registry: reg, Sampler: smp}))
	defer srv.Close()

	var ts obs.TimeSeries
	getJSON(t, srv.URL+"/timeseries", &ts)
	if ts.IntervalMS != 50 || len(ts.Samples) != 2 {
		t.Fatalf("series %+v", ts)
	}
	if ts.Samples[1].Counters["evals"] != 2 {
		t.Errorf("latest sample %+v", ts.Samples[1])
	}

	getJSON(t, srv.URL+"/timeseries?last=1", &ts)
	if len(ts.Samples) != 1 || ts.Samples[0].Counters["evals"] != 2 {
		t.Errorf("?last=1 series %+v", ts)
	}

	// No sampler configured: valid empty series, stable shape.
	srv2 := httptest.NewServer(Handler(Options{}))
	defer srv2.Close()
	getJSON(t, srv2.URL+"/timeseries", &ts)
	if ts.Samples == nil || len(ts.Samples) != 0 {
		t.Errorf("nil sampler series %+v", ts)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
