package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Progress is the live-progress publisher of the observability layer: a
// concurrency-safe set of named phases, each tracking a monotonically
// advancing counter, an optional total, the best cost seen so far, and a
// moving completion rate from which an ETA is derived. Long-running
// explorations publish into it — core.Run per candidate architecture,
// the tabu search per iteration, the experiment harness per application
// or table row — and observers snapshot it: `paperbench -progress`
// renders a throttled stderr status line, and obshttp serves the
// snapshot as `/progress` JSON and as Prometheus gauges on `/metrics`.
//
// Like the tracer and the registry, a nil *Progress is the disabled
// publisher: Phase returns a nil *Phase whose methods are no-ops, so
// instrumented loops publish unconditionally and pay one pointer check
// when no publisher is installed. Publication is observation-only by
// construction — nothing in the search stack reads a Progress — so it
// can never alter results.
type Progress struct {
	mu     sync.Mutex
	phases map[string]*Phase
	order  []string
	now    func() time.Time // injectable clock for tests
}

// NewProgress returns an enabled, empty progress publisher.
func NewProgress() *Progress {
	return &Progress{phases: make(map[string]*Phase), now: time.Now}
}

// rateWindow is the number of recent Add samples the moving-rate
// estimate looks back over.
const rateWindow = 64

// progressSample is one (time, cumulative count) observation.
type progressSample struct {
	t time.Time
	n int64
}

// Phase is one named progress track. All methods are safe for concurrent
// use (they share the parent publisher's mutex) and safe on a nil
// receiver.
type Phase struct {
	pr      *Progress
	name    string
	started time.Time
	// lastAdd is when the counter last advanced; started→lastAdd is the
	// phase's active window, the per-phase duration BENCH_*.json records.
	lastAdd time.Time
	current int64
	total   int64
	best    float64
	hasBest bool
	done    bool
	// samples is a ring buffer of the most recent Add observations; head
	// is the next overwrite index once the ring is full.
	samples []progressSample
	head    int
}

// Phase returns the named phase, creating it on first use. Phases are
// reported in creation order.
func (p *Progress) Phase(name string) *Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ph := p.phases[name]
	if ph == nil {
		ph = &Phase{pr: p, name: name, started: p.now()}
		p.phases[name] = ph
		p.order = append(p.order, name)
	}
	return ph
}

// Add advances the phase counter by n (the counter never goes backwards;
// n ≤ 0 is ignored) and records a rate sample.
func (ph *Phase) Add(n int64) {
	if ph == nil || n <= 0 {
		return
	}
	ph.pr.mu.Lock()
	ph.current += n
	ph.lastAdd = ph.pr.now()
	s := progressSample{t: ph.lastAdd, n: ph.current}
	if len(ph.samples) < rateWindow {
		ph.samples = append(ph.samples, s)
	} else {
		ph.samples[ph.head] = s
		ph.head = (ph.head + 1) % rateWindow
	}
	ph.pr.mu.Unlock()
}

// SetTotal sets the expected final count (0 = unknown).
func (ph *Phase) SetTotal(n int64) {
	if ph == nil {
		return
	}
	ph.pr.mu.Lock()
	ph.total = n
	ph.pr.mu.Unlock()
}

// AddTotal grows the expected final count; batched harnesses that learn
// their workload incrementally (one sweep point at a time) accumulate
// into the same phase.
func (ph *Phase) AddTotal(n int64) {
	if ph == nil {
		return
	}
	ph.pr.mu.Lock()
	ph.total += n
	ph.pr.mu.Unlock()
}

// Best records a candidate best cost; the phase keeps the minimum.
func (ph *Phase) Best(cost float64) {
	if ph == nil {
		return
	}
	ph.pr.mu.Lock()
	if !ph.hasBest || cost < ph.best {
		ph.best = cost
		ph.hasBest = true
	}
	ph.pr.mu.Unlock()
}

// Done marks the phase finished.
func (ph *Phase) Done() {
	if ph == nil {
		return
	}
	ph.pr.mu.Lock()
	ph.done = true
	ph.pr.mu.Unlock()
}

// PhaseStatus is a point-in-time view of one phase.
type PhaseStatus struct {
	Name    string `json:"name"`
	Current int64  `json:"current"`
	// Total is the expected final count (0 = unknown).
	Total int64 `json:"total,omitempty"`
	// Best is the best (lowest) cost reported so far; valid iff HasBest.
	Best    float64 `json:"best,omitempty"`
	HasBest bool    `json:"has_best,omitempty"`
	// RatePerSec is the moving completion rate over the recent sample
	// window (0 until two samples exist).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// ETA estimates the remaining time from RatePerSec (0 when the total
	// or the rate is unknown, or the phase is done).
	ETA     time.Duration `json:"eta_ns,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Active is the phase's active window so far — creation to the most
	// recent counter advance (0 until the first Add). Unlike Elapsed it
	// stops growing once the phase's work stops, which is what makes
	// per-phase wall-time attribution in BENCH_*.json meaningful.
	Active time.Duration `json:"active_ns,omitempty"`
	Done   bool          `json:"done,omitempty"`
}

// ProgressStatus is a snapshot of every phase, in creation order.
type ProgressStatus struct {
	Phases []PhaseStatus `json:"phases"`
}

// Status snapshots all phases. A nil publisher snapshots empty.
func (p *Progress) Status() ProgressStatus {
	var s ProgressStatus
	if p == nil {
		return s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	for _, name := range p.order {
		ph := p.phases[name]
		st := PhaseStatus{
			Name:    ph.name,
			Current: ph.current,
			Total:   ph.total,
			Best:    ph.best,
			HasBest: ph.hasBest,
			Elapsed: now.Sub(ph.started),
			Done:    ph.done,
		}
		if !ph.lastAdd.IsZero() {
			st.Active = ph.lastAdd.Sub(ph.started)
		}
		if n := len(ph.samples); n >= 2 {
			first := ph.samples[0]
			if n == rateWindow {
				first = ph.samples[ph.head]
			}
			last := ph.samples[(ph.head+n-1)%n]
			if dt := last.t.Sub(first.t).Seconds(); dt > 0 {
				st.RatePerSec = float64(last.n-first.n) / dt
			}
		}
		if !ph.done && ph.total > 0 && ph.current < ph.total && st.RatePerSec > 0 {
			st.ETA = time.Duration(float64(ph.total-ph.current) / st.RatePerSec * float64(time.Second))
		}
		s.Phases = append(s.Phases, st)
	}
	return s
}

// StatusLine renders the snapshot as a single status line, the form the
// `paperbench -progress` stderr renderer prints.
func (s ProgressStatus) StatusLine() string {
	var parts []string
	for _, ph := range s.Phases {
		var b strings.Builder
		fmt.Fprintf(&b, "%s %d", ph.Name, ph.Current)
		if ph.Total > 0 {
			fmt.Fprintf(&b, "/%d (%.0f%%)", ph.Total, 100*float64(ph.Current)/float64(ph.Total))
		}
		switch {
		case ph.Done:
			b.WriteString(" done")
		case ph.RatePerSec > 0:
			fmt.Fprintf(&b, ", %.1f/s", ph.RatePerSec)
			if ph.ETA > 0 {
				fmt.Fprintf(&b, ", ETA %s", ph.ETA.Round(time.Second))
			}
		}
		if ph.HasBest {
			fmt.Fprintf(&b, ", best %g", ph.Best)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " | ")
}
