package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// This file is the cross-process half of the tracer: reading the trace
// files individual workers snapshot into a shard directory and stitching
// them into one Chrome trace with a lane group per process, span IDs
// remapped into disjoint ranges, cross-process parent references resolved
// to concrete parent links, and clocks aligned on the recorded wall-time
// origins. The output is a plain trace_event document — Perfetto renders
// a sharded sweep as one timeline, coordinator on top, workers below.

// ReadTrace parses a Chrome trace_event document previously produced by
// WriteChromeTrace (or MergeTraces). Documents without the ftesMeta
// extension load fine with an empty Meta.
func ReadTrace(r io.Reader) (TraceData, error) {
	var doc chromeTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return TraceData{}, fmt.Errorf("obs: read chrome trace: %w", err)
	}
	td := TraceData{Events: doc.TraceEvents}
	if doc.Meta != nil {
		td.Meta = *doc.Meta
	}
	return td, nil
}

// ReadTraceFile reads one trace file from disk.
func ReadTraceFile(path string) (TraceData, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceData{}, err
	}
	defer f.Close()
	td, err := ReadTrace(f)
	if err != nil {
		return TraceData{}, fmt.Errorf("%s: %w", path, err)
	}
	return td, nil
}

// spanID reads a span identifier out of an event arg, which is an int64
// on a live snapshot but a float64 after a JSON round trip.
func spanID(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case float64:
		return int64(n), true
	case json.Number:
		i, err := n.Int64()
		return i, err == nil
	}
	return 0, false
}

// MergeTraces stitches the traces of several processes into one Chrome
// trace and writes it to w. The first trace is conventionally the
// coordinator's; each input gets its own pid (its lane group in the
// viewer) named after its Meta.Process via a process_name metadata event.
//
// Span IDs are rewritten into disjoint ranges so the merged document has
// globally unique span_id values; parent_id links are remapped within
// their own trace, and parent_ref links ("traceID:spanID" recorded by
// Tracer.SetRemoteParent) are resolved to concrete parent_id values when
// the referenced trace is part of the merge — reconnecting a worker's
// root spans under the coordinator's sweep span. Unresolvable references
// are kept verbatim.
//
// Timestamps are normalized onto one clock: each trace's events shift by
// the offset of its wall-clock origin (Meta.WallUS) from the earliest
// origin among the inputs. Traces without a recorded origin stay at
// offset zero. Events are emitted in global timestamp order.
func MergeTraces(w io.Writer, traces ...TraceData) error {
	// First pass: assign the remapped ID of every span, keyed both
	// per-trace (for parent_id) and globally (for parent_ref).
	perTrace := make([]map[int64]int64, len(traces))
	global := make(map[string]int64)
	var next int64
	for i, td := range traces {
		ids := make(map[int64]int64)
		for _, ev := range td.Events {
			old, ok := spanID(ev.Args["span_id"])
			if !ok {
				continue
			}
			next++
			ids[old] = next
			if td.Meta.TraceID != "" {
				global[fmt.Sprintf("%s:%d", td.Meta.TraceID, old)] = next
			}
		}
		perTrace[i] = ids
	}

	// Clock alignment: earliest wall origin becomes the merged zero.
	minWall := 0.0
	for _, td := range traces {
		if td.Meta.WallUS > 0 && (minWall == 0 || td.Meta.WallUS < minWall) {
			minWall = td.Meta.WallUS
		}
	}

	var out []Event
	for i, td := range traces {
		pid := i + 1
		name := td.Meta.Process
		if name == "" {
			name = fmt.Sprintf("process %d", i)
		}
		out = append(out, Event{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]any{"name": name},
		})
		offset := 0.0
		if td.Meta.WallUS > 0 && minWall > 0 {
			offset = td.Meta.WallUS - minWall
		}
		for _, ev := range td.Events {
			args := make(map[string]any, len(ev.Args))
			for k, v := range ev.Args {
				args[k] = v
			}
			if old, ok := spanID(args["span_id"]); ok {
				args["span_id"] = perTrace[i][old]
			}
			if old, ok := spanID(args["parent_id"]); ok {
				args["parent_id"] = perTrace[i][old]
			}
			if ref, ok := args["parent_ref"].(string); ok {
				if id, ok := global[ref]; ok {
					args["parent_id"] = id
					delete(args, "parent_ref")
				}
			}
			ev.Args = args
			ev.PID = pid
			ev.TS += offset
			out = append(out, ev)
		}
	}
	// Metadata events carry no timestamp; keep them ahead of the span
	// events they name by sorting "M" before "X" at equal TS.
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].TS != out[b].TS {
			return out[a].TS < out[b].TS
		}
		return out[a].Ph == "M" && out[b].Ph != "M"
	})
	return writeTrace(w, TraceData{Events: out, Meta: TraceMeta{WallUS: minWall}})
}
