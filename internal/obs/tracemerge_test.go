package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// buildWorkerTrace records a random span tree on a fresh tracer whose
// roots hang under parentRef. Every span gets a globally unique name so
// the property test can check exactly-once presence after the merge.
// Returns the tracer and the names it recorded.
func buildWorkerTrace(rng *rand.Rand, worker int, parentRef string) (*Tracer, []string) {
	tr := NewTracer()
	tr.SetProcessLabel(fmt.Sprintf("shard %d", worker))
	tr.SetRemoteParent(parentRef)
	var names []string
	n := 0
	var grow func(parent *Span, depth int)
	grow = func(parent *Span, depth int) {
		kids := 1 + rng.Intn(3)
		for k := 0; k < kids; k++ {
			name := fmt.Sprintf("w%d-s%d", worker, n)
			n++
			names = append(names, name)
			var s *Span
			if parent == nil {
				s = tr.Start(name, Int("worker", worker))
			} else {
				s = parent.Child(name)
			}
			if depth > 0 && rng.Intn(2) == 0 {
				grow(s, depth-1)
			}
			if rng.Intn(8) != 0 { // leave ~1/8 of spans unfinished
				s.End()
			}
		}
	}
	grow(nil, 2)
	return tr, names
}

// roundTrip pushes a trace through its JSON file form, the way a worker
// snapshot lands on disk before the coordinator merges it. This is what
// turns span IDs into float64s, which the merge must cope with.
func roundTrip(t *testing.T, td TraceData) TraceData {
	t.Helper()
	var buf bytes.Buffer
	if err := writeTrace(&buf, td); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestMergeTracesProperties is the merged-trace property test: across
// random sweep shapes, the merged document contains every worker's spans
// exactly once, all parent links (including cross-process parent_ref)
// resolve, and timestamps are monotone within every (pid, tid) lane.
func TestMergeTracesProperties(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))

		coord := NewTracer()
		coord.SetProcessLabel("coordinator")
		sweep := coord.Start("sweep.runtime", Int("shards", 3))

		workers := 2 + rng.Intn(3)
		inputs := []TraceData{coord.TraceData()}
		wantNames := map[string]bool{"sweep.runtime": true}
		for w := 0; w < workers; w++ {
			tr, names := buildWorkerTrace(rng, w, sweep.Ref())
			for _, n := range names {
				wantNames[n] = true
			}
			inputs = append(inputs, roundTrip(t, tr.TraceData()))
		}
		sweep.End()
		inputs[0] = coord.TraceData()

		var buf bytes.Buffer
		if err := MergeTraces(&buf, inputs...); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		merged, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ids := map[int64]bool{}
		seen := map[string]int{}
		procs := map[int]bool{}
		var sweepID int64
		for _, ev := range merged.Events {
			if ev.Ph == "M" {
				procs[ev.PID] = true
				continue
			}
			seen[ev.Name]++
			id, ok := spanID(ev.Args["span_id"])
			if !ok {
				t.Fatalf("seed %d: event %q lacks span_id: %v", seed, ev.Name, ev.Args)
			}
			if ids[id] {
				t.Fatalf("seed %d: duplicate span_id %d after merge", seed, id)
			}
			ids[id] = true
			if ev.Name == "sweep.runtime" {
				sweepID = id
			}
		}

		// Every process got a named lane group.
		if len(procs) != workers+1 {
			t.Errorf("seed %d: %d process_name events, want %d", seed, len(procs), workers+1)
		}
		// Every worker span exactly once, nothing else.
		for name := range wantNames {
			if seen[name] != 1 {
				t.Errorf("seed %d: span %q appears %d times, want 1", seed, name, seen[name])
			}
		}
		for name := range seen {
			if !wantNames[name] {
				t.Errorf("seed %d: unexpected span %q in merge", seed, name)
			}
		}

		// All parent links resolve; worker roots resolved onto the sweep span.
		lastTS := map[[2]int]float64{}
		for _, ev := range merged.Events {
			if ev.Ph != "X" {
				continue
			}
			if ref, has := ev.Args["parent_ref"]; has {
				t.Errorf("seed %d: unresolved parent_ref %v on %q", seed, ref, ev.Name)
			}
			if pid, ok := spanID(ev.Args["parent_id"]); ok {
				if !ids[pid] {
					t.Errorf("seed %d: span %q parent_id %d not in merge", seed, ev.Name, pid)
				}
			} else if ev.Name != "sweep.runtime" {
				// Only the coordinator's root may be parentless.
				t.Errorf("seed %d: span %q has no parent link", seed, ev.Name)
			}
			if _, root := ev.Args["worker"]; root && ev.Args["parent_ref"] == nil {
				// Worker roots carry the "worker" attr and must now point at
				// the coordinator's sweep span.
				if pid, _ := spanID(ev.Args["parent_id"]); hasNoLocalParent(ev) && pid != sweepID {
					t.Errorf("seed %d: worker root %q parent_id %v, want sweep %d", seed, ev.Name, ev.Args["parent_id"], sweepID)
				}
			}
			// Monotone timestamps per (pid, tid) lane.
			lane := [2]int{ev.PID, ev.TID}
			if ev.TS < lastTS[lane] {
				t.Errorf("seed %d: lane %v timestamps not monotone: %v after %v", seed, lane, ev.TS, lastTS[lane])
			}
			lastTS[lane] = ev.TS
			if ev.TS < 0 {
				t.Errorf("seed %d: negative timestamp %v on %q", seed, ev.TS, ev.Name)
			}
		}
	}
}

// hasNoLocalParent reports whether the event was a root span in its own
// process (its only parent link, if any, came from parent_ref
// resolution — i.e. its name marks it w<i>-s0-style root or it carries
// the worker attr with the lowest sibling index). The property test only
// needs a conservative check: roots built by buildWorkerTrace at depth 0.
func hasNoLocalParent(ev Event) bool {
	_, isWorkerAttr := ev.Args["worker"]
	return isWorkerAttr
}

// TestMergeTracesClockAlignment: traces whose wall-clock origins differ
// are shifted onto the earliest origin.
func TestMergeTracesClockAlignment(t *testing.T) {
	a := TraceData{
		Meta: TraceMeta{TraceID: "a", Process: "first", WallUS: 1_000_000},
		Events: []Event{{
			Name: "a1", Ph: "X", TS: 10, Dur: 5, TID: 1,
			Args: map[string]any{"span_id": int64(1)},
		}},
	}
	b := TraceData{
		Meta: TraceMeta{TraceID: "b", Process: "second", WallUS: 1_000_250},
		Events: []Event{{
			Name: "b1", Ph: "X", TS: 10, Dur: 5, TID: 1,
			Args: map[string]any{"span_id": int64(1)},
		}},
	}
	var buf bytes.Buffer
	if err := MergeTraces(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	merged, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := map[string]float64{}
	for _, ev := range merged.Events {
		if ev.Ph == "X" {
			ts[ev.Name] = ev.TS
		}
	}
	if ts["a1"] != 10 {
		t.Errorf("earliest-origin trace shifted: a1 at %v, want 10", ts["a1"])
	}
	if ts["b1"] != 260 {
		t.Errorf("later-origin trace not shifted: b1 at %v, want 260 (10 + 250µs offset)", ts["b1"])
	}
	if merged.Meta.WallUS != 1_000_000 {
		t.Errorf("merged wall origin %v, want earliest input origin", merged.Meta.WallUS)
	}
}

// TestMergeTracesRealClockOffsets: two live tracers created at different
// wall times merge with the later tracer's spans shifted later, keeping
// cross-process ordering truthful.
func TestMergeTracesRealClockOffsets(t *testing.T) {
	first := NewTracer()
	first.Start("early").End()
	time.Sleep(3 * time.Millisecond)
	second := NewTracer()
	second.Start("late").End()

	var buf bytes.Buffer
	if err := MergeTraces(&buf, first.TraceData(), roundTrip(t, second.TraceData())); err != nil {
		t.Fatal(err)
	}
	merged, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var earlyTS, lateTS float64 = -1, -1
	for _, ev := range merged.Events {
		switch ev.Name {
		case "early":
			earlyTS = ev.TS
		case "late":
			lateTS = ev.TS
		}
	}
	if earlyTS < 0 || lateTS < 0 {
		t.Fatalf("merged trace lost spans: early=%v late=%v", earlyTS, lateTS)
	}
	if lateTS <= earlyTS {
		t.Errorf("clock normalization lost ordering: late span at %vµs, early at %vµs", lateTS, earlyTS)
	}
}
