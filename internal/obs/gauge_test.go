package obs

import (
	"strings"
	"testing"
)

func TestGauge(t *testing.T) {
	var nilReg *Registry
	g := nilReg.Gauge("x")
	g.Set(3) // no-op, no panic
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	nilReg.GaugeFunc("y", func() float64 { return 1 })

	r := NewRegistry()
	r.Gauge("live.queue").Set(12.5)
	if same := r.Gauge("live.queue"); same.Value() != 12.5 {
		t.Errorf("gauge by name = %v, want 12.5", same.Value())
	}
	n := 0.0
	r.GaugeFunc("live.cache_entries", func() float64 { n += 100; return n })
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1.Gauges["live.queue"] != 12.5 {
		t.Errorf("snapshot gauge = %v", s1.Gauges["live.queue"])
	}
	// Callback gauges are evaluated at snapshot time, so they track live
	// state rather than a captured value.
	if s1.Gauges["live.cache_entries"] != 100 || s2.Gauges["live.cache_entries"] != 200 {
		t.Errorf("callback gauge = %v then %v, want 100 then 200",
			s1.Gauges["live.cache_entries"], s2.Gauges["live.cache_entries"])
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live.queue 12.5") {
		t.Errorf("text dump missing gauge: %q", sb.String())
	}
}

func TestSpanID(t *testing.T) {
	var nilSpan *Span
	if nilSpan.ID() != 0 {
		t.Error("nil span ID != 0")
	}
	tr := NewTracer()
	a := tr.Start("a")
	b := a.Child("b")
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Errorf("span ids = %d, %d; want distinct non-zero", a.ID(), b.ID())
	}
}
