package obs

import (
	"strings"
	"testing"
	"time"
)

// TestExportRecomputesDuration pins the export-time duration contract: a
// snapshot taken while a span is open reports the duration-so-far
// (flagged unfinished), and a snapshot taken after End reports the final
// duration — an earlier export must never freeze what a later one sees.
func TestExportRecomputesDuration(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("work")
	time.Sleep(5 * time.Millisecond)

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Args["unfinished"] != true {
		t.Errorf("open span not flagged unfinished: %v", evs[0].Args)
	}
	d1 := evs[0].Dur
	if d1 <= 0 {
		t.Errorf("open span duration %v, want > 0", d1)
	}

	time.Sleep(10 * time.Millisecond)
	s.End()

	evs = tr.Events()
	if _, still := evs[0].Args["unfinished"]; still {
		t.Errorf("ended span still flagged unfinished: %v", evs[0].Args)
	}
	if evs[0].Dur <= d1 {
		t.Errorf("post-End export kept snapshot-time duration: %v ≤ %v", evs[0].Dur, d1)
	}
	// And a third export agrees with the second: the duration is final.
	if again := tr.Events(); again[0].Dur != evs[0].Dur {
		t.Errorf("final duration drifted between exports: %v vs %v", again[0].Dur, evs[0].Dur)
	}
}

// TestSnapshotMutationIsolated is the regression test for the export
// aliasing bug: Events() used to return Args maps shared with the
// tracer's internal state, so an exporter rewriting a snapshot (exactly
// what MergeTraces does when it remaps span IDs) corrupted every later
// export.
func TestSnapshotMutationIsolated(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("work", String("k", "v"))
	s.End()

	evs := tr.Events()
	evs[0].Args["span_id"] = int64(999)
	evs[0].Args["extra"] = true
	delete(evs[0].Args, "k")

	evs2 := tr.Events()
	if got := evs2[0].Args["span_id"]; got != int64(1) {
		t.Errorf("span_id corrupted by snapshot mutation: got %v, want 1", got)
	}
	if _, leaked := evs2[0].Args["extra"]; leaked {
		t.Errorf("snapshot mutation leaked into later export: %v", evs2[0].Args)
	}
	if got := evs2[0].Args["k"]; got != "v" {
		t.Errorf("attribute lost after snapshot mutation: got %v, want v", got)
	}
}

// TestSpanRefAndRemoteParent covers the cross-process linkage surface:
// Ref() serializes to "traceID:spanID", and a tracer with a remote
// parent exports parent_ref on its root spans only.
func TestSpanRefAndRemoteParent(t *testing.T) {
	parent := NewTracer()
	ps := parent.Start("sweep")
	ref := ps.Ref()
	if want := parent.ID() + ":1"; ref != want {
		t.Fatalf("Ref() = %q, want %q", ref, want)
	}
	if !strings.Contains(ref, ":") || parent.ID() == "" {
		t.Fatalf("ref %q / trace id %q malformed", ref, parent.ID())
	}

	child := NewTracer()
	if child.ID() == parent.ID() {
		t.Fatalf("two tracers share trace ID %q", child.ID())
	}
	child.SetRemoteParent(ref)
	root := child.Start("fig")
	sub := root.Child("inner")
	sub.End()
	root.End()

	evs := child.Events()
	for _, ev := range evs {
		switch ev.Name {
		case "fig":
			if ev.Args["parent_ref"] != ref {
				t.Errorf("root span parent_ref = %v, want %q", ev.Args["parent_ref"], ref)
			}
		case "inner":
			if _, has := ev.Args["parent_ref"]; has {
				t.Errorf("non-root span carries parent_ref: %v", ev.Args)
			}
		}
	}

	td := child.TraceData()
	if td.Meta.TraceID != child.ID() || td.Meta.ParentRef != ref {
		t.Errorf("TraceData meta = %+v", td.Meta)
	}
	if td.Meta.WallUS <= 0 {
		t.Errorf("TraceData wall origin missing: %+v", td.Meta)
	}
}

// TestDisabledTraceSurface: the new cross-process API keeps the
// nil-receiver contract.
func TestDisabledTraceSurface(t *testing.T) {
	var tr *Tracer
	if tr.ID() != "" {
		t.Error("nil tracer has an ID")
	}
	tr.SetProcessLabel("x")
	tr.SetRemoteParent("a:1")
	var s *Span
	if s.Ref() != "" {
		t.Error("nil span has a ref")
	}
	td := tr.TraceData()
	if td.Meta != (TraceMeta{}) || td.Events != nil {
		t.Errorf("nil tracer TraceData = %+v", td)
	}
}
