package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Progress deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestProgress() (*Progress, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := NewProgress()
	p.now = clk.now
	return p, clk
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	ph := p.Phase("x")
	if ph != nil {
		t.Fatal("nil Progress must hand out nil phases")
	}
	// All of these must be no-ops, not panics.
	ph.Add(1)
	ph.SetTotal(10)
	ph.AddTotal(5)
	ph.Best(3.5)
	ph.Done()
	if s := p.Status(); len(s.Phases) != 0 {
		t.Fatalf("nil Progress status = %+v, want empty", s)
	}
	if line := p.Status().StatusLine(); line != "" {
		t.Fatalf("nil Progress status line = %q, want empty", line)
	}
}

func TestProgressCountsTotalsBest(t *testing.T) {
	p, clk := newTestProgress()
	ph := p.Phase("core.archs")
	ph.AddTotal(10)
	ph.AddTotal(10)
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		ph.Add(1)
	}
	ph.Add(0)  // ignored
	ph.Add(-3) // ignored: the counter is monotonic
	ph.Best(56)
	ph.Best(80) // not an improvement
	s := p.Status()
	if len(s.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(s.Phases))
	}
	st := s.Phases[0]
	if st.Name != "core.archs" || st.Current != 5 || st.Total != 20 {
		t.Errorf("status = %+v, want current 5 / total 20", st)
	}
	if !st.HasBest || st.Best != 56 {
		t.Errorf("best = %v (has=%v), want 56", st.Best, st.HasBest)
	}
	// 5 adds, one per second: the moving rate is 4 increments over 4s
	// between the first and last sample.
	if st.RatePerSec < 0.99 || st.RatePerSec > 1.01 {
		t.Errorf("rate = %v, want ~1/s", st.RatePerSec)
	}
	// 15 remaining at 1/s.
	if st.ETA < 14*time.Second || st.ETA > 16*time.Second {
		t.Errorf("ETA = %v, want ~15s", st.ETA)
	}
	ph.Done()
	if st := p.Status().Phases[0]; !st.Done || st.ETA != 0 {
		t.Errorf("after Done: %+v, want done and no ETA", st)
	}
}

// TestProgressRateWindow: the rate reflects the recent window, not the
// lifetime average, so a stalled phase that resumes shows the resumed
// pace.
func TestProgressRateWindow(t *testing.T) {
	p, clk := newTestProgress()
	ph := p.Phase("apps")
	// Slow prologue: 1 per 10s, enough to roll out of a 64-sample window
	// once the fast phase fills it.
	for i := 0; i < 10; i++ {
		clk.advance(10 * time.Second)
		ph.Add(1)
	}
	// Fast tail: 10/s for rateWindow samples.
	for i := 0; i < rateWindow; i++ {
		clk.advance(100 * time.Millisecond)
		ph.Add(1)
	}
	st := p.Status().Phases[0]
	if st.RatePerSec < 9 || st.RatePerSec > 11 {
		t.Errorf("windowed rate = %v, want ~10/s", st.RatePerSec)
	}
}

func TestProgressStatusLine(t *testing.T) {
	p, clk := newTestProgress()
	a := p.Phase("apps")
	a.SetTotal(40)
	clk.advance(time.Second)
	a.Add(10)
	clk.advance(time.Second)
	a.Add(10)
	b := p.Phase("archs")
	b.Add(7)
	b.Best(56)
	line := p.Status().StatusLine()
	for _, want := range []string{"apps 20/40 (50%)", "archs 7", "best 56", " | "} {
		if !strings.Contains(line, want) {
			t.Errorf("status line %q missing %q", line, want)
		}
	}
	a.Done()
	if line := p.Status().StatusLine(); !strings.Contains(line, "done") {
		t.Errorf("status line %q missing done marker", line)
	}
}

// TestProgressJSON: the snapshot must round-trip through JSON — it backs
// the /progress endpoint.
func TestProgressJSON(t *testing.T) {
	p, _ := newTestProgress()
	ph := p.Phase("rows")
	ph.SetTotal(6)
	ph.Add(2)
	data, err := json.Marshal(p.Status())
	if err != nil {
		t.Fatal(err)
	}
	var got ProgressStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Phases) != 1 || got.Phases[0].Current != 2 || got.Phases[0].Total != 6 {
		t.Errorf("round-tripped %+v", got)
	}
}

// TestProgressConcurrent hammers one publisher from many goroutines
// while a reader snapshots it; run under -race this is the concurrency
// contract, and the final count checks no increment is lost.
func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Status().StatusLine()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ph := p.Phase("work")
			for i := 0; i < perWorker; i++ {
				ph.Add(1)
				ph.Best(float64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	st := p.Status().Phases[0]
	if st.Current != workers*perWorker {
		t.Errorf("current = %d, want %d", st.Current, workers*perWorker)
	}
	if !st.HasBest || st.Best != 0 {
		t.Errorf("best = %v, want 0", st.Best)
	}
}
