// Package obs is the observability layer of the optimization stack: a
// zero-dependency, concurrency-safe tracer producing hierarchical spans
// exportable as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing), plus a registry of named counters and duration
// histograms (metrics.go).
//
// The deeply nested design-space exploration — architecture exploration →
// tabu-search mapping → RedundancyOpt → shared-slack scheduling — has
// counters (evalengine.Stats) but no way to see *where time goes* inside a
// run. Spans answer that: one span per candidate architecture, per mapping
// optimization, per tabu iteration and per RedundancyOpt cache miss turn a
// `paperbench -fig cc -trace cc.json` run into a browsable flame view.
// The span taxonomy is documented in DESIGN.md ("Observability").
//
// # Disabled by default, free when disabled
//
// Every method is safe on a nil receiver: a nil *Tracer starts nil
// *Spans, whose Child/SetAttr/End are no-ops. Instrumented hot paths
// therefore call the API unconditionally and pay only a nil check when no
// tracer is installed (BenchmarkDisabledSpan; the instrumented
// BenchmarkCruiseController is within noise of the uninstrumented
// baseline).
//
// # Concurrency
//
// A Tracer may be shared by any number of goroutines: starting children,
// ending spans and exporting are all guarded by one mutex. An individual
// Span is owned by the goroutine that started it — SetAttr must not race
// with End — which matches how the search stack hands per-worker spans to
// per-worker evaluators.
//
// # Chrome trace_event mapping
//
// Spans are exported as complete ("X") events. chrome://tracing and
// Perfetto nest events on the same (pid, tid) track by time containment,
// so the tracer assigns each span a lane (exported as the tid): a child
// started while its parent is the innermost open span of its lane shares
// the parent's lane, and concurrent siblings get their own lanes —
// exactly the flame-graph layout a reader expects. The true parent
// relationship is preserved in args.parent_id regardless of lane
// placement, which is what the export tests assert nesting against.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values must be JSON
// encodable; the constructors below cover the types the stack uses.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Value: v} }

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// Int64 returns a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// Float returns a floating-point attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// Tracer records hierarchical spans. The zero value is not usable; create
// one with NewTracer. A nil *Tracer is the disabled tracer: Start returns
// a nil *Span and recording costs nothing.
type Tracer struct {
	mu sync.Mutex
	t0 time.Time
	// wall is the wall-clock reading taken together with t0. Span offsets
	// are measured on t0's monotonic clock; wall anchors them to real time
	// so MergeTraces can align traces recorded by different processes.
	wall time.Time
	// id identifies this tracer across processes: span references
	// ("traceID:spanID") from one process resolve against another's trace
	// during a merge. Unique per tracer, stable for its lifetime.
	id string
	// proc labels this tracer's lane group in a merged trace (e.g.
	// "shard 0/2"); empty means the merger invents a name.
	proc string
	// parentRef, when set, is the remote parent span reference
	// ("traceID:spanID") that this tracer's root spans hang under once
	// traces are merged. It is exported as args.parent_ref.
	parentRef string
	// spans holds every span ever started, in start order. Events are
	// built from it at export time — never cached — so a span that ends
	// between two exports gets its final duration in the second one, and
	// mutating an exported snapshot cannot corrupt later exports.
	spans []*Span
	// lanes[l] is the stack of open spans occupying lane l, innermost
	// last. Lanes map to Chrome tids so that viewers reconstruct the
	// flame graph by time containment (see the package comment).
	lanes  [][]*Span
	nextID int64
}

// traceSeq disambiguates tracers created in the same nanosecond within
// one process.
var traceSeq atomic.Int64

// NewTracer returns an enabled tracer whose clock starts now.
func NewTracer() *Tracer {
	wall := time.Now()
	return &Tracer{
		t0:   wall,
		wall: wall.Round(0), // strip the monotonic reading; only the wall time matters
		id:   fmt.Sprintf("%x-%x-%x", wall.UnixNano(), os.Getpid(), traceSeq.Add(1)),
	}
}

// ID returns the tracer's process-unique trace identifier ("" on the
// disabled tracer). Together with a span ID it forms a span reference
// (see Span.Ref) that stays meaningful across process boundaries.
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetProcessLabel names this tracer's process lane in a merged trace
// (e.g. "shard 0/2" or "coordinator"). No-op on the disabled tracer.
func (t *Tracer) SetProcessLabel(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.proc = name
	t.mu.Unlock()
}

// SetRemoteParent declares that this tracer's root spans are logically
// children of a span in another process, identified by its reference
// (Span.Ref from the parent process, handed over by flag or env). The
// reference is exported as args.parent_ref on root spans; MergeTraces
// resolves it to a concrete parent_id when the parent's trace is part of
// the merge. An empty ref or a nil tracer is a no-op.
func (t *Tracer) SetRemoteParent(ref string) {
	if t == nil || ref == "" {
		return
	}
	t.mu.Lock()
	t.parentRef = ref
	t.mu.Unlock()
}

// Span is one timed region of a trace. A nil *Span is the disabled span:
// all methods are no-ops and Child returns nil.
type Span struct {
	tr     *Tracer
	name   string
	id     int64
	parent int64
	lane   int
	start  time.Duration
	end    time.Duration // valid iff ended
	attrs  []Attr
	ended  bool
}

// Start begins a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(nil, name, attrs)
}

// Child begins a span nested under s. It is safe to start children of the
// same parent from several goroutines.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s, name, attrs)
}

// ID returns the span's identifier (0 on the disabled span) — the same
// value exported as span_id in the Chrome trace, so log lines carrying
// it correlate with the trace view.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Ref returns the span's cross-process reference, "traceID:spanID" ("" on
// the disabled span). A child process given this string via
// Tracer.SetRemoteParent records it on its root spans, and MergeTraces
// reconnects the two traces into one tree.
func (s *Span) Ref() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%s:%d", s.tr.id, s.id)
}

// SetAttr appends annotations to the span. It must be called by the
// goroutine that owns the span, before End (attributes set after End are
// dropped).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.tr.mu.Unlock()
}

// End completes the span, fixing its end time. Ending twice is a no-op.
// The event itself is built at export time, never here, so an export
// taken before End and one taken after each see the duration that was
// true when they ran.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = now
	t.releaseLane(s)
}

func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{tr: t, name: name, id: t.nextID, start: now, attrs: attrs}
	if parent != nil {
		s.parent = parent.id
	}
	s.lane = t.acquireLane(parent)
	t.lanes[s.lane] = append(t.lanes[s.lane], s)
	t.spans = append(t.spans, s)
	return s
}

// acquireLane picks the lane for a new span: the parent's lane when the
// parent is the innermost open span there (sequential nesting), otherwise
// the lowest-numbered free lane (concurrent sibling or root).
func (t *Tracer) acquireLane(parent *Span) int {
	if parent != nil && !parent.ended {
		st := t.lanes[parent.lane]
		if len(st) > 0 && st[len(st)-1] == parent {
			return parent.lane
		}
	}
	for l, st := range t.lanes {
		if len(st) == 0 {
			return l
		}
	}
	t.lanes = append(t.lanes, nil)
	return len(t.lanes) - 1
}

// releaseLane removes s from its lane stack. Spans normally end innermost
// first; an out-of-order End is tolerated by removing from anywhere in the
// stack.
func (t *Tracer) releaseLane(s *Span) {
	st := t.lanes[s.lane]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == s {
			t.lanes[s.lane] = append(st[:i], st[i+1:]...)
			return
		}
	}
}

// Event is one Chrome trace_event entry. TS and Dur are microseconds
// since the tracer's start, the unit the trace_event format specifies.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// event builds the span's export event as of `now`. Called under the
// tracer mutex. The Args map is freshly allocated on every export:
// callers own the snapshot they get and may rewrite it (MergeTraces
// remaps IDs in place) without corrupting later exports.
func (s *Span) event(now time.Duration, parentRef string) Event {
	args := make(map[string]any, len(s.attrs)+3)
	args["span_id"] = s.id
	if s.parent != 0 {
		args["parent_id"] = s.parent
	} else if parentRef != "" {
		args["parent_ref"] = parentRef
	}
	for _, a := range s.attrs {
		args[a.Key] = a.Value
	}
	end := now
	if s.ended {
		end = s.end
	} else {
		args["unfinished"] = true
	}
	return Event{
		Name: s.name,
		Ph:   "X",
		TS:   micros(s.start),
		Dur:  micros(end - s.start),
		PID:  1,
		TID:  s.lane + 1,
		Args: args,
	}
}

// TraceMeta identifies one process's trace: who recorded it, under which
// remote parent, and where its clock zero sits on the wall clock (µs
// since the Unix epoch) so a merger can align traces across machines.
type TraceMeta struct {
	TraceID   string  `json:"trace_id,omitempty"`
	Process   string  `json:"process,omitempty"`
	ParentRef string  `json:"parent_ref,omitempty"`
	WallUS    float64 `json:"wall_us,omitempty"`
}

// TraceData is one process's exportable trace: its meta plus the event
// snapshot. It is what WriteChromeTrace serializes, ReadTrace parses
// back, and MergeTraces consumes.
type TraceData struct {
	Meta   TraceMeta
	Events []Event
}

// chromeTrace is the JSON object format of the trace_event specification;
// both chrome://tracing and Perfetto load it. The ftesMeta key is this
// package's extension carrying the cross-process merge metadata; viewers
// ignore unknown top-level keys.
type chromeTrace struct {
	TraceEvents     []Event    `json:"traceEvents"`
	DisplayTimeUnit string     `json:"displayTimeUnit"`
	Meta            *TraceMeta `json:"ftesMeta,omitempty"`
}

// Events returns a snapshot of the spans' events in start order, with
// still-open spans included as if they ended now (flagged with an
// "unfinished" arg). Durations are recomputed on every call — a span
// that ended since the last snapshot reports its true final duration —
// and the returned events (including their Args maps) are the caller's
// to mutate.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	evs := make([]Event, 0, len(t.spans))
	for _, s := range t.spans {
		ref := ""
		if s.parent == 0 {
			ref = t.parentRef
		}
		evs = append(evs, s.event(now, ref))
	}
	t.mu.Unlock()
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].TS < evs[b].TS })
	return evs
}

// TraceData snapshots the full trace — meta plus events — in one call.
// A nil tracer returns an empty TraceData with no meta.
func (t *Tracer) TraceData() TraceData {
	if t == nil {
		return TraceData{}
	}
	evs := t.Events()
	t.mu.Lock()
	meta := TraceMeta{
		TraceID:   t.id,
		Process:   t.proc,
		ParentRef: t.parentRef,
		WallUS:    float64(t.wall.UnixMicro()),
	}
	t.mu.Unlock()
	return TraceData{Meta: meta, Events: evs}
}

// SpanCount returns how many spans have been recorded (completed or
// open).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteChromeTrace writes the trace as Chrome trace_event JSON. A nil
// tracer writes an empty (still valid) trace. Open spans are exported as
// if they ended now, flagged unfinished, so a trace written mid-run loses
// nothing; durations of spans that have ended are always their final
// ones, whatever earlier snapshots reported.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeTrace(w, t.TraceData())
}

func writeTrace(w io.Writer, td TraceData) error {
	doc := chromeTrace{TraceEvents: td.Events, DisplayTimeUnit: "ms"}
	if td.Meta != (TraceMeta{}) {
		m := td.Meta
		doc.Meta = &m
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}
