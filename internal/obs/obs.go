// Package obs is the observability layer of the optimization stack: a
// zero-dependency, concurrency-safe tracer producing hierarchical spans
// exportable as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing), plus a registry of named counters and duration
// histograms (metrics.go).
//
// The deeply nested design-space exploration — architecture exploration →
// tabu-search mapping → RedundancyOpt → shared-slack scheduling — has
// counters (evalengine.Stats) but no way to see *where time goes* inside a
// run. Spans answer that: one span per candidate architecture, per mapping
// optimization, per tabu iteration and per RedundancyOpt cache miss turn a
// `paperbench -fig cc -trace cc.json` run into a browsable flame view.
// The span taxonomy is documented in DESIGN.md ("Observability").
//
// # Disabled by default, free when disabled
//
// Every method is safe on a nil receiver: a nil *Tracer starts nil
// *Spans, whose Child/SetAttr/End are no-ops. Instrumented hot paths
// therefore call the API unconditionally and pay only a nil check when no
// tracer is installed (BenchmarkDisabledSpan; the instrumented
// BenchmarkCruiseController is within noise of the uninstrumented
// baseline).
//
// # Concurrency
//
// A Tracer may be shared by any number of goroutines: starting children,
// ending spans and exporting are all guarded by one mutex. An individual
// Span is owned by the goroutine that started it — SetAttr must not race
// with End — which matches how the search stack hands per-worker spans to
// per-worker evaluators.
//
// # Chrome trace_event mapping
//
// Spans are exported as complete ("X") events. chrome://tracing and
// Perfetto nest events on the same (pid, tid) track by time containment,
// so the tracer assigns each span a lane (exported as the tid): a child
// started while its parent is the innermost open span of its lane shares
// the parent's lane, and concurrent siblings get their own lanes —
// exactly the flame-graph layout a reader expects. The true parent
// relationship is preserved in args.parent_id regardless of lane
// placement, which is what the export tests assert nesting against.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values must be JSON
// encodable; the constructors below cover the types the stack uses.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Value: v} }

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// Int64 returns a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// Float returns a floating-point attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// Tracer records hierarchical spans. The zero value is not usable; create
// one with NewTracer. A nil *Tracer is the disabled tracer: Start returns
// a nil *Span and recording costs nothing.
type Tracer struct {
	mu     sync.Mutex
	t0     time.Time
	events []Event
	// lanes[l] is the stack of open spans occupying lane l, innermost
	// last. Lanes map to Chrome tids so that viewers reconstruct the
	// flame graph by time containment (see the package comment).
	lanes  [][]*Span
	nextID int64
}

// NewTracer returns an enabled tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// Span is one timed region of a trace. A nil *Span is the disabled span:
// all methods are no-ops and Child returns nil.
type Span struct {
	tr     *Tracer
	name   string
	id     int64
	parent int64
	lane   int
	start  time.Duration
	attrs  []Attr
	ended  bool
}

// Start begins a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.start(nil, name, attrs)
}

// Child begins a span nested under s. It is safe to start children of the
// same parent from several goroutines.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s, name, attrs)
}

// ID returns the span's identifier (0 on the disabled span) — the same
// value exported as span_id in the Chrome trace, so log lines carrying
// it correlate with the trace view.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr appends annotations to the span. It must be called by the
// goroutine that owns the span, before End (attributes set after End are
// dropped).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.tr.mu.Unlock()
}

// End completes the span and records its event. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	t.releaseLane(s)
	t.events = append(t.events, s.event(now))
}

func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{tr: t, name: name, id: t.nextID, start: now, attrs: attrs}
	if parent != nil {
		s.parent = parent.id
	}
	s.lane = t.acquireLane(parent)
	t.lanes[s.lane] = append(t.lanes[s.lane], s)
	return s
}

// acquireLane picks the lane for a new span: the parent's lane when the
// parent is the innermost open span there (sequential nesting), otherwise
// the lowest-numbered free lane (concurrent sibling or root).
func (t *Tracer) acquireLane(parent *Span) int {
	if parent != nil && !parent.ended {
		st := t.lanes[parent.lane]
		if len(st) > 0 && st[len(st)-1] == parent {
			return parent.lane
		}
	}
	for l, st := range t.lanes {
		if len(st) == 0 {
			return l
		}
	}
	t.lanes = append(t.lanes, nil)
	return len(t.lanes) - 1
}

// releaseLane removes s from its lane stack. Spans normally end innermost
// first; an out-of-order End is tolerated by removing from anywhere in the
// stack.
func (t *Tracer) releaseLane(s *Span) {
	st := t.lanes[s.lane]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == s {
			t.lanes[s.lane] = append(st[:i], st[i+1:]...)
			return
		}
	}
}

// Event is one Chrome trace_event entry. TS and Dur are microseconds
// since the tracer's start, the unit the trace_event format specifies.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func (s *Span) event(end time.Duration) Event {
	args := make(map[string]any, len(s.attrs)+2)
	args["span_id"] = s.id
	if s.parent != 0 {
		args["parent_id"] = s.parent
	}
	for _, a := range s.attrs {
		args[a.Key] = a.Value
	}
	return Event{
		Name: s.name,
		Ph:   "X",
		TS:   micros(s.start),
		Dur:  micros(end - s.start),
		PID:  1,
		TID:  s.lane + 1,
		Args: args,
	}
}

// chromeTrace is the JSON object format of the trace_event specification;
// both chrome://tracing and Perfetto load it.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Events returns a snapshot of the completed spans' events in start
// order, with still-open spans included as if they ended now (flagged
// with an "unfinished" arg). Primarily for tests and exporters.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	for _, st := range t.lanes {
		for _, s := range st {
			ev := s.event(now)
			ev.Args["unfinished"] = true
			evs = append(evs, ev)
		}
	}
	t.mu.Unlock()
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].TS < evs[b].TS })
	return evs
}

// SpanCount returns how many spans have been recorded (completed or
// open).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.events)
	for _, st := range t.lanes {
		n += len(st)
	}
	return n
}

// WriteChromeTrace writes the trace as Chrome trace_event JSON. A nil
// tracer writes an empty (still valid) trace. Open spans are exported as
// if they ended now, flagged unfinished, so a trace written mid-run loses
// nothing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}
