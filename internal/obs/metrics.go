package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named counters and duration histograms. Like the
// tracer, a nil *Registry is the disabled registry: Counter and Histogram
// return nil instruments whose methods are no-ops, so instrumented code
// records unconditionally.
//
// A Registry is safe for concurrent use; instruments are created on first
// reference and shared by name thereafter.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named duration histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: f is evaluated at snapshot time,
// so live values (cache sizes, in-flight counters) cost nothing on the
// hot path. Re-registering a name replaces the callback; f must be safe
// to call from any goroutine.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = f
	r.mu.Unlock()
}

// UnregisterGaugeFunc removes a callback gauge registered with GaugeFunc,
// releasing whatever state the callback closed over. Unknown names and nil
// registries are no-ops, so teardown paths can call it unconditionally.
func (r *Registry) UnregisterGaugeFunc(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.gaugeFns, name)
	r.mu.Unlock()
}

// Gauge is a settable instantaneous float64. A nil *Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter is a monotonically adjustable int64. A nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Add adds d to the counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the number of power-of-two duration buckets: bucket i
// counts observations in [2^(i-1) µs, 2^i µs), spanning sub-microsecond
// to ~35 minutes — wider than anything the optimization stack produces.
const histBuckets = 32

// Histogram aggregates durations: count, sum, min, max and a
// power-of-two bucket distribution. A nil *Histogram is a no-op.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
	h.mu.Unlock()
}

// HistogramSnapshot is one histogram's aggregate state.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// Buckets lists the non-empty buckets as (upper bound, count),
	// ascending.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty histogram bucket.
type HistogramBucket struct {
	UpperBound time.Duration `json:"le_ns"`
	Count      int64         `json:"count"`
}

// Mean returns the mean observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, HistogramBucket{
			UpperBound: time.Duration(uint64(1)<<uint(i)) * time.Microsecond,
			Count:      c,
		})
	}
	return s
}

// Snapshot is a point-in-time copy of the whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot returns a copy of all instruments (callback gauges are
// evaluated now, outside the registry lock). A nil registry snapshots
// empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistogramSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	if len(gauges)+len(gaugeFns) > 0 {
		s.Gauges = make(map[string]float64, len(gauges)+len(gaugeFns))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
		for k, f := range gaugeFns {
			s.Gauges[k] = f()
		}
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// WriteText renders the registry as a sorted plain-text dump, one
// instrument per line.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%v mean=%v min=%v max=%v\n",
			name, h.Count, h.Sum.Round(time.Microsecond), h.Mean().Round(time.Microsecond),
			h.Min.Round(time.Microsecond), h.Max.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: write metrics: %w", err)
	}
	return nil
}
