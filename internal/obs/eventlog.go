package obs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/runstate"
)

// EventLog is the fleet lifecycle journal of the observability layer: an
// ordered stream of small structured events — job submitted/started/
// finished, shard started/resumed/merged, eval-cache warm/cold, panic
// recovered — that the jobs scheduler and the ftesd daemon emit and that
// obshttp's /events endpoint streams to watchers.
//
// Two modes share one type. NewEventLog keeps events in memory only (a
// bounded ring), which is what `paperbench -serve` uses for the lifetime
// of one run. OpenEventLog additionally journals every event to an
// append-only CRC-framed JSONL file — the exact runstate framing, with
// sequence numbers as row keys — so a daemon restart replays the full
// history: the ring is rebuilt from disk and new events continue the
// sequence where the previous process stopped.
//
// Like the rest of the package, a nil *EventLog is the disabled log:
// Emit costs one pointer check, Events returns nothing, and Changed
// returns a channel that never closes.
type EventLog struct {
	mu      sync.Mutex
	journal *runstate.Journal // nil in memory-only mode
	ring    []LogEvent        // most recent eventRingCap events, oldest first
	seq     int64
	dropped int64 // events pushed out of the ring since open
	meter   *Counter
	changed chan struct{}
	now     func() time.Time // injectable clock for tests
}

// eventRingCap bounds the in-memory replay window. The durable journal
// keeps everything; the ring is what /events can replay without disk.
const eventRingCap = 4096

// eventLogFingerprint binds an event journal file to this schema.
const eventLogFingerprint = "ftes-events-v1"

// LogEvent is one lifecycle event. Seq is a strictly increasing sequence
// number (also the SSE event id), Type a dotted kind like "job.started",
// Job the subject job ID when the event concerns one, and Fields
// free-form details (shard index, error text, elapsed milliseconds, …).
type LogEvent struct {
	Seq    int64          `json:"seq"`
	TimeMS int64          `json:"t_ms"` // wall clock, milliseconds since the Unix epoch
	Type   string         `json:"type"`
	Job    string         `json:"job,omitempty"`
	Fields map[string]any `json:"fields,omitempty"`
}

// NewEventLog returns an enabled, memory-only event log.
func NewEventLog() *EventLog {
	return &EventLog{changed: make(chan struct{}), now: time.Now}
}

// OpenEventLog opens (or creates) a durable event log journaled at path.
// An existing journal is replayed — its intact events fill the ring and
// the sequence continues past the highest replayed number — so history
// survives daemon restarts; a torn tail is rounded away exactly like any
// runstate journal. The file stays flock-guarded for the log's lifetime
// (runstate.ErrLocked when another process holds it).
func OpenEventLog(path string) (*EventLog, error) {
	j, err := runstate.Open(path, eventLogFingerprint, true)
	if err != nil {
		return nil, fmt.Errorf("obs: event log: %w", err)
	}
	e := NewEventLog()
	e.journal = j
	for _, row := range j.RestoredRows() {
		var ev LogEvent
		if !j.Lookup(row.Key, &ev) {
			continue
		}
		// Replay truncation is not counted as a drop: every replayed
		// event is safely in the journal; Dropped tracks ring overflow
		// only, which is what the SSE gap marker reports on.
		e.ring = appendRingLocked(e.ring, ev)
		if ev.Seq > e.seq {
			e.seq = ev.Seq
		}
	}
	return e, nil
}

func appendRingLocked(ring []LogEvent, ev LogEvent) []LogEvent {
	ring = append(ring, ev)
	if len(ring) > eventRingCap {
		ring = ring[len(ring)-eventRingCap:]
	}
	return ring
}

// appendRing adds ev to the ring, counting any event it pushes out:
// a watcher that has not caught up past the evicted sequence number can
// no longer replay it from memory. Called with e.mu held.
func (e *EventLog) appendRing(ev LogEvent) {
	before := len(e.ring)
	e.ring = appendRingLocked(e.ring, ev)
	if evicted := before + 1 - len(e.ring); evicted > 0 {
		e.dropped += int64(evicted)
		if e.meter != nil {
			e.meter.Add(int64(evicted))
		}
	}
}

// Emit records one event, assigning its sequence number and timestamp.
// In durable mode the event is fsynced to the journal before it becomes
// visible to readers. Emit never fails from the caller's point of view —
// a journal write error leaves the event in memory only — because
// lifecycle reporting must not take down the operation it reports on.
func (e *EventLog) Emit(typ, job string, fields map[string]any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.seq++
	ev := LogEvent{Seq: e.seq, TimeMS: e.now().UnixMilli(), Type: typ, Job: job, Fields: fields}
	if e.journal != nil {
		// Errors are deliberately swallowed (see doc comment); the in-memory
		// stream stays consistent regardless.
		_ = e.journal.Record(fmt.Sprintf("%016d", ev.Seq), ev)
	}
	e.appendRing(ev)
	ch := e.changed
	e.changed = make(chan struct{})
	e.mu.Unlock()
	close(ch)
}

// MeterDropped attaches a counter (typically a registry's
// "events.dropped", exported as events_dropped_total) that is bumped
// once per event the ring evicts before every watcher could replay it.
func (e *EventLog) MeterDropped(c *Counter) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.meter = c
	e.mu.Unlock()
}

// Dropped returns how many events the in-memory ring has evicted since
// the log opened. Watchers that fell further behind than the ring
// window get a gap marker computed from OldestBuffered instead of the
// silently missing events.
func (e *EventLog) Dropped() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// OldestBuffered returns the sequence number of the oldest event still
// replayable from memory (0 when the ring is empty).
func (e *EventLog) OldestBuffered() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ring) == 0 {
		return 0
	}
	return e.ring[0].Seq
}

// Seq returns the sequence number of the most recent event (0 when none).
func (e *EventLog) Seq() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// Events returns the buffered events with Seq > after, oldest first.
// Replay is bounded by the in-memory ring: events older than the last
// eventRingCap are only in the durable journal (if any).
func (e *EventLog) Events(after int64) []LogEvent {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	i := len(e.ring)
	for i > 0 && e.ring[i-1].Seq > after {
		i--
	}
	if i == len(e.ring) {
		return nil
	}
	return append([]LogEvent(nil), e.ring[i:]...)
}

// Changed returns a channel closed by the next Emit, letting a streamer
// block for new events without polling:
//
//	for {
//	    ch := log.Changed()
//	    deliver(log.Events(last))
//	    select { case <-ch: case <-ctx.Done(): return }
//	}
//
// Take the channel before draining Events so an emit that lands between
// the two is never missed. On a nil log the channel never closes.
func (e *EventLog) Changed() <-chan struct{} {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.changed
}

// Close releases the durable journal (no-op in memory-only mode or on
// nil).
func (e *EventLog) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.journal == nil {
		return nil
	}
	err := e.journal.Close()
	e.journal = nil
	return err
}

// Scoped returns an emitter bound to one job ID, for handing into code
// that reports events but should not choose their subject. A nil log
// scopes to a nil (disabled) scope.
func (e *EventLog) Scoped(job string) *EventScope {
	if e == nil {
		return nil
	}
	return &EventScope{log: e, job: job}
}

// EventScope is a job-bound emitter. A nil *EventScope is disabled.
type EventScope struct {
	log *EventLog
	job string
}

// Emit records one event under the scope's job ID.
func (s *EventScope) Emit(typ string, fields map[string]any) {
	if s == nil {
		return
	}
	s.log.Emit(typ, s.job, fields)
}

// Job returns the scope's job ID ("" on nil).
func (s *EventScope) Job() string {
	if s == nil {
		return ""
	}
	return s.job
}
