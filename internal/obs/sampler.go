package obs

import (
	"sync"
	"time"
)

// Sampler turns a Registry into a time series: at a fixed interval it
// snapshots every counter and gauge into a bounded ring buffer, so
// obshttp's /timeseries endpoint can serve rates-over-time — evaluations
// per second, queue depth over a sweep — without an external Prometheus
// scraping /metrics. Histograms are deliberately not sampled: their
// summaries are cheap to read once but heavy to store per tick, and the
// counters already carry the rate signal.
//
// A nil *Sampler is disabled: Series returns an empty TimeSeries and
// Start/Stop are no-ops.
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex
	buf  []TimeSeriesSample // ring, oldest first once trimmed
	cap  int
	stop chan struct{}
	done chan struct{}
}

// TimeSeriesSample is one sampling tick: the wall-clock time it was taken
// and the counter/gauge values at that instant.
type TimeSeriesSample struct {
	TimeMS   int64              `json:"t_ms"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// TimeSeries is the JSON shape /timeseries serves.
type TimeSeries struct {
	IntervalMS float64            `json:"interval_ms"`
	Samples    []TimeSeriesSample `json:"samples"`
}

// NewSampler returns a sampler over reg taking a snapshot every interval,
// keeping the most recent capacity samples (defaults: 1s, 720 — twelve
// minutes of 1 Hz history). It does not start sampling; call Start.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity <= 0 {
		capacity = 720
	}
	return &Sampler{reg: reg, interval: interval, cap: capacity}
}

// Start begins periodic sampling in a background goroutine, taking one
// sample immediately so even a short-lived process has a first data
// point. Starting an already started (or nil) sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	s.Sample()
	go func() {
		defer close(done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Sample()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts periodic sampling and waits for the sampling goroutine to
// exit. The collected series stays readable. No-op when not started.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Sample takes one snapshot now. Exposed so tests (and callers that want
// a final tick at shutdown) can sample deterministically.
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	snap := s.reg.Snapshot()
	sample := TimeSeriesSample{
		TimeMS:   time.Now().UnixMilli(),
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	s.mu.Lock()
	s.buf = append(s.buf, sample)
	if len(s.buf) > s.cap {
		s.buf = s.buf[len(s.buf)-s.cap:]
	}
	s.mu.Unlock()
}

// Series returns the collected samples, oldest first. last > 0 limits the
// result to the most recent last samples. A nil sampler returns an empty
// series with Samples non-nil, so the JSON shape is stable.
func (s *Sampler) Series(last int) TimeSeries {
	if s == nil {
		return TimeSeries{Samples: []TimeSeriesSample{}}
	}
	s.mu.Lock()
	buf := s.buf
	if last > 0 && len(buf) > last {
		buf = buf[len(buf)-last:]
	}
	out := TimeSeries{
		IntervalMS: float64(s.interval) / float64(time.Millisecond),
		Samples:    append([]TimeSeriesSample{}, buf...),
	}
	s.mu.Unlock()
	return out
}
