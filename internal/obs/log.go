package obs

import (
	"context"
	"io"
	"log/slog"
)

// Logger is the structured logger of the observability layer: a thin
// nil-safe wrapper over log/slog, so the search stack logs through the
// same disabled-by-default convention as spans, metrics and progress —
// a nil *Logger makes every call a no-op costing one pointer check, and
// instrumented code logs unconditionally.
//
// Correlate log lines with traces by attaching the surrounding span's
// identifier: `log.Info("core.run done", "span", span.ID(), ...)` — the
// same id appears as span_id in the Chrome trace export.
type Logger struct {
	sl *slog.Logger
}

// NewLogger wraps an slog handler; a nil handler yields the disabled
// (nil) logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{sl: slog.New(h)}
}

// NewTextLogger returns a logger emitting logfmt-style text lines at or
// above the given level (nil level = slog.LevelInfo).
func NewTextLogger(w io.Writer, level slog.Leveler) *Logger {
	return NewLogger(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewJSONLogger returns a logger emitting one JSON object per line at or
// above the given level (nil level = slog.LevelInfo).
func NewJSONLogger(w io.Writer, level slog.Leveler) *Logger {
	return NewLogger(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Enabled reports whether the logger emits records at the given level
// (false on the disabled logger).
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && l.sl.Enabled(context.Background(), level)
}

// With returns a logger whose records carry the given attributes in
// addition to per-call ones. The disabled logger stays disabled.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With(args...)}
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args) }

// Info emits an info-level record.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args) }

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args) }

// Error emits an error-level record.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args) }

func (l *Logger) log(level slog.Level, msg string, args []any) {
	if l == nil {
		return
	}
	l.sl.Log(context.Background(), level, msg, args...)
}
