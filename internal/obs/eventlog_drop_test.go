package obs

import "testing"

// TestEventLogRingOverflow: once emissions outrun the replay ring, the
// evictions are counted — Dropped, the attached events.dropped counter —
// and OldestBuffered moves up so /events can compute an honest gap
// marker instead of silently skipping history.
func TestEventLogRingOverflow(t *testing.T) {
	e := NewEventLog()
	reg := NewRegistry()
	c := reg.Counter("events.dropped")
	e.MeterDropped(c)

	const extra = 10
	for i := 0; i < eventRingCap+extra; i++ {
		e.Emit("tick", "", nil)
	}
	if got := e.Dropped(); got != extra {
		t.Errorf("Dropped() = %d, want %d", got, extra)
	}
	if got := c.Value(); got != extra {
		t.Errorf("events.dropped counter = %d, want %d", got, extra)
	}
	if got := e.OldestBuffered(); got != extra+1 {
		t.Errorf("OldestBuffered() = %d, want %d", got, extra+1)
	}
	evs := e.Events(0)
	if len(evs) != eventRingCap {
		t.Fatalf("ring replays %d events, want %d", len(evs), eventRingCap)
	}
	if evs[0].Seq != extra+1 {
		t.Errorf("oldest replayable seq = %d, want %d", evs[0].Seq, extra+1)
	}
	// Before overflow nothing is dropped.
	fresh := NewEventLog()
	fresh.Emit("tick", "", nil)
	if fresh.Dropped() != 0 || fresh.OldestBuffered() != 1 {
		t.Errorf("fresh log Dropped=%d OldestBuffered=%d", fresh.Dropped(), fresh.OldestBuffered())
	}
}
