package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("a", "k", 1)
	l.Info("b")
	l.Warn("c")
	l.Error("d", "err", "boom")
	if l.With("k", "v") != nil {
		t.Error("With on the disabled logger must stay disabled")
	}
	if l.Enabled(slog.LevelError) {
		t.Error("disabled logger reports Enabled")
	}
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) must return the disabled logger")
	}
}

func TestTextLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, slog.LevelInfo)
	l.Debug("hidden")
	l.With("strategy", "OPT").Info("core.run done", "cost", 56.0, "span", int64(7))
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked at info level: %q", out)
	}
	for _, want := range []string{"core.run done", "strategy=OPT", "cost=56", "span=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
	if !l.Enabled(slog.LevelInfo) || l.Enabled(slog.LevelDebug) {
		t.Error("level gating wrong")
	}
}

func TestJSONLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, slog.LevelDebug)
	l.Debug("acceptance point done", "ser", 1e-11, "jobs", 20)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON object per line: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "acceptance point done" || rec["jobs"] != float64(20) {
		t.Errorf("record = %v", rec)
	}
}
