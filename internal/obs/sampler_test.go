package obs

import (
	"testing"
	"time"
)

func TestSamplerSeries(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("evals")
	g := reg.Gauge("queue")
	s := NewSampler(reg, 10*time.Millisecond, 5)

	c.Add(1)
	g.Set(2)
	s.Sample()
	c.Add(4)
	s.Sample()

	ts := s.Series(0)
	if ts.IntervalMS != 10 {
		t.Errorf("interval %v ms, want 10", ts.IntervalMS)
	}
	if len(ts.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(ts.Samples))
	}
	if ts.Samples[0].Counters["evals"] != 1 || ts.Samples[1].Counters["evals"] != 5 {
		t.Errorf("counter series %v", ts.Samples)
	}
	if ts.Samples[0].Gauges["queue"] != 2 {
		t.Errorf("gauge sample %v", ts.Samples[0].Gauges)
	}
	if ts.Samples[0].TimeMS == 0 {
		t.Error("sample lacks timestamp")
	}
	if got := s.Series(1); len(got.Samples) != 1 || got.Samples[0].Counters["evals"] != 5 {
		t.Errorf("Series(last=1) = %v", got.Samples)
	}
}

func TestSamplerCapacity(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	s := NewSampler(reg, time.Second, 3)
	for i := 0; i < 7; i++ {
		c.Add(1)
		s.Sample()
	}
	ts := s.Series(0)
	if len(ts.Samples) != 3 {
		t.Fatalf("ring holds %d, want 3", len(ts.Samples))
	}
	if ts.Samples[0].Counters["n"] != 5 || ts.Samples[2].Counters["n"] != 7 {
		t.Errorf("oldest retained samples wrong: %v", ts.Samples)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 5*time.Millisecond, 100)
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Series(0).Samples) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	n := len(s.Series(0).Samples)
	if n < 2 {
		t.Fatalf("periodic sampling produced %d samples, want ≥ 2", n)
	}
	time.Sleep(15 * time.Millisecond)
	if got := len(s.Series(0).Samples); got != n {
		t.Errorf("sampling continued after Stop: %d → %d", n, got)
	}
	s.Stop() // idempotent
}

func TestSamplerDisabled(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Sample()
	s.Stop()
	ts := s.Series(0)
	if ts.Samples == nil || len(ts.Samples) != 0 {
		t.Errorf("nil sampler series = %+v", ts)
	}
}
