package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstate"
)

func TestEventLogMemory(t *testing.T) {
	e := NewEventLog()
	ch := e.Changed()
	e.Emit("job.submitted", "j1", map[string]any{"fig": "6a"})
	select {
	case <-ch:
	default:
		t.Error("Changed channel not closed by Emit")
	}
	e.Emit("job.started", "j1", nil)
	e.Emit("job.done", "j1", map[string]any{"elapsed_ms": 12})

	evs := e.Events(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Job != "j1" || ev.TimeMS == 0 {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
	}
	if got := e.Events(2); len(got) != 1 || got[0].Type != "job.done" {
		t.Errorf("Events(2) = %+v, want just job.done", got)
	}
	if e.Seq() != 3 {
		t.Errorf("Seq() = %d, want 3", e.Seq())
	}
	if e.Events(3) != nil {
		t.Errorf("Events(latest) should be empty")
	}
}

// TestEventLogDurableReplay: a reopened journal replays the identical
// event stream and continues the sequence — the restart-survival
// contract the ftesd daemon relies on.
func TestEventLogDurableReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	e1, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	e1.Emit("daemon.up", "", nil)
	e1.Emit("job.submitted", "j1", map[string]any{"fig": "runtime", "shards": 2})
	e1.Emit("job.started", "j1", nil)
	before := e1.Events(0)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	after := e2.Events(0)
	b1, _ := json.Marshal(before)
	b2, _ := json.Marshal(after)
	if string(b1) != string(b2) {
		t.Errorf("replayed stream differs:\n%s\nwant:\n%s", b2, b1)
	}
	e2.Emit("daemon.up", "", nil)
	if got := e2.Seq(); got != 4 {
		t.Errorf("sequence did not continue after replay: %d, want 4", got)
	}
}

// TestEventLogFraming: the on-disk form is a standard runstate journal —
// CRC-framed line JSON with a fingerprint header — parseable by
// runstate.Scan.
func TestEventLogFraming(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	e, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	e.Emit("job.submitted", "j1", nil)
	e.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fp, ok, rows, good := runstate.Scan(data)
	if !ok || fp != eventLogFingerprint {
		t.Fatalf("scan: ok=%v fp=%q", ok, fp)
	}
	if len(rows) != 1 || good != len(data) {
		t.Fatalf("scan: %d rows, %d/%d bytes intact", len(rows), good, len(data))
	}
	var ev LogEvent
	if err := json.Unmarshal(rows[0].Data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != "job.submitted" || ev.Seq != 1 {
		t.Errorf("row payload %+v", ev)
	}
}

// TestEventLogTornTail: a torn final record is rounded away on reopen and
// the sequence continues from the last intact event.
func TestEventLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	e, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	e.Emit("job.submitted", "j1", nil)
	e.Emit("job.started", "j1", nil)
	e.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"key":"0000000000000003","data":{"seq":3`) // no newline: torn
	f.Close()

	e2, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := len(e2.Events(0)); got != 2 {
		t.Errorf("replayed %d events past a torn tail, want 2", got)
	}
	if e2.Seq() != 2 {
		t.Errorf("Seq() = %d after torn tail, want 2", e2.Seq())
	}
}

func TestEventLogLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	e, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := OpenEventLog(path); !errors.Is(err, runstate.ErrLocked) {
		t.Errorf("second open: %v, want ErrLocked", err)
	}
}

func TestEventLogRing(t *testing.T) {
	e := NewEventLog()
	for i := 0; i < eventRingCap+10; i++ {
		e.Emit("tick", "", nil)
	}
	evs := e.Events(0)
	if len(evs) != eventRingCap {
		t.Fatalf("ring holds %d, want %d", len(evs), eventRingCap)
	}
	if evs[0].Seq != 11 {
		t.Errorf("oldest retained seq %d, want 11", evs[0].Seq)
	}
}

func TestEventScope(t *testing.T) {
	e := NewEventLog()
	sc := e.Scoped("job-42")
	sc.Emit("shard.started", map[string]any{"index": 0})
	if evs := e.Events(0); len(evs) != 1 || evs[0].Job != "job-42" {
		t.Errorf("scoped emit: %+v", evs)
	}
	if sc.Job() != "job-42" {
		t.Errorf("Job() = %q", sc.Job())
	}

	var nilLog *EventLog
	nilLog.Emit("x", "", nil)
	if nilLog.Events(0) != nil || nilLog.Seq() != 0 {
		t.Error("nil log not inert")
	}
	sc = nilLog.Scoped("j")
	sc.Emit("x", nil) // must not panic
	if sc.Job() != "" {
		t.Error("nil scope has a job")
	}
	if err := nilLog.Close(); err != nil {
		t.Error(err)
	}
}
