package prob

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloorCeilPaperValues(t *testing.T) {
	// Appendix A.2: (1 − 1.2e-5)(1 − 1.3e-5) rounded down at 1e-11
	// accuracy is 0.99997500015.
	x := (1 - 1.2e-5) * (1 - 1.3e-5)
	if got := FloorP(x); got != 0.99997500015 {
		t.Errorf("FloorP(%v) = %.11f, want 0.99997500015", x, got)
	}
	// 1 − 0.99997500015 − 0.00002499937 rounded up is 4.8e-10.
	y := 1 - 0.99997500015 - 0.00002499937
	if got := CeilP(y); math.Abs(got-4.8e-10) > 1e-20 {
		t.Errorf("CeilP(%v) = %g, want 4.8e-10", y, got)
	}
}

func TestFloorCeilBasics(t *testing.T) {
	cases := []struct {
		x           float64
		floor, ceil float64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{0.5, 0.5, 0.5},
		{1.23e-11, 1e-11, 2e-11},
		{9.999e-12, 0, 1e-11},
	}
	for _, c := range cases {
		if got := FloorP(c.x); got != c.floor {
			t.Errorf("FloorP(%v) = %v, want %v", c.x, got, c.floor)
		}
		if got := CeilP(c.x); got != c.ceil {
			t.Errorf("CeilP(%v) = %v, want %v", c.x, got, c.ceil)
		}
	}
}

func TestFloorCeilProperties(t *testing.T) {
	f := func(u uint32) bool {
		x := float64(u) / float64(math.MaxUint32) // in [0,1]
		lo, hi := FloorP(x), CeilP(x)
		// Allow one ulp of slop from the multiply/divide round trips.
		const slop = 1e-15
		return lo <= x+slop && x <= hi+slop && hi-lo <= Eps+slop
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.1) != 0 || Clamp01(1.1) != 1 || Clamp01(0.3) != 0.3 {
		t.Error("Clamp01 misbehaves")
	}
}

func TestCompleteHomogeneousSmall(t *testing.T) {
	// h_f({p}) = p^f for a single variable.
	h, err := CompleteHomogeneous([]float64{0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-15 {
			t.Errorf("h[%d] = %v, want %v", i, h[i], want[i])
		}
	}
	// h_1 = p1+p2, h_2 = p1²+p1p2+p2².
	h, err = CompleteHomogeneous([]float64{0.2, 0.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[1]-0.5) > 1e-15 {
		t.Errorf("h_1 = %v, want 0.5", h[1])
	}
	if math.Abs(h[2]-(0.04+0.06+0.09)) > 1e-15 {
		t.Errorf("h_2 = %v, want 0.19", h[2])
	}
}

func TestCompleteHomogeneousEmpty(t *testing.T) {
	h, err := CompleteHomogeneous(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 1 || h[1] != 0 || h[2] != 0 {
		t.Errorf("h of empty set = %v, want [1 0 0]", h)
	}
}

func TestCompleteHomogeneousNegativeF(t *testing.T) {
	if _, err := CompleteHomogeneous([]float64{0.1}, -1); err == nil {
		t.Error("want error for negative maxF")
	}
	if _, err := MultisetSum([]float64{0.1}, -1); err == nil {
		t.Error("want error for negative f")
	}
}

func TestCompleteHomogeneousMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(5)
		p := make([]float64, m)
		for i := range p {
			p[i] = rng.Float64() * 0.1
		}
		maxF := rng.Intn(5)
		h, err := CompleteHomogeneous(p, maxF)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f <= maxF; f++ {
			want, err := MultisetSum(p, f)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(h[f]-want) > 1e-12*(1+math.Abs(want)) {
				t.Errorf("m=%d f=%d: DP %v != enumeration %v", m, f, h[f], want)
			}
		}
	}
}

func TestCompleteHomogeneousMonotoneInF(t *testing.T) {
	// For probabilities < 1/m the h_f sequence decreases (each extra fault
	// multiplies by Σp or less); we only assert positivity and decay for a
	// realistic failure-probability regime.
	p := []float64{1.2e-5, 1.3e-5, 1.4e-5}
	h, err := CompleteHomogeneous(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	for f := 1; f <= 6; f++ {
		if h[f] <= 0 {
			t.Fatalf("h[%d] = %v, want > 0", f, h[f])
		}
		if h[f] >= h[f-1] {
			t.Errorf("h[%d] = %v not below h[%d] = %v", f, h[f], f-1, h[f-1])
		}
	}
}

func TestPowSurvive(t *testing.T) {
	// Appendix A.2: (1 − 9.6e-10)^10000 = 0.99999040004…
	got := PowSurvive(9.6e-10, 10000)
	if math.Abs(got-0.99999040004) > 1e-10 {
		t.Errorf("PowSurvive = %.11f, want ≈0.99999040004", got)
	}
	if PowSurvive(0, 1e6) != 1 {
		t.Error("PowSurvive(0, n) should be 1")
	}
	if PowSurvive(1, 5) != 0 {
		t.Error("PowSurvive(1, n) should be 0")
	}
	if PowSurvive(1, 0) != 1 {
		t.Error("PowSurvive(1, 0) should be 1")
	}
	if PowSurvive(-0.5, 10) != 1 {
		t.Error("PowSurvive of negative x should clamp to 1")
	}
}

func TestPowSurviveMatchesPow(t *testing.T) {
	f := func(u uint16, n uint8) bool {
		x := float64(u) / (10 * float64(math.MaxUint16)) // small prob
		want := math.Pow(1-x, float64(n))
		got := PowSurvive(x, float64(n))
		return math.Abs(got-want) <= 1e-12*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionFail(t *testing.T) {
	if got := UnionFail(nil); got != 0 {
		t.Errorf("UnionFail(nil) = %v, want 0", got)
	}
	if got := UnionFail([]float64{0.5}); got != 0.5 {
		t.Errorf("UnionFail({0.5}) = %v, want 0.5", got)
	}
	// Appendix A.2: union of two 4.8e-10 failures is 9.6e-10 (to within
	// the paper's rounding).
	got := UnionFail([]float64{4.8e-10, 4.8e-10})
	if math.Abs(got-9.6e-10) > 1e-15 {
		t.Errorf("UnionFail = %g, want ≈9.6e-10", got)
	}
}

func TestUnionFailBounds(t *testing.T) {
	f := func(a, b, c uint16) bool {
		p := []float64{
			float64(a) / float64(math.MaxUint16),
			float64(b) / float64(math.MaxUint16),
			float64(c) / float64(math.MaxUint16),
		}
		u := UnionFail(p)
		maxP := math.Max(p[0], math.Max(p[1], p[2]))
		sum := p[0] + p[1] + p[2]
		return u >= maxP-1e-12 && u <= math.Min(1, sum)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCompleteHomogeneousMatchesBigFloat cross-checks the float64 DP
// against exact math/big rational arithmetic on small instances.
func TestCompleteHomogeneousMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(6)
		ps := make([]float64, m)
		rats := make([]*big.Rat, m)
		for i := range ps {
			// Use exact dyadic rationals so the float64 inputs are exact.
			num := int64(1 + rng.Intn(1023))
			ps[i] = float64(num) / 1024 / 64
			rats[i] = new(big.Rat).SetFrac64(num, 1024*64)
		}
		maxF := 1 + rng.Intn(6)
		h, err := CompleteHomogeneous(ps, maxF)
		if err != nil {
			t.Fatal(err)
		}
		// Exact DP in big.Rat.
		exact := make([]*big.Rat, maxF+1)
		exact[0] = new(big.Rat).SetInt64(1)
		for f := 1; f <= maxF; f++ {
			exact[f] = new(big.Rat)
		}
		for _, x := range rats {
			for f := 1; f <= maxF; f++ {
				term := new(big.Rat).Mul(x, exact[f-1])
				exact[f].Add(exact[f], term)
			}
		}
		for f := 0; f <= maxF; f++ {
			want, _ := exact[f].Float64()
			if math.Abs(h[f]-want) > 1e-13*(1+math.Abs(want)) {
				t.Fatalf("trial %d f=%d: float64 %v vs exact %v", trial, f, h[f], want)
			}
		}
	}
}
