// Package prob implements the pessimistic probability arithmetic used by
// the system failure probability (SFP) analysis of Izosimov et al.,
// "Analysis and Optimization of Fault-Tolerant Embedded Systems with
// Hardened Processors" (DATE 2009), Appendix A.
//
// The paper rounds intermediate values at 10^-11 accuracy: success
// probabilities are rounded down and failure probabilities are rounded up,
// "for pessimism of fault-tolerant design". FloorP and CeilP implement this
// directed rounding. The probability of exactly f faults on a node is a sum
// over all multisets of f faulty executions drawn from the processes mapped
// on the node; that sum is the complete homogeneous symmetric polynomial
// h_f of the per-process failure probabilities, which CompleteHomogeneous
// evaluates with an O(f·m) dynamic program.
package prob

import (
	"errors"
	"math"
)

// Eps is the rounding accuracy used by the paper's SFP computations
// (10^-11; see Appendix A, footnote 2).
const Eps = 1e-11

// invEps is 1/Eps. 1e11 is an integer below 2^53 and therefore exactly
// representable in float64.
const invEps = 1e11

// FloorP rounds x down to a multiple of Eps. It is applied to success
// probabilities (probabilities of scenarios that must not be
// overestimated).
func FloorP(x float64) float64 {
	return math.Floor(x*invEps) / invEps
}

// CeilP rounds x up to a multiple of Eps. It is applied to failure
// probabilities (probabilities of scenarios that must not be
// underestimated).
func CeilP(x float64) float64 {
	return math.Ceil(x*invEps) / invEps
}

// Clamp01 clamps x into the closed interval [0, 1]. The directed-rounding
// helpers can push values marginally outside the unit interval; callers use
// Clamp01 to restore a valid probability.
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// ErrNegativeFaults is returned when a negative fault count is requested.
var ErrNegativeFaults = errors.New("prob: negative fault count")

// CompleteHomogeneous returns the values h_0, h_1, …, h_maxF of the
// complete homogeneous symmetric polynomials of p:
//
//	h_f(p) = Σ over all multisets {i_1 ≤ i_2 ≤ … ≤ i_f} of Π p_{i_l}.
//
// h_0 is 1 by convention and h_f of an empty variable set is 0 for f ≥ 1.
// In the SFP analysis, h_f of the per-process failure probabilities on a
// node equals the Σ Π p term of formula (3): the sum over all f-fault
// scenarios (combinations with repetitions of f faults on the processes
// mapped on the node).
func CompleteHomogeneous(p []float64, maxF int) ([]float64, error) {
	if maxF < 0 {
		return nil, ErrNegativeFaults
	}
	h := make([]float64, maxF+1)
	h[0] = 1
	// h_f(p_1..p_i) = h_f(p_1..p_{i-1}) + p_i · h_{f-1}(p_1..p_i).
	// Iterating f in ascending order makes h[f-1] already refer to the
	// current variable set, which is exactly the recurrence above.
	for _, x := range p {
		for f := 1; f <= maxF; f++ {
			h[f] += x * h[f-1]
		}
	}
	return h, nil
}

// MultisetSum computes h_f(p) by explicit enumeration of all multisets of
// size f. It is exponential and exists to cross-check CompleteHomogeneous
// in tests; use CompleteHomogeneous everywhere else.
func MultisetSum(p []float64, f int) (float64, error) {
	if f < 0 {
		return 0, ErrNegativeFaults
	}
	var rec func(start, left int, prod float64) float64
	rec = func(start, left int, prod float64) float64 {
		if left == 0 {
			return prod
		}
		var sum float64
		for i := start; i < len(p); i++ {
			sum += rec(i, left-1, prod*p[i])
		}
		return sum
	}
	return rec(0, f, 1), nil
}

// PowSurvive returns (1-x)^n computed in a numerically stable way for tiny
// x and large n, as needed by formula (6) of the paper where the
// per-iteration non-failure probability is raised to the number of
// application iterations per time unit (τ/T).
func PowSurvive(x float64, n float64) float64 {
	if x >= 1 {
		if n == 0 {
			return 1
		}
		return 0
	}
	if x <= 0 {
		return 1
	}
	return math.Exp(n * math.Log1p(-x))
}

// UnionFail returns the probability that at least one of the independent
// failure events with probabilities pf occurs:
//
//	1 − Π (1 − pf_j)
//
// matching formula (5) of the paper. The union is accumulated as
// u ← u + x − u·x rather than 1 − Π(1−x) to avoid catastrophic
// cancellation for the tiny probabilities this analysis deals in. No
// rounding is applied; the SFP layer applies CeilP to the result.
func UnionFail(pf []float64) float64 {
	var u float64
	for _, x := range pf {
		u = u + x - u*x
	}
	return u
}
