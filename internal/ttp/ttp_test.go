package ttp

import (
	"math"
	"math/rand"
	"testing"
)

func TestBusBasics(t *testing.T) {
	b := NewBus(2, 5)
	if b.RoundLen() != 10 || b.SlotLen() != 5 {
		t.Fatalf("round %v slot %v", b.RoundLen(), b.SlotLen())
	}
	// Node 0 owns [0,5), node 1 owns [5,10), then the next round.
	s, e := b.Schedule(0, 0)
	if s != 0 || e != 5 {
		t.Errorf("first node-0 slot = [%v,%v), want [0,5)", s, e)
	}
	s, e = b.Schedule(1, 0)
	if s != 5 || e != 10 {
		t.Errorf("first node-1 slot = [%v,%v), want [5,10)", s, e)
	}
	// Second message from node 0 goes to round 1.
	s, e = b.Schedule(0, 0)
	if s != 10 || e != 15 {
		t.Errorf("second node-0 slot = [%v,%v), want [10,15)", s, e)
	}
}

func TestBusReadyAlignment(t *testing.T) {
	b := NewBus(3, 4) // round = 12; node 1 slots start at 4, 16, 28, ...
	s, _ := b.Schedule(1, 5)
	if s != 16 {
		t.Errorf("slot after ready=5 starts at %v, want 16", s)
	}
	// Ready exactly at a slot start uses that slot.
	s, _ = b.Schedule(1, 28)
	if s != 28 {
		t.Errorf("slot at ready=28 starts at %v, want 28", s)
	}
}

func TestBusNoDoubleBooking(t *testing.T) {
	b := NewBus(2, 5)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		s, _ := b.Schedule(0, 0)
		if seen[s] {
			t.Fatalf("slot %v booked twice", s)
		}
		seen[s] = true
	}
}

func TestBusReset(t *testing.T) {
	b := NewBus(2, 5)
	b.Schedule(0, 0)
	b.Reset()
	if s, _ := b.Schedule(0, 0); s != 0 {
		t.Errorf("after Reset, first slot = %v, want 0", s)
	}
}

func TestBusPeekDoesNotBook(t *testing.T) {
	b := NewBus(2, 5)
	p1, _ := b.Peek(0, 0)
	p2, _ := b.Peek(0, 0)
	if p1 != p2 {
		t.Errorf("Peek booked a slot: %v then %v", p1, p2)
	}
	s, _ := b.Schedule(0, 0)
	if s != p1 {
		t.Errorf("Schedule = %v, Peek promised %v", s, p1)
	}
}

func TestBusPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("zero nodes", func() { NewBus(0, 5) })
	mustPanic("zero slot", func() { NewBus(2, 0) })
	b := NewBus(2, 5)
	mustPanic("bad src", func() { b.Schedule(2, 0) })
	mustPanic("bad peek src", func() { b.Peek(-1, 0) })
}

// TestBusInvariants checks, over random ready times, that every booked
// window belongs to the source node's slot positions, starts at or after
// the ready time, and that per-node bookings never overlap.
func TestBusInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		slot := 1 + rng.Float64()*9
		b := NewBus(n, slot)
		round := b.RoundLen()
		lastEnd := make([]float64, n)
		ready := make([]float64, n)
		for i := 0; i < 200; i++ {
			src := rng.Intn(n)
			// Ready times non-decreasing per node, as produced by the list
			// scheduler.
			ready[src] += rng.Float64() * 20
			s, e := b.Schedule(src, ready[src])
			if s < ready[src] {
				t.Fatalf("slot starts %v before ready %v", s, ready[src])
			}
			if w := e - s; w-slot > 1e-9 || slot-w > 1e-9 {
				t.Fatalf("slot width %v, want %v", w, slot)
			}
			// Position within the round must match the source node (up to
			// floating-point wrap at the round boundary).
			pos := math.Mod(s, round)
			diff := math.Abs(pos - float64(src)*slot)
			if wrap := math.Abs(diff - round); diff > 1e-9 && wrap > 1e-9 {
				t.Fatalf("slot at %v not aligned for node %d (pos %v)", s, src, pos)
			}
			if s < lastEnd[src]-1e-9 {
				t.Fatalf("node %d slots overlap: start %v before previous end %v", src, s, lastEnd[src])
			}
			lastEnd[src] = e
		}
	}
}

func TestInstantBus(t *testing.T) {
	var b InstantBus
	s, e := b.Schedule(0, 42)
	if s != 42 || e != 42 {
		t.Errorf("InstantBus = [%v,%v), want [42,42)", s, e)
	}
	b.Reset() // must not panic
}
