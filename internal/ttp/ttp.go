// Package ttp models a time-triggered (TTP-like) communication bus. The
// paper assumes that communications are fault tolerant and characterized
// only by worst-case transmission times ("we use a communication protocol
// such as TTP", Section 2); this package supplies that substrate: a TDMA
// scheme in which time is divided into rounds and each computation node
// owns one slot per round in which it may transmit one message.
//
// Message scheduling is earliest-slot-first: a message from node j that
// becomes ready at time t departs at the start of the earliest unbooked
// slot of node j starting at or after t and arrives at the end of that
// slot.
package ttp

import (
	"fmt"

	"repro/internal/sched"
)

// Bus is a TDMA bus over a fixed set of nodes. The zero value is not
// usable; construct with NewBus.
type Bus struct {
	numNodes int
	slotLen  float64
	// nextRound[j] is the first round whose slot of node j is still free.
	// Slots are booked in non-decreasing ready-time order per node by the
	// list scheduler, so a single watermark per node suffices.
	nextRound []int
}

// NewBus returns a bus with one slot of slotLen milliseconds per node per
// round. It panics if numNodes < 1 or slotLen <= 0, which indicate
// programming errors in the caller (the platform validates its BusSpec).
func NewBus(numNodes int, slotLen float64) *Bus {
	if numNodes < 1 {
		panic(fmt.Sprintf("ttp: numNodes %d < 1", numNodes))
	}
	if slotLen <= 0 {
		panic(fmt.Sprintf("ttp: slotLen %v <= 0", slotLen))
	}
	return &Bus{
		numNodes:  numNodes,
		slotLen:   slotLen,
		nextRound: make([]int, numNodes),
	}
}

// RoundLen returns the TDMA round length (numNodes × slotLen).
func (b *Bus) RoundLen() float64 { return float64(b.numNodes) * b.slotLen }

// SlotLen returns the slot length.
func (b *Bus) SlotLen() float64 { return b.slotLen }

// Reset clears all bookings, so the same Bus can evaluate another
// candidate schedule without reallocation.
func (b *Bus) Reset() {
	for i := range b.nextRound {
		b.nextRound[i] = 0
	}
}

// Schedule books the earliest free slot of srcNode starting at or after
// ready and returns the transmission window [start, end). srcNode must be
// in [0, numNodes).
func (b *Bus) Schedule(srcNode int, ready float64) (start, end float64) {
	if srcNode < 0 || srcNode >= b.numNodes {
		panic(fmt.Sprintf("ttp: srcNode %d outside [0,%d)", srcNode, b.numNodes))
	}
	round := b.nextRound[srcNode]
	if r := b.roundAtOrAfter(srcNode, ready); r > round {
		round = r
	}
	b.nextRound[srcNode] = round + 1
	start = float64(round)*b.RoundLen() + float64(srcNode)*b.slotLen
	return start, start + b.slotLen
}

// Peek returns the window Schedule would book, without booking it.
func (b *Bus) Peek(srcNode int, ready float64) (start, end float64) {
	if srcNode < 0 || srcNode >= b.numNodes {
		panic(fmt.Sprintf("ttp: srcNode %d outside [0,%d)", srcNode, b.numNodes))
	}
	round := b.nextRound[srcNode]
	if r := b.roundAtOrAfter(srcNode, ready); r > round {
		round = r
	}
	start = float64(round)*b.RoundLen() + float64(srcNode)*b.slotLen
	return start, start + b.slotLen
}

// roundAtOrAfter returns the smallest round whose slot of srcNode starts
// at or after ready.
func (b *Bus) roundAtOrAfter(srcNode int, ready float64) int {
	if ready <= 0 {
		return 0
	}
	offset := float64(srcNode) * b.slotLen
	r := int((ready - offset) / b.RoundLen())
	if r < 0 {
		r = 0
	}
	// Guard against flooring error: advance until the slot start is at or
	// after ready.
	for float64(r)*b.RoundLen()+offset < ready {
		r++
	}
	return r
}

// CloneBus returns a fresh bus with the same slot layout and no
// bookings, so parallel schedule builds each mutate their own TDMA state
// (sched.CloneableBus).
func (b *Bus) CloneBus() sched.Bus {
	return NewBus(b.numNodes, b.slotLen)
}

// InstantBus is a degenerate bus on which every message is delivered
// immediately with zero transmission time. It is used by tests and by the
// analytical examples in which the paper abstracts communication away.
type InstantBus struct{}

// Schedule returns [ready, ready): instantaneous delivery.
func (InstantBus) Schedule(srcNode int, ready float64) (start, end float64) {
	return ready, ready
}

// Reset is a no-op.
func (InstantBus) Reset() {}

// CloneBus returns the bus itself: an InstantBus carries no booking
// state, so it is trivially shareable (sched.CloneableBus).
func (b InstantBus) CloneBus() sched.Bus { return b }
