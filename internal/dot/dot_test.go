package dot

import (
	"strings"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
)

func TestWritePlain(t *testing.T) {
	app := paper.Fig1Application()
	var sb strings.Builder
	if err := Write(&sb, app, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "A" {`,
		"subgraph cluster_0",
		`label="G1 (D=360 ms)"`,
		`p0 [label="P1"]`,
		`p0 -> p1 [label="m1"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestWriteMappedAndAnnotated(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	mapping := []int{0, 0, 1, 1}
	wcet := []float64{75, 90, 60, 75}
	var sb strings.Builder
	err := Write(&sb, app, Options{Arch: ar, Mapping: mapping, WCET: wcet, RankLR: true})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"rankdir=LR",
		"fillcolor=", `xlabel="N1"`, `xlabel="N2"`,
		`75 ms`,
		"style=bold", // m2 crosses nodes
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Intra-node m1 (P1->P2) must not be bold.
	if strings.Contains(out, `p0 -> p1 [label="m1", style=bold]`) {
		t.Error("intra-node edge rendered bold")
	}
}

func TestWriteErrors(t *testing.T) {
	app := paper.Fig1Application()
	var sb strings.Builder
	if err := Write(&sb, nil, Options{}); err == nil {
		t.Error("want error for nil application")
	}
	if err := Write(&sb, app, Options{Mapping: []int{0}}); err == nil {
		t.Error("want error for short mapping")
	}
	if err := Write(&sb, app, Options{WCET: []float64{1}}); err == nil {
		t.Error("want error for short WCET table")
	}
}

func TestQuote(t *testing.T) {
	if got := quote(`a"b\c` + "\n"); got != `"a\"b\\c\n"` {
		t.Errorf("quote = %s", got)
	}
}
