// Package dot exports applications and design results as Graphviz DOT
// documents: the task graphs with their messages, and optionally the
// mapping decoration (one color per computation node) of a completed
// design run.
package dot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/appmodel"
	"repro/internal/platform"
)

// palette holds fill colors assigned to architecture nodes, recycled when
// there are more nodes than colors.
var palette = []string{
	"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99",
}

// Options controls the rendering.
type Options struct {
	// Arch and Mapping, when both set, color each process by the
	// architecture node it is mapped on and label it with the node name.
	Arch    *platform.Architecture
	Mapping []int
	// WCET, when set, annotates each process with its execution time.
	WCET []float64
	// RankLR lays the graph out left-to-right instead of top-down.
	RankLR bool
}

// Write emits the application as a DOT digraph.
func Write(w io.Writer, app *appmodel.Application, opts Options) error {
	if app == nil {
		return fmt.Errorf("dot: nil application")
	}
	if opts.Mapping != nil && len(opts.Mapping) != app.NumProcesses() {
		return fmt.Errorf("dot: mapping covers %d of %d processes", len(opts.Mapping), app.NumProcesses())
	}
	if opts.WCET != nil && len(opts.WCET) != app.NumProcesses() {
		return fmt.Errorf("dot: WCET table covers %d of %d processes", len(opts.WCET), app.NumProcesses())
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", quote(app.Name))
	if opts.RankLR {
		sb.WriteString("  rankdir=LR;\n")
	}
	sb.WriteString("  node [shape=ellipse, style=filled, fillcolor=white];\n")
	for gi := range app.Graphs {
		g := &app.Graphs[gi]
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n", gi)
		fmt.Fprintf(&sb, "    label=%s;\n", quote(fmt.Sprintf("%s (D=%g ms)", g.Name, g.Deadline)))
		for _, pid := range g.Procs {
			label := app.Procs[pid].Name
			if opts.WCET != nil {
				label = fmt.Sprintf("%s\n%g ms", label, opts.WCET[pid])
			}
			attrs := fmt.Sprintf("label=%s", quote(label))
			if opts.Arch != nil && opts.Mapping != nil {
				j := opts.Mapping[pid]
				if j >= 0 && j < len(opts.Arch.Nodes) {
					attrs += fmt.Sprintf(", fillcolor=%s", quote(palette[j%len(palette)]))
					attrs += fmt.Sprintf(", xlabel=%s", quote(opts.Arch.Nodes[j].Name))
				}
			}
			fmt.Fprintf(&sb, "    p%d [%s];\n", pid, attrs)
		}
		sb.WriteString("  }\n")
	}
	for _, e := range app.Edges {
		style := ""
		if opts.Mapping != nil && opts.Mapping[e.Src] != opts.Mapping[e.Dst] {
			style = ", style=bold" // crosses the bus
		}
		fmt.Fprintf(&sb, "  p%d -> p%d [label=%s%s];\n", e.Src, e.Dst, quote(e.Name), style)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// quote renders a DOT double-quoted string.
func quote(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s) + `"`
}
