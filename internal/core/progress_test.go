package core

import (
	"bytes"
	"log/slog"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/paper"
	"repro/internal/sfp"
)

// TestProgressAndLogWiring: a run with Progress and Log installed must
// publish the per-arch and per-iteration phases and the run-done record,
// and return a result identical to the bare run — observation only.
func TestProgressAndLogWiring(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	for _, workers := range []int{1, 4} {
		bare, err := Run(app, pl, Options{
			Goal: sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		pr := obs.NewProgress()
		var logBuf bytes.Buffer
		res, err := Run(app, pl, Options{
			Goal:     sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
			Workers:  workers,
			Progress: pr,
			Log:      obs.NewTextLogger(&logBuf, slog.LevelDebug),
			Metrics:  obs.NewRegistry(),
			Tracer:   obs.NewTracer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible != bare.Feasible || res.Cost != bare.Cost ||
			res.ArchsExplored != bare.ArchsExplored ||
			!reflect.DeepEqual(res.Mapping, bare.Mapping) {
			t.Errorf("workers=%d: observed run diverged: %+v vs %+v", workers, res, bare)
		}

		st := pr.Status()
		byName := map[string]obs.PhaseStatus{}
		for _, ph := range st.Phases {
			byName[ph.Name] = ph
		}
		archs := byName["core.archs"]
		if archs.Current != int64(res.ArchsExplored) {
			t.Errorf("workers=%d: core.archs = %d, want %d (ArchsExplored)",
				workers, archs.Current, res.ArchsExplored)
		}
		if !archs.HasBest || archs.Best != res.Cost {
			t.Errorf("workers=%d: core.archs best = %v (has=%v), want %v",
				workers, archs.Best, archs.HasBest, res.Cost)
		}
		if byName["mapping.iterations"].Current == 0 {
			t.Errorf("workers=%d: mapping.iterations never ticked", workers)
		}
		for _, want := range []string{"core.run done", "feasible=true", "span="} {
			if !strings.Contains(logBuf.String(), want) {
				t.Errorf("workers=%d: log missing %q:\n%s", workers, want, logBuf.String())
			}
		}
	}
}
