package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appmodel"
	"repro/internal/evalengine"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/runctl"
)

// runParallel is Run with Options.Workers > 1: candidate architectures of
// one size class are probed speculatively on concurrent engines, then the
// class is replayed in enumeration order to make the exact decisions of
// runSequential — the same candidates pruned, the same counters, the same
// break to the next size class at the first unschedulable candidate, the
// same winner. A probe is pure (its result depends only on the candidate,
// never on other probes), so speculation changes what is computed when,
// not what is decided.
//
// Two counters deliberately diverge from the sequential path in an
// observable-but-benign way: EvalStats reports all work actually
// performed, including probes whose results the replay discards, and its
// Invalidations stays 0 because every probe gets a fresh engine instead
// of rebinding one. Result.ArchsExplored and Result.Evaluations count
// replay-consumed work only and match runSequential exactly.
func runParallel(ctx context.Context, app *appmodel.Application, pl *platform.Platform, opts Options) (*Result, error) {
	start := time.Now()
	span := opts.runSpan(app)
	defer span.End()
	enum := platform.NewEnumerator(pl)
	res := &Result{}
	var agg evalengine.Stats
	// The per-node-type SFP analyses are keyed on the platform node, not
	// the candidate architecture, so one cache serves every engine of the
	// run — the same reuse the sequential shared engine gets.
	sfpc := evalengine.NewSFPCache()
	bestCost := opts.MaxCost
	if bestCost <= 0 {
		bestCost = 1e308
	}
	// Progress ticks come from the deterministic replay, not the
	// speculative probes, so the published trajectory matches the
	// sequential path's counts exactly.
	archPh := opts.Progress.Phase("core.archs")

	// finalize closes out the run on every exit path — complete or
	// canceled — so a partial Result carries fully accounted stats.
	finalize := func() {
		res.EvalStats = agg
		span.SetAttr(
			obs.Bool("feasible", res.Feasible),
			obs.Int("archs_explored", res.ArchsExplored),
			obs.Int("evaluations", res.Evaluations))
		elapsed := time.Since(start)
		opts.publish(res, elapsed)
		opts.logDone(span, res, elapsed)
	}
	canceled := func(cause error) (*Result, error) {
		opts.Metrics.Counter("core.canceled").Add(1)
		span.SetAttr(obs.Bool("canceled", true))
		finalize()
		return res, fmt.Errorf("core: canceled after %d architectures: %w", res.ArchsExplored, cause)
	}

	for n := 1; n <= enum.MaxNodes(); n++ {
		// Between-size-class cancellation boundary (probes below check the
		// context between tabu iterations and trials themselves).
		if cerr := runctl.Err(ctx); cerr != nil {
			return canceled(cerr)
		}
		var cands []*platform.Architecture
		for idx := 0; ; idx++ {
			ar := enum.Arch(n, idx)
			if ar == nil {
				break
			}
			cands = append(cands, ar)
		}
		floors := make([]float64, len(cands))
		for i, ar := range cands {
			// Fig. 5 line 6 floor; for MAX the fixed levels determine it.
			if opts.Strategy == MAX {
				ar.SetMaxHardening()
				floors[i] = ar.Cost()
			} else {
				floors[i] = ar.MinCost()
			}
		}
		results := make([]probeResult, len(cands))

		// Launch a probe for every candidate the replay could possibly
		// consume: bestCost only shrinks, so a candidate at or above the
		// class-entry bound is pruned by the replay with certainty.
		var launch []int
		for i := range cands {
			if floors[i] < bestCost {
				launch = append(launch, i)
			}
		}
		if len(launch) > 1 {
			inFlight := opts.Workers
			if inFlight > len(launch) {
				inFlight = len(launch)
			}
			innerW := opts.Workers / inFlight
			if innerW < 1 {
				innerW = 1
			}
			// The first unschedulable candidate ends the size class, so
			// probes beyond a known-unschedulable index are abandoned
			// speculation; the replay recomputes one on the rare path
			// where it turns out to be needed after all.
			var minInfeasible atomic.Int64
			minInfeasible.Store(int64(len(cands)))
			sem := make(chan struct{}, inFlight)
			var wg sync.WaitGroup
			for _, i := range launch {
				sem <- struct{}{}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					if int64(i) > minInfeasible.Load() {
						return
					}
					results[i] = probeArch(ctx, app, pl, cands[i], opts, innerW, sfpc, span, i, true)
					r := &results[i]
					if r.err == nil && !r.sl.Solution.Feasible() {
						for {
							m := minInfeasible.Load()
							if int64(i) >= m || minInfeasible.CompareAndSwap(m, int64(i)) {
								break
							}
						}
					}
				}(i)
			}
			wg.Wait()
		} else if len(launch) == 1 {
			// A lone launchable candidate gets the full worker budget.
			results[launch[0]] = probeArch(ctx, app, pl, cands[launch[0]], opts, opts.Workers, sfpc, span, launch[0], false)
		}

		// Replay the class in enumeration order, consuming probe results
		// where runSequential would have evaluated.
		for i := range cands {
			res.ArchsExplored++
			archPh.Add(1)
			if floors[i] >= bestCost {
				continue
			}
			r := &results[i]
			if !r.done {
				// Not launched or abandoned, yet reached by the replay:
				// compute it now (nothing else is running).
				*r = probeArch(ctx, app, pl, cands[i], opts, opts.Workers, sfpc, span, i, false)
			}
			if r.err != nil {
				if errors.Is(r.err, runctl.ErrCanceled) {
					// Fold in the work the class's finished probes did
					// before handing back the best complete solution.
					for k := range results {
						if results[k].done {
							agg.Add(results[k].stats)
						}
					}
					return canceled(r.err)
				}
				return nil, r.err
			}
			res.Evaluations += r.sl.Evaluations
			if !r.sl.Solution.Feasible() {
				break // grow the architecture (Fig. 5 line 15)
			}
			res.Evaluations += r.co.Evaluations
			cand := r.co
			if !cand.Solution.Feasible() {
				cand = r.sl // defensive: keep the feasible schedule-length result
			}
			if cand.Solution.Feasible() && cand.Solution.Cost < bestCost {
				bestCost = cand.Solution.Cost
				final := cands[i].Clone()
				copy(final.Levels, cand.Solution.Levels)
				res.Feasible = true
				res.Arch = final
				res.Mapping = cand.Mapping
				res.Ks = cand.Solution.Ks
				res.Schedule = cand.Solution.Schedule
				res.Cost = cand.Solution.Cost
				archPh.Best(bestCost)
				opts.Log.Debug("new best architecture",
					"strategy", opts.Strategy.String(),
					"nodes", n, "index", i, "cost", bestCost, "span", span.ID())
			}
		}
		for i := range results {
			if results[i].done {
				agg.Add(results[i].stats)
			}
		}
	}
	finalize()
	return res, nil
}

// probeResult is one candidate architecture's speculative evaluation.
type probeResult struct {
	done  bool
	sl    *mapping.Result // best mapping for schedule length
	co    *mapping.Result // cost re-optimization (nil when sl infeasible)
	stats evalengine.Stats
	err   error
}

// probeArch runs the two mapping optimizations of Fig. 5 lines 7–9 for
// one candidate on a fresh concurrent engine with the given worker count.
// runSpan/idx/speculative feed the candidate's arch span; concurrent
// probes become concurrent sibling spans under the run. A panic anywhere
// in the probe — probes run on speculative goroutines, where an escaped
// panic would kill the process — is recovered into r.err as a
// *runctl.PanicError.
func probeArch(ctx context.Context, app *appmodel.Application, pl *platform.Platform, ar *platform.Architecture, opts Options, workers int, sfpc *evalengine.SFPCache, runSpan *obs.Span, idx int, speculative bool) (r probeResult) {
	r.done = true
	defer runctl.Recover(fmt.Sprintf("core probe (size %d, index %d)", len(ar.Nodes), idx), &r.err)
	span := runSpan.Child("arch",
		obs.Int("nodes", len(ar.Nodes)),
		obs.Int("index", idx),
		obs.Int("workers", workers),
		obs.Bool("speculative", speculative))
	defer span.End()
	ce := evalengine.NewConcurrentWith(problem(app, pl, ar, opts), workers, sfpc)
	ce.SetMetrics(opts.Metrics)
	ce.SetProgress(opts.Progress)
	ce.SetPersistent(opts.EvalCache)
	ce.Worker(0).SetTraceSpan(span)
	r.sl, r.err = mapping.OptimizeConcurrentContext(ctx, ce, nil, mapping.ScheduleLength, opts.MappingParams)
	if r.err == nil && r.sl.Solution.Feasible() {
		r.co, r.err = mapping.OptimizeConcurrentContext(ctx, ce, r.sl.Mapping, mapping.ArchitectureCost, opts.MappingParams)
	}
	if r.err == nil {
		span.SetAttr(obs.Bool("feasible", r.sl.Solution.Feasible()))
	}
	r.stats = ce.Stats()
	// Flush the probe's memoized work — its engine is about to be
	// discarded, and the next process (or a rerun of a canceled sweep)
	// can warm-start from it.
	ce.FlushPersistent()
	return r
}
