// Package core implements the outer design optimization strategy of the
// paper (Fig. 5): an exploration of candidate architectures that, for each
// one, runs the tabu-search mapping optimization with its embedded
// hardening/re-execution trade-off, and returns the cheapest architecture
// that satisfies both the hard deadlines and the reliability goal.
//
// Three strategies are provided, matching the experimental evaluation of
// Section 7:
//
//   - OPT — the full DesignStrategy with hardening optimization
//     (RedundancyOpt) inside the mapping algorithm;
//   - MIN — computation nodes fixed at their minimum hardening levels,
//     fault tolerance achieved with software re-execution only;
//   - MAX — computation nodes fixed at their maximum hardening levels.
package core

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/evalengine"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

// Strategy selects the design strategy variant.
type Strategy int

const (
	// OPT is the paper's full design optimization with the
	// hardening/re-execution trade-off (Section 6).
	OPT Strategy = iota
	// MIN fixes all nodes at minimum hardening (software-only fault
	// tolerance).
	MIN
	// MAX fixes all nodes at maximum hardening.
	MAX
)

// String returns the strategy name as used in the paper's plots.
func (s Strategy) String() string {
	switch s {
	case OPT:
		return "OPT"
	case MIN:
		return "MIN"
	case MAX:
		return "MAX"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a design run.
type Options struct {
	// Goal is the reliability goal ρ = 1 − γ per time unit τ.
	Goal sfp.Goal
	// Strategy selects OPT (default), MIN or MAX.
	Strategy Strategy
	// MaxK caps re-executions per node (0 = sfp.DefaultMaxK).
	MaxK int
	// Model selects the recovery-slack accounting (default shared).
	Model sched.SlackModel
	// MappingParams tunes the tabu search (zero values = defaults).
	MappingParams mapping.Params
	// MaxCost, when positive, prunes architectures whose minimum
	// attainable cost already exceeds it and rejects final solutions
	// above it. It corresponds to the maximum architectural cost ArC of
	// the experimental evaluation.
	MaxCost float64
	// Workers, when > 1, spreads the run over that many goroutines:
	// candidate architectures of a size class are probed concurrently and
	// the tabu neighborhoods inside each probe are evaluated by a worker
	// pool. The result is identical to the sequential path — candidates
	// are selected by a deterministic replay in enumeration order
	// (TestParallelMatchesSequential). 0 or 1 means sequential.
	Workers int
}

// Result is the outcome of a design run.
type Result struct {
	// Feasible reports whether any architecture satisfied both the
	// deadlines and the reliability goal (within MaxCost, if set).
	Feasible bool
	// Arch is the selected architecture with its final hardening levels
	// (nil when infeasible).
	Arch *platform.Architecture
	// Mapping assigns each process to an index into Arch.Nodes.
	Mapping []int
	// Ks are the re-execution counts per architecture node.
	Ks []int
	// Schedule is the final static schedule.
	Schedule *sched.Schedule
	// Cost is the total architecture cost.
	Cost float64
	// ArchsExplored counts candidate architectures evaluated.
	ArchsExplored int
	// Evaluations counts RedundancyOpt invocations across the run.
	Evaluations int
	// EvalStats reports what the shared evaluation engine did across the
	// whole run: cache effectiveness, schedule builds and time per layer.
	EvalStats evalengine.Stats
}

// Run executes the selected design strategy on the application over the
// platform's available nodes and returns the cheapest feasible
// implementation found.
//
// The exploration follows Fig. 5: start with the fastest monoprocessor
// architecture; whenever the application is unschedulable on the best
// mapping of the current architecture, grow the architecture by one node;
// otherwise record the cost-optimized solution and move to the next
// fastest architecture of the same size; prune architectures whose
// minimum cost cannot beat the best cost so far.
func Run(app *appmodel.Application, pl *platform.Platform, opts Options) (*Result, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(app.NumProcesses()); err != nil {
		return nil, err
	}
	if err := opts.Goal.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers > 1 {
		return runParallel(app, pl, opts)
	}
	return runSequential(app, pl, opts)
}

// runSequential is the reference single-goroutine exploration; the
// parallel path (parallel.go) replays candidate selection in this exact
// order.
func runSequential(app *appmodel.Application, pl *platform.Platform, opts Options) (*Result, error) {
	enum := platform.NewEnumerator(pl)
	res := &Result{}
	// One evaluation engine is shared across the whole architecture loop:
	// rebinding it per candidate invalidates exactly what the architecture
	// change invalidates (solution caches when the node set differs, nothing
	// when only the mapping seed differs between the two Optimize calls),
	// while the per-node SFP analyses survive across candidates that reuse
	// the same platform nodes.
	var ev *evalengine.Evaluator
	bestCost := opts.MaxCost
	if bestCost <= 0 {
		bestCost = 1e308
	}

	n, idx := 1, 0
	for n <= enum.MaxNodes() {
		ar := enum.Arch(n, idx)
		if ar == nil { // size-n candidates exhausted
			n++
			idx = 0
			continue
		}
		res.ArchsExplored++

		// Fig. 5 line 6: skip architectures whose floor cost is already
		// too high. For MAX the fixed levels determine the cost floor.
		floor := ar.MinCost()
		if opts.Strategy == MAX {
			ar.SetMaxHardening()
			floor = ar.Cost()
		}
		if floor >= bestCost {
			idx++
			continue
		}

		prob := problem(app, pl, ar, opts)
		if ev == nil {
			ev = evalengine.New(prob)
		} else {
			ev.SetProblem(prob)
		}

		// Fig. 5 line 7: best mapping for schedule length.
		sl, err := mapping.Optimize(ev, nil, mapping.ScheduleLength, opts.MappingParams)
		if err != nil {
			return nil, err
		}
		res.Evaluations += sl.Evaluations

		if !sl.Solution.Feasible() {
			// Unschedulable (or unreliable) even at the best mapping:
			// grow the architecture (Fig. 5 line 15).
			n++
			idx = 0
			continue
		}

		// Fig. 5 line 9: re-optimize the mapping for architecture cost,
		// seeded with the schedulable mapping.
		co, err := mapping.Optimize(ev, sl.Mapping, mapping.ArchitectureCost, opts.MappingParams)
		if err != nil {
			return nil, err
		}
		res.Evaluations += co.Evaluations

		cand := co
		if !co.Solution.Feasible() {
			cand = sl // defensive: keep the feasible schedule-length result
		}
		if cand.Solution.Feasible() && cand.Solution.Cost < bestCost {
			bestCost = cand.Solution.Cost
			final := ar.Clone()
			copy(final.Levels, cand.Solution.Levels)
			res.Feasible = true
			res.Arch = final
			res.Mapping = cand.Mapping
			res.Ks = cand.Solution.Ks
			res.Schedule = cand.Solution.Schedule
			res.Cost = cand.Solution.Cost
		}
		idx++
	}
	if ev != nil {
		res.EvalStats = ev.Stats()
	}
	return res, nil
}

// problem assembles the redundancy.Problem for one candidate architecture
// under the chosen strategy.
func problem(app *appmodel.Application, pl *platform.Platform, ar *platform.Architecture, opts Options) redundancy.Problem {
	p := redundancy.Problem{
		App:   app,
		Arch:  ar,
		Goal:  opts.Goal,
		MaxK:  opts.MaxK,
		Model: opts.Model,
	}
	if pl.Bus.SlotLen > 0 {
		p.Bus = ttp.NewBus(len(ar.Nodes), pl.Bus.SlotLen)
	}
	switch opts.Strategy {
	case MIN:
		levels := make([]int, len(ar.Nodes))
		for j, nd := range ar.Nodes {
			levels[j] = nd.MinLevel()
		}
		p.FixedLevels = levels
	case MAX:
		levels := make([]int, len(ar.Nodes))
		for j, nd := range ar.Nodes {
			levels[j] = nd.MaxLevel()
		}
		p.FixedLevels = levels
	}
	return p
}
