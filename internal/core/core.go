// Package core implements the outer design optimization strategy of the
// paper (Fig. 5): an exploration of candidate architectures that, for each
// one, runs the tabu-search mapping optimization with its embedded
// hardening/re-execution trade-off, and returns the cheapest architecture
// that satisfies both the hard deadlines and the reliability goal.
//
// Three strategies are provided, matching the experimental evaluation of
// Section 7:
//
//   - OPT — the full DesignStrategy with hardening optimization
//     (RedundancyOpt) inside the mapping algorithm;
//   - MIN — computation nodes fixed at their minimum hardening levels,
//     fault tolerance achieved with software re-execution only;
//   - MAX — computation nodes fixed at their maximum hardening levels.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/appmodel"
	"repro/internal/evalcache"
	"repro/internal/evalengine"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

// Strategy selects the design strategy variant.
type Strategy int

const (
	// OPT is the paper's full design optimization with the
	// hardening/re-execution trade-off (Section 6).
	OPT Strategy = iota
	// MIN fixes all nodes at minimum hardening (software-only fault
	// tolerance).
	MIN
	// MAX fixes all nodes at maximum hardening.
	MAX
)

// String returns the strategy name as used in the paper's plots.
func (s Strategy) String() string {
	switch s {
	case OPT:
		return "OPT"
	case MIN:
		return "MIN"
	case MAX:
		return "MAX"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a design run.
type Options struct {
	// Goal is the reliability goal ρ = 1 − γ per time unit τ.
	Goal sfp.Goal
	// Strategy selects OPT (default), MIN or MAX.
	Strategy Strategy
	// MaxK caps re-executions per node (0 = sfp.DefaultMaxK).
	MaxK int
	// Model selects the recovery-slack accounting (default shared).
	Model sched.SlackModel
	// MappingParams tunes the tabu search (zero values = defaults).
	MappingParams mapping.Params
	// MaxCost, when positive, prunes architectures whose minimum
	// attainable cost already exceeds it and rejects final solutions
	// above it. It corresponds to the maximum architectural cost ArC of
	// the experimental evaluation.
	MaxCost float64
	// Workers, when > 1, spreads the run over that many goroutines:
	// candidate architectures of a size class are probed concurrently and
	// the tabu neighborhoods inside each probe are evaluated by a worker
	// pool. The result is identical to the sequential path — candidates
	// are selected by a deterministic replay in enumeration order
	// (TestParallelMatchesSequential). 0 or 1 means sequential.
	Workers int
	// Tracer, when non-nil, records the run as hierarchical spans — one
	// per candidate architecture, per mapping optimization, per tabu
	// iteration and per RedundancyOpt hardening search — exportable as
	// Chrome trace_event JSON (see internal/obs and the span taxonomy in
	// DESIGN.md). Instrumentation does not alter the result.
	Tracer *obs.Tracer
	// ParentSpan nests the run under an existing span instead of starting
	// a root span on Tracer; when set it wins over Tracer. Experiment
	// harnesses use it to group runs under per-row spans.
	ParentSpan *obs.Span
	// Metrics, when non-nil, receives the run's counters (core.*,
	// evalengine.*, mapping.*) and duration histograms.
	Metrics *obs.Registry
	// Progress, when non-nil, receives live progress: the run ticks the
	// "core.archs" phase per candidate architecture (with the best cost so
	// far), and the tabu search below it ticks "mapping.iterations". Like
	// the other observability hooks it is observation-only — nothing in
	// the search reads it — so publication cannot alter results.
	Progress *obs.Progress
	// Log, when non-nil, receives structured log records: one info line
	// per finished run and a debug line per candidate architecture, with
	// span IDs so lines correlate with the trace. nil logs nothing.
	Log *obs.Logger
	// EvalCache, when non-nil, is the disk-backed evaluation cache the
	// run's memoized solutions are loaded from and flushed to (warm
	// starts across processes). Like the in-memory caches it cannot alter
	// results — entries are deterministic values of their content key —
	// so reruns with and without it produce identical designs.
	EvalCache *evalcache.Cache
}

// runSpan opens the root span of one design run.
func (o Options) runSpan(app *appmodel.Application) *obs.Span {
	attrs := []obs.Attr{
		obs.String("strategy", o.Strategy.String()),
		obs.Int("processes", app.NumProcesses()),
		obs.Int("workers", o.Workers),
	}
	if o.ParentSpan != nil {
		return o.ParentSpan.Child("core.run", attrs...)
	}
	return o.Tracer.Start("core.run", attrs...)
}

// publish folds a finished run's counters into the metrics registry.
func (o Options) publish(res *Result, elapsed time.Duration) {
	r := o.Metrics
	if r == nil {
		return
	}
	r.Counter("core.runs").Add(1)
	r.Counter("core.archs_explored").Add(int64(res.ArchsExplored))
	r.Counter("core.evaluations").Add(int64(res.Evaluations))
	r.Histogram("core.run").Observe(elapsed)
	res.EvalStats.Publish(r)
}

// logDone emits the run-completed info record, correlated to the run
// span by ID.
func (o Options) logDone(span *obs.Span, res *Result, elapsed time.Duration) {
	o.Log.Info("core.run done",
		"strategy", o.Strategy.String(),
		"feasible", res.Feasible,
		"cost", res.Cost,
		"archs", res.ArchsExplored,
		"evaluations", res.Evaluations,
		"elapsed", elapsed,
		"span", span.ID())
}

// Result is the outcome of a design run.
type Result struct {
	// Feasible reports whether any architecture satisfied both the
	// deadlines and the reliability goal (within MaxCost, if set).
	Feasible bool
	// Arch is the selected architecture with its final hardening levels
	// (nil when infeasible).
	Arch *platform.Architecture
	// Mapping assigns each process to an index into Arch.Nodes.
	Mapping []int
	// Ks are the re-execution counts per architecture node.
	Ks []int
	// Schedule is the final static schedule.
	Schedule *sched.Schedule
	// Cost is the total architecture cost.
	Cost float64
	// ArchsExplored counts candidate architectures evaluated.
	ArchsExplored int
	// Evaluations counts RedundancyOpt invocations across the run.
	Evaluations int
	// EvalStats reports what the shared evaluation engine did across the
	// whole run: cache effectiveness, schedule builds and time per layer.
	EvalStats evalengine.Stats
}

// Run executes the selected design strategy on the application over the
// platform's available nodes and returns the cheapest feasible
// implementation found.
//
// The exploration follows Fig. 5: start with the fastest monoprocessor
// architecture; whenever the application is unschedulable on the best
// mapping of the current architecture, grow the architecture by one node;
// otherwise record the cost-optimized solution and move to the next
// fastest architecture of the same size; prune architectures whose
// minimum cost cannot beat the best cost so far.
func Run(app *appmodel.Application, pl *platform.Platform, opts Options) (*Result, error) {
	return RunContext(context.Background(), app, pl, opts)
}

// RunContext is Run with cooperative cancellation: the context is
// consulted between candidate architectures (and, inside each candidate,
// between tabu iterations) — never inside an evaluation, so every number
// computed is bit-identical to an uncancelled run. A done context stops
// the exploration at the next boundary and returns the best complete
// solution found so far — a non-nil partial Result with its EvalStats
// finalized — together with an error wrapping runctl.ErrCanceled. A
// candidate whose mapping optimization was interrupted mid-search is
// discarded, never folded into the partial result, so resuming and
// re-running the exploration reproduces the same decisions.
func RunContext(ctx context.Context, app *appmodel.Application, pl *platform.Platform, opts Options) (*Result, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(app.NumProcesses()); err != nil {
		return nil, err
	}
	if err := opts.Goal.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers > 1 {
		return runParallel(ctx, app, pl, opts)
	}
	return runSequential(ctx, app, pl, opts)
}

// runSequential is the reference single-goroutine exploration; the
// parallel path (parallel.go) replays candidate selection in this exact
// order.
func runSequential(ctx context.Context, app *appmodel.Application, pl *platform.Platform, opts Options) (*Result, error) {
	start := time.Now()
	span := opts.runSpan(app)
	defer span.End()
	enum := platform.NewEnumerator(pl)
	res := &Result{}
	// One evaluation engine is shared across the whole architecture loop:
	// rebinding it per candidate invalidates exactly what the architecture
	// change invalidates (solution caches when the node set differs, nothing
	// when only the mapping seed differs between the two Optimize calls),
	// while the per-node SFP analyses survive across candidates that reuse
	// the same platform nodes.
	var ev *evalengine.Evaluator
	bestCost := opts.MaxCost
	if bestCost <= 0 {
		bestCost = 1e308
	}
	archPh := opts.Progress.Phase("core.archs")

	// finalize closes out the run — stats, span attributes, metrics, log —
	// on every exit path, complete or canceled, so a partial Result is as
	// fully accounted as a finished one.
	finalize := func() {
		if ev != nil {
			res.EvalStats = ev.Stats()
			ev.FlushPersistent()
		}
		span.SetAttr(
			obs.Bool("feasible", res.Feasible),
			obs.Int("archs_explored", res.ArchsExplored),
			obs.Int("evaluations", res.Evaluations))
		elapsed := time.Since(start)
		opts.publish(res, elapsed)
		opts.logDone(span, res, elapsed)
	}
	canceled := func(cause error) (*Result, error) {
		opts.Metrics.Counter("core.canceled").Add(1)
		span.SetAttr(obs.Bool("canceled", true))
		finalize()
		return res, fmt.Errorf("core: canceled after %d architectures: %w", res.ArchsExplored, cause)
	}

	n, idx := 1, 0
	for n <= enum.MaxNodes() {
		// Between-candidate cancellation boundary: a done context returns
		// the best complete solution so far, never a half-explored one.
		if cerr := runctl.Err(ctx); cerr != nil {
			return canceled(cerr)
		}
		ar := enum.Arch(n, idx)
		if ar == nil { // size-n candidates exhausted
			n++
			idx = 0
			continue
		}
		res.ArchsExplored++
		archPh.Add(1)

		// Fig. 5 line 6: skip architectures whose floor cost is already
		// too high. For MAX the fixed levels determine the cost floor.
		floor := ar.MinCost()
		if opts.Strategy == MAX {
			ar.SetMaxHardening()
			floor = ar.Cost()
		}
		archSpan := span.Child("arch",
			obs.Int("nodes", n),
			obs.Int("index", idx),
			obs.Float("floor_cost", floor))
		if floor >= bestCost {
			archSpan.SetAttr(obs.Bool("pruned", true))
			archSpan.End()
			idx++
			continue
		}

		prob := problem(app, pl, ar, opts)
		if ev == nil {
			ev = evalengine.New(prob)
			ev.SetMetrics(opts.Metrics)
			ev.SetProgress(opts.Progress)
			ev.SetPersistent(opts.EvalCache)
		} else {
			ev.SetProblem(prob)
		}
		ev.SetTraceSpan(archSpan)

		// Fig. 5 line 7: best mapping for schedule length.
		sl, err := mapping.OptimizeContext(ctx, ev, nil, mapping.ScheduleLength, opts.MappingParams)
		if err != nil {
			archSpan.End()
			if errors.Is(err, runctl.ErrCanceled) {
				return canceled(err)
			}
			return nil, err
		}
		res.Evaluations += sl.Evaluations

		if !sl.Solution.Feasible() {
			// Unschedulable (or unreliable) even at the best mapping:
			// grow the architecture (Fig. 5 line 15).
			archSpan.SetAttr(obs.Bool("feasible", false))
			archSpan.End()
			opts.Log.Debug("arch infeasible, growing",
				"strategy", opts.Strategy.String(),
				"nodes", n, "index", idx, "span", archSpan.ID())
			n++
			idx = 0
			continue
		}

		// Fig. 5 line 9: re-optimize the mapping for architecture cost,
		// seeded with the schedulable mapping.
		co, err := mapping.OptimizeContext(ctx, ev, sl.Mapping, mapping.ArchitectureCost, opts.MappingParams)
		if err != nil {
			archSpan.End()
			if errors.Is(err, runctl.ErrCanceled) {
				return canceled(err)
			}
			return nil, err
		}
		res.Evaluations += co.Evaluations
		archSpan.SetAttr(obs.Bool("feasible", true))
		archSpan.End()

		cand := co
		if !co.Solution.Feasible() {
			cand = sl // defensive: keep the feasible schedule-length result
		}
		if cand.Solution.Feasible() && cand.Solution.Cost < bestCost {
			bestCost = cand.Solution.Cost
			final := ar.Clone()
			copy(final.Levels, cand.Solution.Levels)
			res.Feasible = true
			res.Arch = final
			res.Mapping = cand.Mapping
			res.Ks = cand.Solution.Ks
			res.Schedule = cand.Solution.Schedule
			res.Cost = cand.Solution.Cost
			archPh.Best(bestCost)
			opts.Log.Debug("new best architecture",
				"strategy", opts.Strategy.String(),
				"nodes", n, "index", idx, "cost", bestCost, "span", archSpan.ID())
		}
		idx++
	}
	finalize()
	return res, nil
}

// problem assembles the redundancy.Problem for one candidate architecture
// under the chosen strategy.
func problem(app *appmodel.Application, pl *platform.Platform, ar *platform.Architecture, opts Options) redundancy.Problem {
	p := redundancy.Problem{
		App:   app,
		Arch:  ar,
		Goal:  opts.Goal,
		MaxK:  opts.MaxK,
		Model: opts.Model,
	}
	if pl.Bus.SlotLen > 0 {
		p.Bus = ttp.NewBus(len(ar.Nodes), pl.Bus.SlotLen)
	}
	switch opts.Strategy {
	case MIN:
		levels := make([]int, len(ar.Nodes))
		for j, nd := range ar.Nodes {
			levels[j] = nd.MinLevel()
		}
		p.FixedLevels = levels
	case MAX:
		levels := make([]int, len(ar.Nodes))
		for j, nd := range ar.Nodes {
			levels[j] = nd.MaxLevel()
		}
		p.FixedLevels = levels
	}
	return p
}
