package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/paper"
	"repro/internal/runctl"
)

// cancelAfter is a context whose Err flips to context.Canceled after a
// fixed number of Err calls — every cancellation checkpoint in the stack
// goes through runctl.Err, so this cancels at an exact cooperative
// boundary instead of racing a timer.
type cancelAfter struct {
	context.Context
	calls atomic.Int64
	after int64
}

func newCancelAfter(after int64) *cancelAfter {
	return &cancelAfter{Context: context.Background(), after: after}
}

func (c *cancelAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunContextMatchesRun: a live context changes nothing.
func TestRunContextMatchesRun(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	want, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Feasible != want.Feasible ||
		got.ArchsExplored != want.ArchsExplored || got.Evaluations != want.Evaluations {
		t.Errorf("live-context run diverged: %+v vs %+v", got, want)
	}
}

// TestRunContextCanceledUpfront: an already-canceled context returns an
// empty-but-valid partial Result and a typed error, before any
// architecture is explored.
func TestRunContextCanceledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, paper.Fig1Application(), paper.Fig1Platform(), fig1Opts(OPT))
	if !errors.Is(err, runctl.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run returned nil result")
	}
	if res.ArchsExplored != 0 || res.Feasible {
		t.Errorf("upfront cancel explored %d archs, feasible=%v", res.ArchsExplored, res.Feasible)
	}
}

// TestRunContextMidRunDeterministicPartial: canceling at the same
// cooperative checkpoint twice yields the same partial result, and the
// partial explored strictly less than the full run.
func TestRunContextMidRunDeterministicPartial(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	full, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		// A full fig1 OPT run consults the context ~25 times; 12 lands the
		// cancel mid-exploration.
		res, err := RunContext(newCancelAfter(12), app, pl, fig1Opts(OPT))
		if !errors.Is(err, runctl.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if res == nil {
			t.Fatal("no partial result")
		}
		return res
	}
	a, b := run(), run()
	if a.ArchsExplored != b.ArchsExplored || a.Evaluations != b.Evaluations ||
		a.Feasible != b.Feasible || a.Cost != b.Cost {
		t.Errorf("canceled runs diverged: %+v vs %+v", a, b)
	}
	if a.Evaluations >= full.Evaluations {
		t.Errorf("canceled run evaluated %d ≥ full run's %d", a.Evaluations, full.Evaluations)
	}
	if a.Feasible && a.Cost < full.Cost {
		t.Error("partial beats the full exploration — trajectories diverged")
	}
}

// TestRunContextParallelCanceled: the speculative parallel path drains
// its probes on cancellation and returns the typed error with a non-nil
// partial — never a hang, never a lost result. (Run under -race in CI.)
func TestRunContextParallelCanceled(t *testing.T) {
	opts := fig1Opts(OPT)
	opts.Workers = 3
	res, err := RunContext(newCancelAfter(8), paper.Fig1Application(), paper.Fig1Platform(), opts)
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled parallel run returned nil result")
	}
}
