package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/sfp"
	"repro/internal/taskgen"
)

// assertSameRunResult fails unless the two design-run results agree on
// everything the sequential/parallel equality guarantee covers: outcome,
// selected architecture and hardening, mapping, re-execution counts,
// schedule length (bit-exact), cost (bit-exact), and the replay-visible
// counters.
func assertSameRunResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("%s: feasible %v, want %v", label, got.Feasible, want.Feasible)
	}
	if got.ArchsExplored != want.ArchsExplored {
		t.Errorf("%s: archs explored %d, want %d", label, got.ArchsExplored, want.ArchsExplored)
	}
	if got.Evaluations != want.Evaluations {
		t.Errorf("%s: evaluations %d, want %d", label, got.Evaluations, want.Evaluations)
	}
	if !want.Feasible {
		return
	}
	if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
		t.Errorf("%s: cost %v, want %v", label, got.Cost, want.Cost)
	}
	if math.Float64bits(got.Schedule.Length) != math.Float64bits(want.Schedule.Length) {
		t.Errorf("%s: SL %v, want %v", label, got.Schedule.Length, want.Schedule.Length)
	}
	if len(got.Arch.Nodes) != len(want.Arch.Nodes) {
		t.Fatalf("%s: arch sizes %d vs %d", label, len(got.Arch.Nodes), len(want.Arch.Nodes))
	}
	for j := range want.Arch.Nodes {
		if got.Arch.Nodes[j] != want.Arch.Nodes[j] {
			t.Errorf("%s: arch node %d differs", label, j)
		}
		if got.Arch.Levels[j] != want.Arch.Levels[j] {
			t.Errorf("%s: levels %v, want %v", label, got.Arch.Levels, want.Arch.Levels)
			break
		}
	}
	for i := range want.Mapping {
		if got.Mapping[i] != want.Mapping[i] {
			t.Errorf("%s: mapping %v, want %v", label, got.Mapping, want.Mapping)
			break
		}
	}
	for j := range want.Ks {
		if got.Ks[j] != want.Ks[j] {
			t.Errorf("%s: ks %v, want %v", label, got.Ks, want.Ks)
			break
		}
	}
}

// TestParallelMatchesSequential proves a parallel core.Run returns the
// identical design — architecture, hardening vector, mapping, schedule
// length, cost — and the identical exploration counters as the
// sequential path, on the paper's Fig. 1/Fig. 3 examples and seeded
// synthetic applications, across all three strategies.
func TestParallelMatchesSequential(t *testing.T) {
	type tc struct {
		label string
		app   *appmodel.Application
		pl    *platform.Platform
		goal  sfp.Goal
	}
	cases := []tc{
		{"fig1", paper.Fig1Application(), paper.Fig1Platform(), sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}},
		{"fig3", paper.Fig3Application(), paper.Fig3Platform(), sfp.Goal{Gamma: paper.Fig3Gamma, Tau: paper.Hour}},
	}
	for i := 0; i < 3; i++ {
		n := 10 + 5*i
		inst, err := taskgen.Generate(taskgen.DefaultConfig(int64(300+i), n, 1e-11, 25))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("synthetic-%d", n), inst.App, inst.Platform, inst.Goal})
	}

	for _, c := range cases {
		for _, s := range []Strategy{MIN, MAX, OPT} {
			want, err := Run(c.app, c.pl, Options{Goal: c.goal, Strategy: s})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", c.label, s, err)
			}
			for _, workers := range []int{2, 4} {
				got, err := Run(c.app, c.pl, Options{Goal: c.goal, Strategy: s, Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", c.label, s, workers, err)
				}
				assertSameRunResult(t, fmt.Sprintf("%s/%s workers=%d", c.label, s, workers), got, want)
			}
		}
	}
}

// TestParallelMaxCostPruning: the parallel replay applies the MaxCost
// bound and the evolving best-cost prune identically to the sequential
// path.
func TestParallelMaxCostPruning(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	for _, maxCost := range []float64{20, 52, 72, 200} {
		opts := fig1Opts(OPT)
		opts.MaxCost = maxCost
		want, err := Run(app, pl, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 4
		got, err := Run(app, pl, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRunResult(t, fmt.Sprintf("maxcost=%v", maxCost), got, want)
	}
}

// TestParallelDeterministic: repeated parallel runs are identical to each
// other (no schedule-dependent nondeterminism leaks into the result).
func TestParallelDeterministic(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	opts := fig1Opts(OPT)
	opts.Workers = 3
	first, err := Run(app, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(app, pl, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRunResult(t, fmt.Sprintf("repeat-%d", i), again, first)
	}
}
