package core

import (
	"testing"

	"repro/internal/taskgen"
)

// TestSyntheticShapes checks, on a small synthetic batch, the qualitative
// relationships the paper's evaluation rests on: OPT accepts at least as
// many applications as MIN and MAX, and MIN degrades as the error rate
// grows while OPT resists.
func TestSyntheticShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic batch")
	}
	accept := func(ser float64) map[Strategy]int {
		acc := map[Strategy]int{}
		const trials = 6
		for seed := int64(0); seed < trials; seed++ {
			inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, 20, ser, 25))
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []Strategy{MIN, MAX, OPT} {
				res, err := Run(inst.App, inst.Platform, Options{
					Goal: inst.Goal, Strategy: s, MaxCost: 20,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Feasible {
					acc[s]++
				}
			}
		}
		return acc
	}
	low := accept(1e-12)
	high := accept(1e-10)
	for _, acc := range []map[Strategy]int{low, high} {
		if acc[OPT] < acc[MIN] || acc[OPT] < acc[MAX] {
			t.Errorf("OPT below a baseline: %v", acc)
		}
	}
	if high[MIN] > low[MIN] {
		t.Errorf("MIN improved with a higher error rate: %d vs %d", high[MIN], low[MIN])
	}
	if high[OPT] < high[MIN] {
		t.Errorf("OPT below MIN at high SER: %v", high)
	}
}

// TestLargeApplication: a 100-process instance runs through the full
// strategy without pathological blowup.
func TestLargeApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	inst, err := taskgen.Generate(taskgen.DefaultConfig(3, 100, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(inst.App, inst.Platform, Options{Goal: inst.Goal, Strategy: OPT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible && !res.Schedule.Schedulable(inst.App) {
		t.Error("claimed feasible but schedule violates deadlines")
	}
}
