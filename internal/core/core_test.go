package core

import (
	"testing"

	"repro/internal/paper"
	"repro/internal/sfp"
)

func fig1Opts(s Strategy) Options {
	return Options{
		Goal:     sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Strategy: s,
	}
}

func fig3Opts(s Strategy) Options {
	return Options{
		Goal:     sfp.Goal{Gamma: paper.Fig3Gamma, Tau: paper.Hour},
		Strategy: s,
	}
}

// TestFig3Strategies reproduces the first motivational example across all
// three strategies: MIN (no hardening, k = 6) misses the deadline; MAX
// (maximum hardening) is feasible but costs 40; OPT selects the middle
// h-version at cost 20 — half of MAX, as the paper argues.
func TestFig3Strategies(t *testing.T) {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()

	min, err := Run(app, pl, fig3Opts(MIN))
	if err != nil {
		t.Fatal(err)
	}
	if min.Feasible {
		t.Error("MIN should be infeasible on Fig. 3 (680 ms > 360 ms)")
	}

	max, err := Run(app, pl, fig3Opts(MAX))
	if err != nil {
		t.Fatal(err)
	}
	if !max.Feasible || max.Cost != 40 {
		t.Errorf("MAX: feasible=%v cost=%v, want feasible at 40", max.Feasible, max.Cost)
	}

	opt, err := Run(app, pl, fig3Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Feasible || opt.Cost != 20 {
		t.Errorf("OPT: feasible=%v cost=%v, want feasible at 20", opt.Feasible, opt.Cost)
	}
	if opt.Arch.Levels[0] != 2 || opt.Ks[0] != 2 {
		t.Errorf("OPT chose level %d k=%d, want level 2 with k=2", opt.Arch.Levels[0], opt.Ks[0])
	}
}

// TestFig1Strategies runs the full design strategies on the Fig. 1
// application. OPT must beat MAX on cost (the paper's headline claim) and
// come in at or below the paper's hand-derived 72.
func TestFig1Strategies(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()

	opt, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Feasible {
		t.Fatal("OPT should find a feasible implementation of Fig. 1")
	}
	if opt.Cost > 72 {
		t.Errorf("OPT cost = %v, want ≤ 72", opt.Cost)
	}
	if !opt.Schedule.Schedulable(app) {
		t.Error("final OPT schedule violates deadlines")
	}

	max, err := Run(app, pl, fig1Opts(MAX))
	if err != nil {
		t.Fatal(err)
	}
	if !max.Feasible {
		t.Fatal("MAX should be feasible on Fig. 1 (e.g. N2^3 monoprocessor)")
	}
	if opt.Cost >= max.Cost {
		t.Errorf("OPT (%v) should be cheaper than MAX (%v)", opt.Cost, max.Cost)
	}

	min, err := Run(app, pl, fig1Opts(MIN))
	if err != nil {
		t.Fatal(err)
	}
	// With p ≈ 1e-3 the unhardened nodes need k ≈ 3 re-executions each,
	// whose recovery slack blows every deadline: software-only fault
	// tolerance cannot implement Fig. 1.
	if min.Feasible {
		t.Errorf("MIN unexpectedly feasible at cost %v", min.Cost)
	}
}

// TestMaxCostPruning: OPT on Fig. 1 finds cost ≤ 72; with a budget below
// that cost the run must report infeasible, with a budget just above it
// the same solution must be found.
func TestMaxCostPruning(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()

	unbounded, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	if !unbounded.Feasible {
		t.Fatal("unbounded OPT infeasible")
	}

	tight := fig1Opts(OPT)
	tight.MaxCost = unbounded.Cost - 1
	res, err := Run(app, pl, tight)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("budget %v below optimum %v should be infeasible", tight.MaxCost, unbounded.Cost)
	}

	loose := fig1Opts(OPT)
	loose.MaxCost = unbounded.Cost + 1
	res, err = Run(app, pl, loose)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Cost != unbounded.Cost {
		t.Errorf("budget %v: feasible=%v cost=%v, want optimum %v", loose.MaxCost, res.Feasible, res.Cost, unbounded.Cost)
	}
}

// TestRunValidatesInputs covers the input validation paths.
func TestRunValidatesInputs(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	good := fig1Opts(OPT)

	bad := *app
	bad.Procs = nil
	if _, err := Run(&bad, pl, good); err == nil {
		t.Error("want error for invalid application")
	}

	badPl := *pl
	badPl.Nodes = nil
	if _, err := Run(app, &badPl, good); err == nil {
		t.Error("want error for invalid platform")
	}

	badOpts := good
	badOpts.Goal = sfp.Goal{}
	if _, err := Run(app, pl, badOpts); err == nil {
		t.Error("want error for invalid goal")
	}
}

// TestResultBookkeeping: exploration counters are populated.
func TestResultBookkeeping(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	res, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	if res.ArchsExplored == 0 || res.Evaluations == 0 {
		t.Errorf("counters not populated: %+v", res)
	}
	if len(res.Mapping) != app.NumProcesses() {
		t.Errorf("mapping covers %d of %d", len(res.Mapping), app.NumProcesses())
	}
	if len(res.Ks) != len(res.Arch.Nodes) {
		t.Errorf("ks cover %d of %d nodes", len(res.Ks), len(res.Arch.Nodes))
	}
}

func TestStrategyString(t *testing.T) {
	if OPT.String() != "OPT" || MIN.String() != "MIN" || MAX.String() != "MAX" {
		t.Error("strategy names changed")
	}
	if Strategy(7).String() != "Strategy(7)" {
		t.Error("unknown strategy formatting")
	}
}

// TestOptNeverWorseThanBaselines is the structural dominance property the
// whole paper rests on: OPT explores a superset of both MIN's and MAX's
// configuration spaces, so whenever a baseline is feasible OPT must be
// feasible with at most that cost.
func TestOptNeverWorseThanBaselines(t *testing.T) {
	for _, fixture := range []struct {
		name string
		run  func(Strategy) (*Result, error)
	}{
		{"fig1", func(s Strategy) (*Result, error) {
			return Run(paper.Fig1Application(), paper.Fig1Platform(), fig1Opts(s))
		}},
		{"fig3", func(s Strategy) (*Result, error) {
			return Run(paper.Fig3Application(), paper.Fig3Platform(), fig3Opts(s))
		}},
	} {
		opt, err := fixture.run(OPT)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range []Strategy{MIN, MAX} {
			res, err := fixture.run(base)
			if err != nil {
				t.Fatal(err)
			}
			if res.Feasible {
				if !opt.Feasible {
					t.Errorf("%s: %v feasible but OPT infeasible", fixture.name, base)
				} else if opt.Cost > res.Cost {
					t.Errorf("%s: OPT cost %v exceeds %v cost %v", fixture.name, opt.Cost, base, res.Cost)
				}
			}
		}
	}
}

// TestRunDeterministic: identical inputs yield identical results — the
// whole pipeline is deterministic by construction.
func TestRunDeterministic(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	a, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, pl, fig1Opts(OPT))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Feasible != b.Feasible || a.ArchsExplored != b.ArchsExplored {
		t.Errorf("nondeterministic results: %+v vs %+v", a, b)
	}
	for i := range a.Mapping {
		if a.Mapping[i] != b.Mapping[i] {
			t.Fatalf("mappings differ at %d", i)
		}
	}
}

// TestRunInfeasibleEverywhere: a platform that can never meet the goal
// reports infeasible without error.
func TestRunInfeasibleEverywhere(t *testing.T) {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	opts := fig3Opts(OPT)
	opts.Goal.Gamma = 1e-300 // unreachable
	res, err := Run(app, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("unreachable goal reported feasible")
	}
	if res.Arch != nil {
		t.Error("infeasible result should carry no architecture")
	}
}
