package experiments

import (
	"context"
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/checkpoint"
	"repro/internal/evalengine"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/replication"
	"repro/internal/runctl"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// PolicyComparison evaluates the three software fault-tolerance policies
// — the paper's re-execution, the checkpointing extension (χ = α =
// chiAlpha ms) and active replication of the most failure-exposed process
// — on the same mapped synthetic instances (two fastest node types at the
// middle hardening level, greedy mapping) and reports feasibility counts
// and mean worst-case schedule lengths (experiments E12/E13).
func PolicyComparison(ctx context.Context, cfg Config, ser float64, chiAlpha float64) (*Table, error) {
	results := map[string]*policyAgg{
		"re-execution":  {},
		"checkpointing": {},
		"replication":   {},
	}
	instances := 0
	for _, n := range cfg.Procs {
		for i := 0; i < cfg.Apps; i++ {
			if cerr := runctl.Err(ctx); cerr != nil {
				return nil, fmt.Errorf("experiments: policy comparison: %w", cerr)
			}
			seed := cfg.Seed + int64(i) + int64(n)*1000003
			inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, n, ser, 25))
			if err != nil {
				return nil, err
			}
			ar := platform.NewArchitecture([]*platform.Node{
				&inst.Platform.Nodes[0], &inst.Platform.Nodes[1],
			})
			for j, nd := range ar.Nodes {
				lv := nd.MinLevel() + 1
				if lv > nd.MaxLevel() {
					lv = nd.MaxLevel()
				}
				ar.Levels[j] = lv
			}
			prob := redundancy.Problem{
				App:  inst.App,
				Arch: ar,
				Goal: inst.Goal,
				Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
			}
			m, err := mapping.GreedyInitial(evalengine.New(prob))
			if err != nil {
				return nil, err
			}
			prob.Mapping = m
			instances++

			// Re-execution at the fixed levels.
			re, err := redundancy.Evaluate(prob, ar.Levels)
			if err != nil {
				return nil, err
			}
			record(results["re-execution"], re.Feasible(), re.Schedule.Length)

			// Checkpointing.
			cp, err := checkpoint.Evaluate(inst.App, ar, m, inst.Goal,
				checkpoint.Overheads{Chi: chiAlpha, Alpha: chiAlpha},
				ttp.NewBus(2, inst.Platform.Bus.SlotLen), 8)
			if err != nil {
				return nil, err
			}
			slCp := 0.0
			if cp.Schedule != nil {
				slCp = cp.Schedule.Length
			}
			record(results["checkpointing"], cp.Feasible(), slCp)

			// Replication of the process with the largest p×t exposure.
			pid := mostExposed(inst, ar, m)
			other := 1 - m[pid]
			rp, err := replication.Evaluate(replication.Problem{
				App:      inst.App,
				Arch:     ar,
				Mapping:  m,
				Replicas: replication.Assignment{pid: {m[pid], other}},
				Goal:     inst.Goal,
				Bus:      ttp.NewBus(2, inst.Platform.Bus.SlotLen),
			})
			if err != nil {
				return nil, err
			}
			record(results["replication"], rp.Feasible(), rp.Schedule.Length)
		}
	}
	t := NewTable(fmt.Sprintf("Policy comparison (SER=%.0e, χ=α=%g ms, %d instances)", ser, chiAlpha, instances),
		[]string{"policy", "feasible", "mean worst-case SL (ms)"})
	for _, name := range []string{"re-execution", "checkpointing", "replication"} {
		a := results[name]
		mean := "-"
		if a.count > 0 {
			mean = fmt.Sprintf("%.1f", a.sumSL/float64(a.count))
		}
		t.AddRow([]string{name, fmt.Sprintf("%d/%d", a.feasible, instances), mean})
	}
	return t, nil
}

// policyAgg accumulates per-policy feasibility and schedule statistics.
type policyAgg struct {
	feasible int
	sumSL    float64
	count    int
}

func record(a *policyAgg, feasible bool, sl float64) {
	if feasible {
		a.feasible++
	}
	if sl > 0 {
		a.sumSL += sl
		a.count++
	}
}

// mostExposed returns the process with the largest p×t product on its
// mapped node — the best replication candidate.
func mostExposed(inst *taskgen.Instance, ar *platform.Architecture, m []int) appmodel.ProcID {
	best, bestScore := appmodel.ProcID(0), -1.0
	for pid := 0; pid < inst.App.NumProcesses(); pid++ {
		v := ar.Version(m[pid])
		score := v.FailProb[pid] * v.WCET[pid]
		if score > bestScore {
			best, bestScore = appmodel.ProcID(pid), score
		}
	}
	return best
}
