package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/evalengine"
	"repro/internal/obs"
	"repro/internal/taskgen"
)

// RuntimeStudy measures the wall-clock execution time of the design
// strategies per application size, the counterpart of the paper's
// reported "between 3 minutes and 60 minutes" on a Pentium 4 (Section 7).
// Each MIN/MAX/OPT row also reports the evaluation-engine counters summed
// over the batch — architectures explored, redundancy evaluations, cache
// hit rate, schedule builds, SFP analyses built vs reused, and the time
// spent in the re-execution and scheduling layers — which dominate the
// cost.
func RuntimeStudy(cfg Config, ser, hpd float64) (*Table, error) {
	t := NewTable(fmt.Sprintf("Strategy runtime (SER=%.0e, HPD=%g%%, %d apps per size)", ser, hpd, cfg.Apps),
		[]string{"processes", "strategy", "mean", "max", "mean archs", "mean evals",
			"cache hit", "opt hit", "sched builds", "sfp built/reused", "reexec", "sched"})
	rowPh := cfg.Progress.Phase("experiments.rows")
	rowPh.AddTotal(int64(len(cfg.Procs) * 3))
	for _, n := range cfg.Procs {
		for _, s := range []core.Strategy{core.MIN, core.MAX, core.OPT} {
			rowSpan := cfg.Span.Child("runtime-row",
				obs.Int("processes", n),
				obs.String("strategy", s.String()))
			var total, max time.Duration
			var archs, evals, runs int
			var agg evalengine.Stats
			for i := 0; i < cfg.Apps; i++ {
				seed := cfg.Seed + int64(i) + int64(n)*1000003
				inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, n, ser, hpd))
				if err != nil {
					rowSpan.End()
					return nil, err
				}
				start := time.Now()
				res, err := core.Run(inst.App, inst.Platform, core.Options{
					Goal:          inst.Goal,
					Strategy:      s,
					MappingParams: cfg.MappingParams,
					Workers:       cfg.RunWorkers,
					ParentSpan:    rowSpan,
					Metrics:       cfg.Metrics,
					Progress:      cfg.Progress,
					Log:           cfg.Log,
				})
				if err != nil {
					rowSpan.End()
					return nil, err
				}
				elapsed := time.Since(start)
				total += elapsed
				if elapsed > max {
					max = elapsed
				}
				archs += res.ArchsExplored
				evals += res.Evaluations
				agg.Add(res.EvalStats)
				runs++
			}
			rowSpan.SetAttr(obs.Int("runs", runs))
			rowSpan.End()
			rowPh.Add(1)
			cfg.Log.Info("runtime row done",
				"processes", n, "strategy", s.String(), "runs", runs,
				"mean", total/time.Duration(maxInt(runs, 1)),
				"span", rowSpan.ID())
			if runs == 0 {
				continue
			}
			t.AddRow([]string{
				fmt.Sprint(n),
				s.String(),
				(total / time.Duration(runs)).Round(time.Millisecond).String(),
				max.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", float64(archs)/float64(runs)),
				fmt.Sprintf("%.0f", float64(evals)/float64(runs)),
				fmt.Sprintf("%.1f%%", agg.HitRate()*100),
				fmt.Sprintf("%.1f%%", agg.OptHitRate()*100),
				fmt.Sprint(agg.ScheduleBuilds),
				fmt.Sprintf("%d/%d", agg.SFPBuilds, agg.SFPHits),
				agg.ReExecTime.Round(time.Millisecond).String(),
				agg.SchedTime.Round(time.Millisecond).String(),
			})
		}
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
