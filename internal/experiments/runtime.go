package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/taskgen"
)

// RuntimeStudy measures the wall-clock execution time of the OPT design
// strategy per application size, the counterpart of the paper's reported
// "between 3 minutes and 60 minutes" on a Pentium 4 (Section 7). The
// result also reports the architectures explored and redundancy
// evaluations performed, which dominate the cost.
func RuntimeStudy(cfg Config, ser, hpd float64) (*Table, error) {
	t := NewTable(fmt.Sprintf("OPT runtime (SER=%.0e, HPD=%g%%, %d apps per size)", ser, hpd, cfg.Apps),
		[]string{"processes", "mean", "max", "mean archs", "mean evals"})
	for _, n := range cfg.Procs {
		var total, max time.Duration
		var archs, evals, runs int
		for i := 0; i < cfg.Apps; i++ {
			seed := cfg.Seed + int64(i) + int64(n)*1000003
			inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, n, ser, hpd))
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.Run(inst.App, inst.Platform, core.Options{
				Goal:          inst.Goal,
				Strategy:      core.OPT,
				MappingParams: cfg.MappingParams,
			})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			total += elapsed
			if elapsed > max {
				max = elapsed
			}
			archs += res.ArchsExplored
			evals += res.Evaluations
			runs++
		}
		if runs == 0 {
			continue
		}
		t.AddRow([]string{
			fmt.Sprint(n),
			(total / time.Duration(runs)).Round(time.Millisecond).String(),
			max.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(archs)/float64(runs)),
			fmt.Sprintf("%.0f", float64(evals)/float64(runs)),
		})
	}
	return t, nil
}
