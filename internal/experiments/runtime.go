package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/evalengine"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/taskgen"
)

// rowKey is the journal key of one runtime-study row.
func (c Config) rowKey(ser, hpd float64, n int, s core.Strategy) string {
	mp := c.MappingParams
	return fmt.Sprintf("runtime|model=%d|tabu=%d,%d,%d|ser=%g|hpd=%g|n=%d|strategy=%s",
		c.Model, mp.TabuTenure, mp.MaxNoImprove, mp.MaxIterations, ser, hpd, n, s)
}

// RuntimeStudy measures the wall-clock execution time of the design
// strategies per application size, the counterpart of the paper's
// reported "between 3 minutes and 60 minutes" on a Pentium 4 (Section 7).
// Each MIN/MAX/OPT row also reports the evaluation-engine counters summed
// over the batch — architectures explored, redundancy evaluations, cache
// hit rate, schedule builds, SFP analyses built vs reused, and the time
// spent in the re-execution and scheduling layers — which dominate the
// cost.
//
// The context is consulted between applications; cancellation returns
// the rows completed so far together with an error wrapping
// runctl.ErrCanceled. Completed rows are journaled (cfg.Journal) as
// their rendered cells, so a resumed study replays them verbatim;
// cfg.AppTimeout bounds each application, and a timed-out application is
// skipped (counted in experiments.app_timeouts) rather than sinking the
// whole row.
func RuntimeStudy(ctx context.Context, cfg Config, ser, hpd float64) (*Table, error) {
	t := NewTable(fmt.Sprintf("Strategy runtime (SER=%.0e, HPD=%g%%, %d apps per size)", ser, hpd, cfg.Apps),
		[]string{"processes", "strategy", "mean", "max", "mean archs", "mean evals",
			"cache hit", "opt hit", "sched builds", "sfp built/reused", "reexec", "sched"})
	strategies := []core.Strategy{core.MIN, core.MAX, core.OPT}
	// Slice-local progress totals: a sharded worker only handles the rows
	// its shard owns, so that — not the whole grid — is what /progress and
	// -progress report against. The coordinator aggregates global
	// completion across workers.
	owned := 0
	for _, n := range cfg.Procs {
		for _, s := range strategies {
			if cfg.owns(cfg.rowKey(ser, hpd, n, s)) {
				owned++
			}
		}
	}
	rowPh := cfg.Progress.Phase("experiments.rows")
	rowPh.AddTotal(int64(owned))
	canceled := func(cause error) (*Table, error) {
		cfg.Metrics.Counter("experiments.canceled").Add(1)
		return t, fmt.Errorf("experiments: runtime study: %w", cause)
	}
	for _, n := range cfg.Procs {
		for _, s := range strategies {
			key := cfg.rowKey(ser, hpd, n, s)
			if saved := []string(nil); cfg.rowRestore(key, &saved) {
				t.AddRow(saved)
				rowPh.Add(1)
				cfg.Metrics.Counter("experiments.rows_restored").Add(1)
				cfg.Log.Info("runtime row restored from journal",
					"processes", n, "strategy", s.String(), "key", key)
				continue
			}
			if cfg.RequireJournaled {
				if cfg.Missing != nil {
					// Degraded merge: keep the row's identity columns and
					// render every measurement as "!" instead of refusing.
					cfg.Missing.add(key)
					cfg.Metrics.Counter("experiments.rows_missing").Add(1)
					cells := []string{fmt.Sprint(n), s.String()}
					for len(cells) < len(t.Header) {
						cells = append(cells, "!")
					}
					t.AddRow(cells)
					rowPh.Add(1)
					continue
				}
				return nil, cfg.missingRow(key)
			}
			if !cfg.owns(key) {
				continue // another shard computes this row; the merge reassembles it
			}
			if cerr := runctl.Err(ctx); cerr != nil {
				return canceled(cerr)
			}
			rowSpan := cfg.Span.Child("runtime-row",
				obs.Int("processes", n),
				obs.String("strategy", s.String()))
			var total, max time.Duration
			var archs, evals, runs int
			var agg evalengine.Stats
			for i := 0; i < cfg.Apps; i++ {
				if cerr := runctl.Err(ctx); cerr != nil {
					// The in-progress row is discarded whole — a canceled
					// study never journals or renders a half-measured row.
					rowSpan.End()
					return canceled(cerr)
				}
				seed := cfg.Seed + int64(i) + int64(n)*1000003
				inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, n, ser, hpd))
				if err != nil {
					rowSpan.End()
					return nil, err
				}
				appCtx, cancelApp := ctx, context.CancelFunc(func() {})
				if cfg.AppTimeout > 0 {
					parent := ctx
					if parent == nil {
						parent = context.Background()
					}
					appCtx, cancelApp = context.WithTimeout(parent, cfg.AppTimeout)
				}
				start := time.Now()
				res, err := core.RunContext(appCtx, inst.App, inst.Platform, core.Options{
					Goal:          inst.Goal,
					Strategy:      s,
					MappingParams: cfg.MappingParams,
					Workers:       cfg.RunWorkers,
					ParentSpan:    rowSpan,
					Metrics:       cfg.Metrics,
					Progress:      cfg.Progress,
					Log:           cfg.Log,
					EvalCache:     cfg.EvalCache,
				})
				cancelApp()
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) && runctl.Err(ctx) == nil {
						cfg.Metrics.Counter("experiments.app_timeouts").Add(1)
						cfg.Log.Warn("application timed out, skipped",
							"seed", seed, "processes", n,
							"strategy", s.String(), "timeout", cfg.AppTimeout)
						continue
					}
					rowSpan.End()
					if errors.Is(err, runctl.ErrCanceled) {
						return canceled(err)
					}
					return nil, err
				}
				elapsed := time.Since(start)
				total += elapsed
				if elapsed > max {
					max = elapsed
				}
				archs += res.ArchsExplored
				evals += res.Evaluations
				agg.Add(res.EvalStats)
				runs++
			}
			rowSpan.SetAttr(obs.Int("runs", runs))
			rowSpan.End()
			rowPh.Add(1)
			cfg.Log.Info("runtime row done",
				"processes", n, "strategy", s.String(), "runs", runs,
				"mean", total/time.Duration(maxInt(runs, 1)),
				"span", rowSpan.ID())
			if runs == 0 {
				continue
			}
			cells := []string{
				fmt.Sprint(n),
				s.String(),
				(total / time.Duration(runs)).Round(time.Millisecond).String(),
				max.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", float64(archs)/float64(runs)),
				fmt.Sprintf("%.0f", float64(evals)/float64(runs)),
				fmt.Sprintf("%.1f%%", agg.HitRate()*100),
				fmt.Sprintf("%.1f%%", agg.OptHitRate()*100),
				fmt.Sprint(agg.ScheduleBuilds),
				fmt.Sprintf("%d/%d", agg.SFPBuilds, agg.SFPHits),
				agg.ReExecTime.Round(time.Millisecond).String(),
				agg.SchedTime.Round(time.Millisecond).String(),
			}
			if err := cfg.rowDone(key, cells); err != nil {
				return nil, err
			}
			t.AddRow(cells)
		}
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
