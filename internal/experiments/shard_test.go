package experiments

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runstate"
	"repro/internal/shard"
)

// shardSweepDir builds a shard directory for tinyConfig's workload and
// returns it with the manifest installed.
func shardSweepDir(t *testing.T, fig string, shards int) (string, shard.Manifest) {
	t.Helper()
	cfg := tinyConfig()
	fp, err := shard.WorkloadFingerprint(cfg.Apps, cfg.Procs, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	m := shard.Manifest{FP: fp, Fig: fig, Shards: shards,
		Apps: cfg.Apps, Procs: cfg.Procs, Seed: cfg.Seed}
	dir := filepath.Join(t.TempDir(), "sweep")
	if err := shard.EnsureManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	return dir, m
}

// runShardWorker runs one slice of a Fig6a sweep into its shard journal,
// exactly as a sharded paperbench worker would.
func runShardWorker(t *testing.T, dir string, m shard.Manifest, idx int,
	fig func(context.Context, Config) (*Table, error)) {
	t.Helper()
	j, err := runstate.Open(filepath.Join(dir, shard.JournalName(idx, m.Shards)),
		shard.JournalFingerprint(m.FP, idx, m.Shards), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfg := tinyConfig()
	cfg.Journal = j
	cfg.ShardIndex, cfg.ShardCount = idx, m.Shards
	if _, err := fig(context.Background(), cfg); err != nil {
		t.Fatalf("shard %d/%d: %v", idx, m.Shards, err)
	}
}

// mergeShards renders the figure from the merged journals in strict
// restore-only mode.
func mergeShards(t *testing.T, dir string,
	fig func(context.Context, Config) (*Table, error)) (*Table, error) {
	t.Helper()
	rows, err := shard.Load(dir)
	if err != nil {
		return nil, err
	}
	cfg := tinyConfig()
	cfg.Journal = rows
	cfg.ShardIndex, cfg.ShardCount = -1, rows.Manifest().Shards
	cfg.RequireJournaled = true
	return fig(context.Background(), cfg)
}

// TestShardedSweepEquivalence: for several shard counts, workers run in
// randomized interleavings (concurrent goroutines with shuffled start
// order) and the merged table is byte-identical to the single-process
// run. Shard count 1 is the degenerate base case.
func TestShardedSweepEquivalence(t *testing.T) {
	clean, err := Fig6a(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, shards := range []int{1, 2, 3, 7} {
		dir, m := shardSweepDir(t, "6a", shards)
		order := rng.Perm(shards)
		var wg sync.WaitGroup
		for _, idx := range order {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				runShardWorker(t, dir, m, idx, Fig6a)
			}(idx)
		}
		wg.Wait()
		merged, err := mergeShards(t, dir, Fig6a)
		if err != nil {
			t.Fatalf("shards=%d: merge: %v", shards, err)
		}
		if merged.String() != clean.String() {
			t.Errorf("shards=%d: merged table differs from single-process run:\n%s\nwant:\n%s",
				shards, merged, clean)
		}
	}
}

// TestShardedRuntimeStudyEquivalence: the runtime figure — whose duration
// cells are non-deterministic — merges byte-identical because rows are
// journaled as rendered cells and a merge never recomputes them.
func TestShardedRuntimeStudyEquivalence(t *testing.T) {
	rt := func(ctx context.Context, cfg Config) (*Table, error) {
		return RuntimeStudy(ctx, cfg, 1e-11, 25)
	}
	dir, m := shardSweepDir(t, "runtime", 2)
	for idx := 0; idx < 2; idx++ {
		runShardWorker(t, dir, m, idx, rt)
	}
	merged, err := mergeShards(t, dir, rt)
	if err != nil {
		t.Fatal(err)
	}
	// The merged table must be the exact union of what the workers
	// journaled: re-merging yields identical bytes (byte-determinism of
	// the merge itself), and every row cell is filled in.
	again, err := mergeShards(t, dir, rt)
	if err != nil {
		t.Fatal(err)
	}
	if merged.String() != again.String() {
		t.Error("merge is not deterministic")
	}
	for _, s := range []string{"MIN", "MAX", "OPT"} {
		if !strings.Contains(merged.String(), s) {
			t.Errorf("merged runtime table is missing the %s row:\n%s", s, merged)
		}
	}
}

// TestMergeRefusesMissingShard: strict mode fails the merge when a shard
// never ran, naming it, rather than silently recomputing its rows.
func TestMergeRefusesMissingShard(t *testing.T) {
	dir, m := shardSweepDir(t, "6a", 2)
	runShardWorker(t, dir, m, 0, Fig6a) // shard 1 never runs
	_, err := mergeShards(t, dir, Fig6a)
	var ie *shard.IncompleteError
	if !errors.As(err, &ie) {
		t.Fatalf("merge with a missing shard: %v, want *shard.IncompleteError", err)
	}
	if _, ok := ie.Reasons[1]; !ok {
		t.Fatalf("error does not name shard 1: %v", ie)
	}
}

// TestMergeStrictRefusesPartialJournal: a complete set of journals with a
// missing row (a worker died before finishing and was never resumed)
// fails the figure render with the shard attribution, not a recompute.
func TestMergeStrictRefusesPartialJournal(t *testing.T) {
	dir, m := shardSweepDir(t, "6a", 2)
	// Pick a shard that owns at least one of Fig6a's points; that shard
	// "runs" but journals nothing (a valid header with no rows), as if the
	// worker died before its first row and was never resumed.
	empty := -1
	for idx := 0; idx < 2 && empty < 0; idx++ {
		c := tinyConfig()
		c.ShardIndex, c.ShardCount = idx, 2
		for _, hpd := range HPDs {
			if c.owns(c.pointKey(Point{SER: 1e-11, HPD: hpd, ArC: 20})) {
				empty = idx
				break
			}
		}
	}
	if empty < 0 {
		t.Fatal("no shard owns any Fig6a point")
	}
	runShardWorker(t, dir, m, 1-empty, Fig6a)
	j, err := runstate.Open(filepath.Join(dir, shard.JournalName(empty, 2)),
		shard.JournalFingerprint(m.FP, empty, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = mergeShards(t, dir, Fig6a)
	if err == nil {
		t.Fatal("merge with missing rows succeeded")
	}
	if !strings.Contains(err.Error(), "not journaled") || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("error %q does not attribute the incomplete shard", err)
	}
}

// TestShardedProgressTotalsSliceLocal: a sharded worker's progress totals
// count only the rows its shard owns — the satellite fix for totals that
// previously assumed the whole grid.
func TestShardedProgressTotalsSliceLocal(t *testing.T) {
	cfg := tinyConfig()
	cfg.Apps = 1
	cfg.Procs = []int{6, 9, 12} // several keys so the hash splits them across shards
	strategies := []core.Strategy{core.MIN, core.MAX, core.OPT}
	ownedBy := func(idx int) int {
		c := cfg
		c.ShardIndex, c.ShardCount = idx, 2
		owned := 0
		for _, n := range c.Procs {
			for _, s := range strategies {
				if c.owns(c.rowKey(1e-11, 25, n, s)) {
					owned++
				}
			}
		}
		return owned
	}
	grid := len(cfg.Procs) * len(strategies)
	owned0, owned1 := ownedBy(0), ownedBy(1)
	if owned0+owned1 != grid {
		t.Fatalf("shards 0+1 own %d+%d rows, want exact cover of %d", owned0, owned1, grid)
	}
	if owned0 == 0 || owned0 == grid {
		t.Fatalf("degenerate split %d/%d leaves the slice-local property untested", owned0, owned1)
	}

	prog := obs.NewProgress()
	cfg.Progress = prog
	cfg.ShardIndex, cfg.ShardCount = 0, 2
	if _, err := RuntimeStudy(context.Background(), cfg, 1e-11, 25); err != nil {
		t.Fatal(err)
	}
	for _, ph := range prog.Status().Phases {
		if ph.Name != "experiments.rows" {
			continue
		}
		if ph.Total != int64(owned0) {
			t.Errorf("experiments.rows total = %d, want slice-local %d (grid %d)", ph.Total, owned0, grid)
		}
		if ph.Current != int64(owned0) {
			t.Errorf("experiments.rows current = %d, want %d", ph.Current, owned0)
		}
		return
	}
	t.Fatal("no experiments.rows phase")
}
