package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/execsim"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// SimulationStudy (experiment E14) measures, on OPT-designed synthetic
// systems, how the discrete-event execution simulator's makespans under
// adversarial within-budget fault patterns compare with the static
// analysis' worst-case bound: the mean and max of max-simulated/analyzed
// ratios, and how often a within-budget pattern misses a deadline. The
// paper's shared-slack accounting treats each node's recovery in
// isolation, so ratios slightly above 1 on multi-node systems quantify
// the cross-node coupling that accounting abstracts away (see the sched
// package comment); values ≤ 1 show where it is simply pessimistic.
func SimulationStudy(ctx context.Context, cfg Config, ser float64, iterations int) (*Table, error) {
	if iterations <= 0 {
		iterations = 200
	}
	t := NewTable(fmt.Sprintf("Simulation vs analysis (SER=%.0e, %d fault patterns per design)", ser, iterations),
		[]string{"slack model", "designs", "mean max/bound", "max max/bound", "deadline misses"})
	for _, model := range []sched.SlackModel{sched.SlackShared, sched.SlackPerProcess} {
		var (
			designed   int
			sumRatio   float64
			maxRatio   float64
			missRuns   int
			totalIters int
		)
		for _, n := range cfg.Procs {
			for i := 0; i < cfg.Apps; i++ {
				if cerr := runctl.Err(ctx); cerr != nil {
					return t, fmt.Errorf("experiments: simulation study: %w", cerr)
				}
				seed := cfg.Seed + int64(i) + int64(n)*1000003
				inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, n, ser, 25))
				if err != nil {
					return nil, err
				}
				res, err := core.RunContext(ctx, inst.App, inst.Platform, core.Options{
					Goal:          inst.Goal,
					Strategy:      core.OPT,
					Model:         model,
					MappingParams: cfg.MappingParams,
					EvalCache:     cfg.EvalCache,
				})
				if err != nil {
					return nil, err
				}
				if !res.Feasible {
					continue
				}
				designed++
				campaign := execsim.Campaign{
					Input: execsim.Input{
						App:     inst.App,
						Arch:    res.Arch,
						Mapping: res.Mapping,
						Ks:      res.Ks,
						Bus:     ttp.NewBus(len(res.Arch.Nodes), inst.Platform.Bus.SlotLen),
						Static:  res.Schedule,
					},
					Iterations:   iterations,
					Seed:         seed,
					WithinBudget: true,
				}
				cr, err := campaign.Run()
				if err != nil {
					return nil, err
				}
				ratio := cr.MaxMakespan / res.Schedule.Length
				sumRatio += ratio
				if ratio > maxRatio {
					maxRatio = ratio
				}
				missRuns += cr.DeadlineMisses
				totalIters += cr.Iterations
			}
		}
		if designed == 0 {
			t.AddRow([]string{model.String(), "0", "-", "-", "-"})
			continue
		}
		t.AddRow([]string{
			model.String(),
			fmt.Sprint(designed),
			fmt.Sprintf("%.3f", sumRatio/float64(designed)),
			fmt.Sprintf("%.3f", maxRatio),
			fmt.Sprintf("%d/%d", missRuns, totalIters),
		})
	}
	return t, nil
}
