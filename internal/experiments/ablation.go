package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/taskgen"
)

// AblationSlack compares the paper's shared recovery slack against the
// non-shared per-process baseline: OPT acceptance rates at the given
// point under both models. Shared slack should accept at least as many
// applications. Cancellation returns the completed rows with the typed
// error.
func AblationSlack(ctx context.Context, cfg Config, pt Point) (*Table, error) {
	t := NewTable(fmt.Sprintf("Ablation — recovery slack model (SER=%.0e, HPD=%g%%, ArC=%g)", pt.SER, pt.HPD, pt.ArC),
		[]string{"slack model", "MIN", "MAX", "OPT"})
	for _, model := range []sched.SlackModel{sched.SlackShared, sched.SlackPerProcess} {
		c := cfg
		c.Model = model
		r, err := Acceptance(ctx, c, pt)
		if err != nil {
			if errors.Is(err, runctl.ErrCanceled) {
				return t, err
			}
			return nil, err
		}
		t.AddRow([]string{
			model.String(),
			cell(r, core.MIN),
			cell(r, core.MAX),
			cell(r, core.OPT),
		})
	}
	return t, nil
}

// AblationMapping compares the full tabu search against a greedy-only
// mapping (the tabu loop disabled after the constructive initial mapping):
// OPT acceptance at the given point.
func AblationMapping(ctx context.Context, cfg Config, pt Point) (*Table, error) {
	t := NewTable(fmt.Sprintf("Ablation — mapping search (SER=%.0e, HPD=%g%%, ArC=%g)", pt.SER, pt.HPD, pt.ArC),
		[]string{"mapping", "MIN", "MAX", "OPT"})
	variants := []struct {
		name   string
		params mapping.Params
	}{
		{"greedy initial only", mapping.Params{MaxIterations: 1, MaxNoImprove: 1}},
		{"tabu search", mapping.DefaultParams()},
	}
	for _, v := range variants {
		c := cfg
		c.MappingParams = v.params
		r, err := Acceptance(ctx, c, pt)
		if err != nil {
			if errors.Is(err, runctl.ErrCanceled) {
				return t, err
			}
			return nil, err
		}
		t.AddRow([]string{
			v.name,
			cell(r, core.MIN),
			cell(r, core.MAX),
			cell(r, core.OPT),
		})
	}
	return t, nil
}

// AblationGradient quantifies the value of the reliability-gradient
// guidance inside ReExecutionOpt (Section 6.3): over a batch of generated
// platforms with *mixed* hardening levels (node j at level j+1, the
// situation RedundancyOpt creates all the time), it compares the total
// number of re-executions Σk assigned by the gradient-guided greedy
// against a uniform baseline that increments every node's k in lockstep
// until the goal is met. The lockstep policy wastes re-executions on the
// highly hardened nodes; fewer re-executions mean less recovery slack in
// the schedule.
func AblationGradient(ctx context.Context, cfg Config, ser float64) (*Table, error) {
	var guided, uniform, apps int
	for _, n := range cfg.Procs {
		for i := 0; i < cfg.Apps; i++ {
			if cerr := runctl.Err(ctx); cerr != nil {
				return nil, fmt.Errorf("experiments: gradient ablation: %w", cerr)
			}
			seed := cfg.Seed + int64(i) + int64(n)*1000003
			inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, n, ser, 25))
			if err != nil {
				return nil, err
			}
			// Round-robin the processes over the platform's nodes, node j
			// fixed at hardening level j+1 (capped at the top level): an
			// asymmetric-reliability architecture.
			probs := make([][]float64, len(inst.Platform.Nodes))
			for pid := 0; pid < inst.App.NumProcesses(); pid++ {
				j := pid % len(probs)
				versions := inst.Platform.Nodes[j].Versions
				lv := j
				if lv >= len(versions) {
					lv = len(versions) - 1
				}
				probs[j] = append(probs[j], versions[lv].FailProb[pid])
			}
			analysis, err := sfp.NewAnalysis(probs, inst.App.EffectivePeriod(), sfp.DefaultMaxK)
			if err != nil {
				return nil, err
			}
			g, ok := gradientKs(analysis, inst.Goal)
			if !ok {
				continue // goal unreachable: skip instance for both
			}
			u, ok := uniformKs(analysis, inst.Goal)
			if !ok {
				continue
			}
			guided += sum(g)
			uniform += sum(u)
			apps++
		}
	}
	if apps == 0 {
		return nil, fmt.Errorf("experiments: no instance reached the goal")
	}
	t := NewTable(fmt.Sprintf("Ablation — ReExecutionOpt guidance (SER=%.0e, %d instances)", ser, apps),
		[]string{"policy", "total re-executions", "avg per instance"})
	t.AddRow([]string{"gradient-guided (paper)", fmt.Sprint(guided), fmt.Sprintf("%.2f", float64(guided)/float64(apps))})
	t.AddRow([]string{"uniform lockstep", fmt.Sprint(uniform), fmt.Sprintf("%.2f", float64(uniform)/float64(apps))})
	return t, nil
}

// gradientKs mirrors redundancy.ReExecutionOpt on a prebuilt analysis.
func gradientKs(a *sfp.Analysis, goal sfp.Goal) ([]int, bool) {
	ks := make([]int, len(a.Nodes))
	for !a.MeetsGoal(ks, goal) {
		best, bestRel := -1, 0.0
		for j, n := range a.Nodes {
			if ks[j] >= n.MaxK() || n.FailureProb(ks[j]+1) >= n.FailureProb(ks[j]) {
				continue
			}
			ks[j]++
			rel := a.SystemReliability(ks, goal.Tau)
			ks[j]--
			if best < 0 || rel > bestRel {
				best, bestRel = j, rel
			}
		}
		if best < 0 {
			return ks, false
		}
		ks[best]++
	}
	return ks, true
}

// uniformKs increments every node's budget in lockstep.
func uniformKs(a *sfp.Analysis, goal sfp.Goal) ([]int, bool) {
	ks := make([]int, len(a.Nodes))
	for k := 0; ; k++ {
		for j := range ks {
			ks[j] = k
		}
		if a.MeetsGoal(ks, goal) {
			return ks, true
		}
		if k >= sfp.DefaultMaxK {
			return ks, false
		}
	}
}

func sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}
