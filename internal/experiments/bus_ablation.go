package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runctl"
	"repro/internal/taskgen"
)

// AblationBus quantifies the cost of TDMA communication: OPT acceptance
// with the generated slot length versus an idealized zero-latency bus
// (the degenerate end of the paper's "worst-case transmission time"
// abstraction). The idealized bus can only help, so its acceptance is an
// upper bound; the gap measures how much the slot-table timing matters at
// this workload scale.
func AblationBus(ctx context.Context, cfg Config, pt Point) (*Table, error) {
	t := NewTable(fmt.Sprintf("Ablation — bus model (SER=%.0e, HPD=%g%%, ArC=%g)", pt.SER, pt.HPD, pt.ArC),
		[]string{"bus", "MIN", "MAX", "OPT"})
	for _, ideal := range []bool{false, true} {
		counts := map[core.Strategy]int{}
		total := 0
		for _, n := range cfg.Procs {
			for i := 0; i < cfg.Apps; i++ {
				if cerr := runctl.Err(ctx); cerr != nil {
					return t, fmt.Errorf("experiments: bus ablation: %w", cerr)
				}
				seed := cfg.Seed + int64(i) + int64(n)*1000003
				gcfg := taskgen.DefaultConfig(seed, n, pt.SER, pt.HPD)
				inst, err := taskgen.Generate(gcfg)
				if err != nil {
					return nil, err
				}
				if ideal {
					// Zero slot length makes core.Run skip the TDMA bus:
					// messages become instantaneous.
					inst.Platform.Bus = platform.BusSpec{}
				}
				total++
				for _, s := range []core.Strategy{core.MIN, core.MAX, core.OPT} {
					res, err := core.RunContext(ctx, inst.App, inst.Platform, core.Options{
						Goal:          inst.Goal,
						Strategy:      s,
						MaxCost:       pt.ArC,
						MappingParams: cfg.MappingParams,
						EvalCache:     cfg.EvalCache,
					})
					if err != nil {
						return nil, err
					}
					if res.Feasible {
						counts[s]++
					}
				}
			}
		}
		name := "TDMA slots"
		if ideal {
			name = "instantaneous"
		}
		t.AddRow([]string{
			name,
			fmt.Sprintf("%.0f", 100*float64(counts[core.MIN])/float64(total)),
			fmt.Sprintf("%.0f", 100*float64(counts[core.MAX])/float64(total)),
			fmt.Sprintf("%.0f", 100*float64(counts[core.OPT])/float64(total)),
		})
	}
	return t, nil
}
