package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal ASCII table used to render experiment results in the
// same row/column structure as the paper's figures.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns an empty table with the given title and column header.
func NewTable(title string, header []string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells []string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := fmt.Fprint(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table, for
// embedding experiment results into reports like EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteString(" ")
			sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		for len(row) < len(t.Header) {
			row = append(row, "")
		}
		writeRow(row)
	}
	_, err := fmt.Fprint(w, sb.String())
	return err
}
