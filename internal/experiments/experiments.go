// Package experiments is the evaluation harness reproducing Section 7 of
// the paper: acceptance-rate sweeps over hardening performance degradation
// (HPD), soft error rate (SER) and maximum architecture cost (ArC) for the
// MIN, MAX and OPT design strategies on batches of synthetic applications,
// plus the ablation studies called out in DESIGN.md.
//
// An application is accepted when the strategy finds an implementation
// that meets its reliability goal, is schedulable, and does not exceed the
// maximum architectural cost.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/evalcache"
	"repro/internal/evalengine"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/taskgen"
)

// RowStore is where completed rows are journaled and restored from. A
// *runstate.Journal is the production store for a live run; a *shard.Rows
// (the read-only union of per-shard journals) is the store of a merge.
type RowStore interface {
	// Lookup reports whether key has a stored row, unmarshalling its
	// payload into v when v is non-nil.
	Lookup(key string, v any) bool
	// Record stores a freshly completed row under key.
	Record(key string, v any) error
}

// jobsStarted counts batch jobs that began real work, across all
// AcceptanceStats calls; the fail-fast regression test reads it to prove
// that a failing batch does not run to completion.
var jobsStarted atomic.Int64

// testAppHook, when non-nil, runs at the start of every application job.
// Tests use it to inject panics at a deterministic point inside the
// batch goroutines; it is never set in production.
var testAppHook func(seed int64)

// Config controls batch size and execution of an experiment run.
type Config struct {
	// Apps is the number of synthetic applications per process count
	// (the paper uses 150; the default harness uses fewer for a quick
	// turnaround — pass -apps to cmd/paperbench for full scale).
	Apps int
	// Procs lists the application sizes (paper: 20 and 40).
	Procs []int
	// Seed bases the deterministic generation.
	Seed int64
	// Workers bounds the parallelism across applications of a batch
	// (0 = GOMAXPROCS).
	Workers int
	// RunWorkers is passed to core.Options.Workers: parallelism inside
	// each design run (0 or 1 = sequential). Batch-level and in-run
	// parallelism multiply; for full sweeps the batch dimension alone
	// saturates the machine, so RunWorkers mainly serves single-run
	// workloads (cmd/paperbench -run-workers, RuntimeStudy).
	RunWorkers int
	// MappingParams tunes the tabu search.
	MappingParams mapping.Params
	// Model selects the recovery-slack accounting for all runs.
	Model sched.SlackModel
	// Graphs splits each generated application into this many task
	// graphs (0 or 1 = single graph).
	Graphs int
	// Span, when non-nil, nests the harness's per-point and per-app spans
	// (and the design runs under them) below it; Metrics receives the
	// counters of every run; Progress receives live progress (the
	// "experiments.apps" phase per batch application, "experiments.rows"
	// per runtime-study row, plus the per-run phases underneath); Log
	// receives structured records (one per sweep point / study row). All
	// are optional observability hooks — see internal/obs.
	Span     *obs.Span
	Metrics  *obs.Registry
	Progress *obs.Progress
	Log      *obs.Logger
	// Events, when non-nil, receives low-rate lifecycle events the fleet
	// event stream surfaces per job: currently one "app.timeout" per
	// application that hit AppTimeout. Like the other hooks it is
	// observation-only and nil-disabled.
	Events *obs.EventScope
	// AppTimeout, when > 0, puts a deadline on each application's design
	// runs. An application that exceeds it is counted as rejected for
	// every strategy (and in the experiments.app_timeouts counter) and the
	// sweep continues — a single pathological instance slows a row down,
	// it does not kill the run.
	AppTimeout time.Duration
	// Journal, when non-nil, makes the sweep crash-safe: every completed
	// row (acceptance point or runtime-study row) is recorded under a
	// deterministic key, and a later run with the same configuration
	// restores recorded rows instead of recomputing them. Deterministic
	// generation makes restored and recomputed rows byte-identical.
	// Production runs pass a *runstate.Journal; merges pass the read-only
	// union of per-shard journals. Assign only non-nil concrete values.
	Journal RowStore
	// ShardIndex/ShardCount shard the sweep: with ShardCount > 1 this
	// process computes only the rows that shard.Index assigns to
	// ShardIndex — the other rows are skipped (rendered as "-" cells) and
	// contribute nothing to progress totals, so N workers with disjoint
	// indices cover the grid exactly once. ShardIndex = -1 with
	// ShardCount > 1 means "own every row" and is used by the merge step
	// for shard attribution in its error messages.
	ShardIndex int
	ShardCount int
	// RequireJournaled is the merge step's strict mode: a row that does
	// not restore from Journal is an error naming the shard that should
	// have produced it, instead of being recomputed. Merges must never
	// compute — that is what makes the merged table provably the union of
	// what the workers ran.
	RequireJournaled bool
	// Missing, when non-nil alongside RequireJournaled, switches the
	// strict merge to degraded mode: a row that does not restore is
	// collected here and rendered as "!" cells instead of failing the
	// merge. The caller turns the collected keys into an incomplete.json
	// manifest naming each hole and its owning shard.
	Missing *MissingRows
	// RowDone, when non-nil, is called with the journal key of each row
	// after it was freshly computed (journal-restored rows do not fire
	// it). Tests use it to cancel at exact row boundaries.
	RowDone func(key string)
	// EvalCache, when non-nil, is the disk-backed evaluation cache every
	// design run loads from and flushes to (core.Options.EvalCache):
	// reruns and CI repeats warm-start instead of recomputing schedules.
	EvalCache *evalcache.Cache
}

// MissingRows collects, during a degraded merge, the journal key of
// every row that failed to restore. Safe for concurrent use.
type MissingRows struct {
	mu   sync.Mutex
	keys []string
}

func (m *MissingRows) add(key string) {
	m.mu.Lock()
	m.keys = append(m.keys, key)
	m.mu.Unlock()
}

// Keys returns the missing journal keys in the order the render
// encountered them (deterministic: figure rendering is sequential).
func (m *MissingRows) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.keys))
	copy(out, m.keys)
	return out
}

// missingRates is the degraded-merge marker for an unrestorable point:
// NaN per strategy, which cell renders as "!".
func missingRates() Rates {
	return Rates{core.MIN: math.NaN(), core.MAX: math.NaN(), core.OPT: math.NaN()}
}

// rowDone journals a freshly computed row and fires the RowDone hook.
func (c Config) rowDone(key string, v any) error {
	if c.Journal != nil {
		if err := c.Journal.Record(key, v); err != nil {
			return err
		}
	}
	if c.RowDone != nil {
		c.RowDone(key)
	}
	return nil
}

// rowRestore consults the journal for a previously completed row.
func (c Config) rowRestore(key string, v any) bool {
	return c.Journal != nil && c.Journal.Lookup(key, v)
}

// owns reports whether this process is responsible for computing the row
// with the given journal key under the configured sharding (always true
// unsharded; ShardIndex -1 owns everything).
func (c Config) owns(key string) bool {
	if c.ShardCount <= 1 || c.ShardIndex < 0 {
		return true
	}
	return shard.Index(key, c.ShardCount) == c.ShardIndex
}

// missingRow is the strict-mode (merge) error for a row that did not
// restore: it names the shard whose journal should hold the row, so the
// operator knows which worker to rerun before merging again.
func (c Config) missingRow(key string) error {
	if c.ShardCount > 1 {
		return fmt.Errorf("experiments: row %q is not journaled — shard %d of %d is incomplete (rerun that worker with -resume, then merge again)",
			key, shard.Index(key, c.ShardCount), c.ShardCount)
	}
	return fmt.Errorf("experiments: row %q is not journaled", key)
}

// DefaultConfig returns a configuration sized for minutes-scale runs.
func DefaultConfig() Config {
	return Config{Apps: 20, Procs: []int{20, 40}, Seed: 1}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Point is one configuration of the sweep space.
type Point struct {
	SER float64 // transient error rate per cycle at minimum hardening
	HPD float64 // hardening performance degradation, percent
	ArC float64 // maximum architectural cost
}

// Rates maps each strategy to its acceptance percentage at a point.
type Rates map[core.Strategy]float64

// pointKey is the journal key of one acceptance point. The slack model
// and tabu tuning participate because the ablation studies revisit the
// same (SER, HPD, ArC) coordinates under different models; the figure
// name deliberately does not, so identical points shared between figures
// (Fig. 6a and 6c both evaluate SER=1e-11, HPD=5, ArC=20) are computed
// once per journal.
func (c Config) pointKey(pt Point) string {
	mp := c.MappingParams
	return fmt.Sprintf("acceptance|model=%d|tabu=%d,%d,%d|graphs=%d|ser=%g|hpd=%g|arc=%g",
		c.Model, mp.TabuTenure, mp.MaxNoImprove, mp.MaxIterations, c.Graphs, pt.SER, pt.HPD, pt.ArC)
}

// Acceptance evaluates all three strategies at the given point over the
// configured application batch and returns the acceptance percentages.
// The context is consulted between applications and between the
// strategies of one application; a done context drains the in-flight
// jobs and returns an error wrapping runctl.ErrCanceled.
func Acceptance(ctx context.Context, cfg Config, pt Point) (Rates, error) {
	rates, _, err := AcceptanceStats(ctx, cfg, pt)
	return rates, err
}

// AcceptanceStats is Acceptance plus the per-strategy evaluation-engine
// counters summed over the batch, for the runtime instrumentation
// reports. A point restored from cfg.Journal returns its recorded rates
// with empty stats (no work was performed).
func AcceptanceStats(ctx context.Context, cfg Config, pt Point) (Rates, map[core.Strategy]evalengine.Stats, error) {
	strategies := []core.Strategy{core.MIN, core.MAX, core.OPT}
	type job struct {
		seed  int64
		procs int
	}
	var jobs []job
	for _, n := range cfg.Procs {
		for i := 0; i < cfg.Apps; i++ {
			jobs = append(jobs, job{seed: cfg.Seed + int64(i) + int64(n)*1000003, procs: n})
		}
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty batch (Apps=%d, Procs=%v)", cfg.Apps, cfg.Procs)
	}
	key := cfg.pointKey(pt)
	if saved := make(map[string]float64); cfg.rowRestore(key, &saved) {
		// JSON round-trips float64 exactly, so a restored rate formats to
		// the same bytes the original run printed.
		rates := make(Rates, len(strategies))
		for _, s := range strategies {
			rates[s] = saved[s.String()]
		}
		appPh := cfg.Progress.Phase("experiments.apps")
		appPh.AddTotal(int64(len(jobs)))
		appPh.Add(int64(len(jobs)))
		cfg.Metrics.Counter("experiments.rows_restored").Add(1)
		cfg.Log.Info("acceptance point restored from journal",
			"ser", pt.SER, "hpd", pt.HPD, "arc", pt.ArC, "key", key)
		return rates, map[core.Strategy]evalengine.Stats{}, nil
	}
	if cfg.RequireJournaled {
		if cfg.Missing != nil {
			// Degraded merge: record the hole and render it as "!" cells
			// instead of refusing the whole table.
			cfg.Missing.add(key)
			cfg.Metrics.Counter("experiments.rows_missing").Add(1)
			return missingRates(), map[core.Strategy]evalengine.Stats{}, nil
		}
		return nil, nil, cfg.missingRow(key)
	}
	if !cfg.owns(key) {
		// Another shard computes this point: report nothing (callers render
		// "-" cells) and contribute nothing to the progress totals, so a
		// worker's /progress is slice-local.
		return nil, nil, nil
	}
	if cerr := runctl.Err(ctx); cerr != nil {
		cfg.Metrics.Counter("experiments.canceled").Add(1)
		return nil, nil, fmt.Errorf("experiments: acceptance point: %w", cerr)
	}
	ptSpan := cfg.Span.Child("acceptance",
		obs.Float("ser", pt.SER),
		obs.Float("hpd", pt.HPD),
		obs.Float("arc", pt.ArC),
		obs.Int("jobs", len(jobs)))
	defer ptSpan.End()
	appPh := cfg.Progress.Phase("experiments.apps")
	appPh.AddTotal(int64(len(jobs)))

	counts := make(map[core.Strategy]int)
	stats := make(map[core.Strategy]evalengine.Stats)
	var mu sync.Mutex
	var firstErr error
	// A failing batch fails fast: the first error stops new jobs from
	// launching and makes in-flight jobs bail before their next strategy,
	// instead of grinding through the rest of the batch for a result that
	// is discarded anyway. Cancellation rides the same machinery.
	var stop atomic.Bool
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	// runApp runs the three strategies for one application. A panic
	// anywhere inside — these run on batch goroutines, where an escaped
	// panic would kill the whole process — comes back as a
	// *runctl.PanicError.
	runApp := func(jb job) (err error) {
		defer runctl.Recover(fmt.Sprintf("experiments app (seed %d, %d procs)", jb.seed, jb.procs), &err)
		if testAppHook != nil {
			testAppHook(jb.seed)
		}
		appSpan := ptSpan.Child("app",
			obs.Int64("seed", jb.seed),
			obs.Int("processes", jb.procs))
		defer appSpan.End()
		appCtx := ctx
		if cfg.AppTimeout > 0 {
			parent := ctx
			if parent == nil {
				parent = context.Background()
			}
			var cancel context.CancelFunc
			appCtx, cancel = context.WithTimeout(parent, cfg.AppTimeout)
			defer cancel()
		}
		gcfg := taskgen.DefaultConfig(jb.seed, jb.procs, pt.SER, pt.HPD)
		gcfg.NumGraphs = cfg.Graphs
		inst, err := taskgen.Generate(gcfg)
		if err != nil {
			return err
		}
		for _, s := range strategies {
			if stop.Load() {
				return nil
			}
			if cerr := runctl.Err(ctx); cerr != nil {
				return cerr
			}
			res, err := core.RunContext(appCtx, inst.App, inst.Platform, core.Options{
				Goal:          inst.Goal,
				Strategy:      s,
				MaxCost:       pt.ArC,
				Model:         cfg.Model,
				MappingParams: cfg.MappingParams,
				Workers:       cfg.RunWorkers,
				ParentSpan:    appSpan,
				Metrics:       cfg.Metrics,
				Progress:      cfg.Progress,
				Log:           cfg.Log,
				EvalCache:     cfg.EvalCache,
			})
			if err != nil {
				// A per-app deadline miss while the sweep itself is live:
				// the application counts as rejected for every strategy and
				// the batch moves on.
				if errors.Is(err, context.DeadlineExceeded) && runctl.Err(ctx) == nil {
					cfg.Metrics.Counter("experiments.app_timeouts").Add(1)
					cfg.Log.Warn("application timed out, counted as rejected",
						"seed", jb.seed, "processes", jb.procs,
						"strategy", s.String(), "timeout", cfg.AppTimeout)
					cfg.Events.Emit("app.timeout", map[string]any{
						"seed": jb.seed, "processes": jb.procs,
						"strategy": s.String(), "timeout_ms": cfg.AppTimeout.Milliseconds(),
					})
					appSpan.SetAttr(obs.Bool("timeout", true))
					return nil
				}
				return err
			}
			mu.Lock()
			if res.Feasible {
				counts[s]++
			}
			agg := stats[s]
			agg.Add(res.EvalStats)
			stats[s] = agg
			mu.Unlock()
		}
		return nil
	}
	sem := make(chan struct{}, cfg.workers())
	var wg sync.WaitGroup
	for _, jb := range jobs {
		if stop.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(jb job) {
			defer wg.Done()
			defer func() { <-sem }()
			if stop.Load() {
				return
			}
			jobsStarted.Add(1)
			defer appPh.Add(1) // abandoned jobs still count toward the batch
			if err := runApp(jb); err != nil {
				record(err)
			}
		}(jb)
	}
	wg.Wait()
	if firstErr != nil {
		if errors.Is(firstErr, runctl.ErrCanceled) {
			cfg.Metrics.Counter("experiments.canceled").Add(1)
			cfg.Log.Info("acceptance point canceled",
				"ser", pt.SER, "hpd", pt.HPD, "arc", pt.ArC, "span", ptSpan.ID())
			return nil, nil, fmt.Errorf("experiments: acceptance point: %w", firstErr)
		}
		cfg.Log.Error("acceptance point failed",
			"ser", pt.SER, "hpd", pt.HPD, "arc", pt.ArC,
			"err", firstErr.Error(), "span", ptSpan.ID())
		return nil, nil, firstErr
	}
	rates := make(Rates, len(strategies))
	payload := make(map[string]float64, len(strategies))
	for _, s := range strategies {
		rates[s] = 100 * float64(counts[s]) / float64(len(jobs))
		payload[s.String()] = rates[s]
	}
	if err := cfg.rowDone(key, payload); err != nil {
		return nil, nil, err
	}
	cfg.Log.Info("acceptance point done",
		"ser", pt.SER, "hpd", pt.HPD, "arc", pt.ArC, "jobs", len(jobs),
		"min", rates[core.MIN], "max", rates[core.MAX], "opt", rates[core.OPT],
		"span", ptSpan.ID())
	return rates, stats, nil
}

// Sweep evaluates a list of points and returns the rates in order. On
// cancellation the returned slice still carries every completed point —
// nil entries mark the rest — alongside the typed error, so callers can
// render partial tables.
func Sweep(ctx context.Context, cfg Config, pts []Point) ([]Rates, error) {
	out := make([]Rates, len(pts))
	for i, pt := range pts {
		r, err := Acceptance(ctx, cfg, pt)
		if err != nil {
			return out, fmt.Errorf("experiments: point %+v: %w", pt, err)
		}
		out[i] = r
	}
	return out, nil
}

// The sweep axes of the paper's Fig. 6.
var (
	// HPDs are the hardening performance degradations of Fig. 6a/6b.
	HPDs = []float64{5, 25, 50, 100}
	// SERs are the soft error rates of Fig. 6c/6d.
	SERs = []float64{1e-12, 1e-11, 1e-10}
	// ArCs are the maximum architecture costs of Fig. 6b.
	ArCs = []float64{15, 20, 25}
)

// cell formats one strategy's acceptance rate, "-" when the point was
// not reached before cancellation or belongs to another shard, or "!"
// when a degraded merge found the point missing from every journal.
func cell(r Rates, s core.Strategy) string {
	if r == nil {
		return "-"
	}
	if v := r[s]; math.IsNaN(v) {
		return "!"
	}
	return fmt.Sprintf("%.0f", r[s])
}

// Fig6a reproduces Fig. 6a: % accepted architectures as a function of HPD
// for SER = 1e-11 and ArC = 20. On cancellation it returns the partial
// table — completed points filled in, the rest "-" — together with the
// typed error, so the operator keeps every finished row.
func Fig6a(ctx context.Context, cfg Config) (*Table, error) {
	pts := make([]Point, len(HPDs))
	for i, hpd := range HPDs {
		pts[i] = Point{SER: 1e-11, HPD: hpd, ArC: 20}
	}
	rates, err := Sweep(ctx, cfg, pts)
	if err != nil && !errors.Is(err, runctl.ErrCanceled) {
		return nil, err
	}
	t := NewTable("Fig. 6a — % accepted vs HPD (SER=1e-11, ArC=20)",
		append([]string{"strategy"}, labels(HPDs, "HPD=%g%%")...))
	for _, s := range []core.Strategy{core.MAX, core.MIN, core.OPT} {
		row := []string{s.String()}
		for i := range pts {
			row = append(row, cell(rates[i], s))
		}
		t.AddRow(row)
	}
	return t, err
}

// Fig6b reproduces the Fig. 6b table: % accepted for each HPD and maximum
// architecture cost at SER = 1e-11. On cancellation the rows completed so
// far come back with the typed error.
func Fig6b(ctx context.Context, cfg Config) (*Table, error) {
	t := NewTable("Fig. 6b — % accepted by HPD and ArC (SER=1e-11)",
		[]string{"HPD", "ArC", "MAX", "MIN", "OPT"})
	for _, hpd := range HPDs {
		for _, arc := range ArCs {
			r, err := Acceptance(ctx, cfg, Point{SER: 1e-11, HPD: hpd, ArC: arc})
			if err != nil {
				if errors.Is(err, runctl.ErrCanceled) {
					return t, err
				}
				return nil, err
			}
			t.AddRow([]string{
				fmt.Sprintf("%g%%", hpd),
				fmt.Sprintf("%g", arc),
				cell(r, core.MAX),
				cell(r, core.MIN),
				cell(r, core.OPT),
			})
		}
	}
	return t, nil
}

// Fig6c reproduces Fig. 6c: % accepted as a function of SER for HPD = 5%
// and ArC = 20.
func Fig6c(ctx context.Context, cfg Config) (*Table, error) {
	return serSweep(ctx, cfg, 5, "Fig. 6c")
}

// Fig6d reproduces Fig. 6d: % accepted as a function of SER for HPD =
// 100% and ArC = 20.
func Fig6d(ctx context.Context, cfg Config) (*Table, error) {
	return serSweep(ctx, cfg, 100, "Fig. 6d")
}

func serSweep(ctx context.Context, cfg Config, hpd float64, name string) (*Table, error) {
	pts := make([]Point, len(SERs))
	for i, ser := range SERs {
		pts[i] = Point{SER: ser, HPD: hpd, ArC: 20}
	}
	rates, err := Sweep(ctx, cfg, pts)
	if err != nil && !errors.Is(err, runctl.ErrCanceled) {
		return nil, err
	}
	t := NewTable(fmt.Sprintf("%s — %% accepted vs SER (HPD=%g%%, ArC=20)", name, hpd),
		append([]string{"strategy"}, labels(SERs, "SER=%.0e")...))
	for _, s := range []core.Strategy{core.MAX, core.MIN, core.OPT} {
		row := []string{s.String()}
		for i := range pts {
			row = append(row, cell(rates[i], s))
		}
		t.AddRow(row)
	}
	return t, err
}

func labels(xs []float64, format string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf(format, x)
	}
	return out
}
