// Package experiments is the evaluation harness reproducing Section 7 of
// the paper: acceptance-rate sweeps over hardening performance degradation
// (HPD), soft error rate (SER) and maximum architecture cost (ArC) for the
// MIN, MAX and OPT design strategies on batches of synthetic applications,
// plus the ablation studies called out in DESIGN.md.
//
// An application is accepted when the strategy finds an implementation
// that meets its reliability goal, is schedulable, and does not exceed the
// maximum architectural cost.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/evalengine"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/taskgen"
)

// jobsStarted counts batch jobs that began real work, across all
// AcceptanceStats calls; the fail-fast regression test reads it to prove
// that a failing batch does not run to completion.
var jobsStarted atomic.Int64

// Config controls batch size and execution of an experiment run.
type Config struct {
	// Apps is the number of synthetic applications per process count
	// (the paper uses 150; the default harness uses fewer for a quick
	// turnaround — pass -apps to cmd/paperbench for full scale).
	Apps int
	// Procs lists the application sizes (paper: 20 and 40).
	Procs []int
	// Seed bases the deterministic generation.
	Seed int64
	// Workers bounds the parallelism across applications of a batch
	// (0 = GOMAXPROCS).
	Workers int
	// RunWorkers is passed to core.Options.Workers: parallelism inside
	// each design run (0 or 1 = sequential). Batch-level and in-run
	// parallelism multiply; for full sweeps the batch dimension alone
	// saturates the machine, so RunWorkers mainly serves single-run
	// workloads (cmd/paperbench -run-workers, RuntimeStudy).
	RunWorkers int
	// MappingParams tunes the tabu search.
	MappingParams mapping.Params
	// Model selects the recovery-slack accounting for all runs.
	Model sched.SlackModel
	// Graphs splits each generated application into this many task
	// graphs (0 or 1 = single graph).
	Graphs int
	// Span, when non-nil, nests the harness's per-point and per-app spans
	// (and the design runs under them) below it; Metrics receives the
	// counters of every run; Progress receives live progress (the
	// "experiments.apps" phase per batch application, "experiments.rows"
	// per runtime-study row, plus the per-run phases underneath); Log
	// receives structured records (one per sweep point / study row). All
	// are optional observability hooks — see internal/obs.
	Span     *obs.Span
	Metrics  *obs.Registry
	Progress *obs.Progress
	Log      *obs.Logger
}

// DefaultConfig returns a configuration sized for minutes-scale runs.
func DefaultConfig() Config {
	return Config{Apps: 20, Procs: []int{20, 40}, Seed: 1}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Point is one configuration of the sweep space.
type Point struct {
	SER float64 // transient error rate per cycle at minimum hardening
	HPD float64 // hardening performance degradation, percent
	ArC float64 // maximum architectural cost
}

// Rates maps each strategy to its acceptance percentage at a point.
type Rates map[core.Strategy]float64

// Acceptance evaluates all three strategies at the given point over the
// configured application batch and returns the acceptance percentages.
func Acceptance(cfg Config, pt Point) (Rates, error) {
	rates, _, err := AcceptanceStats(cfg, pt)
	return rates, err
}

// AcceptanceStats is Acceptance plus the per-strategy evaluation-engine
// counters summed over the batch, for the runtime instrumentation
// reports.
func AcceptanceStats(cfg Config, pt Point) (Rates, map[core.Strategy]evalengine.Stats, error) {
	strategies := []core.Strategy{core.MIN, core.MAX, core.OPT}
	type job struct {
		seed  int64
		procs int
	}
	var jobs []job
	for _, n := range cfg.Procs {
		for i := 0; i < cfg.Apps; i++ {
			jobs = append(jobs, job{seed: cfg.Seed + int64(i) + int64(n)*1000003, procs: n})
		}
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty batch (Apps=%d, Procs=%v)", cfg.Apps, cfg.Procs)
	}
	ptSpan := cfg.Span.Child("acceptance",
		obs.Float("ser", pt.SER),
		obs.Float("hpd", pt.HPD),
		obs.Float("arc", pt.ArC),
		obs.Int("jobs", len(jobs)))
	defer ptSpan.End()
	appPh := cfg.Progress.Phase("experiments.apps")
	appPh.AddTotal(int64(len(jobs)))

	counts := make(map[core.Strategy]int)
	stats := make(map[core.Strategy]evalengine.Stats)
	var mu sync.Mutex
	var firstErr error
	// A failing batch fails fast: the first error stops new jobs from
	// launching and makes in-flight jobs bail before their next strategy,
	// instead of grinding through the rest of the batch for a result that
	// is discarded anyway.
	var stop atomic.Bool
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	sem := make(chan struct{}, cfg.workers())
	var wg sync.WaitGroup
	for _, jb := range jobs {
		if stop.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(jb job) {
			defer wg.Done()
			defer func() { <-sem }()
			if stop.Load() {
				return
			}
			jobsStarted.Add(1)
			defer appPh.Add(1) // abandoned jobs still count toward the batch
			appSpan := ptSpan.Child("app",
				obs.Int64("seed", jb.seed),
				obs.Int("processes", jb.procs))
			defer appSpan.End()
			gcfg := taskgen.DefaultConfig(jb.seed, jb.procs, pt.SER, pt.HPD)
			gcfg.NumGraphs = cfg.Graphs
			inst, err := taskgen.Generate(gcfg)
			if err != nil {
				record(err)
				return
			}
			for _, s := range strategies {
				if stop.Load() {
					return
				}
				res, err := core.Run(inst.App, inst.Platform, core.Options{
					Goal:          inst.Goal,
					Strategy:      s,
					MaxCost:       pt.ArC,
					Model:         cfg.Model,
					MappingParams: cfg.MappingParams,
					Workers:       cfg.RunWorkers,
					ParentSpan:    appSpan,
					Metrics:       cfg.Metrics,
					Progress:      cfg.Progress,
					Log:           cfg.Log,
				})
				if err != nil {
					record(err)
					return
				}
				mu.Lock()
				if res.Feasible {
					counts[s]++
				}
				agg := stats[s]
				agg.Add(res.EvalStats)
				stats[s] = agg
				mu.Unlock()
			}
		}(jb)
	}
	wg.Wait()
	if firstErr != nil {
		cfg.Log.Error("acceptance point failed",
			"ser", pt.SER, "hpd", pt.HPD, "arc", pt.ArC,
			"err", firstErr.Error(), "span", ptSpan.ID())
		return nil, nil, firstErr
	}
	rates := make(Rates, len(strategies))
	for _, s := range strategies {
		rates[s] = 100 * float64(counts[s]) / float64(len(jobs))
	}
	cfg.Log.Info("acceptance point done",
		"ser", pt.SER, "hpd", pt.HPD, "arc", pt.ArC, "jobs", len(jobs),
		"min", rates[core.MIN], "max", rates[core.MAX], "opt", rates[core.OPT],
		"span", ptSpan.ID())
	return rates, stats, nil
}

// Sweep evaluates a list of points and returns the rates in order.
func Sweep(cfg Config, pts []Point) ([]Rates, error) {
	out := make([]Rates, len(pts))
	for i, pt := range pts {
		r, err := Acceptance(cfg, pt)
		if err != nil {
			return nil, fmt.Errorf("experiments: point %+v: %w", pt, err)
		}
		out[i] = r
	}
	return out, nil
}

// The sweep axes of the paper's Fig. 6.
var (
	// HPDs are the hardening performance degradations of Fig. 6a/6b.
	HPDs = []float64{5, 25, 50, 100}
	// SERs are the soft error rates of Fig. 6c/6d.
	SERs = []float64{1e-12, 1e-11, 1e-10}
	// ArCs are the maximum architecture costs of Fig. 6b.
	ArCs = []float64{15, 20, 25}
)

// Fig6a reproduces Fig. 6a: % accepted architectures as a function of HPD
// for SER = 1e-11 and ArC = 20.
func Fig6a(cfg Config) (*Table, error) {
	pts := make([]Point, len(HPDs))
	for i, hpd := range HPDs {
		pts[i] = Point{SER: 1e-11, HPD: hpd, ArC: 20}
	}
	rates, err := Sweep(cfg, pts)
	if err != nil {
		return nil, err
	}
	t := NewTable("Fig. 6a — % accepted vs HPD (SER=1e-11, ArC=20)",
		append([]string{"strategy"}, labels(HPDs, "HPD=%g%%")...))
	for _, s := range []core.Strategy{core.MAX, core.MIN, core.OPT} {
		row := []string{s.String()}
		for i := range pts {
			row = append(row, fmt.Sprintf("%.0f", rates[i][s]))
		}
		t.AddRow(row)
	}
	return t, nil
}

// Fig6b reproduces the Fig. 6b table: % accepted for each HPD and maximum
// architecture cost at SER = 1e-11.
func Fig6b(cfg Config) (*Table, error) {
	t := NewTable("Fig. 6b — % accepted by HPD and ArC (SER=1e-11)",
		[]string{"HPD", "ArC", "MAX", "MIN", "OPT"})
	for _, hpd := range HPDs {
		for _, arc := range ArCs {
			r, err := Acceptance(cfg, Point{SER: 1e-11, HPD: hpd, ArC: arc})
			if err != nil {
				return nil, err
			}
			t.AddRow([]string{
				fmt.Sprintf("%g%%", hpd),
				fmt.Sprintf("%g", arc),
				fmt.Sprintf("%.0f", r[core.MAX]),
				fmt.Sprintf("%.0f", r[core.MIN]),
				fmt.Sprintf("%.0f", r[core.OPT]),
			})
		}
	}
	return t, nil
}

// Fig6c reproduces Fig. 6c: % accepted as a function of SER for HPD = 5%
// and ArC = 20.
func Fig6c(cfg Config) (*Table, error) { return serSweep(cfg, 5, "Fig. 6c") }

// Fig6d reproduces Fig. 6d: % accepted as a function of SER for HPD =
// 100% and ArC = 20.
func Fig6d(cfg Config) (*Table, error) { return serSweep(cfg, 100, "Fig. 6d") }

func serSweep(cfg Config, hpd float64, name string) (*Table, error) {
	pts := make([]Point, len(SERs))
	for i, ser := range SERs {
		pts[i] = Point{SER: ser, HPD: hpd, ArC: 20}
	}
	rates, err := Sweep(cfg, pts)
	if err != nil {
		return nil, err
	}
	t := NewTable(fmt.Sprintf("%s — %% accepted vs SER (HPD=%g%%, ArC=20)", name, hpd),
		append([]string{"strategy"}, labels(SERs, "SER=%.0e")...))
	for _, s := range []core.Strategy{core.MAX, core.MIN, core.OPT} {
		row := []string{s.String()}
		for i := range pts {
			row = append(row, fmt.Sprintf("%.0f", rates[i][s]))
		}
		t.AddRow(row)
	}
	return t, nil
}

func labels(xs []float64, format string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf(format, x)
	}
	return out
}
