package experiments

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/runctl"
	"repro/internal/runstate"
)

func openJournal(t *testing.T, path string, resume bool) *runstate.Journal {
	t.Helper()
	j, err := runstate.Open(path, "test-fp", resume)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestAcceptanceJournalRestore: a journaled point is served from the
// journal on the next run — identical rates, no recomputation.
func TestAcceptanceJournalRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	pt := Point{SER: 1e-11, HPD: 25, ArC: 20}

	cfg := tinyConfig()
	j := openJournal(t, path, false)
	cfg.Journal = j
	want, err := Acceptance(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	cfg2 := tinyConfig()
	j2 := openJournal(t, path, true)
	cfg2.Journal = j2
	defer j2.Close()
	recomputed := false
	cfg2.RowDone = func(string) { recomputed = true }
	before := jobsStarted.Load()
	got, err := Acceptance(context.Background(), cfg2, pt)
	if err != nil {
		t.Fatal(err)
	}
	if recomputed || jobsStarted.Load() != before {
		t.Error("restored point was recomputed")
	}
	for s, r := range want {
		if got[s] != r {
			t.Errorf("%v: restored rate %v, want %v", s, got[s], r)
		}
	}
}

// TestAcceptanceJournalKeyedByModel: the journal key includes the slack
// model and tabu tuning, so the ablation studies never read another
// variant's rates for the same (SER, HPD, ArC) point.
func TestAcceptanceJournalKeyedByModel(t *testing.T) {
	cfg := tinyConfig()
	base := cfg.pointKey(Point{SER: 1e-11, HPD: 25, ArC: 20})
	cfg.Model = 1
	if cfg.pointKey(Point{SER: 1e-11, HPD: 25, ArC: 20}) == base {
		t.Error("slack model does not participate in the journal key")
	}
}

// TestRuntimeStudyJournalRestore: runtime rows journal their rendered
// cells, so a fully restored study reproduces the exact table —
// including the (otherwise non-deterministic) duration columns.
func TestRuntimeStudyJournalRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")

	cfg := tinyConfig()
	j := openJournal(t, path, false)
	cfg.Journal = j
	want, err := RuntimeStudy(context.Background(), cfg, 1e-11, 25)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	cfg2 := tinyConfig()
	j2 := openJournal(t, path, true)
	cfg2.Journal = j2
	defer j2.Close()
	got, err := RuntimeStudy(context.Background(), cfg2, 1e-11, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("restored table differs:\n%s\nwant:\n%s", got, want)
	}
	if j2.Appended() != 0 {
		t.Errorf("restored study appended %d rows", j2.Appended())
	}
}

// TestChaosCancelResume is the crash-safety property test: a seeded
// sweep is canceled at randomized row boundaries and resumed — with the
// journal tail occasionally torn mid-record, as a crash would leave it —
// until it completes. The final table must be byte-identical to an
// uninterrupted run, and the journal must hold every row exactly once.
func TestChaosCancelResume(t *testing.T) {
	cfg := tinyConfig()
	clean, err := Fig6a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "j.jsonl")
	rng := rand.New(rand.NewSource(7))
	var final *Table
	for attempt := 1; ; attempt++ {
		if attempt > 40 {
			t.Fatal("sweep did not converge in 40 interrupted attempts")
		}
		j := openJournal(t, path, true)
		ctx, cancel := context.WithCancel(context.Background())
		c := cfg
		c.Journal = j
		fresh := 0
		stopAfter := 1 + rng.Intn(2)
		c.RowDone = func(string) {
			// Only freshly computed rows fire RowDone, so every attempt
			// makes at least one row of progress before the cancel lands —
			// the loop terminates.
			if fresh++; fresh >= stopAfter {
				cancel()
			}
		}
		tab, err := Fig6a(ctx, c)
		j.Close()
		cancel()
		if err == nil {
			final = tab
			break
		}
		if !errors.Is(err, runctl.ErrCanceled) {
			t.Fatal(err)
		}
		if tab == nil {
			t.Fatal("canceled sweep returned no partial table")
		}
		// Sometimes the "crash" tears the journal's final record mid-write.
		if rng.Intn(2) == 1 {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if n := len(data) - (1 + rng.Intn(9)); n > 0 {
				if err := os.WriteFile(path, data[:n], 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if final.String() != clean.String() {
		t.Errorf("resumed table differs from clean run:\n%s\nwant:\n%s", final, clean)
	}
	// The journal holds every completed row exactly once — nothing lost,
	// nothing duplicated, even across torn tails.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, rows, _ := runstate.Scan(data)
	if !ok {
		t.Fatal("journal lost its header")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Key] {
			t.Errorf("row %q journaled twice", r.Key)
		}
		seen[r.Key] = true
	}
	if len(rows) != len(HPDs) {
		t.Errorf("journal holds %d rows, want %d", len(rows), len(HPDs))
	}
}

// TestAcceptanceAppTimeout: a per-app deadline far below any real run
// marks every application rejected — zero rates, no error, the sweep
// survives.
func TestAcceptanceAppTimeout(t *testing.T) {
	cfg := tinyConfig()
	cfg.AppTimeout = time.Nanosecond
	r, err := Acceptance(context.Background(), cfg, Point{SER: 1e-11, HPD: 25, ArC: 20})
	if err != nil {
		t.Fatalf("timed-out apps must not fail the sweep: %v", err)
	}
	for s, rate := range r {
		if rate != 0 {
			t.Errorf("%v accepted %v%% with a 1ns per-app deadline", s, rate)
		}
	}
}

// TestAcceptanceCanceled: a canceled sweep surfaces the typed error.
func TestAcceptanceCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Acceptance(ctx, tinyConfig(), Point{SER: 1e-11, HPD: 25, ArC: 20})
	if !errors.Is(err, runctl.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestAcceptancePanicContained: a panic inside a batch application job
// surfaces as a *runctl.PanicError from the sweep instead of killing the
// process; the remaining jobs drain.
func TestAcceptancePanicContained(t *testing.T) {
	testAppHook = func(seed int64) { panic("injected app fault") }
	defer func() { testAppHook = nil }()
	_, err := Acceptance(context.Background(), tinyConfig(), Point{SER: 1e-11, HPD: 25, ArC: 20})
	var pe *runctl.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *runctl.PanicError", err, err)
	}
	if pe.Value != "injected app fault" {
		t.Errorf("panic value %v", pe.Value)
	}
}

// TestRuntimeStudyCanceledPartial: cancellation returns the completed
// rows and the typed error; the in-progress row is dropped whole.
func TestRuntimeStudyCanceledPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tab, err := RuntimeStudy(ctx, tinyConfig(), 1e-11, 25)
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if tab == nil {
		t.Fatal("no partial table")
	}
	if len(tab.Rows) != 0 {
		t.Errorf("upfront cancel produced %d rows", len(tab.Rows))
	}
}

// TestFig6aCanceledPartialCells: a mid-sweep cancel yields the partial
// figure — computed points rendered, missing points as "-".
func TestFig6aCanceledPartialCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j := openJournal(t, path, false)
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := tinyConfig()
	cfg.Journal = j
	cfg.RowDone = func(string) { cancel() } // cancel after the first point
	tab, err := Fig6a(ctx, cfg)
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if tab == nil {
		t.Fatal("no partial table")
	}
	out := tab.String()
	if !contains(out, "-") {
		t.Errorf("partial table has no \"-\" cells:\n%s", out)
	}
	for _, row := range tab.Rows {
		if row[1] == "-" {
			t.Errorf("first point should be rendered, got %v", row)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
