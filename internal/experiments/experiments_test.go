package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyConfig keeps test runtime reasonable; determinism makes the results
// stable for a given Go release.
func tinyConfig() Config {
	return Config{Apps: 2, Procs: []int{20}, Seed: 3}
}

func TestAcceptanceBasics(t *testing.T) {
	r, err := Acceptance(context.Background(), tinyConfig(), Point{SER: 1e-11, HPD: 25, ArC: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Strategy{core.MIN, core.MAX, core.OPT} {
		v, ok := r[s]
		if !ok {
			t.Fatalf("missing strategy %v", s)
		}
		if v < 0 || v > 100 {
			t.Errorf("%v rate %v outside [0,100]", s, v)
		}
	}
}

func TestAcceptanceEmptyBatch(t *testing.T) {
	cfg := Config{Apps: 0, Procs: nil}
	if _, err := Acceptance(context.Background(), cfg, Point{SER: 1e-11, HPD: 25, ArC: 20}); err == nil {
		t.Error("want error for empty batch")
	}
}

func TestAcceptanceDeterministic(t *testing.T) {
	pt := Point{SER: 1e-11, HPD: 25, ArC: 20}
	a, err := Acceptance(context.Background(), tinyConfig(), pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Acceptance(context.Background(), tinyConfig(), pt)
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range a {
		if b[s] != v {
			t.Errorf("strategy %v: %v then %v for identical config", s, v, b[s])
		}
	}
}

func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := Fig6a(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3 strategies", len(tab.Rows))
	}
	if len(tab.Header) != 1+len(HPDs) {
		t.Fatalf("%d columns, want %d", len(tab.Header), 1+len(HPDs))
	}
	// MIN is flat across HPD: it never uses hardened versions, and the
	// generated deadlines are HPD-independent.
	var minRow []string
	for _, row := range tab.Rows {
		if row[0] == "MIN" {
			minRow = row
		}
	}
	if minRow == nil {
		t.Fatal("no MIN row")
	}
	for i := 2; i < len(minRow); i++ {
		if minRow[i] != minRow[1] {
			t.Errorf("MIN not flat across HPD: %v", minRow)
		}
	}
}

func TestSerSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := Fig6c(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Header) != 1+len(SERs) {
		t.Fatalf("unexpected table shape: %dx%d", len(tab.Rows), len(tab.Header))
	}
	if !strings.Contains(tab.Title, "Fig. 6c") {
		t.Errorf("title %q", tab.Title)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("T", []string{"a", "bb"})
	tab.AddRow([]string{"1"}) // short row gets padded
	tab.AddRow([]string{"22", "333"})
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "333") {
		t.Errorf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? no: title+header+rule+2 rows = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
}

func TestAblationGradient(t *testing.T) {
	tab, err := AblationGradient(context.Background(), tinyConfig(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
	// The gradient-guided policy should never need more total
	// re-executions than uniform lockstep on these seeds.
	var guided, uniform string
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "gradient") {
			guided = row[1]
		} else {
			uniform = row[1]
		}
	}
	if guided == "" || uniform == "" {
		t.Fatalf("rows missing: %v", tab.Rows)
	}
	var g, u int
	if _, err := fmt.Sscan(guided, &g); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(uniform, &u); err != nil {
		t.Fatal(err)
	}
	if g > u {
		t.Errorf("gradient-guided uses %d re-executions, uniform %d", g, u)
	}
}

func TestAblationSlack(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := AblationSlack(context.Background(), tinyConfig(), Point{SER: 1e-10, HPD: 25, ArC: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
}

func TestAblationMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := AblationMapping(context.Background(), tinyConfig(), Point{SER: 1e-11, HPD: 25, ArC: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
}

func TestPolicyComparison(t *testing.T) {
	tab, err := PolicyComparison(context.Background(), tinyConfig(), 1e-10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3 policies", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[1], "/") {
			t.Errorf("row %v missing feasibility fraction", row)
		}
	}
}

func TestSimulationStudy(t *testing.T) {
	tab, err := SimulationStudy(context.Background(), tinyConfig(), 1e-11, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (one per slack model)", len(tab.Rows))
	}
	// The per-process model is the conservative end-to-end bound: no
	// within-budget pattern may miss a deadline or exceed the bound.
	ppRow := tab.Rows[1]
	if ppRow[0] != "per-process" {
		t.Fatalf("row order changed: %v", tab.Rows)
	}
	if ppRow[1] != "0" { // some design exists
		var ratio float64
		if _, err := fmt.Sscan(ppRow[3], &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio > 1.0+1e-9 {
			t.Errorf("per-process bound violated: max ratio %v", ratio)
		}
		if !strings.HasPrefix(ppRow[4], "0/") {
			t.Errorf("per-process designs missed deadlines: %v", ppRow[4])
		}
	}
}

func TestRuntimeStudy(t *testing.T) {
	tab, err := RuntimeStudy(context.Background(), tinyConfig(), 1e-11, 25)
	if err != nil {
		t.Fatal(err)
	}
	// tinyConfig has one process count; one row per strategy.
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (MIN/MAX/OPT)", len(tab.Rows))
	}
	for i, want := range []string{"MIN", "MAX", "OPT"} {
		if tab.Rows[i][0] != "20" || tab.Rows[i][1] != want {
			t.Errorf("row %d = %v, want processes 20 strategy %s", i, tab.Rows[i], want)
		}
	}
	// OPT revisits mappings constantly: the engine must report a non-zero
	// cache hit rate and schedule builds.
	opt := tab.Rows[2]
	if opt[6] == "0.0%" {
		t.Errorf("OPT cache hit rate = %v, want > 0", opt[6])
	}
	if opt[8] == "0" {
		t.Errorf("OPT schedule builds = %v, want > 0", opt[8])
	}
}

func TestAcceptanceMultiGraph(t *testing.T) {
	cfg := tinyConfig()
	cfg.Graphs = 2
	r, err := Acceptance(context.Background(), cfg, Point{SER: 1e-11, HPD: 25, ArC: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 {
		t.Fatalf("rates for %d strategies", len(r))
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := NewTable("Title", []string{"a", "b"})
	tab.AddRow([]string{"1", "with|pipe"})
	tab.AddRow([]string{"2"})
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**Title**", "| a | b |", "| --- | --- |", `with\|pipe`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestAblationBus(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := AblationBus(context.Background(), tinyConfig(), Point{SER: 1e-11, HPD: 25, ArC: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tab.Rows))
	}
	// The idealized bus is an upper bound on OPT acceptance.
	var tdma, ideal float64
	fmt.Sscan(tab.Rows[0][3], &tdma)
	fmt.Sscan(tab.Rows[1][3], &ideal)
	if ideal < tdma {
		t.Errorf("instantaneous bus accepted less than TDMA: %v vs %v", ideal, tdma)
	}
}

// TestAcceptanceStatsFailFast is the regression test for the batch
// grinding on after a failure: with an intentionally invalid point (the
// generator rejects a negative SER immediately) and a single worker, the
// first job's error must stop the remaining jobs from starting.
func TestAcceptanceStatsFailFast(t *testing.T) {
	cfg := Config{Apps: 50, Procs: []int{20}, Seed: 3, Workers: 1}
	before := jobsStarted.Load()
	_, _, err := AcceptanceStats(context.Background(), cfg, Point{SER: -1, HPD: 25, ArC: 20})
	if err == nil {
		t.Fatal("want error for negative SER")
	}
	if !strings.Contains(err.Error(), "SER") {
		t.Errorf("unexpected error: %v", err)
	}
	started := jobsStarted.Load() - before
	// With one worker the launch loop observes the stop flag before
	// admitting the second job; allow minimal in-flight slack rather than
	// pinning scheduler timing.
	if started > 2 {
		t.Errorf("%d of %d jobs started after the first failure", started, cfg.Apps)
	}
}

// TestAcceptanceRunWorkers: in-run parallelism yields the same acceptance
// rates as the sequential per-run path.
func TestAcceptanceRunWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the batch twice")
	}
	pt := Point{SER: 1e-11, HPD: 25, ArC: 20}
	want, err := Acceptance(context.Background(), tinyConfig(), pt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.RunWorkers = 3
	got, err := Acceptance(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	for s, rate := range want {
		if got[s] != rate {
			t.Errorf("%s: rate %v with RunWorkers, want %v", s, got[s], rate)
		}
	}
}
