// Package specio reads and writes the JSON problem specification consumed
// by cmd/ftopt and produced by cmd/appgen: an application, a platform and
// a reliability goal in one document.
package specio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sfp"
)

// Spec is one complete design problem.
type Spec struct {
	Application *appmodel.Application
	Platform    *platform.Platform
	// Gamma is γ in the reliability goal ρ = 1 − γ per time unit.
	Gamma float64
	// TauMs is the time unit τ in milliseconds (default: one hour).
	TauMs float64
}

// Goal returns the sfp.Goal of the spec, defaulting τ to one hour.
func (s *Spec) Goal() sfp.Goal {
	tau := s.TauMs
	if tau <= 0 {
		tau = 3.6e6
	}
	return sfp.Goal{Gamma: s.Gamma, Tau: tau}
}

// Validate checks the complete problem.
func (s *Spec) Validate() error {
	if s.Application == nil || s.Platform == nil {
		return fmt.Errorf("specio: missing application or platform")
	}
	if err := s.Application.Validate(); err != nil {
		return err
	}
	if err := s.Platform.Validate(s.Application.NumProcesses()); err != nil {
		return err
	}
	return s.Goal().Validate()
}

// Write emits the spec as indented JSON.
func Write(w io.Writer, s *Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("specio: encode: %w", err)
	}
	return nil
}

// Read decodes and validates a spec.
func Read(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("specio: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
