package specio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/paper"
)

// FuzzRead feeds arbitrary bytes into the spec decoder: it must never
// panic, and anything it accepts must satisfy the validated invariants.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, &Spec{
		Application: paper.Fig3Application(),
		Platform:    paper.Fig3Platform(),
		Gamma:       paper.Fig3Gamma,
	})
	f.Add(buf.String())
	f.Add(`{"Gamma": 0.5}`)
	f.Add(`not json`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted specs are fully valid.
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted invalid spec: %v", err)
		}
		if spec.Goal().Tau <= 0 {
			t.Fatal("accepted non-positive tau")
		}
	})
}
