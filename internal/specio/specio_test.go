package specio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/paper"
)

func fig1Spec() *Spec {
	return &Spec{
		Application: paper.Fig1Application(),
		Platform:    paper.Fig1Platform(),
		Gamma:       paper.Fig1Gamma,
	}
}

func TestRoundTrip(t *testing.T) {
	s := fig1Spec()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Application.Name != s.Application.Name {
		t.Errorf("application name %q", got.Application.Name)
	}
	if len(got.Platform.Nodes) != 2 {
		t.Errorf("platform nodes %d", len(got.Platform.Nodes))
	}
	if got.Goal().Gamma != paper.Fig1Gamma {
		t.Errorf("gamma %v", got.Goal().Gamma)
	}
	// τ defaults to one hour.
	if got.Goal().Tau != 3.6e6 {
		t.Errorf("tau %v, want one hour", got.Goal().Tau)
	}
}

func TestReadRejects(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Error("want error for malformed JSON")
	}
	if _, err := Read(strings.NewReader(`{"Gamma": 0.5}`)); err == nil {
		t.Error("want error for missing application")
	}
	// Valid JSON, structurally broken platform.
	s := fig1Spec()
	s.Platform.Nodes[0].Versions[0].Cost = -1
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("want validation error for negative cost")
	}
}

func TestValidateGoal(t *testing.T) {
	s := fig1Spec()
	s.Gamma = 0
	if err := s.Validate(); err == nil {
		t.Error("want error for zero gamma")
	}
	s.Gamma = 1e-5
	s.TauMs = 60000 // explicit one minute
	if s.Goal().Tau != 60000 {
		t.Error("explicit tau ignored")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}
