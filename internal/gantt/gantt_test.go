package gantt

import (
	"strings"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/ttp"
)

// fig4aChart builds the chart for the Fig. 4a schedule.
func fig4aChart(t *testing.T) *Chart {
	t.Helper()
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	mapping := []int{0, 0, 1, 1}
	s, err := sched.Build(sched.Input{
		App:     app,
		Arch:    ar,
		Mapping: mapping,
		Ks:      []int{1, 1},
		Bus:     ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Chart{
		App:      app,
		Arch:     ar,
		Mapping:  mapping,
		Schedule: s,
		Deadline: paper.Fig1Deadline,
	}
}

func TestRenderFig4a(t *testing.T) {
	c := fig4aChart(t)
	out := c.String()
	// One row per node, one for the bus, one axis line.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "N1^2") || !strings.HasPrefix(lines[1], "N2^2") {
		t.Errorf("node rows malformed:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "bus") {
		t.Errorf("missing bus row:\n%s", out)
	}
	for _, want := range []string{"P1", "P2", "P3", "P4", "m2", "m3", "360 ms", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDeadlineMarker(t *testing.T) {
	c := fig4aChart(t)
	c.Deadline = 500 // beyond the schedule: marker must appear
	out := c.String()
	if !strings.Contains(out, "|") {
		t.Errorf("no deadline marker:\n%s", out)
	}
	if !strings.Contains(out, "500 ms") {
		t.Errorf("horizon should extend to the deadline:\n%s", out)
	}
}

func TestRenderWidths(t *testing.T) {
	c := fig4aChart(t)
	for _, w := range []int{20, 72, 200} {
		c.Width = w
		out := c.String()
		if len(out) == 0 || strings.Contains(out, "error") {
			t.Errorf("width %d failed:\n%s", w, out)
		}
	}
}

func TestRenderErrors(t *testing.T) {
	var c Chart
	if err := c.Render(&strings.Builder{}); err == nil {
		t.Error("want error for incomplete chart")
	}
}

func TestRenderNoBus(t *testing.T) {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0]})
	ar.Levels[0] = 2
	s, err := sched.Build(sched.Input{App: app, Arch: ar, Mapping: []int{0}, Ks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	c := &Chart{App: app, Arch: ar, Mapping: []int{0}, Schedule: s, Deadline: 360}
	out := c.String()
	if strings.Contains(out, "bus") {
		t.Errorf("monoprocessor chart should have no bus row:\n%s", out)
	}
	// Slack region: 100 fault-free + 240 slack, so dots dominate the row.
	if strings.Count(out, ".") < 10 {
		t.Errorf("recovery slack not visible:\n%s", out)
	}
}
