// Package gantt renders static schedules as ASCII Gantt charts, the same
// visual the paper uses in Figs. 2–4: one row per computation node (plus
// the bus), time flowing left to right, process executions as labelled
// bars and the shared recovery slack as a shaded region after the last
// process of each node.
package gantt

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Chart lays out one schedule for rendering.
type Chart struct {
	App      *appmodel.Application
	Arch     *platform.Architecture
	Mapping  []int
	Schedule *sched.Schedule
	// Width is the number of character cells of the time axis (default
	// 72).
	Width int
	// Deadline, when positive, draws a '|' marker at the deadline.
	Deadline float64
}

// Render writes the chart. The time axis is scaled so that the later of
// the schedule length and the deadline fits in Width cells.
func (c *Chart) Render(w io.Writer) error {
	if c.Schedule == nil || c.Arch == nil || c.App == nil {
		return fmt.Errorf("gantt: incomplete chart")
	}
	width := c.Width
	if width <= 0 {
		width = 72
	}
	horizon := c.Schedule.Length
	if c.Deadline > horizon {
		horizon = c.Deadline
	}
	if horizon <= 0 {
		return fmt.Errorf("gantt: empty schedule")
	}
	scale := float64(width) / horizon
	cell := func(t float64) int {
		x := int(math.Round(t * scale))
		if x < 0 {
			x = 0
		}
		if x > width {
			x = width
		}
		return x
	}

	var sb strings.Builder
	// One row per node.
	for j, node := range c.Arch.Nodes {
		row := make([]byte, width+1)
		for i := range row {
			row[i] = ' '
		}
		var lastWorst, lastFinish float64
		for _, pid := range c.Schedule.NodeOrder[j] {
			s, e := cell(c.Schedule.Start[pid]), cell(c.Schedule.Finish[pid])
			if e <= s {
				e = s + 1
			}
			label := c.App.Procs[pid].Name
			for x := s; x < e && x < len(row); x++ {
				idx := x - s
				if idx < len(label) {
					row[x] = label[idx]
				} else {
					row[x] = '='
				}
			}
			if c.Schedule.Finish[pid] > lastFinish {
				lastFinish = c.Schedule.Finish[pid]
			}
			if c.Schedule.WorstFinish[pid] > lastWorst {
				lastWorst = c.Schedule.WorstFinish[pid]
			}
		}
		// Shared recovery slack after the last fault-free finish.
		for x := cell(lastFinish); x < cell(lastWorst) && x < len(row); x++ {
			if row[x] == ' ' {
				row[x] = '.'
			}
		}
		if c.Deadline > 0 {
			x := cell(c.Deadline)
			if x < len(row) && (row[x] == ' ' || row[x] == '.') {
				row[x] = '|'
			}
		}
		fmt.Fprintf(&sb, "%-6s %s\n", fmt.Sprintf("%s^%d", node.Name, c.Arch.Levels[j]), string(row))
	}
	// Bus row.
	if hasBusTraffic(c.Schedule) {
		row := make([]byte, width+1)
		for i := range row {
			row[i] = ' '
		}
		type msg struct {
			start float64
			name  string
			s, e  int
		}
		var msgs []msg
		for _, e := range c.App.Edges {
			if math.IsNaN(c.Schedule.MsgStart[e.ID]) {
				continue
			}
			msgs = append(msgs, msg{
				start: c.Schedule.MsgStart[e.ID],
				name:  e.Name,
				s:     cell(c.Schedule.MsgStart[e.ID]),
				e:     cell(c.Schedule.MsgEnd[e.ID]),
			})
		}
		sort.Slice(msgs, func(a, b int) bool { return msgs[a].start < msgs[b].start })
		for _, m := range msgs {
			if m.e <= m.s {
				m.e = m.s + 1
			}
			// Draw the bar, letting the label overflow into blank cells so
			// that short transmission windows stay identifiable.
			for x := m.s; x < len(row); x++ {
				idx := x - m.s
				if idx < len(m.name) {
					if x >= m.e && row[x] != ' ' {
						break // ran into the next bar
					}
					row[x] = m.name[idx]
				} else if x < m.e {
					row[x] = '#'
				} else {
					break
				}
			}
		}
		if c.Deadline > 0 {
			x := cell(c.Deadline)
			if x < len(row) && row[x] == ' ' {
				row[x] = '|'
			}
		}
		fmt.Fprintf(&sb, "%-6s %s\n", "bus", string(row))
	}
	// Time axis.
	fmt.Fprintf(&sb, "%-6s 0%s%.0f ms\n", "", strings.Repeat("-", max(1, width-len(fmt.Sprintf("%.0f ms", horizon)))), horizon)
	_, err := io.WriteString(w, sb.String())
	return err
}

func hasBusTraffic(s *sched.Schedule) bool {
	for _, v := range s.MsgStart {
		if !math.IsNaN(v) {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}
