package appmodel

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// diamond builds the Fig. 1 application shape: P1 -> {P2, P3} -> P4.
func diamond(t *testing.T) *Application {
	t.Helper()
	b := NewBuilder("A")
	b.Graph("G1", 360)
	p1 := b.Process("P1", 15)
	p2 := b.Process("P2", 15)
	p3 := b.Process("P3", 15)
	p4 := b.Process("P4", 15)
	b.Edge("m1", p1, p2, 4)
	b.Edge("m2", p1, p3, 4)
	b.Edge("m3", p2, p4, 4)
	b.Edge("m4", p3, p4, 4)
	return b.MustBuild()
}

func TestBuilderDiamond(t *testing.T) {
	a := diamond(t)
	if a.NumProcesses() != 4 || len(a.Edges) != 4 || len(a.Graphs) != 1 {
		t.Fatalf("unexpected sizes: %d procs, %d edges, %d graphs", a.NumProcesses(), len(a.Edges), len(a.Graphs))
	}
	if a.EffectivePeriod() != 360 {
		t.Errorf("EffectivePeriod = %v, want 360 (largest deadline)", a.EffectivePeriod())
	}
	a.Period = 500
	if a.EffectivePeriod() != 500 {
		t.Errorf("EffectivePeriod = %v, want explicit 500", a.EffectivePeriod())
	}
}

func TestTopoOrder(t *testing.T) {
	a := diamond(t)
	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[ProcID]int)
	for i, p := range order {
		pos[p] = i
	}
	for _, e := range a.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Errorf("edge %q violates topological order", e.Name)
		}
	}
}

func TestValidateCycle(t *testing.T) {
	a := diamond(t)
	// Add a back edge P4 -> P1 to create a cycle.
	a.Edges = append(a.Edges, Edge{ID: 4, Name: "back", Src: 3, Dst: 0})
	a.Graphs[0].Edges = append(a.Graphs[0].Edges, 4)
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("want cycle error, got %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Application)
		want   string
	}{
		{"non-dense proc ID", func(a *Application) { a.Procs[1].ID = 7 }, "dense"},
		{"negative mu", func(a *Application) { a.Procs[0].Mu = -1 }, "negative recovery"},
		{"self loop", func(a *Application) { a.Edges[0].Dst = a.Edges[0].Src }, "self-loop"},
		{"negative size", func(a *Application) { a.Edges[0].Size = -1 }, "negative size"},
		{"bad deadline", func(a *Application) { a.Graphs[0].Deadline = 0 }, "deadline"},
		{"unknown edge proc", func(a *Application) { a.Edges[2].Dst = 99 }, "unknown process"},
		{"orphan process", func(a *Application) {
			a.Procs = append(a.Procs, Process{ID: 4, Name: "orphan"})
		}, "no graph"},
		{"duplicate membership", func(a *Application) {
			a.Graphs = append(a.Graphs, Graph{Name: "G2", Deadline: 100, Procs: []ProcID{0}})
		}, "belongs to graphs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := diamond(t)
			c.mutate(a)
			err := a.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestSourcesSinks(t *testing.T) {
	a := diamond(t)
	if got := a.Sources(); !reflect.DeepEqual(got, []ProcID{0}) {
		t.Errorf("Sources = %v, want [0]", got)
	}
	if got := a.Sinks(); !reflect.DeepEqual(got, []ProcID{3}) {
		t.Errorf("Sinks = %v, want [3]", got)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	a := diamond(t)
	succ := a.Successors()
	if len(succ[0]) != 2 || len(succ[3]) != 0 {
		t.Errorf("unexpected successors: %v", succ)
	}
	pred := a.Predecessors()
	if len(pred[0]) != 0 || len(pred[3]) != 2 {
		t.Errorf("unexpected predecessors: %v", pred)
	}
}

func TestCriticalPathLengths(t *testing.T) {
	a := diamond(t)
	// Unit process weights, zero edge weights: P1 has chain length 3
	// (P1,P2,P4 or P1,P3,P4), P4 has 1.
	cpl, err := a.CriticalPathLengths(
		func(ProcID) float64 { return 1 },
		func(Edge) float64 { return 0 },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 2, 1}
	if !reflect.DeepEqual(cpl, want) {
		t.Errorf("cpl = %v, want %v", cpl, want)
	}
	// Edge weights count too.
	cpl, err = a.CriticalPathLengths(
		func(ProcID) float64 { return 1 },
		func(Edge) float64 { return 10 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if cpl[0] != 23 {
		t.Errorf("cpl[P1] = %v, want 23 (3 procs + 2 edges)", cpl[0])
	}
}

func TestGraphOf(t *testing.T) {
	b := NewBuilder("two")
	b.Graph("G1", 100)
	p1 := b.Process("P1", 0)
	b.Graph("G2", 200)
	p2 := b.Process("P2", 0)
	a := b.MustBuild()
	gi := a.GraphOf()
	if gi[p1] != 0 || gi[p2] != 1 {
		t.Errorf("GraphOf = %v", gi)
	}
}

func TestSetUniformMu(t *testing.T) {
	a := diamond(t)
	a.SetUniformMu(5)
	for _, p := range a.Procs {
		if p.Mu != 5 {
			t.Errorf("process %q Mu = %v, want 5", p.Name, p.Mu)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := diamond(t)
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", a, got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("want error for unknown field")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("want error for malformed JSON")
	}
	// Structurally valid JSON but semantically invalid application.
	bad := `{"Name":"x","Procs":[{"ID":0,"Name":"P","Mu":0}],"Edges":[],"Graphs":[]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("want validation error for orphan process")
	}
}

// TestRandomDAGsValid generates random layered DAGs through the Builder and
// checks that Validate accepts them and TopoOrder covers all processes.
func TestRandomDAGsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder("rand")
		b.Graph("G", 1000)
		n := 2 + rng.Intn(20)
		ids := make([]ProcID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.Process("P", float64(rng.Intn(10)))
		}
		// Forward edges only: guaranteed acyclic.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					b.Edge("e", ids[i], ids[j], rng.Intn(64))
				}
			}
		}
		a, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		order, err := a.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(order) != n {
			t.Fatalf("trial %d: order covers %d of %d", trial, len(order), n)
		}
	}
}
