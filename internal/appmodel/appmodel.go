// Package appmodel defines the application model of the paper (Section 2):
// an application is a set of directed acyclic graphs whose nodes are
// non-preemptable processes and whose edges carry messages. Processes
// become ready when all their inputs have arrived and emit their outputs
// on termination.
//
// Process identifiers are dense integers, unique across the whole
// application, so that platform tables (WCETs, failure probabilities) can
// be indexed by slices.
package appmodel

import (
	"fmt"
	"sort"
)

// ProcID identifies a process, unique and dense (0..NumProcesses-1) across
// an Application.
type ProcID int

// EdgeID identifies an edge (message), unique and dense across an
// Application.
type EdgeID int

// Process is a node of a task graph. A process cannot be preempted during
// its execution (Section 2). Worst-case execution times are a property of
// the platform (they depend on the computation node and hardening level)
// and live in package platform.
type Process struct {
	ID   ProcID
	Name string
	// Mu is the worst-case recovery overhead μ in milliseconds charged
	// before each re-execution of this process (Section 3). The paper uses
	// a single μ per application in the examples and a per-process μ
	// (1–10% of WCET) in the experiments, so it is stored per process.
	Mu float64
}

// Edge is a data dependency between two processes: the output of Src is an
// input of Dst. If the two processes are mapped on different computation
// nodes, the message is transmitted over the bus.
type Edge struct {
	ID       EdgeID
	Name     string
	Src, Dst ProcID
	// Size is the worst-case message size in bytes; the bus model
	// translates it into a worst-case transmission time (Section 2).
	Size int
}

// Graph is one directed acyclic task graph G_k(V_k, E_k) with a hard
// deadline.
type Graph struct {
	Name string
	// Procs lists the IDs of the processes belonging to this graph.
	Procs []ProcID
	// Edges lists the IDs of the edges belonging to this graph. Both
	// endpoints of each edge must belong to the graph.
	Edges []EdgeID
	// Deadline is the hard deadline D in milliseconds, relative to the
	// activation of the graph.
	Deadline float64
}

// Application is a set of task graphs sharing a process/edge namespace,
// together with the timing parameters of the reliability analysis.
type Application struct {
	Name   string
	Procs  []Process
	Edges  []Edge
	Graphs []Graph
	// Period is the activation period T of the application in
	// milliseconds; the SFP analysis evaluates τ/Period iterations per
	// time unit τ. If zero, the largest graph deadline is used.
	Period float64
}

// NumProcesses returns the number of processes in the application.
func (a *Application) NumProcesses() int { return len(a.Procs) }

// EffectivePeriod returns Period, or the largest graph deadline when
// Period is unset.
func (a *Application) EffectivePeriod() float64 {
	if a.Period > 0 {
		return a.Period
	}
	var d float64
	for _, g := range a.Graphs {
		if g.Deadline > d {
			d = g.Deadline
		}
	}
	return d
}

// Validate checks the structural invariants of the application: dense
// sequential IDs, edges referencing existing distinct processes, every
// process and edge assigned to exactly one graph, acyclic graphs, positive
// deadlines, and non-negative recovery overheads.
func (a *Application) Validate() error {
	for i, p := range a.Procs {
		if p.ID != ProcID(i) {
			return fmt.Errorf("appmodel: process %q has ID %d, want dense ID %d", p.Name, p.ID, i)
		}
		if p.Mu < 0 {
			return fmt.Errorf("appmodel: process %q has negative recovery overhead %v", p.Name, p.Mu)
		}
	}
	for i, e := range a.Edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("appmodel: edge %q has ID %d, want dense ID %d", e.Name, e.ID, i)
		}
		if !a.validProc(e.Src) || !a.validProc(e.Dst) {
			return fmt.Errorf("appmodel: edge %q references unknown process (%d -> %d)", e.Name, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("appmodel: edge %q is a self-loop on process %d", e.Name, e.Src)
		}
		if e.Size < 0 {
			return fmt.Errorf("appmodel: edge %q has negative size %d", e.Name, e.Size)
		}
	}
	procGraph := make([]int, len(a.Procs))
	for i := range procGraph {
		procGraph[i] = -1
	}
	edgeGraph := make([]int, len(a.Edges))
	for i := range edgeGraph {
		edgeGraph[i] = -1
	}
	for gi, g := range a.Graphs {
		if g.Deadline <= 0 {
			return fmt.Errorf("appmodel: graph %q has non-positive deadline %v", g.Name, g.Deadline)
		}
		for _, pid := range g.Procs {
			if !a.validProc(pid) {
				return fmt.Errorf("appmodel: graph %q references unknown process %d", g.Name, pid)
			}
			if procGraph[pid] >= 0 {
				return fmt.Errorf("appmodel: process %d belongs to graphs %q and %q", pid, a.Graphs[procGraph[pid]].Name, g.Name)
			}
			procGraph[pid] = gi
		}
		for _, eid := range g.Edges {
			if int(eid) < 0 || int(eid) >= len(a.Edges) {
				return fmt.Errorf("appmodel: graph %q references unknown edge %d", g.Name, eid)
			}
			if edgeGraph[eid] >= 0 {
				return fmt.Errorf("appmodel: edge %d belongs to two graphs", eid)
			}
			edgeGraph[eid] = gi
		}
	}
	for pid, gi := range procGraph {
		if gi < 0 {
			return fmt.Errorf("appmodel: process %d (%q) belongs to no graph", pid, a.Procs[pid].Name)
		}
	}
	for eid, gi := range edgeGraph {
		if gi < 0 {
			return fmt.Errorf("appmodel: edge %d (%q) belongs to no graph", eid, a.Edges[eid].Name)
		}
		e := a.Edges[eid]
		if procGraph[e.Src] != gi || procGraph[e.Dst] != gi {
			return fmt.Errorf("appmodel: edge %q crosses graph boundaries", e.Name)
		}
	}
	if _, err := a.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func (a *Application) validProc(id ProcID) bool {
	return int(id) >= 0 && int(id) < len(a.Procs)
}

// Successors returns, for each process, the edges leaving it, indexed by
// ProcID.
func (a *Application) Successors() [][]Edge {
	succ := make([][]Edge, len(a.Procs))
	for _, e := range a.Edges {
		succ[e.Src] = append(succ[e.Src], e)
	}
	return succ
}

// Predecessors returns, for each process, the edges entering it, indexed
// by ProcID.
func (a *Application) Predecessors() [][]Edge {
	pred := make([][]Edge, len(a.Procs))
	for _, e := range a.Edges {
		pred[e.Dst] = append(pred[e.Dst], e)
	}
	return pred
}

// TopoOrder returns the process IDs in a topological order of the
// dependency relation, or an error if any graph contains a cycle. Ties are
// broken by ascending ID so the order is deterministic.
func (a *Application) TopoOrder() ([]ProcID, error) {
	indeg := make([]int, len(a.Procs))
	for _, e := range a.Edges {
		indeg[e.Dst]++
	}
	succ := a.Successors()
	var ready []ProcID
	for i := range a.Procs {
		if indeg[i] == 0 {
			ready = append(ready, ProcID(i))
		}
	}
	order := make([]ProcID, 0, len(a.Procs))
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		p := ready[0]
		ready = ready[1:]
		order = append(order, p)
		for _, e := range succ[p] {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				ready = append(ready, e.Dst)
			}
		}
	}
	if len(order) != len(a.Procs) {
		return nil, fmt.Errorf("appmodel: dependency cycle detected (%d of %d processes ordered)", len(order), len(a.Procs))
	}
	return order, nil
}

// GraphOf returns, indexed by ProcID, the index into Graphs of the graph
// each process belongs to. The application must be valid.
func (a *Application) GraphOf() []int {
	gi := make([]int, len(a.Procs))
	for i := range gi {
		gi[i] = -1
	}
	for g := range a.Graphs {
		for _, pid := range a.Graphs[g].Procs {
			gi[pid] = g
		}
	}
	return gi
}

// Sources returns the processes with no predecessors, in ID order.
func (a *Application) Sources() []ProcID {
	indeg := make([]int, len(a.Procs))
	for _, e := range a.Edges {
		indeg[e.Dst]++
	}
	var src []ProcID
	for i, d := range indeg {
		if d == 0 {
			src = append(src, ProcID(i))
		}
	}
	return src
}

// Sinks returns the processes with no successors, in ID order.
func (a *Application) Sinks() []ProcID {
	outdeg := make([]int, len(a.Procs))
	for _, e := range a.Edges {
		outdeg[e.Src]++
	}
	var snk []ProcID
	for i, d := range outdeg {
		if d == 0 {
			snk = append(snk, ProcID(i))
		}
	}
	return snk
}

// CriticalPathLengths returns, for each process, the length of the longest
// chain from that process to any sink, where each process contributes
// procWeight and each edge contributes edgeWeight. It is the "partial
// critical path" priority used by the list scheduler: higher values are
// scheduled first. The application must be acyclic.
func (a *Application) CriticalPathLengths(procWeight func(ProcID) float64, edgeWeight func(Edge) float64) ([]float64, error) {
	order, err := a.TopoOrder()
	if err != nil {
		return nil, err
	}
	succ := a.Successors()
	cpl := make([]float64, len(a.Procs))
	for i := len(order) - 1; i >= 0; i-- {
		p := order[i]
		best := 0.0
		for _, e := range succ[p] {
			v := edgeWeight(e) + cpl[e.Dst]
			if v > best {
				best = v
			}
		}
		cpl[p] = procWeight(p) + best
	}
	return cpl, nil
}

// SetUniformMu sets the recovery overhead of every process to mu, as in
// the paper's illustrative examples where a single μ is given for the
// whole application.
func (a *Application) SetUniformMu(mu float64) {
	for i := range a.Procs {
		a.Procs[i].Mu = mu
	}
}
