package appmodel

import "fmt"

// Builder incrementally constructs a valid Application. It hands out dense
// process and edge IDs and assigns them to graphs, so callers never manage
// IDs by hand.
type Builder struct {
	app      Application
	curGraph int
}

// NewBuilder returns a Builder for an application with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{app: Application{Name: name}, curGraph: -1}
}

// Graph starts a new task graph with the given name and deadline; processes
// and edges added afterwards belong to it until the next Graph call.
func (b *Builder) Graph(name string, deadline float64) *Builder {
	b.app.Graphs = append(b.app.Graphs, Graph{Name: name, Deadline: deadline})
	b.curGraph = len(b.app.Graphs) - 1
	return b
}

// Process adds a process with recovery overhead mu to the current graph and
// returns its ID.
func (b *Builder) Process(name string, mu float64) ProcID {
	if b.curGraph < 0 {
		panic("appmodel: Builder.Process called before Graph")
	}
	id := ProcID(len(b.app.Procs))
	b.app.Procs = append(b.app.Procs, Process{ID: id, Name: name, Mu: mu})
	g := &b.app.Graphs[b.curGraph]
	g.Procs = append(g.Procs, id)
	return id
}

// Edge adds a dependency edge carrying a message of the given size to the
// current graph and returns its ID. Both endpoints must already exist.
func (b *Builder) Edge(name string, src, dst ProcID, size int) EdgeID {
	if b.curGraph < 0 {
		panic("appmodel: Builder.Edge called before Graph")
	}
	id := EdgeID(len(b.app.Edges))
	b.app.Edges = append(b.app.Edges, Edge{ID: id, Name: name, Src: src, Dst: dst, Size: size})
	g := &b.app.Graphs[b.curGraph]
	g.Edges = append(g.Edges, id)
	return id
}

// Period sets the application period T.
func (b *Builder) Period(t float64) *Builder {
	b.app.Period = t
	return b
}

// Build validates and returns the application.
func (b *Builder) Build() (*Application, error) {
	a := b.app
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("appmodel: build: %w", err)
	}
	return &a, nil
}

// MustBuild is Build that panics on error, for tests and fixed examples.
func (b *Builder) MustBuild() *Application {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}
