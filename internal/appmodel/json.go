package appmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON-compatible encoding uses the exported struct fields directly;
// this file adds stream helpers that validate on decode so that malformed
// files are rejected at the boundary.

// WriteJSON writes the application as indented JSON.
func (a *Application) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("appmodel: encode %q: %w", a.Name, err)
	}
	return nil
}

// ReadJSON decodes an application from JSON and validates it.
func ReadJSON(r io.Reader) (*Application, error) {
	var a Application
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("appmodel: decode: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}
