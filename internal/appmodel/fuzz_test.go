package appmodel

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary bytes into the application decoder: no
// panics, and accepted applications pass Validate (in particular they are
// acyclic, so TopoOrder must succeed too).
func FuzzReadJSON(f *testing.F) {
	b := NewBuilder("seed")
	b.Graph("G", 100)
	p1 := b.Process("A", 1)
	p2 := b.Process("B", 1)
	b.Edge("e", p1, p2, 4)
	app := b.MustBuild()
	var buf bytes.Buffer
	_ = app.WriteJSON(&buf)
	f.Add(buf.String())
	f.Add(`{"Name":"x"}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, data string) {
		a, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if _, err := a.TopoOrder(); err != nil {
			t.Fatalf("accepted cyclic application: %v", err)
		}
	})
}
