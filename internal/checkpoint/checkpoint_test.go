package checkpoint

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func TestWorstCaseTimeFormulae(t *testing.T) {
	o := Overheads{Chi: 2, Alpha: 1}
	if got := FaultFreeTime(100, 4, o); got != 112 {
		t.Errorf("E0 = %v, want 112", got)
	}
	if got := RecoveryCost(100, 4, 5); got != 30 {
		t.Errorf("R = %v, want 30", got)
	}
	if got := WorstCaseTime(100, 4, 2, o, 5); got != 112+60 {
		t.Errorf("E2 = %v, want 172", got)
	}
	// Degenerate inputs clamp.
	if FaultFreeTime(100, 0, o) != 103 {
		t.Error("n<1 should clamp to 1")
	}
	if WorstCaseTime(100, 1, -3, o, 5) != 103 {
		t.Error("negative k should clamp to 0")
	}
}

func TestOptimalSegmentsClosedForm(t *testing.T) {
	// n0 = sqrt(k·t/(χ+α)) = sqrt(2·100/2) = 10.
	o := Overheads{Chi: 1, Alpha: 1}
	if got := OptimalSegments(100, 2, o, 5, 32); got != 10 {
		t.Errorf("n = %d, want 10", got)
	}
	// k = 0: no faults, checkpoints only cost.
	if got := OptimalSegments(100, 0, o, 5, 32); got != 1 {
		t.Errorf("k=0: n = %d, want 1", got)
	}
	// Free checkpoints: cap at maxN.
	if got := OptimalSegments(100, 2, Overheads{}, 5, 16); got != 16 {
		t.Errorf("free overheads: n = %d, want 16", got)
	}
	// Cap respected.
	if got := OptimalSegments(100, 2, o, 5, 4); got != 4 {
		t.Errorf("capped: n = %d, want 4", got)
	}
}

// TestOptimalSegmentsIsMinimum: the returned n is never worse than any
// other n in range.
func TestOptimalSegmentsIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		tt := 1 + rng.Float64()*99
		k := rng.Intn(5)
		o := Overheads{Chi: rng.Float64() * 3, Alpha: rng.Float64() * 2}
		mu := rng.Float64() * 5
		maxN := 1 + rng.Intn(31)
		best := OptimalSegments(tt, k, o, mu, maxN)
		bestCost := WorstCaseTime(tt, best, k, o, mu)
		for n := 1; n <= maxN; n++ {
			if c := WorstCaseTime(tt, n, k, o, mu); c < bestCost-1e-9 {
				t.Fatalf("trial %d: n=%d beats chosen n=%d (%v < %v)", trial, n, best, c, bestCost)
			}
		}
	}
}

func TestSegmentFailProb(t *testing.T) {
	// n = 1: unchanged.
	if got := SegmentFailProb(0.3, 1); got != 0.3 {
		t.Errorf("n=1: %v", got)
	}
	// Edges.
	if SegmentFailProb(0, 4) != 0 || SegmentFailProb(1, 4) != 1 {
		t.Error("edge probabilities mishandled")
	}
	// For small p, segment prob ≈ p/n (within rounding), and n segment
	// trials recompose pessimistically to at least p.
	p := 1e-4
	for _, n := range []int{2, 4, 8} {
		seg := SegmentFailProb(p, n)
		if seg < p/float64(n)-1e-11 {
			t.Errorf("n=%d: segment prob %v below p/n", n, seg)
		}
		recomposed := 1 - math.Pow(1-seg, float64(n))
		if recomposed < p-1e-9 {
			t.Errorf("n=%d: recomposed %v underestimates p=%v", n, recomposed, p)
		}
	}
}

func TestOverheadsValidate(t *testing.T) {
	if err := (Overheads{Chi: -1}).Validate(); err == nil {
		t.Error("want error for negative chi")
	}
	if err := (Overheads{Chi: 1, Alpha: 2}).Validate(); err != nil {
		t.Error(err)
	}
}

func fig4aSetup(t *testing.T) (*platform.Platform, *platform.Architecture, []int) {
	t.Helper()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	return pl, ar, []int{0, 0, 1, 1}
}

func TestNewPlan(t *testing.T) {
	app := paper.Fig1Application()
	_, ar, mapping := fig4aSetup(t)
	o := Overheads{Chi: 3, Alpha: 2}
	plan, err := NewPlan(app, ar, mapping, []int{1, 1}, o, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pid, n := range plan.Segments {
		if n < 1 || n > 8 {
			t.Errorf("process %d: %d segments", pid, n)
		}
		if plan.ExtraExec[pid] != float64(n-1)*5 {
			t.Errorf("process %d: extra %v", pid, plan.ExtraExec[pid])
		}
		wcet := ar.Version(mapping[pid]).WCET[pid]
		want := wcet/float64(n) + app.Procs[pid].Mu
		if math.Abs(plan.Recovery[pid]-want) > 1e-12 {
			t.Errorf("process %d: recovery %v, want %v", pid, plan.Recovery[pid], want)
		}
	}
	// Bad inputs.
	if _, err := NewPlan(app, ar, []int{0}, []int{1, 1}, o, 8); err == nil {
		t.Error("want error for short mapping")
	}
	if _, err := NewPlan(app, ar, []int{0, 0, 1, 9}, []int{1, 1}, o, 8); err == nil {
		t.Error("want error for bad mapping")
	}
	if _, err := NewPlan(app, ar, mapping, []int{1, 1}, Overheads{Chi: -1}, 8); err == nil {
		t.Error("want error for bad overheads")
	}
}

func TestNodeSegmentProbs(t *testing.T) {
	app := paper.Fig1Application()
	_, ar, mapping := fig4aSetup(t)
	plan, err := NewPlan(app, ar, mapping, []int{1, 1}, Overheads{Chi: 1, Alpha: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := NodeSegmentProbs(app, ar, mapping, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 hosts P1 and P2: segment count sums match.
	want0 := plan.Segments[0] + plan.Segments[1]
	if len(probs[0]) != want0 {
		t.Errorf("node 0: %d segment probs, want %d", len(probs[0]), want0)
	}
}

// TestEvaluateCheckpointingBeatsReExecution: on the Fig. 4a architecture
// with cheap checkpoints, checkpointing yields a shorter worst-case
// schedule than plain re-execution because the recovery quantum shrinks
// from a whole process to one segment.
func TestEvaluateCheckpointingBeatsReExecution(t *testing.T) {
	app := paper.Fig1Application()
	pl, ar, mapping := fig4aSetup(t)
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}

	sol, err := Evaluate(app, ar, mapping, goal, Overheads{Chi: 1, Alpha: 1}, ttp.NewBus(2, pl.Bus.SlotLen), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatalf("checkpointing should be feasible: %+v", sol)
	}
	// Plain re-execution on the same configuration: worst case 340 ms
	// (see the sched tests). Checkpointing must beat it.
	if sol.Schedule.Length >= 340 {
		t.Errorf("checkpointed worst case %v, want < 340 (re-execution)", sol.Schedule.Length)
	}
	// Segments were actually used.
	usedSegments := false
	for _, n := range sol.Plan.Segments {
		if n > 1 {
			usedSegments = true
		}
	}
	if !usedSegments {
		t.Error("no process was checkpointed")
	}
}

// TestEvaluateExpensiveCheckpointsDegrade: with prohibitive overheads the
// planner falls back to n = 1 (plain re-execution semantics).
func TestEvaluateExpensiveCheckpointsDegrade(t *testing.T) {
	app := paper.Fig1Application()
	pl, ar, mapping := fig4aSetup(t)
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	sol, err := Evaluate(app, ar, mapping, goal, Overheads{Chi: 500, Alpha: 500}, ttp.NewBus(2, pl.Bus.SlotLen), 8)
	if err != nil {
		t.Fatal(err)
	}
	for pid, n := range sol.Plan.Segments {
		if n != 1 {
			t.Errorf("process %d: %d segments despite prohibitive overheads", pid, n)
		}
	}
}

// TestEvaluateUnreachableGoal reports unreliable instead of looping.
func TestEvaluateUnreachableGoal(t *testing.T) {
	app := paper.Fig1Application()
	pl, ar, mapping := fig4aSetup(t)
	_ = pl
	impossible := sfp.Goal{Gamma: 1e-300, Tau: paper.Hour}
	sol, err := Evaluate(app, ar, mapping, impossible, Overheads{Chi: 1, Alpha: 1}, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reliable {
		t.Error("impossible goal reported reliable")
	}
	if sol.Feasible() {
		t.Error("impossible goal reported feasible")
	}
}

func TestEvaluateValidation(t *testing.T) {
	app := paper.Fig1Application()
	_, ar, mapping := fig4aSetup(t)
	if _, err := Evaluate(app, ar, mapping, sfp.Goal{}, Overheads{}, nil, 8); err == nil {
		t.Error("want error for invalid goal")
	}
	goal := sfp.Goal{Gamma: 1e-5, Tau: paper.Hour}
	if _, err := Evaluate(app, ar, []int{9, 9, 9, 9}, goal, Overheads{}, nil, 8); err == nil {
		t.Error("want error for invalid mapping")
	}
}

// TestSharedSlackPlanTargetsQuantum: under shared slack only the
// quantum-defining processes should be segmented; small processes stay
// at n = 1.
func TestSharedSlackPlanTargetsQuantum(t *testing.T) {
	app := paper.Fig1Application()
	_, ar, mapping := fig4aSetup(t)
	plan, err := NewSharedSlackPlan(app, ar, mapping, []int{1, 1}, Overheads{Chi: 1, Alpha: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The recovery quantum of each node must have shrunk below the
	// single-segment recovery cost of its largest process.
	for j := 0; j < 2; j++ {
		var maxRec, largestT float64
		for pid := range mapping {
			if mapping[pid] != j {
				continue
			}
			if plan.Recovery[pid] > maxRec {
				maxRec = plan.Recovery[pid]
			}
			if w := ar.Version(j).WCET[pid]; w > largestT {
				largestT = w
			}
		}
		if maxRec >= largestT+app.Procs[0].Mu {
			t.Errorf("node %d: quantum %v did not shrink below %v", j, maxRec, largestT+app.Procs[0].Mu)
		}
	}
}

// TestSharedSlackPlanZeroK: with no re-executions, nothing is segmented.
func TestSharedSlackPlanZeroK(t *testing.T) {
	app := paper.Fig1Application()
	_, ar, mapping := fig4aSetup(t)
	plan, err := NewSharedSlackPlan(app, ar, mapping, []int{0, 0}, Overheads{Chi: 1, Alpha: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pid, n := range plan.Segments {
		if n != 1 {
			t.Errorf("process %d segmented with k=0", pid)
		}
	}
}

// TestSharedSlackPlanValidation mirrors the NewPlan error paths.
func TestSharedSlackPlanValidation(t *testing.T) {
	app := paper.Fig1Application()
	_, ar, _ := fig4aSetup(t)
	if _, err := NewSharedSlackPlan(app, ar, []int{0}, []int{1, 1}, Overheads{}, 8); err == nil {
		t.Error("want error for short mapping")
	}
	if _, err := NewSharedSlackPlan(app, ar, []int{0, 0, 0, 9}, []int{1, 1}, Overheads{}, 8); err == nil {
		t.Error("want error for bad mapping")
	}
	if _, err := NewSharedSlackPlan(app, ar, []int{0, 0, 1, 1}, []int{1, 1}, Overheads{Chi: -1}, 8); err == nil {
		t.Error("want error for bad overheads")
	}
}
