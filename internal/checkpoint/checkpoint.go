// Package checkpoint extends the re-execution recovery of the paper with
// checkpointing, the refinement the same authors develop in their
// companion work (Pop, Izosimov, Eles, Peng — "Design Optimization of
// Time- and Cost-Constrained Fault-Tolerant Embedded Systems with
// Checkpointing and Replication", IEEE TVLSI 2009 — reference [15] of the
// paper).
//
// A process of WCET t is divided into n equal execution segments. At the
// end of each segment a checkpoint is saved (overhead χ) after an error
// detection step (overhead α). When a transient fault strikes, only the
// current segment is re-executed after the recovery overhead μ, instead
// of the whole process:
//
//	fault-free time:  E₀(n) = t + n·(χ + α)
//	per-fault cost:   R(n)  = t/n + μ
//	worst case:       E_k(n) = E₀(n) + k·R(n)
//
// More checkpoints shrink the recovery cost but inflate the fault-free
// time; the optimum (their equation (4)) is n⁰ = √(k·t / (χ+α)), which
// OptimalSegments evaluates with integer rounding.
//
// On the reliability side each segment execution is an independent
// Bernoulli trial: a process that fails a full execution with probability
// p fails one of its n segments with probability 1 − (1−p)^(1/n), rounded
// up for pessimism. The SFP analysis of package sfp then applies
// unchanged with segments in place of processes, because its f-fault
// scenarios are combinations with repetitions over execution units.
package checkpoint

import (
	"fmt"
	"math"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/prob"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Overheads are the per-process checkpointing overheads in milliseconds.
type Overheads struct {
	// Chi is the checkpoint-saving overhead χ per checkpoint.
	Chi float64
	// Alpha is the error-detection overhead α per segment.
	Alpha float64
}

// Validate checks the overheads.
func (o Overheads) Validate() error {
	if o.Chi < 0 || o.Alpha < 0 {
		return fmt.Errorf("checkpoint: negative overheads %+v", o)
	}
	return nil
}

// FaultFreeTime returns E₀(n) = t + n·(χ+α): the execution time with n
// segments and no faults.
func FaultFreeTime(t float64, n int, o Overheads) float64 {
	if n < 1 {
		n = 1
	}
	return t + float64(n)*(o.Chi+o.Alpha)
}

// RecoveryCost returns R(n) = t/n + μ: the worst-case cost of recovering
// from one fault with n segments.
func RecoveryCost(t float64, n int, mu float64) float64 {
	if n < 1 {
		n = 1
	}
	return t/float64(n) + mu
}

// WorstCaseTime returns E_k(n) = E₀(n) + k·R(n).
func WorstCaseTime(t float64, n, k int, o Overheads, mu float64) float64 {
	if k < 0 {
		k = 0
	}
	return FaultFreeTime(t, n, o) + float64(k)*RecoveryCost(t, n, mu)
}

// OptimalSegments returns the segment count n ∈ [1, maxN] minimizing
// E_k(n), evaluating the closed-form optimum √(k·t/(χ+α)) and its integer
// neighbours. With zero overheads it returns maxN (more checkpoints are
// then free); with k = 0 it returns 1.
func OptimalSegments(t float64, k int, o Overheads, mu float64, maxN int) int {
	if maxN < 1 {
		maxN = 1
	}
	if k <= 0 || t <= 0 {
		return 1
	}
	oh := o.Chi + o.Alpha
	if oh <= 0 {
		return maxN
	}
	n0 := math.Sqrt(float64(k) * t / oh)
	best, bestCost := 1, WorstCaseTime(t, 1, k, o, mu)
	for _, cand := range []int{int(math.Floor(n0)), int(math.Ceil(n0))} {
		if cand < 1 {
			cand = 1
		}
		if cand > maxN {
			cand = maxN
		}
		if c := WorstCaseTime(t, cand, k, o, mu); c < bestCost {
			best, bestCost = cand, c
		}
	}
	return best
}

// SegmentFailProb returns the pessimistic probability that one of the n
// equal segments of a process fails, given the probability p that a full
// execution fails: ⌈1 − (1−p)^(1/n)⌉ at the paper's 1e-11 accuracy.
func SegmentFailProb(p float64, n int) float64 {
	if n <= 1 {
		return p
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	seg := -math.Expm1(math.Log1p(-p) / float64(n))
	return prob.Clamp01(prob.CeilP(seg))
}

// Plan is a checkpointing configuration for a mapped application: one
// segment count per process plus the derived scheduler overrides.
type Plan struct {
	// Segments[i] is n_i for process i.
	Segments []int
	// ExtraExec[i] is (n_i−1)·(χ+α), the execution surcharge of the
	// added checkpoint/detection pairs.
	ExtraExec []float64
	// Recovery[i] is t_i/n_i + μ_i, the per-fault recovery cost.
	Recovery []float64
}

// NewPlan chooses the segment counts for every process of a mapped
// application: the closed-form optimum for the expected per-node fault
// count ks[j], bounded by maxSegments.
func NewPlan(app *appmodel.Application, ar *platform.Architecture, mapping []int, ks []int, o Overheads, maxSegments int) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if maxSegments < 1 {
		maxSegments = 1
	}
	n := app.NumProcesses()
	if len(mapping) != n {
		return nil, fmt.Errorf("checkpoint: mapping covers %d of %d processes", len(mapping), n)
	}
	p := &Plan{
		Segments:  make([]int, n),
		ExtraExec: make([]float64, n),
		Recovery:  make([]float64, n),
	}
	for pid := 0; pid < n; pid++ {
		j := mapping[pid]
		if j < 0 || j >= len(ar.Nodes) {
			return nil, fmt.Errorf("checkpoint: process %d mapped to invalid node %d", pid, j)
		}
		v := ar.Version(j)
		if v == nil {
			return nil, fmt.Errorf("checkpoint: node %d has no selected version", j)
		}
		t := v.WCET[pid]
		mu := app.Procs[pid].Mu
		k := 0
		if j < len(ks) {
			k = ks[j]
		}
		seg := OptimalSegments(t, k, o, mu, maxSegments)
		p.Segments[pid] = seg
		// The paper's base WCET already includes one error-detection and
		// result-commit step (Section 3), so n segments add n−1 extra
		// checkpoint/detection pairs.
		p.ExtraExec[pid] = float64(seg-1) * (o.Chi + o.Alpha)
		p.Recovery[pid] = RecoveryCost(t, seg, mu)
	}
	return p, nil
}

// NewSharedSlackPlan chooses segment counts for the *shared* recovery
// slack model of the paper's scheduler, where a node's slack is
// k_j × max_i (recovery_i): only the quantum-defining processes are worth
// checkpointing, because every process pays the fault-free overhead
// n·(χ+α) while the slack shrinks once per node. Starting from n_i = 1,
// the planner repeatedly finds the process defining its node's recovery
// quantum and adds a segment to it while the node's worst-case gain
// k·Δquantum exceeds the χ+α surcharge.
func NewSharedSlackPlan(app *appmodel.Application, ar *platform.Architecture, mapping []int, ks []int, o Overheads, maxSegments int) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if maxSegments < 1 {
		maxSegments = 1
	}
	n := app.NumProcesses()
	if len(mapping) != n {
		return nil, fmt.Errorf("checkpoint: mapping covers %d of %d processes", len(mapping), n)
	}
	plan := &Plan{
		Segments:  make([]int, n),
		ExtraExec: make([]float64, n),
		Recovery:  make([]float64, n),
	}
	t := make([]float64, n)
	for pid := 0; pid < n; pid++ {
		j := mapping[pid]
		if j < 0 || j >= len(ar.Nodes) {
			return nil, fmt.Errorf("checkpoint: process %d mapped to invalid node %d", pid, j)
		}
		v := ar.Version(j)
		if v == nil {
			return nil, fmt.Errorf("checkpoint: node %d has no selected version", j)
		}
		t[pid] = v.WCET[pid]
		plan.Segments[pid] = 1
		plan.Recovery[pid] = RecoveryCost(t[pid], 1, app.Procs[pid].Mu)
	}
	oh := o.Chi + o.Alpha
	for j := range ar.Nodes {
		k := 0
		if j < len(ks) {
			k = ks[j]
		}
		if k == 0 {
			continue // no faults to recover: checkpoints are pure cost
		}
		for {
			// Find the quantum-defining process on node j.
			worst := -1
			for pid := 0; pid < n; pid++ {
				if mapping[pid] != j {
					continue
				}
				if worst < 0 || plan.Recovery[pid] > plan.Recovery[worst] {
					worst = pid
				}
			}
			if worst < 0 || plan.Segments[worst] >= maxSegments {
				break
			}
			cur := plan.Recovery[worst]
			nextRec := RecoveryCost(t[worst], plan.Segments[worst]+1, app.Procs[worst].Mu)
			// New quantum after the split: the runner-up may take over.
			newQuantum := nextRec
			for pid := 0; pid < n; pid++ {
				if mapping[pid] != j || pid == worst {
					continue
				}
				if plan.Recovery[pid] > newQuantum {
					newQuantum = plan.Recovery[pid]
				}
			}
			gain := float64(k)*(cur-newQuantum) - oh
			if gain <= 1e-12 {
				break
			}
			plan.Segments[worst]++
			plan.Recovery[worst] = nextRec
		}
	}
	for pid := 0; pid < n; pid++ {
		// As in NewPlan: the base WCET covers one detection/commit, so n
		// segments add n−1 checkpoint/detection pairs.
		plan.ExtraExec[pid] = float64(plan.Segments[pid]-1) * oh
	}
	return plan, nil
}

// NodeSegmentProbs returns, per architecture node, the failure
// probabilities of every segment executed on it — the inputs to the SFP
// analysis under checkpointing.
func NodeSegmentProbs(app *appmodel.Application, ar *platform.Architecture, mapping []int, plan *Plan) ([][]float64, error) {
	probs := make([][]float64, len(ar.Nodes))
	for pid := 0; pid < app.NumProcesses(); pid++ {
		j := mapping[pid]
		v := ar.Version(j)
		if v == nil {
			return nil, fmt.Errorf("checkpoint: node %d has no selected version", j)
		}
		segP := SegmentFailProb(v.FailProb[pid], plan.Segments[pid])
		for s := 0; s < plan.Segments[pid]; s++ {
			probs[j] = append(probs[j], segP)
		}
	}
	return probs, nil
}

// Solution is one evaluated checkpointing configuration.
type Solution struct {
	Plan        *Plan
	Ks          []int
	Schedule    *sched.Schedule
	Reliable    bool
	Schedulable bool
}

// Feasible reports whether the solution is reliable and schedulable.
func (s *Solution) Feasible() bool { return s != nil && s.Reliable && s.Schedulable }

// Evaluate runs the full checkpointing evaluation for a fixed mapping and
// hardening selection: assign re-executions greedily on the segmented SFP
// analysis, choose segment counts, and build the schedule with segment
// recovery costs. maxSegments bounds n_i (0 = 8).
func Evaluate(app *appmodel.Application, ar *platform.Architecture, mapping []int, goal sfp.Goal, o Overheads, bus sched.Bus, maxSegments int) (*Solution, error) {
	if err := goal.Validate(); err != nil {
		return nil, err
	}
	if maxSegments <= 0 {
		maxSegments = 8
	}
	// Fixed-point between ks and segment counts: segment probabilities
	// depend on n, and the optimal n depends on k. Two rounds suffice in
	// practice (n is insensitive to k beyond small values); we iterate a
	// bounded number of times.
	ks := make([]int, len(ar.Nodes))
	var plan *Plan
	for round := 0; round < 4; round++ {
		var err error
		plan, err = NewSharedSlackPlan(app, ar, mapping, ks, o, maxSegments)
		if err != nil {
			return nil, err
		}
		probs, err := NodeSegmentProbs(app, ar, mapping, plan)
		if err != nil {
			return nil, err
		}
		analysis, err := sfp.NewAnalysis(probs, app.EffectivePeriod(), sfp.DefaultMaxK)
		if err != nil {
			return nil, err
		}
		next, ok := greedyKs(analysis, goal)
		if !ok {
			return &Solution{Plan: plan, Ks: next, Reliable: false}, nil
		}
		if equalInts(next, ks) {
			ks = next
			break
		}
		ks = next
	}
	s, err := sched.Build(sched.Input{
		App:       app,
		Arch:      ar,
		Mapping:   mapping,
		Ks:        ks,
		Bus:       bus,
		ExtraExec: plan.ExtraExec,
		Recovery:  plan.Recovery,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Plan:        plan,
		Ks:          ks,
		Schedule:    s,
		Reliable:    true,
		Schedulable: s.Schedulable(app),
	}, nil
}

// greedyKs mirrors redundancy.ReExecutionOpt on a prebuilt analysis.
func greedyKs(a *sfp.Analysis, goal sfp.Goal) ([]int, bool) {
	ks := make([]int, len(a.Nodes))
	for !a.MeetsGoal(ks, goal) {
		best, bestRel := -1, 0.0
		for j, n := range a.Nodes {
			if ks[j] >= n.MaxK() || n.FailureProb(ks[j]+1) >= n.FailureProb(ks[j]) {
				continue
			}
			ks[j]++
			rel := a.SystemReliability(ks, goal.Tau)
			ks[j]--
			if best < 0 || rel > bestRel {
				best, bestRel = j, rel
			}
		}
		if best < 0 {
			return ks, false
		}
		ks[best]++
	}
	return ks, true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
