// Package evalengine is the shared evaluation engine of the design-space
// exploration: a stateful, memoizing, instrumented replacement for the
// free-function pipeline redundancy.Evaluate → sched.Build → SFP analysis
// that dominates the runtime of the DesignStrategy (Fig. 5).
//
// The tabu search of package mapping revisits mappings constantly, and
// RedundancyOpt probes many hardening vectors that differ in a single
// node, so the same (architecture, hardening vector, mapping) triples are
// evaluated over and over. The Evaluator owns
//
//   - a memoization cache from (hardening vector, mapping) to the full
//     redundancy.Solution — the architecture node-set, goal, bus and slack
//     model are fixed per SetProblem and invalidate the cache when they
//     change;
//   - a cache of per-node SFP analyses keyed on (node type, hardening
//     level, mapped process set), so the combinatorial
//     complete-homogeneous-polynomial setup of sfp.NewNode runs once per
//     distinct configuration instead of once per probe;
//   - a sched.Workspace, so schedule builds stop re-deriving adjacency and
//     re-allocating scratch buffers on every probe;
//   - instrumentation counters (evaluations, cache hits and misses,
//     schedule builds, SFP analyses, wall time per layer) so the effect of
//     memoization is observable in the experiment reports rather than
//     asserted.
//
// Cached and fresh evaluation are bit-identical: the engine delegates to
// redundancy.ReExecutionOptAnalysis and sched.BuildInto, which run the
// exact arithmetic of the uncached path (enforced by
// TestEvaluatorMatchesFresh).
//
// An Evaluator is not safe for concurrent use; the experiment harness
// creates one per design run (core.Run does this internally).
package evalengine

import (
	"fmt"
	"time"

	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Cache-size backstops: when a cache exceeds its cap it is dropped
// wholesale (correctness is unaffected — entries are pure memoization).
// The caps are far above what a single architecture's search touches; they
// only bound pathological runs.
const (
	maxSolutionEntries = 1 << 15
	maxOptEntries      = 1 << 14
	maxSFPEntries      = 1 << 15
)

// Stats are the engine's instrumentation counters. All counters are
// cumulative since the Evaluator was created (or ResetStats). The zero
// value is a valid empty Stats; Add merges run-level stats into
// experiment-level aggregates.
type Stats struct {
	// Evaluations counts Evaluate requests, including cache hits.
	Evaluations int64
	// CacheHits and CacheMisses split Evaluations by solution-cache
	// outcome.
	CacheHits   int64
	CacheMisses int64
	// OptRuns counts RedundancyOpt requests; OptHits of them were answered
	// from the per-mapping cache without re-running the hardening search.
	OptRuns int64
	OptHits int64
	// ScheduleBuilds counts list-scheduler invocations (one per solution
	// cache miss).
	ScheduleBuilds int64
	// SFPBuilds counts per-node SFP analyses computed (sfp.NewNode);
	// SFPHits were served from the node-analysis cache.
	SFPBuilds int64
	SFPHits   int64
	// Invalidations counts SetProblem calls that dropped the solution
	// caches (architecture or model change).
	Invalidations int64
	// ReExecTime is the wall time spent in the SFP/re-execution layer
	// (node analyses plus the greedy k-assignment); SchedTime is the wall
	// time spent building schedules. Both cover cache misses only — hits
	// cost neither.
	ReExecTime time.Duration
	SchedTime  time.Duration
}

// HitRate returns the solution-cache hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	if s.Evaluations == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Evaluations)
}

// OptHitRate returns the per-mapping RedundancyOpt cache hit fraction.
func (s Stats) OptHitRate() float64 {
	if s.OptRuns == 0 {
		return 0
	}
	return float64(s.OptHits) / float64(s.OptRuns)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Evaluations += o.Evaluations
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.OptRuns += o.OptRuns
	s.OptHits += o.OptHits
	s.ScheduleBuilds += o.ScheduleBuilds
	s.SFPBuilds += o.SFPBuilds
	s.SFPHits += o.SFPHits
	s.Invalidations += o.Invalidations
	s.ReExecTime += o.ReExecTime
	s.SchedTime += o.SchedTime
}

// String renders the counters as the single-line summary printed by the
// experiment reports.
func (s Stats) String() string {
	return fmt.Sprintf("evals=%d hit=%.1f%% opt=%d/%d sched=%d sfp=%d/%d reexec=%v sched-time=%v",
		s.Evaluations, 100*s.HitRate(), s.OptHits, s.OptRuns,
		s.ScheduleBuilds, s.SFPHits, s.SFPHits+s.SFPBuilds,
		s.ReExecTime.Round(time.Microsecond), s.SchedTime.Round(time.Microsecond))
}

// Evaluator is the memoized evaluation engine for one redundancy problem
// at a time. Create one with New, move it to the next candidate
// architecture with SetProblem, and evaluate hardening vectors and
// mappings with Evaluate / RedundancyOpt. The SFP node cache survives
// SetProblem (node types recur across candidate architectures); the
// solution caches are dropped whenever an input that affects them changes.
type Evaluator struct {
	prob   redundancy.Problem
	period float64

	sols      map[string]*redundancy.Solution // (levels, mapping) → solution
	opts      map[string]*redundancy.Solution // mapping → RedundancyOpt result
	sfpByNode map[*platform.Node]map[string]*sfp.Node
	sfpCount  int

	ws       sched.Workspace
	keyBuf   []byte
	buckets  [][]int   // per arch node: pids mapped on it, ascending
	probsBuf []float64 // scratch for one node's failure probabilities

	stats Stats
}

// New returns an Evaluator for the given problem. The problem's Mapping
// field is ignored — mappings are per-call inputs.
func New(p redundancy.Problem) *Evaluator {
	e := &Evaluator{
		sols:      make(map[string]*redundancy.Solution),
		opts:      make(map[string]*redundancy.Solution),
		sfpByNode: make(map[*platform.Node]map[string]*sfp.Node),
	}
	e.set(p)
	return e
}

// Problem returns the problem the evaluator is currently bound to.
func (e *Evaluator) Problem() redundancy.Problem { return e.prob }

// Stats returns a snapshot of the instrumentation counters.
func (e *Evaluator) Stats() Stats { return e.stats }

// ResetStats zeroes the instrumentation counters (the caches are kept).
func (e *Evaluator) ResetStats() { e.stats = Stats{} }

// SetProblem rebinds the evaluator to p, invalidating exactly what the
// change invalidates: a new application or re-execution cap drops
// everything including the SFP node cache; any other change to the
// architecture node-set, goal, bus, slack model or fixed levels drops the
// solution caches only. Rebinding to an identical problem keeps all
// caches warm (core.Run relies on this when re-optimizing the mapping for
// cost on the same architecture).
func (e *Evaluator) SetProblem(p redundancy.Problem) {
	if e.prob.App != p.App || e.prob.MaxK != p.MaxK {
		e.sfpByNode = make(map[*platform.Node]map[string]*sfp.Node)
		e.sfpCount = 0
		e.dropSolutions()
	} else if !e.compatible(p) {
		e.dropSolutions()
	}
	e.set(p)
}

func (e *Evaluator) set(p redundancy.Problem) {
	e.prob = p
	e.prob.Mapping = nil
	if p.App != nil {
		e.period = p.App.EffectivePeriod()
	}
	n := 0
	if p.Arch != nil {
		n = len(p.Arch.Nodes)
	}
	if cap(e.buckets) < n {
		e.buckets = make([][]int, n)
	}
	e.buckets = e.buckets[:n]
}

func (e *Evaluator) dropSolutions() {
	e.sols = make(map[string]*redundancy.Solution)
	e.opts = make(map[string]*redundancy.Solution)
	e.stats.Invalidations++
}

// compatible reports whether the cached solutions remain valid under p:
// every input of the evaluation pipeline other than the per-call mapping
// and hardening vector must be unchanged.
func (e *Evaluator) compatible(p redundancy.Problem) bool {
	q := e.prob
	if q.Goal != p.Goal || q.Bus != p.Bus || q.Model != p.Model {
		return false
	}
	if (q.Arch == nil) != (p.Arch == nil) {
		return false
	}
	if p.Arch != nil {
		if len(q.Arch.Nodes) != len(p.Arch.Nodes) {
			return false
		}
		for j := range p.Arch.Nodes {
			if q.Arch.Nodes[j] != p.Arch.Nodes[j] {
				return false
			}
		}
	}
	if len(q.FixedLevels) != len(p.FixedLevels) {
		return false
	}
	for j := range p.FixedLevels {
		if q.FixedLevels[j] != p.FixedLevels[j] {
			return false
		}
	}
	return true
}

func (e *Evaluator) maxK() int {
	if e.prob.MaxK > 0 {
		return e.prob.MaxK
	}
	return sfp.DefaultMaxK
}

// appendInts encodes vals into dst as fixed-width big-endian 16-bit
// values; hardening levels and node indices are far below 1<<16.
func appendInts(dst []byte, vals []int) []byte {
	for _, v := range vals {
		dst = append(dst, byte(v>>8), byte(v))
	}
	return dst
}

// Evaluate returns the full solution (re-executions, schedule, cost,
// feasibility) for the given mapping and hardening vector, from cache when
// possible. The returned Solution is shared across callers and must be
// treated as immutable.
func (e *Evaluator) Evaluate(mapping, levels []int) (*redundancy.Solution, error) {
	e.stats.Evaluations++
	e.keyBuf = appendInts(appendInts(e.keyBuf[:0], levels), mapping)
	key := string(e.keyBuf)
	if sol, ok := e.sols[key]; ok {
		e.stats.CacheHits++
		return sol, nil
	}
	e.stats.CacheMisses++
	sol, err := e.evaluate(mapping, levels)
	if err != nil {
		return nil, err
	}
	if len(e.sols) >= maxSolutionEntries {
		e.sols = make(map[string]*redundancy.Solution)
	}
	e.sols[key] = sol
	return sol, nil
}

// evaluate is the cache-miss path: the exact pipeline of
// redundancy.Evaluate, with the SFP node analyses served from the node
// cache and the schedule built through the reusable workspace.
func (e *Evaluator) evaluate(mapping, levels []int) (*redundancy.Solution, error) {
	p := &e.prob
	start := time.Now()
	analysis, err := e.analysisFor(mapping, levels)
	if err != nil {
		return nil, err
	}
	ks, reliable, err := redundancy.ReExecutionOptAnalysis(analysis, p.Goal, e.maxK())
	e.stats.ReExecTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	ar := p.Arch.Clone()
	copy(ar.Levels, levels)
	start = time.Now()
	s, err := sched.BuildInto(sched.Input{
		App:     p.App,
		Arch:    ar,
		Mapping: mapping,
		Ks:      ks,
		Bus:     p.Bus,
		Model:   p.Model,
	}, &e.ws)
	e.stats.SchedTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	e.stats.ScheduleBuilds++
	return &redundancy.Solution{
		Levels:      append([]int(nil), levels...),
		Ks:          ks,
		Schedule:    s,
		Cost:        ar.Cost(),
		Reliable:    reliable,
		Schedulable: e.ws.Schedulable(s),
	}, nil
}

// analysisFor assembles the SFP analysis for (mapping, levels) from the
// per-node cache, computing and caching any node analysis not seen before.
// Process lists are collected in ascending process ID, matching the
// probability order of the uncached redundancy.ReExecutionOpt path
// bit-for-bit.
func (e *Evaluator) analysisFor(mapping, levels []int) (*sfp.Analysis, error) {
	nodes := e.prob.Arch.Nodes
	if len(levels) != len(nodes) {
		return nil, fmt.Errorf("evalengine: levels cover %d of %d nodes", len(levels), len(nodes))
	}
	for j := range e.buckets {
		e.buckets[j] = e.buckets[j][:0]
	}
	for pid, j := range mapping {
		if j < 0 || j >= len(nodes) {
			return nil, fmt.Errorf("evalengine: process %d mapped to invalid node %d", pid, j)
		}
		e.buckets[j] = append(e.buckets[j], pid)
	}
	anodes := make([]*sfp.Node, len(nodes))
	for j, n := range nodes {
		v := n.Version(levels[j])
		if v == nil {
			return nil, fmt.Errorf("evalengine: node %d has no h-version at level %d", j, levels[j])
		}
		e.keyBuf = appendInts(appendInts(e.keyBuf[:0], levels[j:j+1]), e.buckets[j])
		per := e.sfpByNode[n]
		if nd, ok := per[string(e.keyBuf)]; ok {
			e.stats.SFPHits++
			anodes[j] = nd
			continue
		}
		probs := e.probsBuf[:0]
		for _, pid := range e.buckets[j] {
			probs = append(probs, v.FailProb[pid])
		}
		e.probsBuf = probs[:0]
		nd, err := sfp.NewNode(probs, e.maxK())
		if err != nil {
			return nil, fmt.Errorf("evalengine: node %d: %w", j, err)
		}
		e.stats.SFPBuilds++
		if e.sfpCount >= maxSFPEntries {
			e.sfpByNode = make(map[*platform.Node]map[string]*sfp.Node)
			e.sfpCount = 0
			per = nil
		}
		if per == nil {
			per = make(map[string]*sfp.Node)
			e.sfpByNode[n] = per
		}
		per[string(e.keyBuf)] = nd
		e.sfpCount++
		anodes[j] = nd
	}
	return &sfp.Analysis{Nodes: anodes, Period: e.period}, nil
}

// RedundancyOpt runs the full hardening/re-execution trade-off of Section
// 6.3 for the given mapping (or evaluates the problem's FixedLevels when
// set), memoized per mapping: the tabu search of package mapping revisits
// mappings constantly, and a revisited mapping costs one cache lookup
// instead of a full hardening search. The returned Solution is shared and
// must be treated as immutable.
func (e *Evaluator) RedundancyOpt(mapping []int) (*redundancy.Solution, error) {
	e.stats.OptRuns++
	key := string(appendInts(e.keyBuf[:0], mapping))
	if sol, ok := e.opts[key]; ok {
		e.stats.OptHits++
		return sol, nil
	}
	q := e.prob
	q.Mapping = mapping
	sol, err := redundancy.RedundancyOptWith(q, func(levels []int) (*redundancy.Solution, error) {
		return e.Evaluate(mapping, levels)
	})
	if err != nil {
		return nil, err
	}
	if len(e.opts) >= maxOptEntries {
		e.opts = make(map[string]*redundancy.Solution)
	}
	e.opts[key] = sol
	return sol, nil
}
