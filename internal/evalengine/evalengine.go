// Package evalengine is the shared evaluation engine of the design-space
// exploration: a stateful, memoizing, instrumented replacement for the
// free-function pipeline redundancy.Evaluate → sched.Build → SFP analysis
// that dominates the runtime of the DesignStrategy (Fig. 5).
//
// The tabu search of package mapping revisits mappings constantly, and
// RedundancyOpt probes many hardening vectors that differ in a single
// node, so the same (architecture, hardening vector, mapping) triples are
// evaluated over and over. The engine owns
//
//   - a memoization cache from (hardening vector, mapping) to the full
//     redundancy.Solution — the architecture node-set, goal, bus and slack
//     model are fixed per SetProblem and invalidate the cache when they
//     change;
//   - a cache of per-node SFP analyses keyed on (node type, hardening
//     level, mapped process set), so the combinatorial
//     complete-homogeneous-polynomial setup of sfp.NewNode runs once per
//     distinct configuration instead of once per probe;
//   - a sched.Workspace, so schedule builds stop re-deriving adjacency and
//     re-allocating scratch buffers on every probe;
//   - instrumentation counters (evaluations, cache hits and misses,
//     schedule builds, SFP analyses, wall time per layer) so the effect of
//     memoization is observable in the experiment reports rather than
//     asserted.
//
// Cached and fresh evaluation are bit-identical: the engine delegates to
// redundancy.ReExecutionOptAnalysis and sched.BuildInto, which run the
// exact arithmetic of the uncached path (enforced by
// TestEvaluatorMatchesFresh).
//
// An Evaluator is a single-goroutine handle: its scratch buffers (schedule
// workspace, key buffer, bus) are not safe for concurrent use. The caches
// behind it are concurrency-safe and shared — NewConcurrent builds an
// engine with one Evaluator per worker over the same caches, so parallel
// design-space exploration (package mapping, package core) reuses exactly
// what the sequential path reuses. See concurrent.go.
package evalengine

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Cache-size backstops: when a cache shard exceeds its cap it is dropped
// wholesale (correctness is unaffected — entries are pure memoization).
// The caps are far above what a single architecture's search touches; they
// only bound pathological runs.
const (
	maxSolutionEntries = 1 << 15
	maxOptEntries      = 1 << 14
	maxSFPEntries      = 1 << 15
)

// Evaluator is a single-goroutine handle onto the memoized evaluation
// engine for one redundancy problem at a time. Create one with New, move
// it to the next candidate architecture with SetProblem, and evaluate
// hardening vectors and mappings with Evaluate / RedundancyOpt. The SFP
// node cache survives SetProblem (node types recur across candidate
// architectures); the solution caches are dropped whenever an input that
// affects them changes.
//
// The caches and counters live in a store that may be shared by several
// workers (see Concurrent); the per-Evaluator fields below are scratch
// owned by one goroutine.
type Evaluator struct {
	prob   redundancy.Problem
	period float64

	st *store // shared caches + instrumentation

	// span is the observability scope expensive work (RedundancyOpt cache
	// misses) is recorded under; wid is this worker's slot in the shared
	// per-worker counters. Both are per-goroutine scratch like the buffers
	// below.
	span *obs.Span
	wid  int

	ws       sched.Workspace
	keyBuf   []byte
	buckets  [][]int   // per arch node: pids mapped on it, ascending
	probsBuf []float64 // scratch for one node's failure probabilities
	// archBuf is a private clone of the problem's architecture whose
	// Levels are overwritten per evaluation; anodesBuf is the per-call
	// node-analysis slice. Neither escapes: schedules reference no
	// architecture and the analysis is consumed before the next call.
	archBuf   *platform.Architecture
	anodesBuf []*sfp.Node
	// lastMapping/lastLevels memoize the previous analysisFor call: a
	// hardening search probes many level vectors under one fixed mapping,
	// so most per-node analyses are the ones already in anodesBuf and can
	// be reused without touching the shared cache at all. Cleared on any
	// problem change or analysisFor error.
	lastMapping []int
	lastLevels  []int
}

// New returns an Evaluator for the given problem. The problem's Mapping
// field is ignored — mappings are per-call inputs.
func New(p redundancy.Problem) *Evaluator {
	e := &Evaluator{st: newStore(NewSFPCache(), 1)}
	e.set(p)
	return e
}

// SetTraceSpan installs the span this evaluator's expensive operations
// (RedundancyOpt cache misses) are recorded under as child spans; nil
// disables recording. The span is per-Evaluator scratch — in a Concurrent
// engine each worker carries its own — so callers swap it per phase the
// way they swap problems.
func (e *Evaluator) SetTraceSpan(s *obs.Span) { e.span = s }

// TraceSpan returns the currently installed span (nil when disabled).
func (e *Evaluator) TraceSpan() *obs.Span { return e.span }

// SetMetrics installs the registry the engine's duration histograms
// (evalengine.reexec, evalengine.sched, evalengine.redundancy_opt) are
// recorded into; nil disables them. The registry is store-level state,
// shared by every worker of a Concurrent engine.
func (e *Evaluator) SetMetrics(r *obs.Registry) { e.st.setMetrics(r) }

// MetricsRegistry returns the installed registry (nil when disabled).
func (e *Evaluator) MetricsRegistry() *obs.Registry { return e.st.metrics }

// SetProgress installs the live-progress publisher instrumented loops
// above the engine (the tabu search's per-iteration ticks) publish into;
// nil disables publication. Like the registry it is store-level state,
// shared by every worker of a Concurrent engine.
func (e *Evaluator) SetProgress(p *obs.Progress) { e.st.progress = p }

// Progress returns the installed publisher (nil when disabled).
func (e *Evaluator) Progress() *obs.Progress { return e.st.progress }

// Problem returns the problem the evaluator is currently bound to.
func (e *Evaluator) Problem() redundancy.Problem { return e.prob }

// Stats returns a snapshot of the instrumentation counters. When the
// evaluator is a worker of a Concurrent engine the counters cover the
// whole engine, not just this worker.
func (e *Evaluator) Stats() Stats { return e.st.snapshotStats() }

// ResetStats zeroes the instrumentation counters (the caches are kept).
func (e *Evaluator) ResetStats() { e.st.resetStats() }

// SetProblem rebinds the evaluator to p, invalidating exactly what the
// change invalidates: a new application or re-execution cap drops
// everything including the SFP node cache; any other change to the
// architecture node-set, goal, bus, slack model or fixed levels drops the
// solution caches only. Rebinding to an identical problem keeps all
// caches warm (core.Run relies on this when re-optimizing the mapping for
// cost on the same architecture).
//
// With a disk cache installed (SetPersistent), a rebind that drops the
// solution caches first flushes them under the outgoing problem's
// fingerprint and then seeds them from the incoming one's entry.
func (e *Evaluator) SetProblem(p redundancy.Problem) {
	willDrop := e.willDropSolutions(p)
	if willDrop {
		e.st.flushPersistent()
	}
	e.invalidateFor(p)
	e.set(p)
	if willDrop && e.st.persist != nil {
		fp, _ := problemFingerprint(p)
		e.st.loadPersistent(fp)
	}
}

// willDropSolutions reports whether rebinding to p will drop the solution
// caches (the condition invalidateFor acts on).
func (e *Evaluator) willDropSolutions(p redundancy.Problem) bool {
	return e.prob.App != p.App || e.prob.MaxK != p.MaxK || !e.compatible(p)
}

// invalidateFor drops whatever caches binding to p invalidates, without
// rebinding. Concurrent.SetProblem runs it once before rebinding every
// worker.
func (e *Evaluator) invalidateFor(p redundancy.Problem) {
	if e.prob.App != p.App || e.prob.MaxK != p.MaxK {
		e.st.sfp.reset()
		e.st.dropSolutions()
	} else if !e.compatible(p) {
		e.st.dropSolutions()
	}
}

func (e *Evaluator) set(p redundancy.Problem) {
	e.prob = p
	e.prob.Mapping = nil
	if p.App != nil {
		e.period = p.App.EffectivePeriod()
	}
	n := 0
	if p.Arch != nil {
		n = len(p.Arch.Nodes)
		e.archBuf = p.Arch.Clone()
	}
	if cap(e.buckets) < n {
		e.buckets = make([][]int, n)
	}
	e.buckets = e.buckets[:n]
	e.lastMapping = e.lastMapping[:0]
}

// compatible reports whether the cached solutions remain valid under p:
// every input of the evaluation pipeline other than the per-call mapping
// and hardening vector must be unchanged.
func (e *Evaluator) compatible(p redundancy.Problem) bool {
	q := e.prob
	if q.Goal != p.Goal || q.Bus != p.Bus || q.Model != p.Model {
		return false
	}
	if (q.Arch == nil) != (p.Arch == nil) {
		return false
	}
	if p.Arch != nil {
		if len(q.Arch.Nodes) != len(p.Arch.Nodes) {
			return false
		}
		for j := range p.Arch.Nodes {
			if q.Arch.Nodes[j] != p.Arch.Nodes[j] {
				return false
			}
		}
	}
	if len(q.FixedLevels) != len(p.FixedLevels) {
		return false
	}
	for j := range p.FixedLevels {
		if q.FixedLevels[j] != p.FixedLevels[j] {
			return false
		}
	}
	return true
}

func (e *Evaluator) maxK() int {
	if e.prob.MaxK > 0 {
		return e.prob.MaxK
	}
	return sfp.DefaultMaxK
}

// appendInts encodes vals into dst as fixed-width big-endian 16-bit
// values; hardening levels and node indices are far below 1<<16.
func appendInts(dst []byte, vals []int) []byte {
	for _, v := range vals {
		dst = append(dst, byte(v>>8), byte(v))
	}
	return dst
}

// Evaluate returns the full solution (re-executions, schedule, cost,
// feasibility) for the given mapping and hardening vector, from cache when
// possible. The returned Solution is shared across callers and must be
// treated as immutable.
func (e *Evaluator) Evaluate(mapping, levels []int) (*redundancy.Solution, error) {
	st := e.st
	st.stats.evaluations.Add(1)
	st.perWorker[e.wid].evaluations.Add(1)
	e.keyBuf = appendInts(appendInts(e.keyBuf[:0], levels), mapping)
	key := string(e.keyBuf)
	if sol, ok := st.sols.get(key); ok {
		st.stats.cacheHits.Add(1)
		return sol, nil
	}
	st.stats.cacheMisses.Add(1)
	st.perWorker[e.wid].cacheMisses.Add(1)
	sol, err := e.evaluate(mapping, levels)
	if err != nil {
		return nil, err
	}
	if ev := st.sols.put(key, sol); ev > 0 {
		st.stats.evictions.Add(ev)
	}
	return sol, nil
}

// evaluate is the cache-miss path: the exact pipeline of
// redundancy.Evaluate, with the SFP node analyses served from the node
// cache and the schedule built through the reusable workspace.
func (e *Evaluator) evaluate(mapping, levels []int) (*redundancy.Solution, error) {
	p := &e.prob
	start := time.Now()
	analysis, err := e.analysisFor(mapping, levels)
	if err != nil {
		return nil, err
	}
	ks, reliable, err := redundancy.ReExecutionOptAnalysis(analysis, p.Goal, e.maxK())
	e.st.stats.reExecNanos.Add(int64(time.Since(start)))
	e.st.mReexec.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	ar := e.archBuf
	copy(ar.Levels, levels)
	start = time.Now()
	// BuildIncremental replays the untouched schedule prefix from the
	// previous build in this workspace — across the tabu search's
	// single-process remaps and RedundancyOpt's single-node hardening
	// probes most of the pop sequence is unchanged — and is bit-identical
	// to a fresh BuildInto (TestBuildIncrementalMatchesBuildInto,
	// TestEvaluatorMatchesFresh).
	s, err := sched.BuildIncremental(sched.Input{
		App:     p.App,
		Arch:    ar,
		Mapping: mapping,
		Ks:      ks,
		Bus:     p.Bus,
		Model:   p.Model,
	}, &e.ws)
	e.st.stats.schedNanos.Add(int64(time.Since(start)))
	e.st.mSched.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	e.st.stats.scheduleBuilds.Add(1)
	return &redundancy.Solution{
		Levels:      append([]int(nil), levels...),
		Ks:          ks,
		Schedule:    s,
		Cost:        ar.Cost(),
		Reliable:    reliable,
		Schedulable: e.ws.Schedulable(s),
	}, nil
}

// analysisFor assembles the SFP analysis for (mapping, levels) from the
// per-node cache, computing and caching any node analysis not seen before.
// Process lists are collected in ascending process ID, matching the
// probability order of the uncached redundancy.ReExecutionOpt path
// bit-for-bit.
func (e *Evaluator) analysisFor(mapping, levels []int) (*sfp.Analysis, error) {
	nodes := e.prob.Arch.Nodes
	if len(levels) != len(nodes) {
		return nil, fmt.Errorf("evalengine: levels cover %d of %d nodes", len(levels), len(nodes))
	}
	// A repeated mapping (the common case: hardening searches probe many
	// level vectors under one fixed mapping) keeps its process buckets,
	// and every node whose level is also unchanged keeps the analysis
	// already sitting in anodesBuf — no key build, no shared-cache lookup.
	sameMap := slices.Equal(e.lastMapping, mapping) && len(e.lastLevels) == len(nodes)
	if !sameMap {
		for j := range e.buckets {
			e.buckets[j] = e.buckets[j][:0]
		}
		for pid, j := range mapping {
			if j < 0 || j >= len(nodes) {
				e.lastMapping = e.lastMapping[:0]
				return nil, fmt.Errorf("evalengine: process %d mapped to invalid node %d", pid, j)
			}
			e.buckets[j] = append(e.buckets[j], pid)
		}
	}
	if cap(e.anodesBuf) < len(nodes) {
		e.anodesBuf = make([]*sfp.Node, len(nodes))
	}
	anodes := e.anodesBuf[:len(nodes)]
	for j, n := range nodes {
		if sameMap && levels[j] == e.lastLevels[j] && anodes[j] != nil {
			// Still a cache hit observably — the shared cache holds this
			// entry and would have returned it; the memo only skips the
			// hash-and-lock round trip.
			e.st.stats.sfpHits.Add(1)
			continue
		}
		v := n.Version(levels[j])
		if v == nil {
			e.lastMapping = e.lastMapping[:0]
			return nil, fmt.Errorf("evalengine: node %d has no h-version at level %d", j, levels[j])
		}
		e.keyBuf = appendInts(appendInts(e.keyBuf[:0], levels[j:j+1]), e.buckets[j])
		if nd, ok := e.st.sfp.get(n, e.keyBuf); ok {
			e.st.stats.sfpHits.Add(1)
			anodes[j] = nd
			continue
		}
		probs := e.probsBuf[:0]
		for _, pid := range e.buckets[j] {
			probs = append(probs, v.FailProb[pid])
		}
		e.probsBuf = probs[:0]
		nd, err := sfp.NewNode(probs, e.maxK())
		if err != nil {
			e.lastMapping = e.lastMapping[:0]
			return nil, fmt.Errorf("evalengine: node %d: %w", j, err)
		}
		e.st.stats.sfpBuilds.Add(1)
		if ev := e.st.sfp.put(n, string(e.keyBuf), nd); ev > 0 {
			e.st.stats.evictions.Add(ev)
		}
		anodes[j] = nd
	}
	e.lastMapping = append(e.lastMapping[:0], mapping...)
	e.lastLevels = append(e.lastLevels[:0], levels...)
	return &sfp.Analysis{Nodes: anodes, Period: e.period}, nil
}

// RedundancyOpt runs the full hardening/re-execution trade-off of Section
// 6.3 for the given mapping (or evaluates the problem's FixedLevels when
// set), memoized per mapping: the tabu search of package mapping revisits
// mappings constantly, and a revisited mapping costs one cache lookup
// instead of a full hardening search. The returned Solution is shared and
// must be treated as immutable.
func (e *Evaluator) RedundancyOpt(mapping []int) (*redundancy.Solution, error) {
	st := e.st
	st.stats.optRuns.Add(1)
	key := string(appendInts(e.keyBuf[:0], mapping))
	if sol, ok := st.opts.get(key); ok {
		st.stats.optHits.Add(1)
		return sol, nil
	}
	// Cache miss: the full hardening search runs. Only misses get a span —
	// at ~20k opt requests per run the hits would drown the trace, while
	// the ~1k misses are exactly where the time goes.
	sp := e.span.Child("redundancy-opt", obs.Int("processes", len(mapping)))
	start := time.Now()
	q := e.prob
	q.Mapping = mapping
	sol, err := redundancy.RedundancyOptWith(q, func(levels []int) (*redundancy.Solution, error) {
		return e.Evaluate(mapping, levels)
	})
	st.mOpt.Observe(time.Since(start))
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		return nil, err
	}
	sp.SetAttr(
		obs.Float("cost", sol.Cost),
		obs.Bool("feasible", sol.Reliable && sol.Schedulable),
	)
	sp.End()
	if ev := st.opts.put(key, sol); ev > 0 {
		st.stats.evictions.Add(ev)
	}
	return sol, nil
}
