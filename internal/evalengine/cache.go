package evalengine

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/evalcache"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sfp"
)

// The caches are sharded so that workers of a Concurrent engine mostly
// lock disjoint shards. 16 shards keeps contention negligible at the
// worker counts that make sense here (≤ GOMAXPROCS) while costing nothing
// when a single goroutine owns the engine.
const nShards = 16

// shardSeed keys the shard hash. Which shard a key lands on only affects
// load balance (and which arbitrary victim an over-cap put displaces), so
// a per-process random seed is fine.
var shardSeed = maphash.MakeSeed()

// shardOf hashes the key bytes onto a shard index with the runtime's
// hardware-accelerated string hash — the same hash the shard map applies
// afterwards, and measurably cheaper than a byte-at-a-time FNV loop on
// the hot Evaluate path.
func shardOf(key string) int {
	return int(maphash.String(shardSeed, key) % nShards)
}

// solCache is a sharded string → Solution memoization cache. Concurrent
// same-key computations are benign: both workers derive the identical
// Solution from the same inputs, and last-put-wins keeps either.
type solCache struct {
	shards   [nShards]solShard
	shardCap int // per-shard entry backstop; whole shard dropped at cap
}

type solShard struct {
	mu sync.RWMutex
	m  map[string]*redundancy.Solution
}

func newSolCache(totalCap int) *solCache {
	c := &solCache{shardCap: totalCap / nShards}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*redundancy.Solution)
	}
	return c
}

func (c *solCache) get(key string) (*redundancy.Solution, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.RLock()
	sol, ok := sh.m[key]
	sh.mu.RUnlock()
	return sol, ok
}

// put inserts the entry, reporting how many existing entries were evicted
// to stay under the shard cap. Eviction is counted, one victim at a time
// (an arbitrary resident entry — the keys are content hashes, so any
// victim is as good as any other), never a silent whole-shard drop: the
// incoming entry is always kept and at most one resident is displaced.
func (c *solCache) put(key string, sol *redundancy.Solution) (evicted int64) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && len(sh.m) >= c.shardCap {
		for k := range sh.m {
			delete(sh.m, k)
			evicted++
			break
		}
	}
	sh.m[key] = sol
	sh.mu.Unlock()
	return evicted
}

func (c *solCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]*redundancy.Solution)
		sh.mu.Unlock()
	}
}

// size returns the current entry count across all shards. It takes the
// shard locks, so it is for observation (live gauges), not hot paths.
func (c *solCache) size() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// SFPCache is the concurrency-safe per-node-type SFP analysis cache:
// (node type, hardening level, mapped process set) → *sfp.Node. It is the
// expensive, highly reusable layer of the evaluation pipeline — node
// types recur across candidate architectures — so core.Run shares one
// SFPCache across the engines of all concurrently probed architectures
// (NewConcurrentWith). sfp.Node values are immutable after construction,
// which is what makes sharing them safe.
type SFPCache struct {
	shards [nShards]sfpShard
}

type sfpShard struct {
	mu     sync.RWMutex
	byNode map[*platform.Node]map[string]*sfp.Node
	count  int
}

// NewSFPCache returns an empty cache, ready to be shared across engines.
func NewSFPCache() *SFPCache {
	c := &SFPCache{}
	for i := range c.shards {
		c.shards[i].byNode = make(map[*platform.Node]map[string]*sfp.Node)
	}
	return c
}

// get looks up the analysis for node n under the (level, process set) key
// without allocating: indexing a map[string] with string(key) compiles to
// an allocation-free lookup.
func (c *SFPCache) get(n *platform.Node, key []byte) (*sfp.Node, bool) {
	sh := &c.shards[shardOf(string(key))]
	sh.mu.RLock()
	nd, ok := sh.byNode[n][string(key)]
	sh.mu.RUnlock()
	return nd, ok
}

// put inserts the analysis, reporting how many resident entries were
// evicted to stay under the shard cap — the same counted single-victim
// eviction as solCache.put, instead of the whole-shard reset that used to
// silently drop up to 1/16 of the hot analyses.
func (c *SFPCache) put(n *platform.Node, key string, nd *sfp.Node) (evicted int64) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	_, exists := sh.byNode[n][key]
	if !exists && sh.count >= maxSFPEntries/nShards {
	victim:
		for vn, vm := range sh.byNode {
			for vk := range vm {
				delete(vm, vk)
				sh.count--
				evicted++
				if len(vm) == 0 {
					delete(sh.byNode, vn)
				}
				break victim
			}
		}
	}
	m := sh.byNode[n]
	if m == nil {
		m = make(map[string]*sfp.Node)
		sh.byNode[n] = m
	}
	if !exists {
		sh.count++
	}
	m[key] = nd
	sh.mu.Unlock()
	return evicted
}

func (c *SFPCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.byNode = make(map[*platform.Node]map[string]*sfp.Node)
		sh.count = 0
		sh.mu.Unlock()
	}
}

// workerCounters attributes engine work to one worker of a Concurrent
// engine. Padded to a cache line so workers incrementing their own slot do
// not false-share.
type workerCounters struct {
	evaluations atomic.Int64
	cacheMisses atomic.Int64
	_           [48]byte
}

// store bundles the caches and counters shared by every Evaluator of one
// engine: a solo Evaluator owns a private store; a Concurrent engine hands
// the same store to all its workers.
type store struct {
	sols      *solCache // (levels, mapping) → solution
	opts      *solCache // mapping → RedundancyOpt result
	sfp       *SFPCache
	stats     atomicStats
	perWorker []workerCounters

	// persist is the optional disk-backed cache behind warm starts;
	// persistFP is the problem fingerprint the current solution caches
	// belong to, and persistSeeded how many entries the load seeded (so a
	// flush that learned nothing can be skipped). See persist.go.
	persist       *evalcache.Cache
	persistFP     string
	persistSeeded int

	// progress is the optional live-progress publisher; like metrics it is
	// store-level state shared by every worker of a Concurrent engine.
	progress *obs.Progress

	// metrics is the optional live-instrumentation sink; the histograms are
	// resolved once at setMetrics so the hot path observes through nil-safe
	// pointers instead of registry lookups. gaugeReg remembers where the
	// live callback gauges are currently registered so reinstalling
	// instruments is idempotent and moving to another registry (or to nil)
	// deregisters the old closures instead of leaking the store through
	// them.
	metrics  *obs.Registry
	gaugeReg *obs.Registry
	mReexec  *obs.Histogram
	mSched   *obs.Histogram
	mOpt     *obs.Histogram
}

// liveGaugeNames are the callback gauges setMetrics owns on a registry.
var liveGaugeNames = [...]string{
	"evalengine.live.evaluations",
	"evalengine.live.cache_entries",
	"evalengine.live.opt_entries",
}

func newStore(sfpc *SFPCache, workers int) *store {
	if workers < 1 {
		workers = 1
	}
	return &store{
		sols:      newSolCache(maxSolutionEntries),
		opts:      newSolCache(maxOptEntries),
		sfp:       sfpc,
		perWorker: make([]workerCounters, workers),
	}
}

// setMetrics installs (or removes, with nil) the registry the engine's
// duration histograms are recorded into. It also registers callback
// gauges for the engine's live state — evaluations so far and current
// cache populations — evaluated only when the registry is snapshotted
// (the /metrics scrape path), so they cost nothing on the hot path.
//
// Registration is idempotent: reinstalling the same registry (as
// jobs.Runner does per job) leaves exactly one gauge set behind, and
// installing a different registry — or nil — first deregisters the
// closures from the previous one, so a retired store is not kept alive by
// a registry that outlives it.
func (st *store) setMetrics(r *obs.Registry) {
	if st.gaugeReg != nil && st.gaugeReg != r {
		for _, name := range liveGaugeNames {
			st.gaugeReg.UnregisterGaugeFunc(name)
		}
	}
	st.metrics = r
	st.mReexec = r.Histogram("evalengine.reexec")
	st.mSched = r.Histogram("evalengine.sched")
	st.mOpt = r.Histogram("evalengine.redundancy_opt")
	if r != nil && st.gaugeReg != r {
		r.GaugeFunc("evalengine.live.evaluations", func() float64 {
			return float64(st.stats.evaluations.Load())
		})
		r.GaugeFunc("evalengine.live.cache_entries", func() float64 {
			return float64(st.sols.size())
		})
		r.GaugeFunc("evalengine.live.opt_entries", func() float64 {
			return float64(st.opts.size())
		})
	}
	st.gaugeReg = r
}

// resetStats zeroes the engine-wide and per-worker counters.
func (st *store) resetStats() {
	st.stats.reset()
	for i := range st.perWorker {
		st.perWorker[i].evaluations.Store(0)
		st.perWorker[i].cacheMisses.Store(0)
	}
}

// snapshotStats renders the engine-wide Stats, with per-worker attribution
// when the engine has more than one worker.
func (st *store) snapshotStats() Stats {
	s := st.stats.snapshot()
	if len(st.perWorker) > 1 {
		s.PerWorker = make([]WorkerStats, len(st.perWorker))
		for i := range st.perWorker {
			w := &st.perWorker[i]
			s.PerWorker[i] = WorkerStats{
				Evaluations: w.evaluations.Load(),
				CacheMisses: w.cacheMisses.Load(),
			}
		}
	}
	return s
}

func (st *store) dropSolutions() {
	st.sols.clear()
	st.opts.clear()
	st.stats.invalidations.Add(1)
}
