package evalengine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sfp"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// sameFloats compares float slices bit for bit (NaN equals NaN), so a
// cached schedule that differs from the fresh one in the last ulp fails.
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameSolution fails unless the two solutions are bit-identical in
// every field, including the full schedule.
func assertSameSolution(t *testing.T, label string, got, want *redundancy.Solution) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	if got == nil {
		return
	}
	if !sameInts(got.Levels, want.Levels) {
		t.Errorf("%s: levels %v, want %v", label, got.Levels, want.Levels)
	}
	if !sameInts(got.Ks, want.Ks) {
		t.Errorf("%s: ks %v, want %v", label, got.Ks, want.Ks)
	}
	if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
		t.Errorf("%s: cost %v, want %v", label, got.Cost, want.Cost)
	}
	if got.Reliable != want.Reliable || got.Schedulable != want.Schedulable {
		t.Errorf("%s: reliable/schedulable %v/%v, want %v/%v",
			label, got.Reliable, got.Schedulable, want.Reliable, want.Schedulable)
	}
	gs, ws := got.Schedule, want.Schedule
	if (gs == nil) != (ws == nil) {
		t.Fatalf("%s: schedule presence differs", label)
	}
	if gs == nil {
		return
	}
	if math.Float64bits(gs.Length) != math.Float64bits(ws.Length) {
		t.Errorf("%s: SL %v, want %v", label, gs.Length, ws.Length)
	}
	for _, c := range []struct {
		name      string
		got, want []float64
	}{
		{"start", gs.Start, ws.Start},
		{"finish", gs.Finish, ws.Finish},
		{"worst-finish", gs.WorstFinish, ws.WorstFinish},
		{"msg-start", gs.MsgStart, ws.MsgStart},
		{"msg-end", gs.MsgEnd, ws.MsgEnd},
	} {
		if !sameFloats(c.got, c.want) {
			t.Errorf("%s: %s %v, want %v", label, c.name, c.got, c.want)
		}
	}
	if len(gs.NodeOrder) != len(ws.NodeOrder) {
		t.Fatalf("%s: node order over %d nodes, want %d", label, len(gs.NodeOrder), len(ws.NodeOrder))
	}
	for j := range gs.NodeOrder {
		if len(gs.NodeOrder[j]) != len(ws.NodeOrder[j]) {
			t.Errorf("%s: node %d order %v, want %v", label, j, gs.NodeOrder[j], ws.NodeOrder[j])
			continue
		}
		for i := range gs.NodeOrder[j] {
			if gs.NodeOrder[j][i] != ws.NodeOrder[j][i] {
				t.Errorf("%s: node %d order %v, want %v", label, j, gs.NodeOrder[j], ws.NodeOrder[j])
				break
			}
		}
	}
}

// levelVectors enumerates every hardening assignment of the architecture.
func levelVectors(ar *platform.Architecture) [][]int {
	var out [][]int
	cur := make([]int, len(ar.Nodes))
	var rec func(j int)
	rec = func(j int) {
		if j == len(ar.Nodes) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for l := ar.Nodes[j].MinLevel(); l <= ar.Nodes[j].MaxLevel(); l++ {
			cur[j] = l
			rec(j + 1)
		}
	}
	rec(0)
	return out
}

// checkMatchesFresh exhaustively compares the engine against the
// free-function path for one problem and mapping: every hardening vector
// through Evaluate (twice, so the second round exercises the hit path)
// and the full RedundancyOpt.
func checkMatchesFresh(t *testing.T, label string, p redundancy.Problem, mapping []int) {
	t.Helper()
	ev := New(p)
	fresh := p
	fresh.Mapping = mapping
	for round := 0; round < 2; round++ {
		for _, levels := range levelVectors(p.Arch) {
			want, werr := redundancy.Evaluate(fresh, levels)
			got, gerr := ev.Evaluate(mapping, levels)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s levels %v: errors differ: %v vs %v", label, levels, gerr, werr)
			}
			if werr != nil {
				continue
			}
			assertSameSolution(t, fmt.Sprintf("%s levels %v round %d", label, levels, round), got, want)
		}
	}
	want, werr := redundancy.RedundancyOpt(fresh)
	got, gerr := ev.RedundancyOpt(mapping)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%s opt: errors differ: %v vs %v", label, gerr, werr)
	}
	if werr == nil {
		assertSameSolution(t, label+" opt", got, want)
	}
	st := ev.Stats()
	if st.CacheHits == 0 {
		t.Errorf("%s: no cache hits after exhaustive revisit (stats %v)", label, st)
	}
}

func collect(pl *platform.Platform, idx []int) []*platform.Node {
	out := make([]*platform.Node, len(idx))
	for i, j := range idx {
		out[i] = &pl.Nodes[j]
	}
	return out
}

// TestEvaluatorMatchesFresh proves the memoized engine bit-identical to
// the free-function pipeline on the paper's Fig. 4 alternatives and on a
// batch of seeded synthetic applications.
func TestEvaluatorMatchesFresh(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	alternatives := []struct {
		name    string
		nodes   []int
		mapping []int
		fixed   []int // nil = optimize hardening
	}{
		{"fig4a", []int{0, 1}, []int{0, 0, 1, 1}, nil},
		{"fig4b", []int{0}, []int{0, 0, 0, 0}, nil},
		{"fig4c", []int{1}, []int{0, 0, 0, 0}, nil},
		{"fig4d-fixed-max", []int{0}, []int{0, 0, 0, 0}, []int{2}},
		{"fig4e-fixed-max", []int{1}, []int{0, 0, 0, 0}, []int{2}},
	}
	for _, alt := range alternatives {
		ar := platform.NewArchitecture(collect(pl, alt.nodes))
		var fixed []int
		if alt.fixed != nil {
			fixed = make([]int, len(ar.Nodes))
			for j, nd := range ar.Nodes {
				lv := nd.MinLevel() + alt.fixed[j]
				if lv > nd.MaxLevel() {
					lv = nd.MaxLevel()
				}
				fixed[j] = lv
			}
		}
		p := redundancy.Problem{
			App:         app,
			Arch:        ar,
			Goal:        goal,
			Bus:         ttp.NewBus(len(ar.Nodes), pl.Bus.SlotLen),
			FixedLevels: fixed,
		}
		checkMatchesFresh(t, alt.name, p, alt.mapping)
	}

	// Seeded synthetic batch: 2-node architectures, alternating and
	// block mappings, across sizes and soft error rates.
	const apps = 24
	for i := 0; i < apps; i++ {
		n := 10 + 5*(i%3)
		ser := []float64{1e-12, 1e-11, 1e-10}[i%3]
		inst, err := taskgen.Generate(taskgen.DefaultConfig(int64(100+i), n, ser, 25))
		if err != nil {
			t.Fatal(err)
		}
		ar := platform.NewArchitecture(collect(inst.Platform, []int{i % 2, 2 + i%2}))
		m := make([]int, n)
		for pid := range m {
			if i%2 == 0 {
				m[pid] = pid % 2
			} else if pid >= n/2 {
				m[pid] = 1
			}
		}
		p := redundancy.Problem{
			App:  inst.App,
			Arch: ar,
			Goal: inst.Goal,
			Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
		}
		checkMatchesFresh(t, fmt.Sprintf("synthetic-%d", i), p, m)
	}
}

// TestEvaluatorInvalidation pins the SetProblem semantics: identical
// rebinds keep the caches warm, architecture changes drop the solution
// caches but keep the per-node SFP analyses, and application changes drop
// everything.
func TestEvaluatorInvalidation(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	two := platform.NewArchitecture(collect(pl, []int{0, 1}))
	p := redundancy.Problem{App: app, Arch: two, Goal: goal, Bus: ttp.NewBus(2, pl.Bus.SlotLen)}
	m := []int{0, 0, 1, 1}

	ev := New(p)
	if _, err := ev.RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	base := ev.Stats()
	if base.CacheMisses == 0 || base.SFPBuilds == 0 {
		t.Fatalf("cold run recorded no work: %v", base)
	}

	// Identical rebind: the next RedundancyOpt is a pure cache hit.
	ev.SetProblem(p)
	if _, err := ev.RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	st := ev.Stats()
	if st.Invalidations != base.Invalidations {
		t.Errorf("identical rebind invalidated: %v", st)
	}
	if st.OptHits != base.OptHits+1 || st.CacheMisses != base.CacheMisses {
		t.Errorf("identical rebind missed the cache: %v", st)
	}

	// Same node types, different Architecture value: solution caches drop,
	// but the per-node SFP analyses are reused (keyed by node type).
	ev.SetProblem(redundancy.Problem{
		App: app, Arch: platform.NewArchitecture(collect(pl, []int{1, 0})),
		Goal: goal, Bus: ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if _, err := ev.RedundancyOpt([]int{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	st = ev.Stats()
	if st.Invalidations != base.Invalidations+1 {
		t.Errorf("node swap did not invalidate solutions: %v", st)
	}
	if st.SFPHits == base.SFPHits {
		t.Errorf("node swap rebuilt SFP analyses that were cached: %v", st)
	}

	// New application: everything drops, including the SFP node cache.
	inst, err := taskgen.Generate(taskgen.DefaultConfig(7, 8, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	before := ev.Stats().SFPBuilds
	ev.SetProblem(redundancy.Problem{
		App: inst.App, Arch: platform.NewArchitecture(collect(inst.Platform, []int{0, 1})),
		Goal: inst.Goal, Bus: ttp.NewBus(2, inst.Platform.Bus.SlotLen),
	})
	if _, err := ev.RedundancyOpt(make([]int, 8)); err != nil {
		t.Fatal(err)
	}
	if ev.Stats().SFPBuilds == before {
		t.Errorf("app change did not rebuild SFP analyses: %v", ev.Stats())
	}
}

func TestStatsStringAndRates(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.OptHitRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
	s = Stats{Evaluations: 10, CacheHits: 4, CacheMisses: 6, OptRuns: 5, OptHits: 1}
	if s.HitRate() != 0.4 || s.OptHitRate() != 0.2 {
		t.Errorf("rates %v %v", s.HitRate(), s.OptHitRate())
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.Evaluations != 20 || agg.CacheHits != 8 {
		t.Errorf("aggregate %+v", agg)
	}
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

// TestEvaluateErrors: invalid mappings and hardening vectors surface as
// errors rather than cache entries.
func TestEvaluateErrors(t *testing.T) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	p := redundancy.Problem{
		App:  app,
		Arch: platform.NewArchitecture(collect(pl, []int{0})),
		Goal: sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
	}
	ev := New(p)
	if _, err := ev.Evaluate([]int{0, 0, 0, 9}, []int{0}); err == nil {
		t.Error("want error for out-of-range mapping")
	}
	if _, err := ev.Evaluate([]int{0, 0, 0, 0}, []int{0, 0}); err == nil {
		t.Error("want error for wrong-length levels")
	}
	if _, err := ev.Evaluate([]int{0, 0, 0, 0}, []int{99}); err == nil {
		t.Error("want error for invalid hardening level")
	}
}

// BenchmarkEvaluatorColdWarm measures one RedundancyOpt on a 20-process
// mapping, cold (fresh engine per iteration) vs warm (shared engine).
func BenchmarkEvaluatorCold(b *testing.B) {
	p, m := benchProblem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := New(p)
		if _, err := ev.RedundancyOpt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorWarm(b *testing.B) {
	p, m := benchProblem(b)
	ev := New(p)
	if _, err := ev.RedundancyOpt(m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.RedundancyOpt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchProblem(b *testing.B) (redundancy.Problem, []int) {
	b.Helper()
	inst, err := taskgen.Generate(taskgen.DefaultConfig(6, 20, 1e-11, 25))
	if err != nil {
		b.Fatal(err)
	}
	m := make([]int, 20)
	for i := range m {
		m[i] = i % 2
	}
	return redundancy.Problem{
		App:  inst.App,
		Arch: platform.NewArchitecture(collect(inst.Platform, []int{0, 1})),
		Goal: inst.Goal,
		Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
	}, m
}
