package evalengine

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// WorkerStats attributes a share of the engine-wide work to one worker of
// a Concurrent engine.
type WorkerStats struct {
	// Evaluations counts Evaluate requests issued through this worker;
	// CacheMisses of them computed the solution rather than finding it in
	// the shared cache.
	Evaluations int64
	CacheMisses int64
}

// Stats are the engine's instrumentation counters. All counters are
// cumulative since the engine was created (or ResetStats). The zero value
// is a valid empty Stats; Add merges run-level stats into experiment-level
// aggregates.
type Stats struct {
	// Evaluations counts Evaluate requests, including cache hits.
	Evaluations int64
	// CacheHits and CacheMisses split Evaluations by solution-cache
	// outcome.
	CacheHits   int64
	CacheMisses int64
	// OptRuns counts RedundancyOpt requests; OptHits of them were answered
	// from the per-mapping cache without re-running the hardening search.
	OptRuns int64
	OptHits int64
	// ScheduleBuilds counts list-scheduler invocations (one per solution
	// cache miss).
	ScheduleBuilds int64
	// SFPBuilds counts per-node SFP analyses computed (sfp.NewNode);
	// SFPHits were served from the node-analysis cache.
	SFPBuilds int64
	SFPHits   int64
	// Invalidations counts SetProblem calls that dropped the solution
	// caches (architecture or model change).
	Invalidations int64
	// Evictions counts cache entries displaced by the capacity backstops
	// (solution, opt and SFP caches together). A nonzero value means the
	// run outgrew the in-memory caps and some memoized work was redone.
	Evictions int64
	// ReExecTime is the wall time spent in the SFP/re-execution layer
	// (node analyses plus the greedy k-assignment); SchedTime is the wall
	// time spent building schedules. Both cover cache misses only — hits
	// cost neither. With several workers the times are summed across
	// goroutines, so they can exceed wall-clock elapsed time.
	ReExecTime time.Duration
	SchedTime  time.Duration
	// PerWorker attributes Evaluations/CacheMisses to the individual
	// workers of a Concurrent engine (index = worker id). Empty on
	// single-worker engines.
	PerWorker []WorkerStats
}

// HitRate returns the solution-cache hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	if s.Evaluations == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Evaluations)
}

// OptHitRate returns the per-mapping RedundancyOpt cache hit fraction.
func (s Stats) OptHitRate() float64 {
	if s.OptRuns == 0 {
		return 0
	}
	return float64(s.OptHits) / float64(s.OptRuns)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Evaluations += o.Evaluations
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.OptRuns += o.OptRuns
	s.OptHits += o.OptHits
	s.ScheduleBuilds += o.ScheduleBuilds
	s.SFPBuilds += o.SFPBuilds
	s.SFPHits += o.SFPHits
	s.Invalidations += o.Invalidations
	s.Evictions += o.Evictions
	s.ReExecTime += o.ReExecTime
	s.SchedTime += o.SchedTime
	if len(o.PerWorker) > len(s.PerWorker) {
		s.PerWorker = append(s.PerWorker, make([]WorkerStats, len(o.PerWorker)-len(s.PerWorker))...)
	}
	for i, w := range o.PerWorker {
		s.PerWorker[i].Evaluations += w.Evaluations
		s.PerWorker[i].CacheMisses += w.CacheMisses
	}
}

// Publish folds the counters into an obs.Registry under evalengine.*
// names. Call it once at the end of a run — the engine does not stream
// counter updates into the registry, so publishing twice double-counts. A
// nil registry is a no-op.
func (s Stats) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("evalengine.evaluations").Add(s.Evaluations)
	r.Counter("evalengine.cache_hits").Add(s.CacheHits)
	r.Counter("evalengine.cache_misses").Add(s.CacheMisses)
	r.Counter("evalengine.opt_runs").Add(s.OptRuns)
	r.Counter("evalengine.opt_hits").Add(s.OptHits)
	r.Counter("evalengine.schedule_builds").Add(s.ScheduleBuilds)
	r.Counter("evalengine.sfp_builds").Add(s.SFPBuilds)
	r.Counter("evalengine.sfp_hits").Add(s.SFPHits)
	r.Counter("evalengine.invalidations").Add(s.Invalidations)
	r.Counter("evalengine.cache_evictions").Add(s.Evictions)
	r.Counter("evalengine.reexec_ns").Add(int64(s.ReExecTime))
	r.Counter("evalengine.sched_ns").Add(int64(s.SchedTime))
	for i, w := range s.PerWorker {
		r.Counter(fmt.Sprintf("evalengine.worker.%d.evaluations", i)).Add(w.Evaluations)
		r.Counter(fmt.Sprintf("evalengine.worker.%d.cache_misses", i)).Add(w.CacheMisses)
	}
}

// String renders the counters as the single-line summary printed by the
// experiment reports.
func (s Stats) String() string {
	return fmt.Sprintf("evals=%d hit=%.1f%% opt=%d/%d sched=%d sfp=%d/%d reexec=%v sched-time=%v",
		s.Evaluations, 100*s.HitRate(), s.OptHits, s.OptRuns,
		s.ScheduleBuilds, s.SFPHits, s.SFPHits+s.SFPBuilds,
		s.ReExecTime.Round(time.Microsecond), s.SchedTime.Round(time.Microsecond))
}

// atomicStats is the concurrency-safe backing store of Stats: the same
// counters as atomics, so workers of a Concurrent engine increment them
// without coordination. snapshot renders a plain Stats for reporting.
type atomicStats struct {
	evaluations    atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	optRuns        atomic.Int64
	optHits        atomic.Int64
	scheduleBuilds atomic.Int64
	sfpBuilds      atomic.Int64
	sfpHits        atomic.Int64
	invalidations  atomic.Int64
	evictions      atomic.Int64
	reExecNanos    atomic.Int64
	schedNanos     atomic.Int64
}

func (a *atomicStats) snapshot() Stats {
	return Stats{
		Evaluations:    a.evaluations.Load(),
		CacheHits:      a.cacheHits.Load(),
		CacheMisses:    a.cacheMisses.Load(),
		OptRuns:        a.optRuns.Load(),
		OptHits:        a.optHits.Load(),
		ScheduleBuilds: a.scheduleBuilds.Load(),
		SFPBuilds:      a.sfpBuilds.Load(),
		SFPHits:        a.sfpHits.Load(),
		Invalidations:  a.invalidations.Load(),
		Evictions:      a.evictions.Load(),
		ReExecTime:     time.Duration(a.reExecNanos.Load()),
		SchedTime:      time.Duration(a.schedNanos.Load()),
	}
}

func (a *atomicStats) reset() {
	a.evaluations.Store(0)
	a.cacheHits.Store(0)
	a.cacheMisses.Store(0)
	a.optRuns.Store(0)
	a.optHits.Store(0)
	a.scheduleBuilds.Store(0)
	a.sfpBuilds.Store(0)
	a.sfpHits.Store(0)
	a.invalidations.Store(0)
	a.evictions.Store(0)
	a.reExecNanos.Store(0)
	a.schedNanos.Store(0)
}
