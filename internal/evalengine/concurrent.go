package evalengine

import (
	"repro/internal/obs"
	"repro/internal/redundancy"
	"repro/internal/sched"
)

// Concurrent is the multi-goroutine face of the evaluation engine: N
// worker Evaluators over one shared store (solution caches, SFP node
// cache, atomic counters). Each worker is handed to exactly one goroutine
// at a time — workers own mutable scratch (schedule workspace, key
// buffer, bus clone) — while everything a worker computes lands in the
// shared caches, so work done by one worker is a cache hit for the rest.
//
// Determinism: a cache is only ever a shortcut to a value the worker
// would have computed itself bit-for-bit (see evalengine.go), so results
// are independent of which worker computes what and in which order.
// Callers that need a sequential-identical trajectory (mapping.
// OptimizeConcurrent, core.Run) evaluate candidates speculatively in
// parallel and replay the selection sequentially.
type Concurrent struct {
	st      *store
	workers []*Evaluator
	usable  int
}

// NewConcurrent returns an engine with the given number of workers bound
// to p. workers < 1 is treated as 1. A single-worker Concurrent behaves
// exactly like New.
func NewConcurrent(p redundancy.Problem, workers int) *Concurrent {
	return NewConcurrentWith(p, workers, nil)
}

// NewConcurrentWith is NewConcurrent with an externally shared SFP node
// cache (nil for a private one). core.Run passes one SFPCache to the
// engines of all concurrently probed candidate architectures: the
// per-node-type analyses are keyed on the node type, not the
// architecture, so they transfer across candidates.
func NewConcurrentWith(p redundancy.Problem, workers int, sfpc *SFPCache) *Concurrent {
	if workers < 1 {
		workers = 1
	}
	if sfpc == nil {
		sfpc = NewSFPCache()
	}
	st := newStore(sfpc, workers)
	c := &Concurrent{st: st, workers: make([]*Evaluator, workers)}
	for i := range c.workers {
		c.workers[i] = &Evaluator{st: st, wid: i}
	}
	c.bind(p)
	return c
}

// bind rebinds every worker to p. Workers beyond the first get their own
// clone of the bus — the TDMA booking state is mutated by every schedule
// build — and a bus that cannot be cloned clamps the engine to one usable
// worker rather than racing on shared bookings.
func (c *Concurrent) bind(p redundancy.Problem) {
	c.usable = len(c.workers)
	cb, cloneable := p.Bus.(sched.CloneableBus)
	if p.Bus != nil && !cloneable {
		c.usable = 1
	}
	for i, w := range c.workers {
		q := p
		if i > 0 && cloneable {
			q.Bus = cb.CloneBus()
		}
		w.set(q)
	}
}

// NumWorkers returns how many workers may be used concurrently. It is
// less than the requested count only when the problem's bus does not
// implement sched.CloneableBus.
func (c *Concurrent) NumWorkers() int { return c.usable }

// Worker returns worker i (0 ≤ i < NumWorkers). Each worker must be used
// by at most one goroutine at a time; worker 0 doubles as the engine's
// sequential handle.
func (c *Concurrent) Worker(i int) *Evaluator { return c.workers[i] }

// Problem returns the problem the engine is currently bound to.
func (c *Concurrent) Problem() redundancy.Problem { return c.workers[0].Problem() }

// SetProblem rebinds all workers to p with the same invalidation rules as
// Evaluator.SetProblem. It must not be called while workers are in use.
func (c *Concurrent) SetProblem(p redundancy.Problem) {
	w0 := c.workers[0]
	willDrop := w0.willDropSolutions(p)
	if willDrop {
		c.st.flushPersistent()
	}
	w0.invalidateFor(p)
	c.bind(p)
	if willDrop && c.st.persist != nil {
		fp, _ := problemFingerprint(p)
		c.st.loadPersistent(fp)
	}
}

// Stats returns a snapshot of the engine-wide counters, including
// per-worker attribution (Stats.PerWorker) when the engine has more than
// one worker.
func (c *Concurrent) Stats() Stats { return c.st.snapshotStats() }

// ResetStats zeroes the engine-wide counters (the caches are kept).
func (c *Concurrent) ResetStats() { c.st.resetStats() }

// SetMetrics installs the registry the engine's duration histograms are
// recorded into (shared by all workers); nil disables them. Spans are
// per-worker: install them with Worker(i).SetTraceSpan.
func (c *Concurrent) SetMetrics(r *obs.Registry) { c.st.setMetrics(r) }

// SetProgress installs the live-progress publisher (shared by all
// workers); nil disables publication.
func (c *Concurrent) SetProgress(p *obs.Progress) { c.st.progress = p }
